#!/usr/bin/env bash
# Regenerates BENCH_serve.json — the committed record of what the
# mssr-serve job server sustains under concurrent load: throughput,
# p50/p99 request latency, the cache hit rate a duplicate-heavy mix
# achieves, and the backpressure rejections a bounded queue hands out
# instead of buffering unboundedly.
#
# The load run uses 64 concurrent clients against a deliberately
# throttled server (one worker, shallow queue, per-cell delay) so both
# cache hits and `busy` rejections are exercised on any machine. Counts
# depend on scheduling; the structural claims (hits > 0, rejections
# observed, zero errors) are re-checked by the CI "Serve smoke" step.
# Latency and throughput are machine-dependent context, not gated.
#
# Usage: ci/regen-bench-serve.sh      (from anywhere in the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p mssr-bench >/dev/null

./target/release/mssr-serve --scale test --experiments table1 \
    --addr 127.0.0.1:0 --jobs 1 --queue-bound 4 --delay-ms 20 \
    > /tmp/serve-listen.json &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT

for _ in $(seq 50); do
    addr=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' /tmp/serve-listen.json)
    [ -n "${addr}" ] && break
    sleep 0.1
done
[ -n "${addr}" ] || { echo "server never bound" >&2; exit 1; }

./target/release/mssr-serve --load "$addr" \
    --clients 64 --requests 8 --dup 60 > BENCH_serve.json

./target/release/mssr-serve --shutdown "$addr" >/dev/null
wait "$server_pid"
trap - EXIT

echo "BENCH_serve.json regenerated:"
cat BENCH_serve.json
