#!/usr/bin/env bash
# Regenerates ci/baseline-bpred.json — the golden predictor × engine
# trajectory the CI "Predictor-matrix smoke + MPKI baseline gate"
# compares every push against.
#
# When to run this: only after an *intentional* predictor or pipeline
# change (new predictor tables, a training fix that legitimately moves
# MPKI, an engine feature that moves IPC or the grant rate). The oracle
# rows in the regenerated file must still show zero mispredictions and
# the alwayswrong rows a saturated stream — if they don't, the change
# broke the feed contract; fix that instead of committing the file.
# Never regenerate to silence a gate failure you can't explain.
#
# The grid is deterministic (fixed root seed, work-stealing order
# independent — see crates/bench/tests/determinism.rs), so the output is
# byte-stable across machines and --jobs settings; a regeneration with
# no functional changes produces no diff.
#
# Usage: ci/regen-baseline-bpred.sh      (from anywhere in the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --offline -p mssr-bench --bin bpred -- \
    --scale test --json > ci/baseline-bpred.json

# Sanity: the gate must pass against the file it just produced, and the
# oracle asymptote must hold (zero mispredictions in every oracle cell).
cargo run --release --offline -p mssr-bench --bin mssr-report -- \
    ci/baseline-bpred.json --baseline ci/baseline-bpred.json --threshold 5 > /dev/null
if grep '"bpred":"oracle"' ci/baseline-bpred.json | grep -qv '"mispredictions":0,'; then
    echo "oracle cells mispredict — feed contract broken" >&2
    exit 1
fi

echo "ci/baseline-bpred.json regenerated:"
git diff --stat -- ci/baseline-bpred.json
