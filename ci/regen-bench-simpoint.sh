#!/usr/bin/env bash
# Regenerates BENCH_simpoint.json — the committed record of what SimPoint
# sampling buys and what it costs on the Table 1 grid: full vs. sampled
# wall-clock time, the worst per-cell reconstruction error, and the share
# of instructions simulated in detail.
#
# The error and detailed-share fields are deterministic (fixed root seed,
# deterministic clustering — see DESIGN.md §SimPoint phase sampling) and
# the CI "SimPoint sampling smoke" step re-derives and cross-checks them
# on every push; regenerate after any change that legitimately moves
# them, and treat the diff as a reviewable claim. The wall-time fields
# are machine-dependent context, not gated.
#
# Usage: ci/regen-bench-simpoint.sh      (from anywhere in the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p mssr-bench >/dev/null

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

t0=$(now_ms)
./target/release/table1 --scale test --json > /tmp/simpoint-full.json
t1=$(now_ms)
./target/release/table1 --scale test --json --simpoint 2000,3 > /tmp/simpoint-sampled.json
t2=$(now_ms)

summary=$(./target/release/mssr-report /tmp/simpoint-sampled.json \
    --golden /tmp/simpoint-full.json --max-error 3 | grep '^SIMPOINT ')
err=${summary#*max_err_milli=}; err=${err%% *}
det=${summary#*detailed_milli=}

cat > BENCH_simpoint.json <<JSON
{
  "experiment": "table1",
  "scale": "test",
  "simpoint": "2000,3",
  "max_err_milli": ${err},
  "detailed_milli": ${det},
  "full_wall_ms": $((t1 - t0)),
  "sampled_wall_ms": $((t2 - t1))
}
JSON

echo "BENCH_simpoint.json regenerated:"
cat BENCH_simpoint.json
