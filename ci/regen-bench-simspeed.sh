#!/usr/bin/env bash
# Regenerates BENCH_simspeed.json — the committed record of how fast the
# simulator runs the Table 1 grid: per-engine min/median/max host
# throughput (thousandths of simulated MIPS) plus the self-profiler's
# stage-share breakdown, so a perf regression names the stage that got
# slower instead of just a smaller number.
#
# Absolute throughput is machine-dependent, so the CI "Sim-speed gate"
# step compares *ratios* with a generous threshold (a PR fails only when
# its median throughput collapses below --min-ratio percent of this
# file's). Regenerate on a quiet machine after any change that
# legitimately moves simulation speed, and treat the diff as a
# reviewable claim.
#
# Usage: ci/regen-bench-simspeed.sh      (from anywhere in the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline -p mssr-bench >/dev/null

./target/release/table1 --scale test --json --timing --profile \
    > /tmp/simspeed-traj.json 2> /tmp/simspeed-prof.jsonl

./target/release/mssr-simspeed emit \
    /tmp/simspeed-traj.json /tmp/simspeed-prof.jsonl > BENCH_simspeed.json

echo "BENCH_simspeed.json regenerated:"
cat BENCH_simspeed.json
