#!/usr/bin/env bash
# Regenerates ci/baseline-table1.json — the golden Table 1 trajectory the
# CI "Report regression gate" compares every push against.
#
# When to run this: only after an *intentional* performance change (a new
# engine feature, a pipeline fix that legitimately moves IPC or the
# reuse-grant rate). The regenerated file is a reviewable diff: every
# changed cycles/IPC number in it is a claim the PR should be able to
# defend. Never regenerate to silence a gate failure you can't explain.
#
# The grid is deterministic (fixed root seed, work-stealing order
# independent — see tests/determinism.rs), so the output is byte-stable
# across machines and --jobs settings; a regeneration with no functional
# changes produces no diff.
#
# Usage: ci/regen-baseline.sh            (from anywhere in the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release --offline -p mssr-bench --bin table1 -- \
    --scale test --json > ci/baseline-table1.json

# Sanity: the gate must pass against the file it just produced, and the
# checkpoint-warmed variant (the CI fast-forward gate) must stay within
# the same threshold. Catches a broken regeneration before it lands.
cargo run --release --offline -p mssr-bench --bin mssr-report -- \
    ci/baseline-table1.json --baseline ci/baseline-table1.json --threshold 5 > /dev/null

echo "ci/baseline-table1.json regenerated:"
git diff --stat -- ci/baseline-table1.json
