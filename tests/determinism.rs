//! The whole stack is deterministic: identical runs produce identical
//! cycle counts, statistics, and memory. This is what makes engine
//! comparisons meaningful.

use mssr::core::{MssrConfig, MultiStreamReuse};
use mssr::sim::SimConfig;
use mssr::workloads::{gap, graph::Graph, microbench, spec2006};

fn cfg() -> SimConfig {
    SimConfig::default().with_max_cycles(50_000_000)
}

#[test]
fn baseline_runs_are_identical() {
    let w = microbench::nested_mispred(400);
    let a = w.run(cfg(), None);
    let b = w.run(cfg(), None);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed_instructions, b.committed_instructions);
    assert_eq!(a.mispredictions, b.mispredictions);
    assert_eq!(a.l1_misses, b.l1_misses);
}

#[test]
fn engine_runs_are_identical() {
    let g = Graph::uniform(96, 6, 5);
    let w = gap::sssp(&g);
    let a = w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
    let b = w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.engine.reuse_grants, b.engine.reuse_grants);
    assert_eq!(a.engine.reconvergences, b.engine.reconvergences);
    assert_eq!(a.engine.stream_distance, b.engine.stream_distance);
}

#[test]
fn harness_grid_json_is_identical_across_runs_with_same_root_seed() {
    use mssr::workloads::Scale;
    use mssr_bench::harness::{run_named, HarnessOpts};
    let mut opts = HarnessOpts::new(Scale::Test);
    opts.json = true;
    opts.jobs = 1;
    opts.root_seed = 0x5eed;
    let exps = ["table1", "fig3", "rollup"];
    let a = run_named(&exps, &opts);
    let b = run_named(&exps, &opts);
    assert_eq!(a, b, "two grid runs with the same root seed must be bit-identical");
    assert!(a.contains("\"type\":\"meta\""));
    assert!(a.contains("\"type\":\"cell\""));
    assert!(a.contains("\"type\":\"experiment\""));
}

#[test]
fn harness_grid_json_is_independent_of_worker_count() {
    use mssr::workloads::Scale;
    use mssr_bench::harness::{run_named, HarnessOpts};
    let mut serial = HarnessOpts::new(Scale::Test);
    serial.json = true;
    serial.jobs = 1;
    let mut parallel = serial.clone();
    parallel.jobs = 4;
    let exps = ["table1", "fig3"];
    assert_eq!(
        run_named(&exps, &serial),
        run_named(&exps, &parallel),
        "--jobs must never change grid output"
    );
}

#[test]
fn workload_construction_is_deterministic() {
    let a = spec2006::astar(10);
    let b = spec2006::astar(10);
    assert_eq!(a.static_insts(), b.static_insts());
    assert_eq!(a.checks().len(), b.checks().len());
    for (ca, cb) in a.checks().iter().zip(b.checks()) {
        assert_eq!(ca.expect, cb.expect);
        assert_eq!(ca.addr, cb.addr);
    }
}
