//! The whole stack is deterministic: identical runs produce identical
//! cycle counts, statistics, and memory. This is what makes engine
//! comparisons meaningful.

use mssr::core::{MssrConfig, MultiStreamReuse};
use mssr::sim::SimConfig;
use mssr::workloads::{gap, graph::Graph, microbench, spec2006};

fn cfg() -> SimConfig {
    SimConfig::default().with_max_cycles(50_000_000)
}

#[test]
fn baseline_runs_are_identical() {
    let w = microbench::nested_mispred(400);
    let a = w.run(cfg(), None);
    let b = w.run(cfg(), None);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed_instructions, b.committed_instructions);
    assert_eq!(a.mispredictions, b.mispredictions);
    assert_eq!(a.l1_misses, b.l1_misses);
}

#[test]
fn engine_runs_are_identical() {
    let g = Graph::uniform(96, 6, 5);
    let w = gap::sssp(&g);
    let a = w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
    let b = w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.engine.reuse_grants, b.engine.reuse_grants);
    assert_eq!(a.engine.reconvergences, b.engine.reconvergences);
    assert_eq!(a.engine.stream_distance, b.engine.stream_distance);
}

#[test]
fn harness_grid_json_is_identical_across_runs_with_same_root_seed() {
    use mssr::workloads::Scale;
    use mssr_bench::harness::{run_named, HarnessOpts};
    let mut opts = HarnessOpts::new(Scale::Test);
    opts.json = true;
    opts.jobs = 1;
    opts.root_seed = 0x5eed;
    let exps = ["table1", "fig3", "rollup"];
    let a = run_named(&exps, &opts);
    let b = run_named(&exps, &opts);
    assert_eq!(a, b, "two grid runs with the same root seed must be bit-identical");
    assert!(a.contains("\"type\":\"meta\""));
    assert!(a.contains("\"type\":\"cell\""));
    assert!(a.contains("\"type\":\"experiment\""));
}

#[test]
fn harness_grid_json_is_independent_of_worker_count() {
    use mssr::workloads::Scale;
    use mssr_bench::harness::{run_named, HarnessOpts};
    let mut serial = HarnessOpts::new(Scale::Test);
    serial.json = true;
    serial.jobs = 1;
    let mut parallel = serial.clone();
    parallel.jobs = 4;
    let exps = ["table1", "fig3"];
    assert_eq!(
        run_named(&exps, &serial),
        run_named(&exps, &parallel),
        "--jobs must never change grid output"
    );
}

/// The acceptance test for `--trace`: the full JSON-lines trajectory,
/// events included, is byte-identical whatever the worker count. Events
/// are buffered per cell and emitted in cell order, so work stealing
/// cannot reorder them.
#[test]
fn trace_events_are_independent_of_worker_count() {
    use mssr::workloads::{microbench, Scale};
    use mssr_bench::harness::{
        run_experiments, CellId, CellPool, CellResult, Experiment, HarnessOpts,
    };
    use mssr_bench::{experiment_sim_config, EngineSpec};

    // A deliberately tiny grid: traces are verbose (several events per
    // instruction), so the cell must be small enough for the test suite.
    struct TinyTrace;
    impl Experiment for TinyTrace {
        fn name(&self) -> &'static str {
            "tiny-trace"
        }
        fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
            let wid = pool.intern(microbench::nested_mispred(60));
            vec![
                pool.cell(wid, EngineSpec::Baseline.into(), experiment_sim_config()),
                pool.cell(
                    wid,
                    EngineSpec::Mssr { streams: 2, log_entries: 64 }.into(),
                    experiment_sim_config(),
                ),
                pool.cell(
                    wid,
                    EngineSpec::Ri { sets: 64, ways: 2 }.into(),
                    experiment_sim_config(),
                ),
            ]
        }
        fn render(&self, _pool: &CellPool, _ids: &[CellId], _results: &[CellResult]) -> String {
            String::new()
        }
    }

    let mut serial = HarnessOpts::new(Scale::Test);
    serial.json = true;
    serial.trace = true;
    serial.jobs = 1;
    let mut parallel = serial.clone();
    parallel.jobs = 4;
    let exps: Vec<Box<dyn Experiment>> = vec![Box::new(TinyTrace)];
    let a = run_experiments(&exps, &serial);
    let b = run_experiments(&exps, &parallel);
    assert_eq!(a, b, "--trace output must be byte-identical across --jobs");
    // Every cell contributed events, wrapped with its id, and the
    // per-kind counters surfaced in the cell stats.
    for c in 0..3 {
        assert!(a.contains(&format!("{{\"type\":\"event\",\"cell\":{c},\"ev\":")));
    }
    assert!(a.contains("\"ev\":\"commit\""));
    assert!(a.contains("\"ev\":\"squash\""));
    assert!(a.contains("\"trace_commit\":"));
}

/// The acceptance test for `--sample`: sample records ride the same
/// per-cell buffering as `--trace`, so the trajectory — and the report
/// rendered from it — is byte-identical whatever the worker count.
/// Without `--trace`, samples are the only events in the stream.
#[test]
fn sample_records_and_report_are_independent_of_worker_count() {
    use mssr::workloads::{microbench, Scale};
    use mssr_bench::harness::report::{regressions, render_report, Trajectory};
    use mssr_bench::harness::{
        run_experiments, CellId, CellPool, CellResult, Experiment, HarnessOpts,
    };
    use mssr_bench::{experiment_sim_config, EngineSpec};

    struct TinySample;
    impl Experiment for TinySample {
        fn name(&self) -> &'static str {
            "tiny-sample"
        }
        fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
            let wid = pool.intern(microbench::nested_mispred(60));
            vec![
                pool.cell(wid, EngineSpec::Baseline.into(), experiment_sim_config()),
                pool.cell(
                    wid,
                    EngineSpec::Mssr { streams: 2, log_entries: 64 }.into(),
                    experiment_sim_config(),
                ),
                pool.cell(
                    wid,
                    EngineSpec::Ri { sets: 64, ways: 2 }.into(),
                    experiment_sim_config(),
                ),
            ]
        }
        fn render(&self, _pool: &CellPool, _ids: &[CellId], _results: &[CellResult]) -> String {
            String::new()
        }
    }

    let mut serial = HarnessOpts::new(Scale::Test);
    serial.json = true;
    serial.sample = 200;
    serial.jobs = 1;
    let mut parallel = serial.clone();
    parallel.jobs = 4;
    let exps: Vec<Box<dyn Experiment>> = vec![Box::new(TinySample)];
    let a = run_experiments(&exps, &serial);
    let b = run_experiments(&exps, &parallel);
    assert_eq!(a, b, "--sample output must be byte-identical across --jobs");
    assert!(a.contains("\"ev\":\"sample\""), "sample events present");
    assert!(
        !a.contains("\"ev\":\"commit\""),
        "without --trace the kind mask admits sample events only"
    );

    // The rendered report inherits the byte-identity, and the parsed
    // trajectory feeds the regression comparator: identical runs pass,
    // an artificially degraded run trips it.
    let ta = Trajectory::parse(&a).expect("trajectory parses");
    let tb = Trajectory::parse(&b).expect("trajectory parses");
    let report = render_report(&ta);
    assert_eq!(report, render_report(&tb), "report must be byte-identical across --jobs");
    assert!(report.contains("squash_branch"), "CPI stack rendered:\n{report}");
    assert!(report.contains("== Speedup vs BASE =="));
    assert!(regressions(&ta, &tb, 5).is_empty(), "identical runs never regress");
    let mut degraded = ta.clone();
    for c in &mut degraded.cells {
        c.cycles *= 2;
    }
    assert!(!regressions(&degraded, &ta, 5).is_empty(), "halved IPC must regress");
}

#[test]
fn workload_construction_is_deterministic() {
    let a = spec2006::astar(10);
    let b = spec2006::astar(10);
    assert_eq!(a.static_insts(), b.static_insts());
    assert_eq!(a.checks().len(), b.checks().len());
    for (ca, cb) in a.checks().iter().zip(b.checks()) {
        assert_eq!(ca.expect, cb.expect);
        assert_eq!(ca.addr, cb.addr);
    }
}
