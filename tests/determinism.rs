//! The whole stack is deterministic: identical runs produce identical
//! cycle counts, statistics, and memory. This is what makes engine
//! comparisons meaningful.

use mssr::core::{MssrConfig, MultiStreamReuse};
use mssr::sim::SimConfig;
use mssr::workloads::{gap, graph::Graph, microbench, spec2006};

fn cfg() -> SimConfig {
    SimConfig::default().with_max_cycles(50_000_000)
}

#[test]
fn baseline_runs_are_identical() {
    let w = microbench::nested_mispred(400);
    let a = w.run(cfg(), None);
    let b = w.run(cfg(), None);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed_instructions, b.committed_instructions);
    assert_eq!(a.mispredictions, b.mispredictions);
    assert_eq!(a.l1_misses, b.l1_misses);
}

#[test]
fn engine_runs_are_identical() {
    let g = Graph::uniform(96, 6, 5);
    let w = gap::sssp(&g);
    let a = w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
    let b = w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.engine.reuse_grants, b.engine.reuse_grants);
    assert_eq!(a.engine.reconvergences, b.engine.reconvergences);
    assert_eq!(a.engine.stream_distance, b.engine.stream_distance);
}

#[test]
fn harness_grid_json_is_identical_across_runs_with_same_root_seed() {
    use mssr::workloads::Scale;
    use mssr_bench::harness::{run_named, HarnessOpts};
    let mut opts = HarnessOpts::new(Scale::Test);
    opts.json = true;
    opts.jobs = 1;
    opts.root_seed = 0x5eed;
    let exps = ["table1", "fig3", "rollup"];
    let a = run_named(&exps, &opts);
    let b = run_named(&exps, &opts);
    assert_eq!(a, b, "two grid runs with the same root seed must be bit-identical");
    assert!(a.contains("\"type\":\"meta\""));
    assert!(a.contains("\"type\":\"cell\""));
    assert!(a.contains("\"type\":\"experiment\""));
}

#[test]
fn harness_grid_json_is_independent_of_worker_count() {
    use mssr::workloads::Scale;
    use mssr_bench::harness::{run_named, HarnessOpts};
    let mut serial = HarnessOpts::new(Scale::Test);
    serial.json = true;
    serial.jobs = 1;
    let mut parallel = serial.clone();
    parallel.jobs = 4;
    let exps = ["table1", "fig3"];
    assert_eq!(
        run_named(&exps, &serial),
        run_named(&exps, &parallel),
        "--jobs must never change grid output"
    );
}

/// The acceptance test for `--trace`: the full JSON-lines trajectory,
/// events included, is byte-identical whatever the worker count. Events
/// are buffered per cell and emitted in cell order, so work stealing
/// cannot reorder them.
#[test]
fn trace_events_are_independent_of_worker_count() {
    use mssr::workloads::{microbench, Scale};
    use mssr_bench::harness::{
        run_experiments, CellId, CellPool, CellResult, Experiment, HarnessOpts,
    };
    use mssr_bench::{experiment_sim_config, EngineSpec};

    // A deliberately tiny grid: traces are verbose (several events per
    // instruction), so the cell must be small enough for the test suite.
    struct TinyTrace;
    impl Experiment for TinyTrace {
        fn name(&self) -> &'static str {
            "tiny-trace"
        }
        fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
            let wid = pool.intern(microbench::nested_mispred(60));
            vec![
                pool.cell(wid, EngineSpec::Baseline.into(), experiment_sim_config()),
                pool.cell(
                    wid,
                    EngineSpec::Mssr { streams: 2, log_entries: 64 }.into(),
                    experiment_sim_config(),
                ),
                pool.cell(
                    wid,
                    EngineSpec::Ri { sets: 64, ways: 2 }.into(),
                    experiment_sim_config(),
                ),
            ]
        }
        fn render(&self, _pool: &CellPool, _ids: &[CellId], _results: &[CellResult]) -> String {
            String::new()
        }
    }

    let mut serial = HarnessOpts::new(Scale::Test);
    serial.json = true;
    serial.trace = true;
    serial.jobs = 1;
    let mut parallel = serial.clone();
    parallel.jobs = 4;
    let exps: Vec<Box<dyn Experiment>> = vec![Box::new(TinyTrace)];
    let a = run_experiments(&exps, &serial);
    let b = run_experiments(&exps, &parallel);
    assert_eq!(a, b, "--trace output must be byte-identical across --jobs");
    // Every cell contributed events, wrapped with its id, and the
    // per-kind counters surfaced in the cell stats.
    for c in 0..3 {
        assert!(a.contains(&format!("{{\"type\":\"event\",\"cell\":{c},\"ev\":")));
    }
    assert!(a.contains("\"ev\":\"commit\""));
    assert!(a.contains("\"ev\":\"squash\""));
    assert!(a.contains("\"trace_commit\":"));
}

/// The acceptance test for `--sample`: sample records ride the same
/// per-cell buffering as `--trace`, so the trajectory — and the report
/// rendered from it — is byte-identical whatever the worker count.
/// Without `--trace`, samples are the only events in the stream.
#[test]
fn sample_records_and_report_are_independent_of_worker_count() {
    use mssr::workloads::{microbench, Scale};
    use mssr_bench::harness::report::{regressions, render_report, Trajectory};
    use mssr_bench::harness::{
        run_experiments, CellId, CellPool, CellResult, Experiment, HarnessOpts,
    };
    use mssr_bench::{experiment_sim_config, EngineSpec};

    struct TinySample;
    impl Experiment for TinySample {
        fn name(&self) -> &'static str {
            "tiny-sample"
        }
        fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
            let wid = pool.intern(microbench::nested_mispred(60));
            vec![
                pool.cell(wid, EngineSpec::Baseline.into(), experiment_sim_config()),
                pool.cell(
                    wid,
                    EngineSpec::Mssr { streams: 2, log_entries: 64 }.into(),
                    experiment_sim_config(),
                ),
                pool.cell(
                    wid,
                    EngineSpec::Ri { sets: 64, ways: 2 }.into(),
                    experiment_sim_config(),
                ),
            ]
        }
        fn render(&self, _pool: &CellPool, _ids: &[CellId], _results: &[CellResult]) -> String {
            String::new()
        }
    }

    let mut serial = HarnessOpts::new(Scale::Test);
    serial.json = true;
    serial.sample = 200;
    serial.jobs = 1;
    let mut parallel = serial.clone();
    parallel.jobs = 4;
    let exps: Vec<Box<dyn Experiment>> = vec![Box::new(TinySample)];
    let a = run_experiments(&exps, &serial);
    let b = run_experiments(&exps, &parallel);
    assert_eq!(a, b, "--sample output must be byte-identical across --jobs");
    assert!(a.contains("\"ev\":\"sample\""), "sample events present");
    assert!(
        !a.contains("\"ev\":\"commit\""),
        "without --trace the kind mask admits sample events only"
    );

    // The rendered report inherits the byte-identity, and the parsed
    // trajectory feeds the regression comparator: identical runs pass,
    // an artificially degraded run trips it.
    let ta = Trajectory::parse(&a).expect("trajectory parses");
    let tb = Trajectory::parse(&b).expect("trajectory parses");
    let report = render_report(&ta);
    assert_eq!(report, render_report(&tb), "report must be byte-identical across --jobs");
    assert!(report.contains("squash_branch"), "CPI stack rendered:\n{report}");
    assert!(report.contains("== Speedup vs BASE =="));
    assert!(regressions(&ta, &tb, 5).is_empty(), "identical runs never regress");
    let mut degraded = ta.clone();
    for c in &mut degraded.cells {
        c.cycles *= 2;
    }
    assert!(!regressions(&degraded, &ta, 5).is_empty(), "halved IPC must regress");
}

/// The restore-equivalence acceptance test: for every engine, a run
/// resumed from a mid-run checkpoint produces bit-identical final stats,
/// CPI-stack slots, and trace byte-stream to the straight-through run.
/// The snapshot itself must also round-trip: re-snapshotting immediately
/// after a restore reproduces the original bytes.
#[test]
fn checkpoint_restore_resumes_bit_identically_for_every_engine() {
    use mssr::core::{RegisterIntegration, RiConfig};
    use mssr::sim::{BufferSink, ReuseEngine, Simulator};
    let w = microbench::nested_mispred(200);
    type MkEngine = fn() -> Option<Box<dyn ReuseEngine>>;
    let engines: [(&str, MkEngine); 4] = [
        ("base", || None),
        ("mssr", || Some(Box::new(MultiStreamReuse::new(MssrConfig::default())))),
        // streams = 1 degenerates MSSR to classic DCI.
        ("dci", || Some(Box::new(MultiStreamReuse::new(MssrConfig::default().with_streams(1))))),
        ("ri", || Some(Box::new(RegisterIntegration::new(RiConfig::default())))),
    ];
    const K: u64 = 500; // snapshot boundary, in committed instructions
    for (name, mk) in engines {
        let instantiate = |e: Option<Box<dyn ReuseEngine>>| -> Simulator {
            match e {
                Some(e) => w.instantiate_with(cfg(), e),
                None => w.instantiate(cfg()),
            }
        };

        // Straight-through reference: silent prefix to K commits, then a
        // trace sink for the remainder of the run.
        let mut a = instantiate(mk());
        a.run_until_insts(K);
        assert!(!a.is_halted(), "{name}: the snapshot point must land mid-run");
        let sink = BufferSink::new();
        let trace_a = sink.handle();
        a.set_trace_sink(Box::new(sink));
        let stats_a = w.finish(&mut a);
        let account_a = format!("{:?}", a.account());

        // Checkpointed run: identical prefix, snapshot, restore into a
        // *fresh* simulator, then finish under a sink of its own.
        let mut b = instantiate(mk());
        b.run_until_insts(K);
        let bytes = b.snapshot();
        let mut c = instantiate(mk());
        c.restore(&bytes).unwrap_or_else(|e| panic!("{name}: restore failed: {e}"));
        assert_eq!(c.snapshot(), bytes, "{name}: snapshot must round-trip byte-identically");
        let sink = BufferSink::new();
        let trace_c = sink.handle();
        c.set_trace_sink(Box::new(sink));
        let stats_c = w.finish(&mut c);
        let account_c = format!("{:?}", c.account());

        assert_eq!(stats_a.to_json(), stats_c.to_json(), "{name}: final stats diverged");
        assert_eq!(account_a, account_c, "{name}: CPI-stack slots diverged");
        assert_eq!(
            *trace_a.lock().unwrap(),
            *trace_c.lock().unwrap(),
            "{name}: trace byte-stream diverged"
        );
    }
}

/// Grid-level checkpointing: `--ffwd` warming is byte-identical across
/// worker counts and surfaces the skipped work in the cell stats, and a
/// grid re-run restoring the checkpoints written by `--ckpt-every`
/// reproduces the cold run's trajectory exactly.
#[test]
fn grid_checkpoints_and_fast_forward_are_deterministic_across_jobs() {
    use mssr::workloads::Scale;
    use mssr_bench::harness::{run_named, HarnessOpts};

    let mut serial = HarnessOpts::new(Scale::Test);
    serial.json = true;
    serial.jobs = 1;
    serial.ffwd = 200;
    let mut parallel = serial.clone();
    parallel.jobs = 4;
    let a = run_named(&["table1"], &serial);
    let b = run_named(&["table1"], &parallel);
    assert_eq!(a, b, "--ffwd grid output must be byte-identical across --jobs");
    assert!(a.contains("\"ffwd_insts\":200"), "warmed cells report the functional prefix");
    assert!(a.contains("\"skipped_cycles\":200"), "warmed cells report the skipped cycles");

    let dir = std::env::temp_dir().join(format!("mssr-ckpt-grid-{}", std::process::id()));
    let mut opts = HarnessOpts::new(Scale::Test);
    opts.json = true;
    opts.jobs = 2;
    opts.ckpt_dir = Some(dir.clone());
    opts.ckpt_every = 1000;
    let cold = run_named(&["table1"], &opts);
    let written = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert!(written > 0, "the cold run must write checkpoints");
    let warm = run_named(&["table1"], &opts);
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(cold, warm, "a checkpoint-restored grid run must be byte-identical");
}

#[test]
fn workload_construction_is_deterministic() {
    let a = spec2006::astar(10);
    let b = spec2006::astar(10);
    assert_eq!(a.static_insts(), b.static_insts());
    assert_eq!(a.checks().len(), b.checks().len());
    for (ca, cb) in a.checks().iter().zip(b.checks()) {
        assert_eq!(ca.expect, cb.expect);
        assert_eq!(ca.addr, cb.addr);
    }
}
