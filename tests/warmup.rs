//! Warmup fidelity of functional fast-forward (`Simulator::fast_forward`).
//!
//! The conditional-branch predictor state (bimodal counters, TAGE tables,
//! global history) is warmed *commit-equivalently*: a functional run must
//! match a drained cycle-accurate run of the same instruction stream
//! bit-for-bit. The caches see the architectural stream only, so on
//! wrong-path-heavy code their contents are a subset of the detailed
//! run's; on branch-free code they match exactly. The BTB (updated at
//! writeback in the detailed pipeline, wrong paths included) and the RAS
//! are pinned as intentional divergences: fast-forward leaves the BTB
//! cold, and a short detailed interval re-warms it.

use mssr::isa::{regs::*, Assembler};
use mssr::sim::SimConfig;
use mssr::workloads::{microbench, Suite, Workload};

fn cfg() -> SimConfig {
    SimConfig::default().with_max_cycles(50_000_000)
}

/// A branch-free workload: a fully unrolled sweep over a 32-word window
/// (load, add, store each slot), so the detailed pipeline has no wrong
/// path at all and touches exactly the lines the architectural stream
/// touches.
fn straightline() -> Workload {
    let mut a = Assembler::new();
    a.li(S2, 0x10_0000);
    for i in 0..32i64 {
        a.ld(T0, S2, 8 * i);
        a.addi(T0, T0, i + 1);
        a.st(S2, T0, 8 * i);
    }
    a.halt();
    let mem: Vec<(u64, u64)> = (0..32).map(|i| (0x10_0000 + 8 * i, i)).collect();
    let checks = (0..32)
        .map(|i| mssr::workloads::Check {
            addr: 0x10_0000 + 8 * i,
            expect: 2 * i + 1,
            what: "slot",
        })
        .collect();
    Workload::new("straightline", Suite::Micro, a.assemble().unwrap(), mem, checks)
}

/// Conditional-predictor state after a full functional run equals the
/// state after a full detailed run — on the repo's most mispredict-heavy
/// microbenchmark, so the equality is exercised by thousands of predict /
/// recover / train cycles, not vacuously.
#[test]
fn functional_warmup_matches_detailed_cond_predictor_state() {
    let w = microbench::nested_mispred(300);
    let mut detailed = w.instantiate(cfg());
    detailed.run();
    assert!(detailed.is_halted());

    let mut func = w.instantiate(cfg());
    let executed = func.fast_forward(u64::MAX);
    assert!(func.is_halted(), "fast-forward must run the program to its halt");
    assert_eq!(
        executed,
        detailed.stats().committed_instructions,
        "the functional stream must be the committed stream"
    );
    w.verify(&func).expect("fast-forward must apply the architectural effects");

    let (tage, bimodal) = func.bpred().cond_occupancy();
    assert!(tage > 0 && bimodal > 0, "warming must actually populate the predictor");
    assert_eq!(
        func.bpred().cond_occupancy(),
        detailed.bpred().cond_occupancy(),
        "bpred table occupancy diverged"
    );
    assert_eq!(
        func.bpred().cond_digest(),
        detailed.bpred().cond_digest(),
        "bpred table contents diverged"
    );
}

/// On wrong-path-heavy code the functional cache contents are a subset of
/// the detailed run's (the detailed pipeline additionally issues
/// wrong-path loads); with no evictions at this working-set size, every
/// architecturally touched line must be present in both.
#[test]
fn functional_cache_lines_are_a_subset_of_detailed_on_wrong_path_heavy_code() {
    let w = microbench::nested_mispred(300);
    let mut detailed = w.instantiate(cfg());
    detailed.run();
    let mut func = w.instantiate(cfg());
    func.fast_forward(u64::MAX);

    for (level, f, d) in [
        ("L1", func.hierarchy().l1.resident_lines(), detailed.hierarchy().l1.resident_lines()),
        ("L2", func.hierarchy().l2.resident_lines(), detailed.hierarchy().l2.resident_lines()),
    ] {
        assert!(!f.is_empty(), "{level}: warming must populate the cache");
        for line in &f {
            assert!(
                d.binary_search(line).is_ok(),
                "{level}: functionally warmed line {line:#x} missing from the detailed run"
            );
        }
    }
}

/// On branch-free code there is no wrong path, so the functional and
/// detailed cache tag contents match exactly.
#[test]
fn functional_cache_lines_match_detailed_on_straightline_code() {
    let w = straightline();
    let mut detailed = w.instantiate(cfg());
    detailed.run();
    assert!(detailed.is_halted());
    let mut func = w.instantiate(cfg());
    func.fast_forward(u64::MAX);
    w.verify(&func).expect("fast-forward must apply the architectural effects");

    assert!(!func.hierarchy().l1.resident_lines().is_empty());
    assert_eq!(
        func.hierarchy().l1.resident_lines(),
        detailed.hierarchy().l1.resident_lines(),
        "L1 tags diverged on branch-free code"
    );
    assert_eq!(
        func.hierarchy().l2.resident_lines(),
        detailed.hierarchy().l2.resident_lines(),
        "L2 tags diverged on branch-free code"
    );
    // No conditional branches at all: the predictor stays untouched in
    // both worlds.
    assert_eq!(func.bpred().cond_occupancy(), (0, 0));
    assert_eq!(func.bpred().cond_occupancy(), detailed.bpred().cond_occupancy());
}

/// Pins the intentional BTB divergence. Fast-forward warms the BTB from
/// the *architectural* indirect-jump stream (the `ret`s in the calc
/// helpers), so it is not left cold — but the detailed pipeline updates
/// the BTB at writeback, wrong paths included, so bit-equality with a
/// detailed run is workload-dependent and deliberately NOT part of the
/// fidelity contract. That is why `BranchPredictor` splits `cond_digest`
/// (equality asserted above) from `btb_digest` (equality not asserted);
/// the RAS is excluded for the same reason. On this particular workload
/// the two happen to coincide — the assertion below only pins that both
/// worlds warm the BTB at all.
#[test]
fn fast_forward_warms_the_btb_from_the_architectural_stream() {
    let w = microbench::nested_mispred(300);
    let fresh_btb = w.instantiate(cfg()).bpred().btb_digest();

    let mut func = w.instantiate(cfg());
    func.fast_forward(u64::MAX);
    assert_ne!(
        func.bpred().btb_digest(),
        fresh_btb,
        "architectural returns must warm the BTB during fast-forward"
    );

    let mut detailed = w.instantiate(cfg());
    detailed.run();
    assert_ne!(detailed.bpred().btb_digest(), fresh_btb, "the detailed run warms the BTB too");
}

/// Partial warmup is the `--ffwd N` shape: N functional instructions,
/// then a cycle-accurate remainder. The handoff must keep the stats
/// honest (N in `ffwd_insts`/`skipped_cycles`, never in the committed
/// count) and the run must still pass its architectural checks.
#[test]
fn partial_fast_forward_hands_off_cleanly() {
    const N: u64 = 100;
    let w = microbench::nested_mispred(300);
    let full = w.run(cfg(), None);

    let mut sim = w.instantiate(cfg());
    let executed = sim.fast_forward(N);
    assert_eq!(executed, N);
    assert!(!sim.is_halted());
    let (tage, bimodal) = sim.bpred().cond_occupancy();
    assert!(tage + bimodal > 0, "partial warmup reaches the predictor");
    let stats = w.finish(&mut sim);
    assert_eq!(stats.ffwd_insts, N);
    assert_eq!(stats.skipped_cycles, N);
    assert_eq!(
        stats.committed_instructions + N,
        full.committed_instructions,
        "every instruction is either fast-forwarded or committed, never both"
    );
    assert!(stats.cycles < full.cycles, "the detailed interval shrinks by the warmed prefix");
}
