//! Property-based tests: randomly generated programs (arithmetic, loads,
//! stores, data-dependent forward branches inside a bounded loop) must
//! produce identical architectural state under the baseline and under
//! every squash-reuse engine — squash reuse is an *invisible*
//! optimization, so any observable divergence on any program is a bug.
//!
//! See `oracle.rs` for the stronger differential test against the pure
//! in-order interpreter.

mod common;

use common::prop::for_each_case;
use common::{assemble, random_body, BODY_REGS, DATA, DUMP};
use mssr::core::{MemCheckPolicy, MssrConfig, MultiStreamReuse, RegisterIntegration, RiConfig};
use mssr::isa::Program;
use mssr::sim::{ReuseEngine, SimConfig, Simulator};

/// Runs a program and returns the architectural fingerprint: the register
/// dump plus the data window.
fn fingerprint(program: &Program, engine: Option<Box<dyn ReuseEngine>>) -> Vec<u64> {
    let cfg = SimConfig::default().with_max_cycles(4_000_000);
    let mut sim = match engine {
        Some(e) => Simulator::with_engine(cfg, program.clone(), e),
        None => Simulator::new(cfg, program.clone()),
    };
    sim.run();
    assert!(sim.is_halted(), "generated program must halt");
    let mut out = Vec::new();
    for i in 0..BODY_REGS.len() as u64 {
        out.push(sim.read_mem_u64(DUMP + 8 * i));
    }
    for i in 0..32u64 {
        out.push(sim.read_mem_u64(DATA + 8 * i));
    }
    out
}

#[test]
fn engines_preserve_architectural_state() {
    for_each_case("engines_preserve_architectural_state", 24, 0x6d73_7372_0001, |rng| {
        let body = random_body(rng, 4, 40);
        let iters = rng.range(1, 40) as u8;
        let seed = rng.next_u64();
        let program = assemble(&body, iters, seed);
        let base = fingerprint(&program, None);
        let mssr =
            fingerprint(&program, Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
        assert_eq!(base, mssr, "mssr diverged");
        let bloom = fingerprint(
            &program,
            Some(Box::new(MultiStreamReuse::new(
                MssrConfig::default().with_mem_policy(MemCheckPolicy::BloomFilter),
            ))),
        );
        assert_eq!(base, bloom, "mssr-bloom diverged");
        let ri =
            fingerprint(&program, Some(Box::new(RegisterIntegration::new(RiConfig::default()))));
        assert_eq!(base, ri, "ri diverged");
    });
}

/// The differential check the fast-forward handoff depends on: for random
/// programs, the cycle-accurate pipeline under every engine — baseline,
/// MSSR, RI, and the single-stream DCI ablation — must leave the *same*
/// final architectural register file and memory as the pure in-order
/// interpreter (the same `arch_step` core that functional fast-forward
/// uses to warm a checkpointed run).
#[test]
fn every_engine_matches_the_interpreter_oracle() {
    use mssr::isa::ArchReg;
    use mssr::sim::{Interpreter, StopReason};
    for_each_case("every_engine_matches_the_interpreter_oracle", 16, 0x6d73_7372_0004, |rng| {
        let body = random_body(rng, 4, 32);
        let iters = rng.range(1, 24) as u8;
        let seed = rng.next_u64();
        let program = assemble(&body, iters, seed);

        let mut it = Interpreter::new(program.clone(), 1 << 25);
        assert_eq!(it.run(2_000_000), StopReason::Halted, "oracle must halt");
        let oracle_regs: Vec<u64> = ArchReg::all().map(|a| it.reg(a)).collect();
        let oracle_mem: Vec<u64> = (0..32u64).map(|i| it.read_mem_u64(DATA + 8 * i)).collect();

        let engines: [(&str, Option<Box<dyn ReuseEngine>>); 4] = [
            ("base", None),
            ("mssr", Some(Box::new(MultiStreamReuse::new(MssrConfig::default())))),
            ("ri", Some(Box::new(RegisterIntegration::new(RiConfig::default())))),
            // streams = 1 degenerates MSSR to classic DCI.
            ("dci", Some(Box::new(MultiStreamReuse::new(MssrConfig::default().with_streams(1))))),
        ];
        for (name, engine) in engines {
            let cfg = SimConfig::default().with_max_cycles(4_000_000);
            let mut sim = match engine {
                Some(e) => Simulator::with_engine(cfg, program.clone(), e),
                None => Simulator::new(cfg, program.clone()),
            };
            sim.run();
            assert!(sim.is_halted(), "{name}: pipeline must halt");
            let regs: Vec<u64> = ArchReg::all().map(|a| sim.read_arch_reg(a)).collect();
            assert_eq!(regs, oracle_regs, "{name}: architectural registers diverged");
            let mem: Vec<u64> = (0..32u64).map(|i| sim.read_mem_u64(DATA + 8 * i)).collect();
            assert_eq!(mem, oracle_mem, "{name}: data window diverged");
        }
    });
}

#[test]
fn tiny_configs_preserve_architectural_state() {
    for_each_case("tiny_configs_preserve_architectural_state", 24, 0x6d73_7372_0002, |rng| {
        // Stress the pressure/overflow paths: few physical registers,
        // narrow RGIDs, tiny logs.
        let body = random_body(rng, 4, 24);
        let iters = rng.range(1, 24) as u8;
        let seed = rng.next_u64();
        let program = assemble(&body, iters, seed);
        let base = fingerprint(&program, None);
        let cfg = SimConfig { phys_regs: 80, rgid_bits: 3, rob_size: 32, ..SimConfig::default() }
            .with_max_cycles(4_000_000);
        let mut sim = Simulator::with_engine(
            cfg,
            program.clone(),
            Box::new(MultiStreamReuse::new(
                MssrConfig::default().with_log_entries(8).with_wpb_entries(4).with_timeout(32),
            )),
        );
        sim.run();
        assert!(sim.is_halted());
        let mut got = Vec::new();
        for i in 0..BODY_REGS.len() as u64 {
            got.push(sim.read_mem_u64(DUMP + 8 * i));
        }
        for i in 0..32u64 {
            got.push(sim.read_mem_u64(DATA + 8 * i));
        }
        assert_eq!(base, got, "stressed mssr diverged");
    });
}

#[test]
fn cpi_accounts_conserve_commit_slots() {
    use mssr::sim::Category;
    // The CPI stack's conservation law must hold on arbitrary programs
    // under every engine: each simulated cycle contributes exactly
    // `commit_width` commit slots to the account, and reuse can never be
    // credited more cycles than were blamed on branch squashes.
    for_each_case("cpi_accounts_conserve_commit_slots", 16, 0x6d73_7372_0003, |rng| {
        let body = random_body(rng, 4, 32);
        let iters = rng.range(1, 24) as u8;
        let seed = rng.next_u64();
        let program = assemble(&body, iters, seed);
        let engines: [(&str, Option<Box<dyn ReuseEngine>>); 3] = [
            ("base", None),
            ("mssr", Some(Box::new(MultiStreamReuse::new(MssrConfig::default())))),
            ("ri", Some(Box::new(RegisterIntegration::new(RiConfig::default())))),
        ];
        for (name, engine) in engines {
            let cfg = SimConfig::default().with_max_cycles(4_000_000);
            let width = cfg.commit_width as u64;
            let mut sim = match engine {
                Some(e) => Simulator::with_engine(cfg, program.clone(), e),
                None => Simulator::new(cfg, program.clone()),
            };
            sim.run();
            assert!(sim.is_halted(), "{name}: generated program must halt");
            let account = sim.account();
            assert_eq!(
                account.total_slots(),
                sim.cycle() * width,
                "{name}: slot conservation violated over {} cycles",
                sim.cycle()
            );
            assert!(
                account.credit_reuse_cycles <= account.get(Category::SquashBranch),
                "{name}: reuse credited {} cycles against {} squash-penalty slots",
                account.credit_reuse_cycles,
                account.get(Category::SquashBranch)
            );
        }
    });
}

/// The SimPoint k-means must be a *function* of its input set: permuting
/// the vectors, or running the clustering concurrently under the harness
/// worker pool, must yield bit-identical centroids and inertia — the
/// clusters feed CI byte-identity gates, so "close enough" floats are
/// not enough. Every vector must also land on its nearest centroid.
#[test]
fn kmeans_is_deterministic_and_assigns_nearest_centroids() {
    use mssr_bench::harness::run_cells;
    use mssr_bench::harness::simpoint::{kmeans, project};

    for_each_case("kmeans_is_deterministic", 12, 0x6d73_7372_0004, |rng| {
        // Random sparse BBVs: a handful of phases, each a distinct set of
        // block addresses, plus per-interval count noise.
        let phases = rng.range(1, 4);
        let n = rng.range(6, 40);
        let seed = rng.next_u64();
        let vectors: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let p = i % phases;
                let blocks: Vec<(u64, u64)> = (0..8)
                    .map(|b| (0x1000 * (p as u64 + 1) + 16 * b, 10 + rng.below(50)))
                    .collect();
                let insts: u64 = blocks.iter().map(|&(_, c)| c).sum();
                project(&blocks, insts, 16, seed)
            })
            .collect();
        let k = rng.range(1, phases + 2).min(n);

        let a = kmeans(&vectors, k, seed);

        // Permutation invariance: reverse the input; centroid set, inertia
        // and the permuted assignment must be bit-identical.
        let rev: Vec<Vec<f64>> = vectors.iter().rev().cloned().collect();
        let b = kmeans(&rev, k, seed);
        assert_eq!(a.centroids, b.centroids, "centroids depend on input order");
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits(), "inertia depends on input order");
        for (i, &c) in a.assign.iter().enumerate() {
            assert_eq!(c, b.assign[n - 1 - i], "assignment not permutation-equivariant");
        }

        // Thread-environment independence: the same clustering computed on
        // every worker of a 4-wide pool must match the serial result.
        let pool = run_cells(4, 4, |_| kmeans(&vectors, k, seed));
        for km in &pool {
            assert_eq!(km.centroids, a.centroids, "worker pool changed the centroids");
            assert_eq!(km.assign, a.assign, "worker pool changed the assignment");
        }

        // Nearest-centroid property (ties break toward the lower index,
        // matching the implementation's documented rule).
        for (v, &c) in vectors.iter().zip(&a.assign) {
            let d = |cent: &Vec<f64>| -> f64 {
                v.iter().zip(cent).map(|(x, y)| (x - y) * (x - y)).sum()
            };
            let mine = d(&a.centroids[c]);
            for (j, cent) in a.centroids.iter().enumerate() {
                let dj = d(cent);
                assert!(
                    dj > mine || (dj == mine && j >= c),
                    "vector assigned to centroid {c} (d²={mine}) but {j} is closer (d²={dj})"
                );
            }
        }
    });
}

/// The speculation-cleanup invariant, per predictor: wrong-path work —
/// conditional predictions, RAS pushes, indirect lookups — followed by
/// `recover_cond` + `restore_ras_sp` must leave the predictor in exactly
/// the state an in-order replay of the resolved stream produces. Any
/// digest divergence means wrong-path fetch trained (or shifted history
/// in) state that squash recovery failed to unwind.
#[test]
fn wrong_path_predictions_leave_no_trace_after_recovery() {
    use common::prop::Rng;
    use mssr::isa::Pc;
    use mssr::sim::{BpredKind, BranchPredictor, OracleFeed};

    for_each_case("wrong_path_predictions_leave_no_trace", 8, 0x6d73_7372_0011, |rng| {
        let pool: Vec<Pc> = (0..8).map(|k| Pc::new(0x1000 + 16 * k)).collect();
        let stream: Vec<(Pc, bool)> =
            (0..200).map(|_| (pool[rng.range(0, 8)], rng.next_u64() & 1 == 1)).collect();
        let ex_seed = rng.next_u64();
        for kind in BpredKind::ALL {
            let kcfg = SimConfig::default().with_bpred(kind);
            let cond: Vec<bool> = stream.iter().map(|&(_, t)| t).collect();
            let fresh = || {
                let mut bp = BranchPredictor::new(&kcfg);
                if kind.needs_feed() {
                    bp.install_feed(OracleFeed::from_streams(&cond, &[]));
                }
                bp
            };

            // In-order replay: predict, fold the actual outcome into the
            // history on a miss (as the resolve stage does), train.
            let mut clean = fresh();
            for &(pc, taken) in &stream {
                let (pred, meta) = clean.predict_cond(pc);
                if pred != taken {
                    clean.recover_cond(meta, taken);
                }
                clean.train_cond(pc, taken, meta);
            }

            // Speculative run: every misprediction first fetches a burst
            // of wrong-path work before recovery unwinds it.
            let mut spec = fresh();
            let mut ex = Rng::new(ex_seed);
            for &(pc, taken) in &stream {
                let (pred, meta) = spec.predict_cond(pc);
                if pred != taken {
                    let sp = spec.ras_sp();
                    for _ in 0..ex.range(1, 8) {
                        let wp = pool[ex.range(0, 8)];
                        let _ = spec.predict_cond(wp);
                        spec.ras_push(wp.next());
                        let _ = spec.predict_indirect(wp);
                    }
                    spec.recover_cond(meta, taken);
                    spec.restore_ras_sp(sp);
                }
                spec.train_cond(pc, taken, meta);
            }

            assert_eq!(
                clean.cond_digest(),
                spec.cond_digest(),
                "{kind}: wrong-path state survived recovery"
            );
        }
    });
}

/// The oracle predictor replays the architectural branch stream, so on
/// any generated program the pipeline must take *zero* branch-mispredict
/// flushes — conditional outcomes and indirect targets both come
/// straight from the interpreter feed. This pins the oracle as the
/// reuse-irrelevant asymptote of the `--bpred` axis.
#[test]
fn oracle_predictor_never_mispredicts_on_random_programs() {
    use mssr::sim::BpredKind;

    for_each_case("oracle_never_mispredicts", 12, 0x6d73_7372_0012, |rng| {
        let body = random_body(rng, 4, 32);
        let iters = rng.range(1, 24) as u8;
        let seed = rng.next_u64();
        let program = assemble(&body, iters, seed);
        let cfg = SimConfig::default().with_bpred(BpredKind::Oracle).with_max_cycles(4_000_000);
        let mut sim = Simulator::new(cfg, program);
        let stats = sim.run();
        assert!(sim.is_halted(), "generated program must halt");
        assert!(stats.committed_cond_branches > 0, "program must exercise branches");
        assert_eq!(stats.mispredictions, 0, "oracle took a mispredict flush");
    });
}
