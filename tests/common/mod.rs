//! Shared helpers for the root integration tests: a random-program
//! generator producing bounded-loop programs with arithmetic, loads,
//! stores, and data-dependent forward branches.
#![allow(dead_code)]

pub mod prop;

use mssr::isa::{regs::*, ArchReg, Assembler, Program};
use prop::Rng;

/// Data window base.
pub const DATA: u64 = 0x10_0000;
/// Register-dump base.
pub const DUMP: u64 = 0x8000;
/// Registers the generated body may use.
pub const BODY_REGS: [ArchReg; 8] = [
    ArchReg::T0,
    ArchReg::T1,
    ArchReg::T2,
    ArchReg::T3,
    ArchReg::A2,
    ArchReg::A3,
    ArchReg::A4,
    ArchReg::A5,
];

/// One generated instruction.
#[derive(Clone, Debug)]
pub enum Op {
    /// Three-address ALU operation.
    Alu { kind: u8, dst: usize, a: usize, b: usize },
    /// Register-immediate ALU operation.
    AluImm { kind: u8, dst: usize, a: usize, imm: i16 },
    /// Load from the masked data window.
    Load { dst: usize, addr: usize },
    /// Store to the masked data window.
    Store { data: usize, addr: usize },
    /// Branch over the next `skip` instructions if `reg & 1 == 0`.
    SkipIfEven { reg: usize, skip: usize },
}

/// Draws one random [`Op`], uniformly over the five shapes (mirroring
/// the original proptest strategy).
pub fn random_op(rng: &mut Rng) -> Op {
    match rng.below(5) {
        0 => Op::Alu {
            kind: rng.below(7) as u8,
            dst: rng.range(0, 8),
            a: rng.range(0, 8),
            b: rng.range(0, 8),
        },
        1 => Op::AluImm {
            kind: rng.below(4) as u8,
            dst: rng.range(0, 8),
            a: rng.range(0, 8),
            imm: rng.i16(),
        },
        2 => Op::Load { dst: rng.range(0, 8), addr: rng.range(0, 8) },
        3 => Op::Store { data: rng.range(0, 8), addr: rng.range(0, 8) },
        _ => Op::SkipIfEven { reg: rng.range(0, 8), skip: rng.range(1, 5) },
    }
}

/// Draws a program body of `lo..hi` random operations.
pub fn random_body(rng: &mut Rng, lo: usize, hi: usize) -> Vec<Op> {
    let len = rng.range(lo, hi);
    (0..len).map(|_| random_op(rng)).collect()
}

/// Assembles a bounded loop around the generated body: registers start
/// from a seed, the body runs `iters + 1` times, and all body registers
/// are dumped to memory at the end. Memory addresses are masked into a
/// 32-slot window so every generated program is well-behaved.
pub fn assemble(body: &[Op], iters: u8, seed: u64) -> Program {
    let mut a = Assembler::new();
    a.li(S0, 0);
    a.li(S1, iters as i64 + 1);
    a.li(S2, DATA as i64);
    for (i, &r) in BODY_REGS.iter().enumerate() {
        a.li(r, (seed.wrapping_mul(i as u64 + 1) & 0xffff) as i64);
    }
    a.label("loop");
    let mut skip_until: Option<(usize, String)> = None;
    let mut label_n = 0usize;
    for (idx, op) in body.iter().enumerate() {
        if let Some((until, label)) = &skip_until {
            if idx >= *until {
                a.label(label.clone());
                skip_until = None;
            }
        }
        match *op {
            Op::Alu { kind, dst, a: ra, b: rb } => {
                let (d, x, y) = (BODY_REGS[dst], BODY_REGS[ra], BODY_REGS[rb]);
                match kind {
                    0 => a.add(d, x, y),
                    1 => a.sub(d, x, y),
                    2 => a.xor(d, x, y),
                    3 => a.and(d, x, y),
                    4 => a.or(d, x, y),
                    5 => a.mul(d, x, y),
                    _ => a.slt(d, x, y),
                };
            }
            Op::AluImm { kind, dst, a: ra, imm } => {
                let (d, x) = (BODY_REGS[dst], BODY_REGS[ra]);
                match kind {
                    0 => a.addi(d, x, imm as i64),
                    1 => a.xori(d, x, imm as i64),
                    2 => a.srli(d, x, (imm as i64).rem_euclid(63)),
                    _ => a.slli(d, x, (imm as i64).rem_euclid(8)),
                };
            }
            Op::Load { dst, addr } => {
                a.andi(A6, BODY_REGS[addr], 31);
                a.slli(A6, A6, 3);
                a.add(A6, A6, S2);
                a.ld(BODY_REGS[dst], A6, 0);
            }
            Op::Store { data, addr } => {
                a.andi(A7, BODY_REGS[addr], 31);
                a.slli(A7, A7, 3);
                a.add(A7, A7, S2);
                a.st(A7, BODY_REGS[data], 0);
            }
            Op::SkipIfEven { reg, skip } => {
                if let Some((_, label)) = skip_until.take() {
                    a.label(label);
                }
                let label = format!("skip{label_n}");
                label_n += 1;
                a.andi(A6, BODY_REGS[reg], 1);
                a.beq(A6, ZERO, &label);
                skip_until = Some((idx + 1 + skip, label));
            }
        }
    }
    if let Some((_, label)) = skip_until {
        a.label(label);
    }
    a.add(T0, T0, S0); // mix the loop counter so iterations differ
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "loop");
    for (i, &r) in BODY_REGS.iter().enumerate() {
        a.st(ZERO, r, (DUMP + 8 * i as u64) as i64);
    }
    a.halt();
    a.assemble().expect("generated program assembles")
}
