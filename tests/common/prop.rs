//! A ~100-line, std-only property-test helper: a splitmix64 PRNG and a
//! shrink-free [`for_each_case`] runner. It replaces the `proptest`
//! dependency so the whole workspace builds with zero external crates.
//!
//! Reproduction: every failure message names the property, the case
//! number, and the case seed. Re-run just that case with
//! `MSSR_PROP_SEED=<case seed>` (the runner then executes one case from
//! that exact seed); scale the case count with `MSSR_PROP_CASES`.
//!
//! This file is shared across crates via `#[path]` includes (see
//! `crates/isa/tests/proptests.rs`), so it must stay dependency-free.
#![allow(dead_code)]

/// Stateless splitmix64 finalizer (Steele et al., the same mixer
/// `mssr_workloads::graph::SplitMix64` uses).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A splitmix64 PRNG stream: the test-side random source.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift bounding (Lemire); bias is irrelevant for tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize in the half-open range `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform i16 over the full domain.
    pub fn i16(&mut self) -> i16 {
        self.next_u64() as i16
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Runs `cases` random cases of a property. Each case gets a fresh
/// [`Rng`] whose seed derives deterministically from `root_seed` and the
/// case number, so failures reproduce exactly. No shrinking: the failing
/// case seed is reported instead.
pub fn for_each_case(name: &str, cases: u32, root_seed: u64, prop: impl Fn(&mut Rng)) {
    // MSSR_PROP_SEED pins a single case; MSSR_PROP_CASES scales the run.
    if let Ok(s) = std::env::var("MSSR_PROP_SEED") {
        let seed = parse_seed(&s);
        eprintln!("property `{name}`: running single pinned case, seed {seed:#018x}");
        prop(&mut Rng::new(seed));
        return;
    }
    let cases = std::env::var("MSSR_PROP_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(cases);
    for case in 0..cases {
        let seed = splitmix64(root_seed ^ splitmix64(case as u64));
        let mut rng = Rng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "property `{name}` failed on case {case}/{cases} \
                 (reproduce with MSSR_PROP_SEED={seed:#018x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

fn parse_seed(s: &str) -> u64 {
    let t = s.trim();
    let parsed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("MSSR_PROP_SEED `{s}` is not a u64"))
}
