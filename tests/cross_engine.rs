//! Cross-crate integration: every workload in every suite must produce
//! identical architectural results under every reuse engine. A failure
//! here means a squash-reuse engine corrupted architectural state.

use mssr::core::{MemCheckPolicy, MssrConfig, MultiStreamReuse, RegisterIntegration, RiConfig};
use mssr::sim::{ReuseEngine, SimConfig};
use mssr::workloads::{all_workloads, Scale};

fn engines() -> Vec<(&'static str, Option<Box<dyn ReuseEngine>>)> {
    vec![
        ("baseline", None),
        ("dci", Some(Box::new(MultiStreamReuse::dci()))),
        ("mssr", Some(Box::new(MultiStreamReuse::new(MssrConfig::default())))),
        (
            "mssr-bloom",
            Some(Box::new(MultiStreamReuse::new(
                MssrConfig::default().with_mem_policy(MemCheckPolicy::BloomFilter),
            ))),
        ),
        ("ri", Some(Box::new(RegisterIntegration::new(RiConfig::default())))),
    ]
}

fn cfg() -> SimConfig {
    SimConfig { rgid_bits: 10, ..SimConfig::default() }.with_max_cycles(100_000_000)
}

#[test]
fn all_workloads_correct_under_all_engines() {
    // `Workload::run` panics (with the workload name and failing check)
    // if any architectural result diverges from the Rust reference.
    for w in all_workloads(Scale::Test) {
        for (name, engine) in engines() {
            let stats = w.run(cfg(), engine);
            assert!(
                stats.committed_instructions > 0,
                "{} under {name}: nothing committed",
                w.name()
            );
        }
    }
}

#[test]
fn engines_preserve_final_architectural_state() {
    // Beyond the workloads' own result checks: the *complete* committed
    // architectural state — every architectural register and every
    // memory word the workload initializes or checks — must be
    // bit-identical between the no-reuse baseline and every engine.
    use mssr::isa::ArchReg;
    for w in all_workloads(Scale::Test) {
        let mut base = w.instantiate(cfg());
        base.run();
        assert!(base.is_halted(), "{}: baseline did not halt", w.name());
        let base_regs: Vec<u64> = ArchReg::all().map(|r| base.read_arch_reg(r)).collect();
        let mut addrs: Vec<u64> = w.mem().iter().map(|&(a, _)| a).collect();
        addrs.extend(w.checks().iter().map(|c| c.addr));
        let base_mem: Vec<u64> = addrs.iter().map(|&a| base.read_mem_u64(a)).collect();
        for (name, engine) in engines() {
            let Some(engine) = engine else { continue };
            let mut sim = w.instantiate_with(cfg(), engine);
            sim.run();
            assert!(sim.is_halted(), "{} under {name}: did not halt", w.name());
            for (r, &want) in ArchReg::all().zip(&base_regs) {
                assert_eq!(
                    sim.read_arch_reg(r),
                    want,
                    "{} under {name}: register {r:?} diverged from baseline",
                    w.name()
                );
            }
            for (&a, &want) in addrs.iter().zip(&base_mem) {
                assert_eq!(
                    sim.read_mem_u64(a),
                    want,
                    "{} under {name}: memory at {a:#x} diverged from baseline",
                    w.name()
                );
            }
        }
    }
}

#[test]
fn reuse_happens_somewhere_in_every_suite() {
    use mssr::workloads::{suite_workloads, Suite};
    for suite in [Suite::Micro, Suite::Spec2006, Suite::Spec2017, Suite::Gap] {
        let mut total_grants = 0;
        for w in suite_workloads(suite, Scale::Test) {
            let s = w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
            total_grants += s.engine.reuse_grants;
        }
        assert!(total_grants > 0, "{suite}: no reuse at all is implausible");
    }
}

#[test]
fn engines_never_slow_down_catastrophically() {
    // Squash reuse is opportunistic: it may not help, but a >10% slowdown
    // on any kernel would indicate a structural bug (e.g. livelock or
    // register-pressure starvation).
    for w in all_workloads(Scale::Test) {
        let base = w.run(cfg(), None);
        let s = w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
        let ratio = s.cycles as f64 / base.cycles as f64;
        assert!(
            ratio < 1.10,
            "{}: mssr {:.1}% slower than baseline ({} vs {})",
            w.name(),
            100.0 * (ratio - 1.0),
            s.cycles,
            base.cycles
        );
    }
}
