//! The invariant checker catches seeded corruption.
//!
//! Each test plants one specific kind of microarchitectural damage — a
//! leaked physical-register hold, an out-of-order LSQ entry, a "reused"
//! store — and asserts that the matching checker rule reports it. These
//! are the negative controls for the debug-build sweep in
//! `Simulator::step`: a checker that never fires on clean runs is only
//! trustworthy if it demonstrably fires on dirty ones.

use mssr::core::{MssrConfig, MultiStreamReuse, RiConfig};
use mssr::sim::{
    check_age_order, check_conservation, check_cpi_account, check_lsq, check_reuse_safety,
    check_rgids, Category, CycleAccount, EngineCtx, LqEntry, ReuseEngine, Rgid, Rule, SeqNum,
    SimConfig, SqEntry, SquashEvent,
};
use mssr::workloads::microbench;

fn cfg() -> SimConfig {
    SimConfig::default().with_max_cycles(50_000_000)
}

fn lq(seq: u64) -> LqEntry {
    LqEntry { seq: SeqNum::new(seq), addr: None, issued: false, value: None, reused: false }
}

fn sq(seq: u64) -> SqEntry {
    SqEntry { seq: SeqNum::new(seq), addr: None, data: None }
}

/// An engine that retains the destination register of the first squashed
/// instruction it sees and never releases it — and, crucially, does not
/// report the hold through `reserved_hold_count`. From the checker's
/// point of view this is exactly what a free-list leak in the pipeline
/// would look like.
struct LeakyEngine {
    leaked: bool,
}

impl ReuseEngine for LeakyEngine {
    fn name(&self) -> &'static str {
        "leaky"
    }

    fn on_mispredict_squash(&mut self, ev: &SquashEvent, ctx: &mut EngineCtx<'_>) {
        if self.leaked {
            return;
        }
        if let Some(d) = ev.insts.iter().find_map(|i| i.dst) {
            ctx.free_list.retain(d.preg);
            self.leaked = true;
        }
    }
}

/// A seeded physical-register leak trips the conservation sweep on the
/// very cycle of the squash (the post-squash sweep is unconditional).
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "free-list-conservation")]
fn seeded_free_list_leak_is_detected() {
    let w = microbench::nested_mispred(400);
    w.run(cfg(), Some(Box::new(LeakyEngine { leaked: false })));
}

/// A reordered load-queue push trips the LSQ age-order rule.
#[test]
fn seeded_lsq_reorder_is_detected() {
    let loads = [lq(3), lq(7), lq(5)]; // 5 pushed after 7: out of age order
    let stores = [sq(2), sq(6)];
    let v = check_lsq(loads.iter(), stores.iter()).expect("reorder must be reported");
    assert_eq!(v.rule, Rule::LsqAgeOrder);
    assert!(v.to_string().contains("#5 follows #7"), "got: {v}");

    // The same damage on the store side is also caught.
    let stores = [sq(6), sq(2)];
    let v = check_lsq([lq(3)].iter(), stores.iter()).expect("store reorder must be reported");
    assert_eq!(v.rule, Rule::LsqAgeOrder);

    // And the direct age-order primitive agrees.
    let v =
        check_age_order(Rule::LsqAgeOrder, "load queue", [3, 7, 5].map(SeqNum::new).into_iter())
            .expect("primitive must agree");
    assert_eq!(v.rule, Rule::LsqAgeOrder);
}

/// A store marked as reused trips the store-reuse rule: stores must
/// always execute (reuse would replay a wrong-path memory write).
#[test]
fn seeded_store_reuse_is_detected() {
    // (seq, is_store, is_load, reused, verify_pending)
    let entries = [
        (SeqNum::new(1), false, true, true, true), // reused load, verify pending: fine
        (SeqNum::new(2), true, false, false, false), // normal store: fine
        (SeqNum::new(3), true, false, true, false), // reused store: violation
    ];
    let v = check_reuse_safety(entries.into_iter()).expect("reused store must be reported");
    assert_eq!(v.rule, Rule::StoreReuse);
    assert!(v.to_string().contains("#3"), "got: {v}");
}

/// A verify_pending flag on a non-reused instruction is reported.
#[test]
fn seeded_stray_verify_pending_is_detected() {
    let entries = [(SeqNum::new(4), false, true, false, true)];
    let v = check_reuse_safety(entries.into_iter()).expect("stray verify must be reported");
    assert_eq!(v.rule, Rule::ReusedLoadVerify);
}

/// An RGID beyond its allocator counter (or allocated out of order)
/// trips the monotonicity rule; forwarded (reused) generations are
/// exempt from ordering but not from the counter bound.
#[test]
fn seeded_rgid_corruption_is_detected() {
    let mut counters = [10u16; 64];
    // Beyond the counter: arch r5 carries generation 11 with counter 10.
    let v = check_rgids(&counters, [(5usize, Rgid::new(11), false)].into_iter())
        .expect("overrun must be reported");
    assert_eq!(v.rule, Rule::RgidMonotone);

    // Non-monotone allocation on one architectural register.
    let v = check_rgids(
        &counters,
        [(5usize, Rgid::new(4), false), (5, Rgid::new(4), false)].into_iter(),
    )
    .expect("repeat must be reported");
    assert_eq!(v.rule, Rule::RgidMonotone);

    // A forwarded (reused) old generation between them is legal.
    counters[5] = 10;
    assert!(check_rgids(
        &counters,
        [(5usize, Rgid::new(4), false), (5, Rgid::new(2), true), (5, Rgid::new(7), false)]
            .into_iter(),
    )
    .is_none());

    // Nulled generations (post-reset) are never compared.
    assert!(check_rgids(&counters, [(5usize, Rgid::NULL, false)].into_iter()).is_none());
}

/// The conservation primitive distinguishes leaks from losses.
#[test]
fn seeded_conservation_imbalance_is_detected() {
    let v = check_conservation(10, 7, 2).expect("leak must be reported");
    assert_eq!(v.rule, Rule::FreeListConservation);
    assert!(v.to_string().contains("leaked"), "got: {v}");
    let v = check_conservation(8, 7, 2).expect("loss must be reported");
    assert!(v.to_string().contains("lost"), "got: {v}");
    assert!(check_conservation(9, 7, 2).is_none());
}

/// The CPI-conservation primitive distinguishes invented slots from
/// lost ones: every cycle must contribute exactly `commit_width` commit
/// slots to the account, no more, no less.
#[test]
fn seeded_cpi_imbalance_is_detected() {
    let mut a = CycleAccount::default();
    // One cycle at width 4: 2 committed + 2 idle slots blamed on squash.
    a.accrue(2, Category::SquashBranch, 4);
    assert!(check_cpi_account(&a, 1, 4).is_none(), "a balanced account passes");

    // The same account against two cycles is short 4 slots.
    let v = check_cpi_account(&a, 2, 4).expect("lost slots must be reported");
    assert_eq!(v.rule, Rule::CpiConservation);
    assert!(v.to_string().contains("lost"), "got: {v}");

    // Against zero cycles it has invented all 4.
    let v = check_cpi_account(&a, 0, 4).expect("invented slots must be reported");
    assert_eq!(v.rule, Rule::CpiConservation);
    assert!(v.to_string().contains("invented"), "got: {v}");

    // Reuse credit is clamped to the squash-penalty slots by
    // construction: crediting far more than the 2 squash slots sticks at
    // the cap and stays legal.
    a.credit_reuse(100);
    assert_eq!(a.credit_reuse_cycles, a.get(Category::SquashBranch));
    assert!(check_cpi_account(&a, 1, 4).is_none());
}

/// A seeded account corruption (one extra base slot) trips the
/// CPI-conservation rule in the debug sweep while the simulation runs.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "cpi-conservation")]
fn seeded_cpi_account_corruption_is_detected() {
    let w = microbench::nested_mispred(400);
    let mut sim = w.instantiate(cfg());
    sim.corrupt_account_for_test();
    sim.run();
}

/// Negative controls for the checkpoint envelope: a truncated file, a
/// wrong-version header, and a flipped payload byte are each rejected
/// with a *distinct* error — and a rejected envelope never mutates the
/// simulator (no silent partial restore).
#[test]
fn corrupted_checkpoints_are_rejected_with_distinct_errors() {
    use mssr::sim::CkptError;
    let w = microbench::nested_mispred(100);
    let mut sim = w.instantiate(cfg());
    sim.run_until_insts(200);
    assert!(!sim.is_halted(), "the checkpoint must be taken mid-run");
    let good = sim.snapshot();

    // Control for the controls: the pristine bytes restore cleanly.
    w.instantiate(cfg()).restore(&good).expect("pristine checkpoint restores");

    // Truncation anywhere — mid-header or mid-payload — is caught by the
    // length check before anything is parsed.
    for keep in [4, good.len() / 2, good.len() - 9] {
        let err = w.instantiate(cfg()).restore(&good[..keep]).unwrap_err();
        assert!(matches!(err, CkptError::Truncated { .. }), "keep={keep}: got {err}");
    }

    // A corrupted magic is not mistaken for a version or checksum error.
    let mut bad = good.clone();
    bad[0] ^= 0x20;
    let err = w.instantiate(cfg()).restore(&bad).unwrap_err();
    assert!(matches!(err, CkptError::BadMagic), "got: {err}");

    // A future (or mangled) version number in the header is refused
    // outright — forward compatibility is explicit, not best-effort.
    let mut bad = good.clone();
    bad[8] ^= 0xff; // first byte of the little-endian version field
    let err = w.instantiate(cfg()).restore(&bad).unwrap_err();
    assert!(matches!(err, CkptError::BadVersion { .. }), "got: {err}");

    // A single flipped payload byte trips the checksum.
    let mut bad = good.clone();
    let mid = good.len() / 2;
    bad[mid] ^= 0x01;
    let err = w.instantiate(cfg()).restore(&bad).unwrap_err();
    assert!(matches!(err, CkptError::BadChecksum { .. }), "got: {err}");

    // Identity guards fire before any state is touched: wrong config,
    // wrong program, wrong engine each get their own error.
    let other_cfg = SimConfig { rob_size: cfg().rob_size / 2, ..cfg() };
    let err = w.instantiate(other_cfg).restore(&good).unwrap_err();
    assert!(matches!(err, CkptError::ConfigMismatch), "got: {err}");
    let err = microbench::linear_mispred(100).instantiate(cfg()).restore(&good).unwrap_err();
    assert!(matches!(err, CkptError::ProgramMismatch), "got: {err}");
    let mut engined =
        w.instantiate_with(cfg(), Box::new(MultiStreamReuse::new(MssrConfig::default())));
    let err = engined.restore(&good).unwrap_err();
    assert!(matches!(err, CkptError::EngineMismatch { .. }), "got: {err}");

    // No silent partial restore: every rejection above left its target
    // pristine, so running one to completion still passes the checks.
    let mut survivor = w.instantiate(cfg());
    let err = survivor.restore(&good[..good.len() - 1]).unwrap_err();
    assert!(matches!(err, CkptError::Truncated { .. }));
    survivor.run();
    assert!(survivor.is_halted());
    w.verify(&survivor).expect("a rejected restore must not corrupt the simulator");
}

/// Clean runs under both paper engines stay violation-free — in debug
/// builds the per-cycle sweep has also been asserting this throughout.
#[test]
fn engines_run_clean_under_the_checker() {
    use mssr::core::RegisterIntegration;
    let w = microbench::nested_mispred(300);
    for engine in [
        None,
        Some(Box::new(MultiStreamReuse::new(MssrConfig::default())) as Box<dyn ReuseEngine>),
        Some(Box::new(RegisterIntegration::new(RiConfig::default()))),
    ] {
        let mut sim = match engine {
            Some(e) => w.instantiate_with(cfg(), e),
            None => w.instantiate(cfg()),
        };
        sim.run();
        w.verify(&sim).expect("architectural results hold");
        let violations = sim.invariant_violations();
        assert!(violations.is_empty(), "unexpected violations: {violations:?}");
    }
}

/// A clean BBV collection satisfies the conservation rule: per-interval
/// block counts sum exactly to the interval's instruction count, and the
/// intervals together account for every instruction the functional pass
/// executed.
#[test]
fn bbv_collection_conserves_instruction_counts() {
    use mssr::sim::{check_bbv, BbvCollector};
    let w = microbench::nested_mispred(200);
    let mut sim = w.instantiate(cfg());
    let mut bbv = BbvCollector::new(512);
    let executed = sim.fast_forward_collect(12_000, &mut bbv);
    let trace = bbv.try_finish(executed).expect("clean collection must conserve counts");
    assert!(trace.intervals.len() >= 2, "expected several 512-inst intervals");
    assert_eq!(trace.total_insts, executed);
    assert!(check_bbv(&trace.intervals, executed).is_none());
}

/// Negative control for the `bbv-conservation` rule: silently dropping a
/// block count from one interval must make `finish` panic with the rule
/// name. A conservation check that cannot detect a seeded leak would let
/// a real collection bug skew every downstream clustering unnoticed.
#[test]
#[should_panic(expected = "bbv-conservation")]
fn bbv_conservation_catches_seeded_corruption() {
    use mssr::sim::BbvCollector;
    let w = microbench::nested_mispred(200);
    let mut sim = w.instantiate(cfg());
    let mut bbv = BbvCollector::new(512);
    let executed = sim.fast_forward_collect(12_000, &mut bbv);
    bbv.corrupt_for_test();
    let _ = bbv.finish(executed);
}

/// Per-predictor checkpoint round-trip: a mid-run snapshot restored into
/// a fresh simulator re-snapshots byte-identically (the codec is a pure
/// function of machine state, feed included), and the restored run
/// finishes exactly like the uninterrupted one. A checkpoint taken under
/// one `--bpred` kind is refused by every other kind with
/// `CkptError::ConfigMismatch` — the predictor is part of the config
/// identity, so the guard fires before any predictor codec runs.
#[test]
fn predictor_checkpoints_round_trip_and_refuse_cross_kind_restores() {
    use mssr::sim::{BpredKind, CkptError};
    let w = microbench::nested_mispred(100);
    for kind in BpredKind::ALL {
        let kcfg = cfg().with_bpred(kind);
        let mut sim = w.instantiate(kcfg.clone());
        sim.run_until_insts(200);
        assert!(!sim.is_halted(), "{kind}: the checkpoint must be taken mid-run");
        let snap = sim.snapshot();

        let mut fresh = w.instantiate(kcfg.clone());
        fresh.restore(&snap).expect("same-kind restore");
        assert!(fresh.snapshot() == snap, "{kind}: restore/re-snapshot is not byte-identical");

        let a = sim.run();
        let b = fresh.run();
        assert!(sim.is_halted() && fresh.is_halted(), "{kind}: both runs must halt");
        assert_eq!(a.cycles, b.cycles, "{kind}: restored run diverged in cycles");
        assert_eq!(a.mispredictions, b.mispredictions, "{kind}: mispredict count diverged");
        w.verify(&fresh).expect("restored run must verify");

        for other in BpredKind::ALL {
            if other == kind {
                continue;
            }
            let err = w.instantiate(cfg().with_bpred(other)).restore(&snap).unwrap_err();
            assert!(
                matches!(err, CkptError::ConfigMismatch),
                "{kind}->{other}: got {err}, want ConfigMismatch"
            );
        }
    }
}
