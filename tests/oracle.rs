//! Differential testing against an independent oracle: the pure in-order
//! [`Interpreter`] and the out-of-order pipeline (with and without reuse
//! engines) must agree bit-for-bit on the final architectural state of
//! randomly generated programs.
//!
//! Unlike `properties.rs` (which compares engines against the baseline
//! pipeline), this catches bugs in the *pipeline itself* — speculation,
//! forwarding, replay, and recovery must all be architecturally
//! invisible.

mod common;

use common::prop::for_each_case;
use common::{assemble, random_body, BODY_REGS, DATA, DUMP};
use mssr::core::{MssrConfig, MultiStreamReuse};
use mssr::sim::{Interpreter, SimConfig, Simulator, StopReason};

fn interp_fingerprint(program: &mssr::isa::Program) -> Vec<u64> {
    let mut it = Interpreter::new(program.clone(), 1 << 25);
    assert_eq!(it.run(2_000_000), StopReason::Halted, "oracle must halt");
    let mut out = Vec::new();
    for i in 0..BODY_REGS.len() as u64 {
        out.push(it.read_mem_u64(DUMP + 8 * i));
    }
    for i in 0..32u64 {
        out.push(it.read_mem_u64(DATA + 8 * i));
    }
    out
}

fn pipeline_fingerprint(program: &mssr::isa::Program, reuse: bool) -> Vec<u64> {
    let cfg = SimConfig::default().with_max_cycles(4_000_000);
    let mut sim = if reuse {
        Simulator::with_engine(
            cfg,
            program.clone(),
            Box::new(MultiStreamReuse::new(MssrConfig::default())),
        )
    } else {
        Simulator::new(cfg, program.clone())
    };
    sim.run();
    assert!(sim.is_halted(), "pipeline must halt");
    let mut out = Vec::new();
    for i in 0..BODY_REGS.len() as u64 {
        out.push(sim.read_mem_u64(DUMP + 8 * i));
    }
    for i in 0..32u64 {
        out.push(sim.read_mem_u64(DATA + 8 * i));
    }
    out
}

#[test]
fn pipeline_matches_interpreter() {
    for_each_case("pipeline_matches_interpreter", 32, 0x6d73_7372_0003, |rng| {
        let body = random_body(rng, 4, 40);
        let iters = rng.range(1, 40) as u8;
        let seed = rng.next_u64();
        let program = assemble(&body, iters, seed);
        let oracle = interp_fingerprint(&program);
        assert_eq!(
            oracle,
            pipeline_fingerprint(&program, false),
            "baseline pipeline diverged from the oracle"
        );
        assert_eq!(
            oracle,
            pipeline_fingerprint(&program, true),
            "mssr pipeline diverged from the oracle"
        );
    });
}

#[test]
fn interpreter_and_pipeline_agree_on_every_workload_checksum() {
    // The workload references are Rust mirrors; the interpreter is a
    // third, ISA-level implementation. Running each Test-scale workload
    // through the interpreter re-validates every kernel's assembly
    // against its checks without the pipeline in the loop.
    use mssr::workloads::{all_workloads, Scale};
    for w in all_workloads(Scale::Test) {
        let mut it = Interpreter::new(w.program().clone(), 1 << 25);
        for &(addr, v) in w.mem() {
            it.write_mem_u64(addr, v);
        }
        assert_eq!(it.run(100_000_000), StopReason::Halted, "{} halts", w.name());
        for c in w.checks() {
            assert_eq!(
                it.read_mem_u64(c.addr),
                c.expect,
                "{}: check `{}` under the interpreter",
                w.name(),
                c.what
            );
        }
    }
}
