//! End-to-end acceptance for `--simpoint` sampling: the whole-program
//! CPI reconstructed from weighted representative intervals must track
//! the full detailed run within the documented error bound, while
//! simulating only a small fraction of the instructions in detail — and
//! the entire sampled trajectory must be byte-identical across repeated
//! runs and across worker counts, because clustering feeds CI gates.
//!
//! The `(2000, 3)` configuration below is the one documented in
//! `EXPERIMENTS.md` ("Sampled runs with SimPoint"): 2000-instruction
//! intervals and BIC-selected k ≤ 3. On the table1 grid it reconstructs
//! every cell's IPC within 3% while keeping the detailed share (warmup
//! included) under 20% per workload.

use mssr::workloads::Scale;
use mssr_bench::harness::report::{simpoint_errors, Trajectory};
use mssr_bench::harness::{run_named, HarnessOpts};

/// table1 at test scale: 2 workloads × 7 engine cells.
const TABLE1_CELLS: usize = 14;

fn full_opts() -> HarnessOpts {
    let mut o = HarnessOpts::new(Scale::Test);
    o.json = true;
    o.jobs = 1;
    o
}

fn sampled_opts() -> HarnessOpts {
    let mut o = full_opts();
    o.simpoint = Some((2000, 3));
    o
}

#[test]
fn reconstruction_tracks_the_full_run_within_three_percent() {
    let full =
        Trajectory::parse(&run_named(&["table1"], &full_opts())).expect("full trajectory parses");
    let sampled = Trajectory::parse(&run_named(&["table1"], &sampled_opts()))
        .expect("sampled trajectory parses");
    assert_eq!(sampled.cells.len(), TABLE1_CELLS);

    let errs = simpoint_errors(&sampled, &full);
    assert_eq!(
        errs.len(),
        TABLE1_CELLS,
        "every table1 cell must have a sampled/golden pair to validate"
    );
    for e in &errs {
        assert!(e.err_milli <= 30, "reconstruction error above 3%: {e}");
    }
}

#[test]
fn sampling_simulates_at_most_a_fifth_of_the_instructions_in_detail() {
    let sampled = Trajectory::parse(&run_named(&["table1"], &sampled_opts()))
        .expect("sampled trajectory parses");
    assert_eq!(sampled.cells.len(), TABLE1_CELLS);
    for c in &sampled.cells {
        let sp = c.simpoint.as_ref().unwrap_or_else(|| {
            panic!("{}/{}: --simpoint must sample every cell", c.workload, c.engine)
        });
        // Detailed budget counts the warmup prefixes too: everything that
        // ran through the cycle-accurate pipeline, not just the measured
        // representative intervals.
        assert!(
            5 * sp.detailed_insts() <= sp.total_insts,
            "{}/{}: detailed {} of {} insts exceeds the 20% budget",
            c.workload,
            c.engine,
            sp.detailed_insts(),
            sp.total_insts
        );
        assert!(sp.k >= 1 && sp.reps.len() == sp.k as usize);
    }
}

#[test]
fn sampled_trajectories_are_byte_identical_across_runs_and_jobs() {
    let a = run_named(&["table1"], &sampled_opts());
    let b = run_named(&["table1"], &sampled_opts());
    assert_eq!(a, b, "two sampled runs with the same root seed must be bit-identical");

    let mut par = sampled_opts();
    par.jobs = 4;
    let c = run_named(&["table1"], &par);
    assert_eq!(a, c, "--jobs must never change sampled output");

    assert!(a.contains("\"type\":\"simpoint\""), "simpoint records must be emitted");
}
