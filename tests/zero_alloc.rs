//! Steady-state zero-allocation regression for the pipeline hot loop.
//!
//! The stage refactor's contract is that `Simulator::step` performs no
//! heap allocation once warmed up: every per-cycle temporary lives in a
//! reusable `Scratch` buffer that is cleared, not dropped. This test
//! wraps the global allocator in a counting shim, warms each engine
//! until all lazily-grown buffers (frontend queue, stream logs, scratch
//! bitmaps, RI scan pools) have reached steady state, then measures a
//! 10k-cycle window and asserts the allocation counter did not move.
//!
//! All four engines share one `#[test]` because the counter is global:
//! parallel test threads would attribute each other's allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mssr::core::{MssrConfig, MultiStreamReuse, RegisterIntegration, RiConfig};
use mssr::sim::{ReuseEngine, SimConfig};
use mssr::workloads::microbench;

/// Counts every `alloc`/`realloc`; `dealloc` is free (dropping a
/// warmup-era buffer during the window is harmless, growing one is not).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Long enough for the branch predictor, caches, stream logs, and every
/// capacity-doubling buffer to settle — including the debug-build
/// invariant sweep's scratch bitmaps.
const WARMUP_CYCLES: u64 = 40_000;
const MEASURE_CYCLES: u64 = 10_000;

#[test]
fn hot_loop_is_allocation_free_after_warmup() {
    type EngineCase = (&'static str, Option<Box<dyn ReuseEngine>>);
    let cases: Vec<EngineCase> = vec![
        ("no-reuse", None),
        ("mssr", Some(Box::new(MultiStreamReuse::new(MssrConfig::default())))),
        ("dci", Some(Box::new(MultiStreamReuse::new(MssrConfig::default().with_streams(1))))),
        ("ri", Some(Box::new(RegisterIntegration::new(RiConfig::default())))),
    ];
    // Enough iterations that the measurement window never reaches halt;
    // nested-mispred exercises mispredicts, squashes, loads and stores.
    let w = microbench::nested_mispred(10_000_000);
    let cfg = SimConfig::default().with_max_cycles(u64::MAX);

    for (name, engine) in cases {
        let mut sim = match engine {
            Some(e) => w.instantiate_with(cfg.clone(), e),
            None => w.instantiate(cfg.clone()),
        };
        sim.run_cycles(WARMUP_CYCLES);
        assert!(!sim.is_halted(), "{name}: workload too short for warmup");

        let before = ALLOCS.load(Ordering::SeqCst);
        sim.run_cycles(MEASURE_CYCLES);
        let delta = ALLOCS.load(Ordering::SeqCst) - before;

        assert!(!sim.is_halted(), "{name}: workload too short for measurement");
        assert_eq!(
            delta, 0,
            "{name}: {delta} heap allocations in {MEASURE_CYCLES} steady-state cycles"
        );
    }
}
