//! # mssr-isa
//!
//! A small RISC-style instruction set used by the `mssr` simulator stack.
//!
//! The ISA is deliberately RISC-V-flavoured: 64 architectural integer
//! registers (with `x0` hardwired to zero), three-address ALU operations,
//! 64-bit loads and stores with register+immediate addressing, conditional
//! branches, and direct/indirect jumps. Instructions occupy 4 bytes of
//! program-counter space so that the simulator's 32-byte fetch blocks hold
//! eight instructions, matching the configuration in the paper (Table 3).
//!
//! The crate provides:
//!
//! * [`ArchReg`] — architectural register names,
//! * [`Opcode`] and [`Inst`] — the instruction format,
//! * [`Program`] — an assembled instruction memory image,
//! * [`Assembler`] — a label-based program builder used by all workloads.
//!
//! # Example
//!
//! ```
//! use mssr_isa::{regs::*, Assembler};
//!
//! # fn main() -> Result<(), mssr_isa::AsmError> {
//! let mut a = Assembler::new();
//! a.li(T0, 0);
//! a.li(T1, 10);
//! a.label("loop");
//! a.addi(T0, T0, 1);
//! a.blt(T0, T1, "loop");
//! a.halt();
//! let program = a.assemble()?;
//! assert_eq!(program.len(), 5);
//! # Ok(())
//! # }
//! ```

mod asm;
mod inst;
mod opcode;
mod program;
mod reg;

pub use asm::{AsmError, Assembler};
pub use inst::Inst;
pub use opcode::Opcode;
pub use program::{Pc, Program};
pub use reg::ArchReg;

/// Free-standing register constants for glob import in hand-written kernels.
///
/// ```
/// use mssr_isa::regs::*;
/// assert_eq!(A0.index(), 10);
/// ```
pub mod regs {
    use crate::ArchReg;

    macro_rules! reexport {
        ($($name:ident),* $(,)?) => {
            $(
                #[doc = concat!("Alias for [`ArchReg::", stringify!($name), "`].")]
                pub const $name: ArchReg = ArchReg::$name;
            )*
        };
    }

    reexport!(
        ZERO, RA, SP, GP, TP, T0, T1, T2, S0, S1, A0, A1, A2, A3, A4, A5, A6, A7, S2, S3, S4, S5,
        S6, S7, S8, S9, S10, S11, T3, T4, T5, T6
    );
}

/// Number of architectural registers in the ISA (matches the paper's
/// storage model, Table 2, which assumes 64 architectural registers).
pub const NUM_ARCH_REGS: usize = 64;

/// Size of one instruction in bytes of PC space.
pub const INST_BYTES: u64 = 4;
