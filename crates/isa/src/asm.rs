//! A label-based assembler for building programs in Rust code.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{ArchReg, Inst, Opcode, Pc, Program};

/// Default base PC for assembled programs.
pub const DEFAULT_BASE: u64 = 0x1000;

/// Error produced by [`Assembler::assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl Error for AsmError {}

/// A program builder with named labels.
///
/// Emit instructions with the mnemonic-named methods (`add`, `ld`, `beq`,
/// …), place labels with [`Assembler::label`], and call
/// [`Assembler::assemble`] to resolve label references into a [`Program`].
/// Labels may be referenced before they are defined (forward branches).
///
/// # Example
///
/// ```
/// use mssr_isa::{regs::*, Assembler};
///
/// # fn main() -> Result<(), mssr_isa::AsmError> {
/// let mut a = Assembler::new();
/// a.li(A0, 0);
/// a.li(A1, 100);
/// a.label("loop");
/// a.addi(A0, A0, 3);
/// a.blt(A0, A1, "loop");
/// a.halt();
/// let p = a.assemble()?;
/// assert!(p.fetch(p.base()).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    base: Pc,
    insts: Vec<Inst>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
    duplicate: Option<String>,
}

impl Assembler {
    /// Creates an assembler with the default base PC (`0x1000`).
    pub fn new() -> Assembler {
        Assembler::with_base(Pc::new(DEFAULT_BASE))
    }

    /// Creates an assembler whose first instruction lands at `base`.
    pub fn with_base(base: Pc) -> Assembler {
        Assembler {
            base,
            insts: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            duplicate: None,
        }
    }

    /// The PC the next emitted instruction will occupy.
    pub fn here(&self) -> Pc {
        self.base.step(self.insts.len() as u64)
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Defines `name` at the current position.
    ///
    /// Duplicate definitions are reported by [`Assembler::assemble`].
    pub fn label(&mut self, name: impl Into<String>) -> &mut Assembler {
        let name = name.into();
        if self.labels.insert(name.clone(), self.insts.len()).is_some() && self.duplicate.is_none()
        {
            self.duplicate = Some(name);
        }
        self
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Assembler {
        self.insts.push(inst);
        self
    }

    /// Resolves all label references and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if any branch references an
    /// unknown label, and [`AsmError::DuplicateLabel`] if a label was
    /// defined more than once.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        if let Some(l) = self.duplicate.take() {
            return Err(AsmError::DuplicateLabel(l));
        }
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let at =
                *self.labels.get(&label).ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            let target = self.base.step(at as u64);
            self.insts[idx].set_target(target);
        }
        Ok(Program::new(self.base, self.insts))
    }

    fn emit_branch(&mut self, op: Opcode, src1: ArchReg, src2: ArchReg, label: &str) {
        let idx = self.insts.len();
        // Placeholder target; patched during assemble().
        self.insts.push(Inst::branch(op, src1, src2, Pc::new(0)));
        self.fixups.push((idx, label.to_string()));
    }
}

macro_rules! alu_rr_methods {
    ($(($method:ident, $op:ident, $doc:literal)),* $(,)?) => {
        impl Assembler {
            $(
                #[doc = $doc]
                pub fn $method(&mut self, dst: ArchReg, src1: ArchReg, src2: ArchReg) -> &mut Assembler {
                    self.emit(Inst::alu_rr(Opcode::$op, dst, src1, src2))
                }
            )*
        }
    };
}

alu_rr_methods! {
    (add,  Add,  "Emits `dst = src1 + src2`."),
    (sub,  Sub,  "Emits `dst = src1 - src2`."),
    (and,  And,  "Emits `dst = src1 & src2`."),
    (or,   Or,   "Emits `dst = src1 | src2`."),
    (xor,  Xor,  "Emits `dst = src1 ^ src2`."),
    (sll,  Sll,  "Emits `dst = src1 << src2`."),
    (srl,  Srl,  "Emits a logical right shift."),
    (sra,  Sra,  "Emits an arithmetic right shift."),
    (mul,  Mul,  "Emits `dst = src1 * src2`."),
    (div,  Div,  "Emits signed division."),
    (rem,  Rem,  "Emits signed remainder."),
    (slt,  Slt,  "Emits signed set-less-than."),
    (sltu, Sltu, "Emits unsigned set-less-than."),
}

macro_rules! alu_ri_methods {
    ($(($method:ident, $op:ident, $doc:literal)),* $(,)?) => {
        impl Assembler {
            $(
                #[doc = $doc]
                pub fn $method(&mut self, dst: ArchReg, src1: ArchReg, imm: i64) -> &mut Assembler {
                    self.emit(Inst::alu_ri(Opcode::$op, dst, src1, imm))
                }
            )*
        }
    };
}

alu_ri_methods! {
    (addi, Addi, "Emits `dst = src1 + imm`."),
    (andi, Andi, "Emits `dst = src1 & imm`."),
    (ori,  Ori,  "Emits `dst = src1 | imm`."),
    (xori, Xori, "Emits `dst = src1 ^ imm`."),
    (slli, Slli, "Emits `dst = src1 << imm`."),
    (srli, Srli, "Emits a logical right shift by an immediate."),
    (srai, Srai, "Emits an arithmetic right shift by an immediate."),
    (slti, Slti, "Emits signed set-less-than-immediate."),
}

macro_rules! branch_methods {
    ($(($method:ident, $op:ident, $doc:literal)),* $(,)?) => {
        impl Assembler {
            $(
                #[doc = $doc]
                pub fn $method(&mut self, src1: ArchReg, src2: ArchReg, label: &str) -> &mut Assembler {
                    self.emit_branch(Opcode::$op, src1, src2, label);
                    self
                }
            )*
        }
    };
}

branch_methods! {
    (beq,  Beq,  "Emits a branch to `label` if `src1 == src2`."),
    (bne,  Bne,  "Emits a branch to `label` if `src1 != src2`."),
    (blt,  Blt,  "Emits a branch to `label` if `src1 < src2` (signed)."),
    (bge,  Bge,  "Emits a branch to `label` if `src1 >= src2` (signed)."),
    (bltu, Bltu, "Emits a branch to `label` if `src1 < src2` (unsigned)."),
    (bgeu, Bgeu, "Emits a branch to `label` if `src1 >= src2` (unsigned)."),
}

impl Assembler {
    /// Emits a load-immediate: `dst = imm` (full 64-bit).
    pub fn li(&mut self, dst: ArchReg, imm: i64) -> &mut Assembler {
        self.emit(Inst::li(dst, imm))
    }

    /// Emits a register move (`dst = src`), encoded as `addi dst, src, 0`.
    pub fn mv(&mut self, dst: ArchReg, src: ArchReg) -> &mut Assembler {
        self.addi(dst, src, 0)
    }

    /// Emits a 64-bit load: `dst = mem[base + imm]`.
    pub fn ld(&mut self, dst: ArchReg, base: ArchReg, imm: i64) -> &mut Assembler {
        self.emit(Inst::ld(dst, base, imm))
    }

    /// Emits a 64-bit store: `mem[base + imm] = data`.
    pub fn st(&mut self, base: ArchReg, data: ArchReg, imm: i64) -> &mut Assembler {
        self.emit(Inst::st(base, data, imm))
    }

    /// Emits an unconditional jump to `label` (a `jal x0, label`).
    pub fn j(&mut self, label: &str) -> &mut Assembler {
        let idx = self.insts.len();
        self.insts.push(Inst::jal(ArchReg::ZERO, Pc::new(0)));
        self.fixups.push((idx, label.to_string()));
        self
    }

    /// Emits a call: `jal ra, label`.
    pub fn call(&mut self, label: &str) -> &mut Assembler {
        let idx = self.insts.len();
        self.insts.push(Inst::jal(ArchReg::RA, Pc::new(0)));
        self.fixups.push((idx, label.to_string()));
        self
    }

    /// Emits a return: `jalr x0, 0(ra)`.
    pub fn ret(&mut self) -> &mut Assembler {
        self.emit(Inst::jalr(ArchReg::ZERO, ArchReg::RA, 0))
    }

    /// Emits an indirect jump-and-link: `jalr dst, imm(base)`.
    pub fn jalr(&mut self, dst: ArchReg, base: ArchReg, imm: i64) -> &mut Assembler {
        self.emit(Inst::jalr(dst, base, imm))
    }

    /// Emits a no-op.
    pub fn nop(&mut self) -> &mut Assembler {
        self.emit(Inst::simple(Opcode::Nop))
    }

    /// Emits a halt; retiring it ends simulation.
    pub fn halt(&mut self) -> &mut Assembler {
        self.emit(Inst::simple(Opcode::Halt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        a.li(ArchReg::T0, 0);
        a.label("top");
        a.beq(ArchReg::T0, ArchReg::ZERO, "bottom"); // forward
        a.addi(ArchReg::T0, ArchReg::T0, 1);
        a.j("top"); // backward
        a.label("bottom");
        a.halt();
        let p = a.assemble().unwrap();
        // beq at index 1 targets "bottom" at index 4.
        let beq = p.fetch(Pc::new(DEFAULT_BASE + 4)).unwrap();
        assert_eq!(beq.target(), Some(Pc::new(DEFAULT_BASE + 16)));
        // j at index 3 targets "top" at index 1.
        let j = p.fetch(Pc::new(DEFAULT_BASE + 12)).unwrap();
        assert_eq!(j.target(), Some(Pc::new(DEFAULT_BASE + 4)));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new();
        a.j("nowhere");
        assert_eq!(a.assemble().unwrap_err(), AsmError::UndefinedLabel("nowhere".to_string()));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Assembler::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(a.assemble().unwrap_err(), AsmError::DuplicateLabel("x".to_string()));
    }

    #[test]
    fn here_tracks_emission() {
        let mut a = Assembler::with_base(Pc::new(0x2000));
        assert_eq!(a.here(), Pc::new(0x2000));
        a.nop();
        a.nop();
        assert_eq!(a.here(), Pc::new(0x2008));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn mv_is_addi_zero() {
        let mut a = Assembler::new();
        a.mv(ArchReg::A0, ArchReg::A1);
        a.halt();
        let p = a.assemble().unwrap();
        let i = p.fetch(p.base()).unwrap();
        assert_eq!(i.op(), Opcode::Addi);
        assert_eq!(i.imm(), 0);
    }

    #[test]
    fn call_ret_shapes() {
        let mut a = Assembler::new();
        a.call("f");
        a.halt();
        a.label("f");
        a.ret();
        let p = a.assemble().unwrap();
        let call = p.fetch(p.base()).unwrap();
        assert_eq!(call.op(), Opcode::Jal);
        assert_eq!(call.dst(), Some(ArchReg::RA));
        assert_eq!(call.target(), Some(Pc::new(DEFAULT_BASE + 8)));
        let ret = p.fetch(Pc::new(DEFAULT_BASE + 8)).unwrap();
        assert_eq!(ret.op(), Opcode::Jalr);
        assert_eq!(ret.dst(), None);
    }

    #[test]
    fn error_display() {
        assert_eq!(AsmError::UndefinedLabel("loop".into()).to_string(), "undefined label `loop`");
        assert_eq!(AsmError::DuplicateLabel("x".into()).to_string(), "duplicate label `x`");
    }
}
