//! Instruction opcodes and their static properties.

use std::fmt;

/// The operation performed by an [`Inst`](crate::Inst).
///
/// Operand conventions:
///
/// * Register-register ALU ops read `src1`, `src2` and write `dst`.
/// * Immediate ALU ops read `src1` and `imm` and write `dst`.
/// * [`Opcode::Li`] writes `imm` into `dst` (no source registers).
/// * [`Opcode::Ld`] reads 64 bits from `[src1 + imm]` into `dst`.
/// * [`Opcode::St`] writes `src2` to `[src1 + imm]` (no destination).
/// * Conditional branches compare `src1` with `src2` and, if the condition
///   holds, redirect to the instruction's `target`.
/// * [`Opcode::Jal`] writes the return address into `dst` and jumps to
///   `target`; [`Opcode::Jalr`] jumps to `src1 + imm`.
/// * [`Opcode::Halt`] stops the simulated program at commit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Opcode {
    /// No operation.
    Nop,
    /// Stop the program. Retiring a `Halt` ends simulation.
    Halt,

    // --- register-register ALU ---
    /// `dst = src1 + src2`
    Add,
    /// `dst = src1 - src2`
    Sub,
    /// `dst = src1 & src2`
    And,
    /// `dst = src1 | src2`
    Or,
    /// `dst = src1 ^ src2`
    Xor,
    /// `dst = src1 << (src2 & 63)`
    Sll,
    /// `dst = (src1 as u64) >> (src2 & 63)`
    Srl,
    /// `dst = (src1 as i64) >> (src2 & 63)`
    Sra,
    /// `dst = src1 * src2` (low 64 bits)
    Mul,
    /// `dst = src1 / src2` (signed; division by zero yields -1, like RISC-V)
    Div,
    /// `dst = src1 % src2` (signed; modulo zero yields src1, like RISC-V)
    Rem,
    /// `dst = (src1 < src2) as i64` (signed)
    Slt,
    /// `dst = (src1 < src2) as i64` (unsigned)
    Sltu,

    // --- register-immediate ALU ---
    /// `dst = src1 + imm`
    Addi,
    /// `dst = src1 & imm`
    Andi,
    /// `dst = src1 | imm`
    Ori,
    /// `dst = src1 ^ imm`
    Xori,
    /// `dst = src1 << (imm & 63)`
    Slli,
    /// `dst = (src1 as u64) >> (imm & 63)`
    Srli,
    /// `dst = (src1 as i64) >> (imm & 63)`
    Srai,
    /// `dst = (src1 < imm) as i64` (signed)
    Slti,
    /// `dst = imm` (full 64-bit load-immediate; the toy ISA does not split
    /// immediates across instruction pairs)
    Li,

    // --- memory ---
    /// 64-bit load: `dst = mem[src1 + imm]`
    Ld,
    /// 64-bit store: `mem[src1 + imm] = src2`
    St,

    // --- control flow ---
    /// Branch to `target` if `src1 == src2`.
    Beq,
    /// Branch to `target` if `src1 != src2`.
    Bne,
    /// Branch to `target` if `src1 < src2` (signed).
    Blt,
    /// Branch to `target` if `src1 >= src2` (signed).
    Bge,
    /// Branch to `target` if `src1 < src2` (unsigned).
    Bltu,
    /// Branch to `target` if `src1 >= src2` (unsigned).
    Bgeu,
    /// Unconditional direct jump to `target`; `dst = pc + 4` (link).
    Jal,
    /// Unconditional indirect jump to `src1 + imm`; `dst = pc + 4` (link).
    Jalr,
}

impl Opcode {
    /// Whether this is a conditional branch.
    pub fn is_cond_branch(self) -> bool {
        matches!(
            self,
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bltu | Opcode::Bgeu
        )
    }

    /// Whether this is an unconditional jump (direct or indirect).
    pub fn is_jump(self) -> bool {
        matches!(self, Opcode::Jal | Opcode::Jalr)
    }

    /// Whether this is an indirect control transfer (target from a register).
    pub fn is_indirect(self) -> bool {
        matches!(self, Opcode::Jalr)
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(self) -> bool {
        self.is_cond_branch() || self.is_jump()
    }

    /// Whether this is a memory load.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ld)
    }

    /// Whether this is a memory store.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::St)
    }

    /// Whether this is a memory operation of either kind.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Every opcode, in declaration order. The position in this array is
    /// the opcode's stable wire code (see [`Opcode::code`]); append new
    /// opcodes at the end so existing serialized streams keep decoding.
    pub const ALL: [Opcode; 34] = [
        Opcode::Nop,
        Opcode::Halt,
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::Slt,
        Opcode::Sltu,
        Opcode::Addi,
        Opcode::Andi,
        Opcode::Ori,
        Opcode::Xori,
        Opcode::Slli,
        Opcode::Srli,
        Opcode::Srai,
        Opcode::Slti,
        Opcode::Li,
        Opcode::Ld,
        Opcode::St,
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Blt,
        Opcode::Bge,
        Opcode::Bltu,
        Opcode::Bgeu,
        Opcode::Jal,
        Opcode::Jalr,
    ];

    /// A stable one-byte code for serialization (checkpoints, traces).
    pub fn code(self) -> u8 {
        Opcode::ALL.iter().position(|&op| op == self).expect("every opcode is in ALL") as u8
    }

    /// Decodes a wire code produced by [`Opcode::code`].
    pub fn from_code(code: u8) -> Option<Opcode> {
        Opcode::ALL.get(code as usize).copied()
    }

    /// The mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "nop",
            Opcode::Halt => "halt",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Sll => "sll",
            Opcode::Srl => "srl",
            Opcode::Sra => "sra",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Rem => "rem",
            Opcode::Slt => "slt",
            Opcode::Sltu => "sltu",
            Opcode::Addi => "addi",
            Opcode::Andi => "andi",
            Opcode::Ori => "ori",
            Opcode::Xori => "xori",
            Opcode::Slli => "slli",
            Opcode::Srli => "srli",
            Opcode::Srai => "srai",
            Opcode::Slti => "slti",
            Opcode::Li => "li",
            Opcode::Ld => "ld",
            Opcode::St => "st",
            Opcode::Beq => "beq",
            Opcode::Bne => "bne",
            Opcode::Blt => "blt",
            Opcode::Bge => "bge",
            Opcode::Bltu => "bltu",
            Opcode::Bgeu => "bgeu",
            Opcode::Jal => "jal",
            Opcode::Jalr => "jalr",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_classification() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(Opcode::Bgeu.is_cond_branch());
        assert!(!Opcode::Jal.is_cond_branch());
        assert!(Opcode::Jal.is_jump());
        assert!(Opcode::Jalr.is_jump());
        assert!(Opcode::Jalr.is_indirect());
        assert!(!Opcode::Jal.is_indirect());
        assert!(Opcode::Beq.is_control());
        assert!(Opcode::Jal.is_control());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn memory_classification() {
        assert!(Opcode::Ld.is_load());
        assert!(!Opcode::Ld.is_store());
        assert!(Opcode::St.is_store());
        assert!(!Opcode::St.is_load());
        assert!(Opcode::Ld.is_mem());
        assert!(Opcode::St.is_mem());
        assert!(!Opcode::Add.is_mem());
    }

    #[test]
    fn wire_codes_round_trip_and_are_dense() {
        for (i, &op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.code() as usize, i);
            assert_eq!(Opcode::from_code(op.code()), Some(op));
        }
        assert_eq!(Opcode::from_code(Opcode::ALL.len() as u8), None);
        assert_eq!(Opcode::from_code(u8::MAX), None);
    }

    #[test]
    fn mnemonics_are_nonempty_and_lowercase() {
        let ops = [
            Opcode::Nop,
            Opcode::Halt,
            Opcode::Add,
            Opcode::Mul,
            Opcode::Ld,
            Opcode::St,
            Opcode::Beq,
            Opcode::Jalr,
        ];
        for op in ops {
            let m = op.mnemonic();
            assert!(!m.is_empty());
            assert_eq!(m, m.to_lowercase());
            assert_eq!(op.to_string(), m);
        }
    }
}
