//! The instruction format and its operand accessors.

use std::fmt;

use crate::{ArchReg, Opcode, Pc};

/// A single decoded instruction.
///
/// Every instruction carries the same field set; which fields are meaningful
/// depends on the [`Opcode`] (see its documentation for operand
/// conventions). Fields that are unused by an opcode are `None`/zero.
///
/// # Example
///
/// ```
/// use mssr_isa::{ArchReg, Inst, Opcode};
///
/// let add = Inst::alu_rr(Opcode::Add, ArchReg::A0, ArchReg::A1, ArchReg::A2);
/// assert_eq!(add.dst(), Some(ArchReg::A0));
/// assert_eq!(add.sources(), [Some(ArchReg::A1), Some(ArchReg::A2)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Inst {
    op: Opcode,
    dst: Option<ArchReg>,
    src1: Option<ArchReg>,
    src2: Option<ArchReg>,
    imm: i64,
    target: Option<Pc>,
}

impl Inst {
    /// Builds a no-operand instruction (`nop` / `halt`).
    ///
    /// # Panics
    ///
    /// Panics if `op` is not [`Opcode::Nop`] or [`Opcode::Halt`].
    pub fn simple(op: Opcode) -> Inst {
        assert!(
            matches!(op, Opcode::Nop | Opcode::Halt),
            "simple() only builds nop/halt, got {op}"
        );
        Inst { op, dst: None, src1: None, src2: None, imm: 0, target: None }
    }

    /// Builds a register-register ALU instruction.
    pub fn alu_rr(op: Opcode, dst: ArchReg, src1: ArchReg, src2: ArchReg) -> Inst {
        Inst {
            op,
            dst: normalize_dst(dst),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target: None,
        }
    }

    /// Builds a register-immediate ALU instruction.
    pub fn alu_ri(op: Opcode, dst: ArchReg, src1: ArchReg, imm: i64) -> Inst {
        Inst { op, dst: normalize_dst(dst), src1: Some(src1), src2: None, imm, target: None }
    }

    /// Builds a load-immediate instruction (`dst = imm`).
    pub fn li(dst: ArchReg, imm: i64) -> Inst {
        Inst { op: Opcode::Li, dst: normalize_dst(dst), src1: None, src2: None, imm, target: None }
    }

    /// Builds a 64-bit load: `dst = mem[base + imm]`.
    pub fn ld(dst: ArchReg, base: ArchReg, imm: i64) -> Inst {
        Inst {
            op: Opcode::Ld,
            dst: normalize_dst(dst),
            src1: Some(base),
            src2: None,
            imm,
            target: None,
        }
    }

    /// Builds a 64-bit store: `mem[base + imm] = data`.
    pub fn st(base: ArchReg, data: ArchReg, imm: i64) -> Inst {
        Inst { op: Opcode::St, dst: None, src1: Some(base), src2: Some(data), imm, target: None }
    }

    /// Builds a conditional branch comparing `src1` and `src2`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a conditional branch opcode.
    pub fn branch(op: Opcode, src1: ArchReg, src2: ArchReg, target: Pc) -> Inst {
        assert!(op.is_cond_branch(), "branch() requires a conditional branch opcode, got {op}");
        Inst { op, dst: None, src1: Some(src1), src2: Some(src2), imm: 0, target: Some(target) }
    }

    /// Builds a direct jump-and-link to `target`, writing `pc + 4` into `dst`.
    pub fn jal(dst: ArchReg, target: Pc) -> Inst {
        Inst {
            op: Opcode::Jal,
            dst: normalize_dst(dst),
            src1: None,
            src2: None,
            imm: 0,
            target: Some(target),
        }
    }

    /// Builds an indirect jump-and-link to `base + imm`.
    pub fn jalr(dst: ArchReg, base: ArchReg, imm: i64) -> Inst {
        Inst {
            op: Opcode::Jalr,
            dst: normalize_dst(dst),
            src1: Some(base),
            src2: None,
            imm,
            target: None,
        }
    }

    /// The instruction's opcode.
    pub fn op(&self) -> Opcode {
        self.op
    }

    /// The destination register, if the instruction writes one.
    ///
    /// Writes to the zero register are normalized away at construction, so
    /// an instruction whose destination is `x0` reports `dst() == None`.
    pub fn dst(&self) -> Option<ArchReg> {
        self.dst
    }

    /// First source register.
    pub fn src1(&self) -> Option<ArchReg> {
        self.src1
    }

    /// Second source register.
    pub fn src2(&self) -> Option<ArchReg> {
        self.src2
    }

    /// Both source registers as a fixed-size array (slots may be `None`).
    pub fn sources(&self) -> [Option<ArchReg>; 2] {
        [self.src1, self.src2]
    }

    /// The immediate operand (0 when unused).
    pub fn imm(&self) -> i64 {
        self.imm
    }

    /// The direct control-flow target, for branches and `jal`.
    pub fn target(&self) -> Option<Pc> {
        self.target
    }

    /// Whether this instruction writes an architectural register.
    pub fn writes_reg(&self) -> bool {
        self.dst.is_some()
    }

    /// See [`Opcode::is_cond_branch`].
    pub fn is_cond_branch(&self) -> bool {
        self.op.is_cond_branch()
    }

    /// See [`Opcode::is_control`].
    pub fn is_control(&self) -> bool {
        self.op.is_control()
    }

    /// See [`Opcode::is_load`].
    pub fn is_load(&self) -> bool {
        self.op.is_load()
    }

    /// See [`Opcode::is_store`].
    pub fn is_store(&self) -> bool {
        self.op.is_store()
    }

    /// Whether the instruction ends the program when it retires.
    pub fn is_halt(&self) -> bool {
        self.op == Opcode::Halt
    }

    /// Whether this is a call: a jump that links through `ra`
    /// (return-address-stack push).
    pub fn is_call(&self) -> bool {
        self.op.is_jump() && self.dst == Some(ArchReg::RA)
    }

    /// Whether this is a return: an indirect jump through `ra` with no
    /// link (return-address-stack pop).
    pub fn is_return(&self) -> bool {
        self.op == Opcode::Jalr && self.src1 == Some(ArchReg::RA) && self.dst.is_none()
    }

    /// Rewrites the direct target. Used by the assembler's label fixup.
    pub(crate) fn set_target(&mut self, target: Pc) {
        self.target = Some(target);
    }
}

/// Writes to `x0` are architectural no-ops; normalize them to "no
/// destination" so renaming never allocates a register for them.
fn normalize_dst(dst: ArchReg) -> Option<ArchReg> {
    if dst.is_zero() {
        None
    } else {
        Some(dst)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = self.op;
        match op {
            Opcode::Nop | Opcode::Halt => write!(f, "{op}"),
            Opcode::Li => write!(f, "{op} {}, {}", disp(self.dst), self.imm),
            Opcode::Ld => write!(f, "{op} {}, {}({})", disp(self.dst), self.imm, disp(self.src1)),
            Opcode::St => write!(f, "{op} {}, {}({})", disp(self.src2), self.imm, disp(self.src1)),
            Opcode::Jal => write!(
                f,
                "{op} {}, {}",
                disp(self.dst),
                self.target.map_or_else(|| "?".to_string(), |t| t.to_string())
            ),
            Opcode::Jalr => write!(f, "{op} {}, {}({})", disp(self.dst), self.imm, disp(self.src1)),
            _ if op.is_cond_branch() => write!(
                f,
                "{op} {}, {}, {}",
                disp(self.src1),
                disp(self.src2),
                self.target.map_or_else(|| "?".to_string(), |t| t.to_string())
            ),
            _ if self.src2.is_some() => {
                write!(f, "{op} {}, {}, {}", disp(self.dst), disp(self.src1), disp(self.src2))
            }
            _ => write!(f, "{op} {}, {}, {}", disp(self.dst), disp(self.src1), self.imm),
        }
    }
}

fn disp(r: Option<ArchReg>) -> String {
    r.map_or_else(|| "x0".to_string(), |r| r.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_destination_is_normalized() {
        let i = Inst::alu_rr(Opcode::Add, ArchReg::ZERO, ArchReg::A0, ArchReg::A1);
        assert_eq!(i.dst(), None);
        assert!(!i.writes_reg());
        let j = Inst::li(ArchReg::ZERO, 42);
        assert_eq!(j.dst(), None);
    }

    #[test]
    fn store_has_no_destination() {
        let s = Inst::st(ArchReg::A0, ArchReg::A1, 8);
        assert_eq!(s.dst(), None);
        assert_eq!(s.sources(), [Some(ArchReg::A0), Some(ArchReg::A1)]);
        assert!(s.is_store());
        assert_eq!(s.imm(), 8);
    }

    #[test]
    fn load_operands() {
        let l = Inst::ld(ArchReg::A2, ArchReg::SP, -16);
        assert_eq!(l.dst(), Some(ArchReg::A2));
        assert_eq!(l.src1(), Some(ArchReg::SP));
        assert_eq!(l.src2(), None);
        assert_eq!(l.imm(), -16);
        assert!(l.is_load());
    }

    #[test]
    fn branch_operands_and_target() {
        let b = Inst::branch(Opcode::Bne, ArchReg::T0, ArchReg::T1, Pc::new(0x40));
        assert!(b.is_cond_branch());
        assert_eq!(b.target(), Some(Pc::new(0x40)));
        assert_eq!(b.dst(), None);
    }

    #[test]
    #[should_panic(expected = "conditional branch")]
    fn branch_constructor_rejects_non_branch() {
        let _ = Inst::branch(Opcode::Add, ArchReg::T0, ArchReg::T1, Pc::new(0));
    }

    #[test]
    #[should_panic(expected = "nop/halt")]
    fn simple_constructor_rejects_alu() {
        let _ = Inst::simple(Opcode::Add);
    }

    #[test]
    fn display_roundtrips_mnemonics() {
        let i = Inst::alu_rr(Opcode::Add, ArchReg::A0, ArchReg::A1, ArchReg::A2);
        assert_eq!(i.to_string(), "add x10, x11, x12");
        let l = Inst::ld(ArchReg::A0, ArchReg::SP, 24);
        assert_eq!(l.to_string(), "ld x10, 24(x2)");
        let s = Inst::st(ArchReg::SP, ArchReg::A0, 24);
        assert_eq!(s.to_string(), "st x10, 24(x2)");
        let h = Inst::simple(Opcode::Halt);
        assert_eq!(h.to_string(), "halt");
    }

    #[test]
    fn call_and_return_classification() {
        let call = Inst::jal(ArchReg::RA, Pc::new(0x100));
        assert!(call.is_call());
        assert!(!call.is_return());
        let icall = Inst::jalr(ArchReg::RA, ArchReg::T0, 0);
        assert!(icall.is_call());
        let ret = Inst::jalr(ArchReg::ZERO, ArchReg::RA, 0);
        assert!(ret.is_return());
        assert!(!ret.is_call());
        let plain_jump = Inst::jal(ArchReg::ZERO, Pc::new(0x100));
        assert!(!plain_jump.is_call());
        assert!(!plain_jump.is_return());
        let indirect = Inst::jalr(ArchReg::ZERO, ArchReg::T0, 0);
        assert!(!indirect.is_return(), "indirect through a non-ra register");
    }

    #[test]
    fn jal_links_and_targets() {
        let j = Inst::jal(ArchReg::RA, Pc::new(0x100));
        assert_eq!(j.dst(), Some(ArchReg::RA));
        assert_eq!(j.target(), Some(Pc::new(0x100)));
        let j0 = Inst::jal(ArchReg::ZERO, Pc::new(0x100));
        assert_eq!(j0.dst(), None, "jal x0 is a plain jump");
    }
}
