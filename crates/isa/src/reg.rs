//! Architectural register names.

use std::fmt;

use crate::NUM_ARCH_REGS;

/// An architectural register.
///
/// The ISA has [`NUM_ARCH_REGS`] (64) integer registers. Register 0
/// ([`ArchReg::ZERO`]) is hardwired to zero: writes to it are discarded and
/// reads always return 0, exactly like RISC-V `x0`.
///
/// A handful of RISC-V-style ABI aliases are provided as associated
/// constants (`A0..A7`, `T0..T6`, `S0..S11`, `SP`, `RA`) purely for
/// readability in hand-written workloads; the simulator itself treats all
/// registers uniformly.
///
/// # Example
///
/// ```
/// use mssr_isa::ArchReg;
///
/// let r = ArchReg::new(5).unwrap();
/// assert_eq!(r, ArchReg::T0);
/// assert_eq!(r.index(), 5);
/// assert!(ArchReg::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// The hardwired zero register (`x0`).
    pub const ZERO: ArchReg = ArchReg(0);
    /// Return-address register (`x1`).
    pub const RA: ArchReg = ArchReg(1);
    /// Stack pointer (`x2`).
    pub const SP: ArchReg = ArchReg(2);
    /// Global pointer (`x3`).
    pub const GP: ArchReg = ArchReg(3);
    /// Thread pointer (`x4`).
    pub const TP: ArchReg = ArchReg(4);
    /// Temporary registers.
    pub const T0: ArchReg = ArchReg(5);
    pub const T1: ArchReg = ArchReg(6);
    pub const T2: ArchReg = ArchReg(7);
    /// Saved registers.
    pub const S0: ArchReg = ArchReg(8);
    pub const S1: ArchReg = ArchReg(9);
    /// Argument / return registers.
    pub const A0: ArchReg = ArchReg(10);
    pub const A1: ArchReg = ArchReg(11);
    pub const A2: ArchReg = ArchReg(12);
    pub const A3: ArchReg = ArchReg(13);
    pub const A4: ArchReg = ArchReg(14);
    pub const A5: ArchReg = ArchReg(15);
    pub const A6: ArchReg = ArchReg(16);
    pub const A7: ArchReg = ArchReg(17);
    pub const S2: ArchReg = ArchReg(18);
    pub const S3: ArchReg = ArchReg(19);
    pub const S4: ArchReg = ArchReg(20);
    pub const S5: ArchReg = ArchReg(21);
    pub const S6: ArchReg = ArchReg(22);
    pub const S7: ArchReg = ArchReg(23);
    pub const S8: ArchReg = ArchReg(24);
    pub const S9: ArchReg = ArchReg(25);
    pub const S10: ArchReg = ArchReg(26);
    pub const S11: ArchReg = ArchReg(27);
    pub const T3: ArchReg = ArchReg(28);
    pub const T4: ArchReg = ArchReg(29);
    pub const T5: ArchReg = ArchReg(30);
    pub const T6: ArchReg = ArchReg(31);

    /// Creates a register from its index.
    ///
    /// Returns `None` if `index >= NUM_ARCH_REGS`.
    ///
    /// # Example
    ///
    /// ```
    /// use mssr_isa::ArchReg;
    /// assert!(ArchReg::new(63).is_some());
    /// assert!(ArchReg::new(64).is_none());
    /// ```
    pub fn new(index: usize) -> Option<ArchReg> {
        if index < NUM_ARCH_REGS {
            Some(ArchReg(index as u8))
        } else {
            None
        }
    }

    /// The register's index in `0..NUM_ARCH_REGS`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over every architectural register, `x0` first.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS as u8).map(ArchReg)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_identity() {
        assert!(ArchReg::ZERO.is_zero());
        assert!(!ArchReg::T0.is_zero());
        assert_eq!(ArchReg::ZERO.index(), 0);
    }

    #[test]
    fn new_bounds() {
        assert_eq!(ArchReg::new(0), Some(ArchReg::ZERO));
        assert_eq!(ArchReg::new(5), Some(ArchReg::T0));
        assert_eq!(ArchReg::new(NUM_ARCH_REGS - 1).map(|r| r.index()), Some(63));
        assert_eq!(ArchReg::new(NUM_ARCH_REGS), None);
        assert_eq!(ArchReg::new(usize::MAX), None);
    }

    #[test]
    fn all_covers_every_register_once() {
        let regs: Vec<ArchReg> = ArchReg::all().collect();
        assert_eq!(regs.len(), NUM_ARCH_REGS);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(ArchReg::ZERO.to_string(), "x0");
        assert_eq!(ArchReg::T6.to_string(), "x31");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ArchReg::ZERO < ArchReg::RA);
        assert!(ArchReg::T0 < ArchReg::T1);
    }
}
