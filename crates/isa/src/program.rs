//! Program counters and assembled instruction memory images.

use std::fmt;
use std::ops::{Add, Sub};

use crate::{Inst, INST_BYTES};

/// A program counter (byte address of an instruction).
///
/// PCs step in units of [`INST_BYTES`] (4) bytes. The type is a thin
/// wrapper over `u64` that keeps instruction addresses from being confused
/// with data addresses or indices.
///
/// # Example
///
/// ```
/// use mssr_isa::Pc;
///
/// let pc = Pc::new(0x1000);
/// assert_eq!(pc.next(), Pc::new(0x1004));
/// assert_eq!(pc.next() - pc, 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u64);

impl Pc {
    /// Creates a PC from a byte address.
    pub fn new(addr: u64) -> Pc {
        Pc(addr)
    }

    /// The raw byte address.
    pub fn addr(self) -> u64 {
        self.0
    }

    /// The PC of the next sequential instruction.
    pub fn next(self) -> Pc {
        Pc(self.0 + INST_BYTES)
    }

    /// The PC `n` instructions after this one.
    pub fn step(self, n: u64) -> Pc {
        Pc(self.0 + n * INST_BYTES)
    }
}

impl Add<u64> for Pc {
    type Output = Pc;
    /// Adds a byte offset.
    fn add(self, rhs: u64) -> Pc {
        Pc(self.0 + rhs)
    }
}

impl Sub<Pc> for Pc {
    type Output = u64;
    /// Byte distance between two PCs.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`.
    fn sub(self, rhs: Pc) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Debug for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pc({:#x})", self.0)
    }
}

/// An assembled program: a contiguous block of instructions starting at a
/// base PC.
///
/// Produced by [`Assembler::assemble`](crate::Assembler::assemble). The
/// simulator fetches instructions with [`Program::fetch`]; PCs outside the
/// program (reachable on mispredicted wrong paths) return `None` and the
/// frontend treats them as implicit no-ops until redirected.
#[derive(Clone, Debug)]
pub struct Program {
    base: Pc,
    insts: Vec<Inst>,
}

impl Program {
    /// Builds a program image from a base PC and an instruction list.
    pub fn new(base: Pc, insts: Vec<Inst>) -> Program {
        Program { base, insts }
    }

    /// The PC of the first instruction; execution starts here.
    pub fn base(&self) -> Pc {
        self.base
    }

    /// One past the last instruction's PC.
    pub fn end(&self) -> Pc {
        self.base.step(self.insts.len() as u64)
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Whether `pc` addresses an instruction inside the program.
    pub fn contains(&self, pc: Pc) -> bool {
        pc >= self.base && pc < self.end() && (pc - self.base).is_multiple_of(INST_BYTES)
    }

    /// Fetches the instruction at `pc`, or `None` if `pc` is outside the
    /// program or misaligned.
    pub fn fetch(&self, pc: Pc) -> Option<&Inst> {
        if !self.contains(pc) {
            return None;
        }
        let idx = ((pc - self.base) / INST_BYTES) as usize;
        self.insts.get(idx)
    }

    /// Iterates over `(pc, inst)` pairs in program order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &Inst)> {
        self.insts.iter().enumerate().map(move |(i, inst)| (self.base.step(i as u64), inst))
    }

    /// Renders a full disassembly listing, one instruction per line.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (pc, inst) in self.iter() {
            out.push_str(&format!("{pc}: {inst}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchReg, Opcode};

    fn tiny() -> Program {
        Program::new(
            Pc::new(0x1000),
            vec![
                Inst::li(ArchReg::T0, 1),
                Inst::alu_ri(Opcode::Addi, ArchReg::T0, ArchReg::T0, 1),
                Inst::simple(Opcode::Halt),
            ],
        )
    }

    #[test]
    fn pc_arithmetic() {
        let pc = Pc::new(0x2000);
        assert_eq!(pc.next().addr(), 0x2004);
        assert_eq!(pc.step(3).addr(), 0x200c);
        assert_eq!(pc.step(3) - pc, 12);
        assert_eq!((pc + 8).addr(), 0x2008);
        assert_eq!(pc.to_string(), "0x2000");
    }

    #[test]
    fn fetch_in_and_out_of_bounds() {
        let p = tiny();
        assert_eq!(p.len(), 3);
        assert!(p.fetch(Pc::new(0x1000)).is_some());
        assert!(p.fetch(Pc::new(0x1008)).is_some());
        assert!(p.fetch(Pc::new(0x100c)).is_none(), "one past the end");
        assert!(p.fetch(Pc::new(0xffc)).is_none(), "below base");
        assert!(p.fetch(Pc::new(0x1002)).is_none(), "misaligned");
    }

    #[test]
    fn bounds() {
        let p = tiny();
        assert_eq!(p.base(), Pc::new(0x1000));
        assert_eq!(p.end(), Pc::new(0x100c));
        assert!(p.contains(Pc::new(0x1008)));
        assert!(!p.contains(Pc::new(0x100c)));
        assert!(!p.is_empty());
    }

    #[test]
    fn iter_yields_sequential_pcs() {
        let p = tiny();
        let pcs: Vec<Pc> = p.iter().map(|(pc, _)| pc).collect();
        assert_eq!(pcs, vec![Pc::new(0x1000), Pc::new(0x1004), Pc::new(0x1008)]);
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let text = tiny().disassemble();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("halt"));
        assert!(text.starts_with("0x1000: li x5, 1"));
    }
}
