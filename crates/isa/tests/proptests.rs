//! Property-based tests for the assembler and program image, running on
//! the workspace's std-only property harness (`tests/common/prop.rs` at
//! the repository root, shared via `#[path]`).

#[path = "../../../tests/common/prop.rs"]
mod prop;

use mssr_isa::{regs::*, Assembler, Opcode, Pc, Program};
use prop::for_each_case;

/// Builds a program with `n` nops, a label placed at position `at`, and a
/// jump to it placed at position `from`.
fn program_with_jump(n: usize, at: usize, from: usize) -> Program {
    let mut a = Assembler::new();
    for i in 0..n {
        if i == at {
            a.label("target");
        }
        if i == from {
            a.j("target");
        } else {
            a.nop();
        }
    }
    if at >= n {
        a.label("target");
    }
    a.halt();
    a.assemble().expect("assembles")
}

#[test]
fn labels_resolve_to_their_positions() {
    for_each_case("labels_resolve_to_their_positions", 256, 0x6973_6100_0001, |rng| {
        let n = rng.range(1, 64);
        let at = rng.range(0, 64) % (n + 1);
        let from = rng.range(0, 64) % n;
        let p = program_with_jump(n, at, from);
        // The jump's resolved target must be the instruction at `at`
        // (labels placed past the end bind to the halt).
        let jump_pc = p.base().step(from as u64);
        let inst = p.fetch(jump_pc).expect("jump exists");
        assert_eq!(inst.op(), Opcode::Jal);
        let expected = p.base().step(at.min(n) as u64);
        assert_eq!(inst.target().expect("resolved"), expected);
    });
}

#[test]
fn program_fetch_agrees_with_iter() {
    for_each_case("program_fetch_agrees_with_iter", 64, 0x6973_6100_0002, |rng| {
        let n = rng.range(1, 200);
        let mut a = Assembler::new();
        for i in 0..n {
            a.addi(T0, T0, i as i64 % 100);
        }
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.len(), n + 1);
        for (pc, inst) in p.iter() {
            assert_eq!(p.fetch(pc), Some(inst));
        }
        // Every out-of-range or misaligned PC misses.
        assert!(p.fetch(p.end()).is_none());
        assert!(p.fetch(Pc::new(p.base().addr() + 1)).is_none());
        assert!(p.fetch(Pc::new(p.base().addr().wrapping_sub(4))).is_none());
    });
}

#[test]
fn pc_step_is_additive() {
    for_each_case("pc_step_is_additive", 256, 0x6973_6100_0003, |rng| {
        let a = rng.below(1 << 40);
        let n = rng.below(1000);
        let m = rng.below(1000);
        let pc = Pc::new(a * 4);
        assert_eq!(pc.step(n).step(m), pc.step(n + m));
        assert_eq!(pc.step(n) - pc, 4 * n);
    });
}
