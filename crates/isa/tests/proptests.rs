//! Property-based tests for the assembler and program image.

use mssr_isa::{regs::*, Assembler, Opcode, Pc, Program};
use proptest::prelude::*;

/// Builds a program with `n` nops, a label placed at position `at`, and a
/// jump to it placed at position `from`.
fn program_with_jump(n: usize, at: usize, from: usize) -> Program {
    let mut a = Assembler::new();
    for i in 0..n {
        if i == at {
            a.label("target");
        }
        if i == from {
            a.j("target");
        } else {
            a.nop();
        }
    }
    if at >= n {
        a.label("target");
    }
    a.halt();
    a.assemble().expect("assembles")
}

proptest! {
    #[test]
    fn labels_resolve_to_their_positions(
        n in 1usize..64,
        at in 0usize..64,
        from in 0usize..64,
    ) {
        let at = at % (n + 1);
        let from = from % n;
        let p = program_with_jump(n, at, from);
        // The jump's resolved target must be the instruction at `at`
        // (labels placed past the end bind to the halt).
        let jump_pc = p.base().step(from as u64);
        let inst = p.fetch(jump_pc).expect("jump exists");
        prop_assert_eq!(inst.op(), Opcode::Jal);
        let expected = p.base().step(at.min(n) as u64);
        prop_assert_eq!(inst.target().expect("resolved"), expected);
    }

    #[test]
    fn program_fetch_agrees_with_iter(n in 1usize..200) {
        let mut a = Assembler::new();
        for i in 0..n {
            a.addi(T0, T0, i as i64 % 100);
        }
        a.halt();
        let p = a.assemble().unwrap();
        prop_assert_eq!(p.len(), n + 1);
        for (pc, inst) in p.iter() {
            prop_assert_eq!(p.fetch(pc), Some(inst));
        }
        // Every out-of-range or misaligned PC misses.
        prop_assert!(p.fetch(p.end()).is_none());
        prop_assert!(p.fetch(Pc::new(p.base().addr() + 1)).is_none());
        prop_assert!(p.fetch(Pc::new(p.base().addr().wrapping_sub(4))).is_none());
    }

    #[test]
    fn pc_step_is_additive(a in 0u64..1 << 40, n in 0u64..1000, m in 0u64..1000) {
        let pc = Pc::new(a * 4);
        prop_assert_eq!(pc.step(n).step(m), pc.step(n + m));
        prop_assert_eq!(pc.step(n) - pc, 4 * n);
    }
}
