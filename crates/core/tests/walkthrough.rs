//! The paper's Figure-5 walkthrough as an executable test: the
//! if-then-else example whose branch mispredicts once, with exactly two
//! reusable CIDI instructions (I7, I8) and one stale instruction (I9)
//! that must re-execute.
//!
//! ```text
//! I1: beq t0, x0 -> I5      predicted taken (cold bimodal), actually not
//! I2: a2 = a2 >> 1     \
//! I3: a2 = a2 + 1       |   else side (the corrected path)
//! I4: j I7             /
//! I5: a2 = a2 >> 2     \    then side (the wrong path)
//! I6: a2 = a2 - 1      /
//! I7: a1 = a1 + 1      \
//! I8: a1 = a1 >> 1      |   reconvergence region
//! I9: a2 = a2 >> 1     /
//! ```

use mssr_core::{MssrConfig, MultiStreamReuse};
use mssr_isa::{regs::*, Assembler, Program};
use mssr_sim::{SimConfig, Simulator};

/// Builds the Figure-5 program. `t0` is produced by a slow divide chain
/// so the branch resolves long after the wrong path has executed the
/// reconvergence region.
fn figure5() -> Program {
    let mut a = Assembler::new();
    a.li(A1, 7); // the paper's a1
    a.li(A2, 1000); // the paper's a2
                    // t0 = 1 via a slow chain: the branch is not taken, but resolves late.
    a.li(T1, 4096);
    a.li(T2, 4);
    a.div(T0, T1, T2); // 1024
    a.div(T0, T0, T1); // 0
    a.addi(T0, T0, 1); // 1 (nonzero => branch not taken)
    a.beq(T0, ZERO, "i5"); // I1: cold bimodal predicts taken
    a.srli(A2, A2, 1); // I2
    a.addi(A2, A2, 1); // I3
    a.j("i7"); // I4
    a.label("i5");
    a.srli(A2, A2, 2); // I5
    a.addi(A2, A2, -1); // I6
    a.label("i7");
    a.addi(A1, A1, 1); // I7: CIDI — must be reused
    a.srli(A1, A1, 1); // I8: CIDI — must be reused
    a.srli(A2, A2, 1); // I9: data-dependent — must re-execute
    a.st(ZERO, A1, 0x100);
    a.st(ZERO, A2, 0x108);
    a.halt();
    a.assemble().expect("figure 5 assembles")
}

/// Architectural expectations (not-taken path): a1 = (7+1)>>1 = 4,
/// a2 = ((1000>>1)+1)>>1 = 250.
const EXPECT_A1: u64 = 4;
const EXPECT_A2: u64 = 250;

#[test]
fn baseline_executes_the_not_taken_path() {
    let mut sim = Simulator::new(SimConfig::default().with_max_cycles(10_000), figure5());
    let stats = sim.run();
    assert_eq!(sim.read_mem_u64(0x100), EXPECT_A1);
    assert_eq!(sim.read_mem_u64(0x108), EXPECT_A2);
    assert_eq!(stats.mispredictions, 1, "the cold bimodal predicts taken exactly once");
}

#[test]
fn mssr_reuses_i7_i8_and_reexecutes_i9() {
    let engine = MultiStreamReuse::new(MssrConfig::default());
    let mut sim = Simulator::with_engine(
        SimConfig::default().with_max_cycles(10_000),
        figure5(),
        Box::new(engine),
    );
    let stats = sim.run();
    // Architectural results are unchanged by reuse.
    assert_eq!(sim.read_mem_u64(0x100), EXPECT_A1);
    assert_eq!(sim.read_mem_u64(0x108), EXPECT_A2);

    let e = &stats.engine;
    assert_eq!(stats.mispredictions, 1);
    assert_eq!(e.streams_captured, 1, "one squashed stream (I5..) is captured");
    assert_eq!(e.reconvergences, 1, "the corrected stream reconverges at I7");
    assert_eq!(e.recon_simple, 1, "…with its own diverging branch's stream");
    assert_eq!(
        e.reuse_grants, 2,
        "exactly I7 and I8 are CIDI: their a1 RGIDs match the squashed rename"
    );
    assert_eq!(
        e.reuse_fail_stale, 1,
        "exactly I9 fails: a2 was renamed by I2/I3 on the corrected path"
    );
}

#[test]
fn single_stream_dci_handles_the_simple_case_equally() {
    // Figure 5 is a *simple* reconvergence; DCI (one stream) must match.
    let mut sim = Simulator::with_engine(
        SimConfig::default().with_max_cycles(10_000),
        figure5(),
        Box::new(MultiStreamReuse::dci()),
    );
    let stats = sim.run();
    assert_eq!(sim.read_mem_u64(0x100), EXPECT_A1);
    assert_eq!(sim.read_mem_u64(0x108), EXPECT_A2);
    assert_eq!(stats.engine.reuse_grants, 2);
}

#[test]
fn taken_variant_reuses_across_the_other_side() {
    // Flip the condition: t0 == 0, the branch is actually taken. The cold
    // bimodal predicts taken too, so there is no misprediction at all —
    // and therefore nothing to reuse. This pins down the predictor
    // assumption behind the walkthrough.
    let mut a = Assembler::new();
    a.li(A1, 7);
    a.li(A2, 1000);
    a.li(T1, 4096);
    a.li(T2, 4);
    a.div(T0, T1, T2);
    a.div(T0, T0, T1); // 0 => taken
    a.beq(T0, ZERO, "i5");
    a.srli(A2, A2, 1);
    a.addi(A2, A2, 1);
    a.j("i7");
    a.label("i5");
    a.srli(A2, A2, 2); // 250
    a.addi(A2, A2, -1); // 249
    a.label("i7");
    a.addi(A1, A1, 1);
    a.srli(A1, A1, 1);
    a.srli(A2, A2, 1); // 124
    a.st(ZERO, A1, 0x100);
    a.st(ZERO, A2, 0x108);
    a.halt();
    let engine = MultiStreamReuse::new(MssrConfig::default());
    let mut sim = Simulator::with_engine(
        SimConfig::default().with_max_cycles(10_000),
        a.assemble().unwrap(),
        Box::new(engine),
    );
    let stats = sim.run();
    assert_eq!(sim.read_mem_u64(0x100), 4);
    assert_eq!(sim.read_mem_u64(0x108), 124);
    assert_eq!(stats.mispredictions, 0, "prediction and outcome agree");
    assert_eq!(stats.engine.reuse_grants, 0, "no squash, nothing to reuse");
}
