//! Integration tests for the squash-reuse engines running on the full
//! simulator: architectural correctness under reuse, reuse activity on
//! branchy code, multi-stream benefits, memory-hazard handling, register
//! pressure, and the RGID overflow/reset protocol.

use mssr_core::{MemCheckPolicy, MssrConfig, MultiStreamReuse, RegisterIntegration, RiConfig};
use mssr_isa::{regs::*, Assembler, Program};
use mssr_sim::{ReuseEngine, SimConfig, SimStats, Simulator};

/// Builds the nested data-dependent branch kernel (the shape of the
/// paper's Listing 1): an outer and an inner branch, both driven by a
/// pseudo-random hash, followed by control-independent work.
fn nested_branch_kernel(iters: i64) -> Program {
    let mut a = Assembler::new();
    a.li(S0, 0); // i
    a.li(S1, iters);
    a.li(S2, 0); // acc (control-dependent)
    a.li(S4, 0); // acc2 (control-independent)
    a.li(S3, 0x243f6a8885a308d3u64 as i64); // hash state
    a.label("loop");
    a.li(T0, 0x9e3779b97f4a7c15u64 as i64);
    a.mul(S3, S3, T0);
    a.srli(T1, S3, 29);
    a.andi(T2, T1, 1); // data1 bit
    a.andi(T3, T1, 2); // data2 bit
    a.beq(T2, ZERO, "merge"); // Br1 (outer, H2P)
    a.beq(T3, ZERO, "m1"); // Br2 (inner, H2P)
    a.addi(S2, S2, 7); // calc on data2 path
    a.label("m1");
    a.addi(S2, S2, 11); // calc on data1 path
    a.label("merge");
    // CIDI region: depends only on the loop counter.
    a.mul(T4, S0, S0);
    a.addi(T4, T4, 13);
    a.mul(T5, T4, T4);
    a.add(S4, S4, T5);
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "loop");
    a.st(ZERO, S2, 0x100);
    a.st(ZERO, S4, 0x108);
    a.halt();
    a.assemble().expect("kernel assembles")
}

/// Architectural reference for [`nested_branch_kernel`].
fn nested_branch_reference(iters: i64) -> (u64, u64) {
    let mut state = 0x243f6a8885a308d3u64;
    let mut acc = 0u64;
    let mut acc2 = 0u64;
    for i in 0..iters as u64 {
        state = state.wrapping_mul(0x9e3779b97f4a7c15);
        let t1 = state >> 29;
        if t1 & 1 != 0 {
            if t1 & 2 != 0 {
                acc = acc.wrapping_add(7);
            }
            acc = acc.wrapping_add(11);
        }
        let t4 = i.wrapping_mul(i).wrapping_add(13);
        acc2 = acc2.wrapping_add(t4.wrapping_mul(t4));
    }
    (acc, acc2)
}

fn run(
    program: Program,
    engine: Option<Box<dyn ReuseEngine>>,
    cfg: SimConfig,
) -> (Simulator, SimStats) {
    let mut sim = match engine {
        Some(e) => Simulator::with_engine(cfg, program, e),
        None => Simulator::new(cfg, program),
    };
    let stats = sim.run();
    assert!(sim.is_halted(), "program must run to completion");
    (sim, stats)
}

fn default_cfg() -> SimConfig {
    SimConfig::default().with_max_cycles(5_000_000)
}

#[test]
fn all_engines_preserve_architectural_results() {
    let iters = 400;
    let (acc, acc2) = nested_branch_reference(iters);
    let engines: Vec<(&str, Option<Box<dyn ReuseEngine>>)> = vec![
        ("baseline", None),
        ("mssr", Some(Box::new(MultiStreamReuse::new(MssrConfig::default())))),
        ("dci", Some(Box::new(MultiStreamReuse::dci()))),
        ("ri", Some(Box::new(RegisterIntegration::new(RiConfig::default())))),
        (
            "mssr-bloom",
            Some(Box::new(MultiStreamReuse::new(
                MssrConfig::default().with_mem_policy(MemCheckPolicy::BloomFilter),
            ))),
        ),
    ];
    for (name, engine) in engines {
        let (sim, _) = run(nested_branch_kernel(iters), engine, default_cfg());
        assert_eq!(sim.read_mem_u64(0x100), acc, "{name}: control-dependent accumulator");
        assert_eq!(sim.read_mem_u64(0x108), acc2, "{name}: control-independent accumulator");
    }
}

#[test]
fn mssr_reuses_cidi_work_on_branchy_code() {
    let engine = MultiStreamReuse::new(MssrConfig::default());
    let (_, stats) = run(nested_branch_kernel(600), Some(Box::new(engine)), default_cfg());
    assert!(stats.mispredictions > 100, "kernel must be hard to predict");
    assert!(
        stats.engine.reuse_grants > 50,
        "CIDI instructions should be reused, got {} grants",
        stats.engine.reuse_grants
    );
    assert!(stats.engine.reconvergences > 50);
    assert!(stats.engine.streams_captured > 100);
}

#[test]
fn no_reuse_activity_on_predictable_code() {
    let mut a = Assembler::new();
    a.li(T0, 0);
    a.li(T1, 2000);
    a.label("loop");
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "loop");
    a.halt();
    let engine = MultiStreamReuse::new(MssrConfig::default());
    let (_, stats) = run(a.assemble().unwrap(), Some(Box::new(engine)), default_cfg());
    assert!(stats.mispredictions <= 3, "loop branch is trivially predictable");
    assert_eq!(stats.engine.reuse_grants, 0, "nothing squashed, nothing reused");
}

#[test]
fn mssr_improves_ipc_on_the_nested_kernel() {
    let iters = 800;
    let (_, base) = run(nested_branch_kernel(iters), None, default_cfg());
    let engine = MultiStreamReuse::new(MssrConfig::default().with_log_entries(64));
    let (_, reuse) = run(nested_branch_kernel(iters), Some(Box::new(engine)), default_cfg());
    assert!(
        reuse.ipc() > base.ipc() * 0.98,
        "reuse should not hurt: baseline {:.3} vs mssr {:.3}",
        base.ipc(),
        reuse.ipc()
    );
}

#[test]
fn multi_stream_finds_more_reuse_than_single_stream() {
    let iters = 800;
    let single = MultiStreamReuse::new(MssrConfig::default().with_streams(1));
    let (_, s1) = run(nested_branch_kernel(iters), Some(Box::new(single)), default_cfg());
    let multi = MultiStreamReuse::new(MssrConfig::default().with_streams(4));
    let (_, s4) = run(nested_branch_kernel(iters), Some(Box::new(multi)), default_cfg());
    // On this simple kernel the streams mostly reconverge with their own
    // squash (simple reconvergence), so four streams buy little — but
    // they must not cost much either. The multi-stream *advantage* is
    // demonstrated on the nested/linear-mispred microbenchmarks
    // (mssr-workloads / Table 1), where out-of-order branch resolution
    // creates distance-2+ reconvergence.
    assert!(
        s4.engine.reuse_grants as f64 >= s1.engine.reuse_grants as f64 * 0.85,
        "4 streams ({}) should find roughly as much reuse as 1 ({})",
        s4.engine.reuse_grants,
        s1.engine.reuse_grants
    );
}

#[test]
fn reconvergence_classification_is_populated() {
    let engine = MultiStreamReuse::new(MssrConfig::default());
    let (_, stats) = run(nested_branch_kernel(800), Some(Box::new(engine)), default_cfg());
    let e = &stats.engine;
    assert_eq!(
        e.recon_simple + e.recon_software + e.recon_hardware,
        e.reconvergences,
        "every reconvergence is classified exactly once"
    );
    assert!(e.recon_simple > 0, "simple reconvergence dominates");
    let total_distance: u64 = e.stream_distance.iter().sum();
    assert_eq!(total_distance, e.reconvergences, "distance histogram is complete");
}

/// A kernel where a store writes an address that a squashed load read:
/// reused loads must be caught by verification.
fn store_aliasing_kernel(iters: i64) -> Program {
    let mut a = Assembler::new();
    a.li(S0, 0);
    a.li(S1, iters);
    a.li(S5, 0x4000); // array base
    a.li(S3, 0xfeedface); // hash
    a.label("loop");
    a.li(T0, 0x9e3779b97f4a7c15u64 as i64);
    a.mul(S3, S3, T0);
    a.srli(T1, S3, 30);
    a.andi(T2, T1, 1);
    // The H2P branch.
    a.beq(T2, ZERO, "merge");
    a.addi(S2, S2, 1);
    a.label("merge");
    // CI region: load a[i%8], add, store back — loads may be reused
    // while stores to the same slot keep changing the value.
    a.andi(T3, S0, 7);
    a.slli(T3, T3, 3);
    a.add(T3, T3, S5);
    a.ld(T4, T3, 0);
    a.addi(T4, T4, 1);
    a.st(T3, T4, 0);
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "loop");
    a.st(ZERO, S2, 0x100);
    a.halt();
    a.assemble().expect("kernel assembles")
}

#[test]
fn reused_loads_are_verified_and_memory_stays_consistent() {
    let iters = 600;
    let (sim, stats) = run(
        store_aliasing_kernel(iters),
        Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))),
        default_cfg(),
    );
    // Each slot a[i%8] is incremented iters/8 times from 0.
    for slot in 0..8u64 {
        assert_eq!(
            sim.read_mem_u64(0x4000 + slot * 8),
            (iters as u64) / 8,
            "slot {slot} must reflect every increment"
        );
    }
    // Loads were reused (or at least attempted) under verification.
    assert!(
        stats.engine.reused_loads > 0
            || stats.engine.reuse_fail_mem > 0
            || stats.engine.reuse_grants > 0,
        "the CI region should produce reuse traffic"
    );
}

#[test]
fn bloom_policy_also_preserves_memory_consistency() {
    let iters = 600;
    let engine =
        MultiStreamReuse::new(MssrConfig::default().with_mem_policy(MemCheckPolicy::BloomFilter));
    let (sim, stats) = run(store_aliasing_kernel(iters), Some(Box::new(engine)), default_cfg());
    for slot in 0..8u64 {
        assert_eq!(sim.read_mem_u64(0x4000 + slot * 8), (iters as u64) / 8);
    }
    assert_eq!(
        stats.flushes_reuse_verify, 0,
        "the Bloom policy filters at reuse time instead of flushing"
    );
}

#[test]
fn register_pressure_reclaims_streams_instead_of_deadlocking() {
    // Tiny physical register file: engine holds must yield under pressure.
    let cfg = SimConfig::default()
        .with_phys_regs(80) // only 16 beyond the architectural 64
        .with_rob_size(32)
        .with_max_cycles(5_000_000);
    let engine = MultiStreamReuse::new(MssrConfig::default());
    let (sim, stats) = run(nested_branch_kernel(300), Some(Box::new(engine)), cfg);
    let (acc, acc2) = nested_branch_reference(300);
    assert_eq!(sim.read_mem_u64(0x100), acc);
    assert_eq!(sim.read_mem_u64(0x108), acc2);
    // With 16 spare registers the engine must have been squeezed.
    assert!(stats.engine.pressure_reclaims > 0, "expected pressure reclaims with an 80-entry PRF");
}

#[test]
fn rgid_overflow_triggers_reset_and_stays_correct() {
    // 3-bit RGIDs overflow after 7 generations per register.
    let cfg = SimConfig { rgid_bits: 3, ..SimConfig::default() }.with_max_cycles(5_000_000);
    let engine = MultiStreamReuse::new(MssrConfig::default());
    let (sim, stats) = run(nested_branch_kernel(500), Some(Box::new(engine)), cfg);
    let (acc, acc2) = nested_branch_reference(500);
    assert_eq!(sim.read_mem_u64(0x100), acc);
    assert_eq!(sim.read_mem_u64(0x108), acc2);
    assert!(stats.engine.rgid_overflows > 0, "3-bit RGIDs must overflow");
    assert!(stats.engine.rgid_resets > 0, "overflows must trigger global resets");
}

#[test]
fn ri_table_replacements_are_counted() {
    let ri = RegisterIntegration::new(RiConfig::default().with_sets(64).with_ways(1));
    let counters = ri.replacement_counters();
    let (_, stats) = run(nested_branch_kernel(600), Some(Box::new(ri)), default_cfg());
    let total: u64 = counters.borrow().iter().sum();
    assert_eq!(total, stats.engine.table_replacements);
    assert!(total > 0, "a direct-mapped table must conflict on this kernel");
}

#[test]
fn ri_higher_associativity_replaces_less() {
    let mut totals = Vec::new();
    for ways in [1usize, 4] {
        let ri = RegisterIntegration::new(RiConfig::default().with_sets(64).with_ways(ways));
        let counters = ri.replacement_counters();
        let _ = run(nested_branch_kernel(600), Some(Box::new(ri)), default_cfg());
        totals.push(counters.borrow().iter().sum::<u64>());
    }
    assert!(
        totals[1] < totals[0],
        "4-way ({}) should replace less than direct-mapped ({})",
        totals[1],
        totals[0]
    );
}

#[test]
fn snoops_poison_the_bloom_filter() {
    let engine =
        MultiStreamReuse::new(MssrConfig::default().with_mem_policy(MemCheckPolicy::BloomFilter));
    let mut sim =
        Simulator::with_engine(default_cfg(), store_aliasing_kernel(400), Box::new(engine));
    // Aggressively snoop the whole array: reused-load candidates are
    // poisoned. (The Bloom filter resets whenever all Squash Logs empty,
    // so a rare reuse can still slip through between a reset and the
    // next snoop batch — the mechanism only needs to catch snoops that
    // arrived while the load sat in a log.)
    while !sim.is_halted() {
        sim.run_cycles(10);
        for slot in 0..8 {
            sim.inject_snoop(0x4000 + slot * 8);
        }
    }
    let stats = sim.stats();
    assert!(stats.snoops > 0);
    // Compare with an unsnooped run of the same configuration: snooping
    // must suppress the vast majority of load reuse.
    let (_, unsnooped) = run(
        store_aliasing_kernel(400),
        Some(Box::new(MultiStreamReuse::new(
            MssrConfig::default().with_mem_policy(MemCheckPolicy::BloomFilter),
        ))),
        default_cfg(),
    );
    assert!(
        stats.engine.reused_loads * 5 <= unsnooped.engine.reused_loads.max(1),
        "snooping should suppress load reuse: snooped {} vs unsnooped {}",
        stats.engine.reused_loads,
        unsnooped.engine.reused_loads
    );
    // And memory must remain consistent regardless.
    for slot in 0..8u64 {
        assert_eq!(sim.read_mem_u64(0x4000 + slot * 8), 400 / 8);
    }
}

#[test]
fn dci_equals_mssr_with_one_stream() {
    let dci = MultiStreamReuse::dci();
    assert_eq!(dci.name(), "dci");
    assert_eq!(dci.config().streams, 1);
    let mssr = MultiStreamReuse::new(MssrConfig::default());
    assert_eq!(mssr.name(), "mssr");
}

#[test]
fn vpn_restricted_wpb_still_works_and_stays_correct() {
    let engine = MultiStreamReuse::new(MssrConfig::default().with_vpn_restrict(true));
    let (sim, stats) = run(nested_branch_kernel(400), Some(Box::new(engine)), default_cfg());
    let (acc, acc2) = nested_branch_reference(400);
    assert_eq!(sim.read_mem_u64(0x100), acc);
    assert_eq!(sim.read_mem_u64(0x108), acc2);
    // The kernel fits one page, so reuse should still happen.
    assert!(stats.engine.reuse_grants > 0);
}

#[test]
fn constant_rgid_resets_never_alias_generations() {
    // Regression test for a window-aliasing bug: a squash arriving in the
    // same cycle as (but after) an RGID-reset request used to capture a
    // stream with old-window generations, which could then falsely match
    // new-window generations and grant stale values. With 4-bit RGIDs the
    // counters wrap every few iterations, so resets and squashes collide
    // constantly; any aliasing shows up as an architectural mismatch.
    for streams in [1usize, 2, 4] {
        let cfg = SimConfig { rgid_bits: 4, ..SimConfig::default() }.with_max_cycles(5_000_000);
        let engine = MultiStreamReuse::new(MssrConfig::default().with_streams(streams));
        let (sim, stats) = run(nested_branch_kernel(600), Some(Box::new(engine)), cfg);
        let (acc, acc2) = nested_branch_reference(600);
        assert_eq!(sim.read_mem_u64(0x100), acc, "{streams} streams");
        assert_eq!(sim.read_mem_u64(0x108), acc2, "{streams} streams");
        assert!(stats.engine.rgid_resets > 0, "4-bit RGIDs must reset constantly");
    }
}

#[test]
fn multiple_block_fetching_stays_correct_and_detects_reconvergence() {
    // §3.9.1: with two prediction blocks per cycle, reconvergence
    // detection runs on each block; architectural results are unchanged
    // and reuse still happens.
    let iters = 400;
    let (acc, acc2) = nested_branch_reference(iters);
    let cfg = SimConfig::default().with_fetch_blocks_per_cycle(2).with_max_cycles(5_000_000);
    let engine = MultiStreamReuse::new(MssrConfig::default());
    let (sim, stats) = run(nested_branch_kernel(iters), Some(Box::new(engine)), cfg.clone());
    assert_eq!(sim.read_mem_u64(0x100), acc);
    assert_eq!(sim.read_mem_u64(0x108), acc2);
    assert!(stats.engine.reuse_grants > 0);
    // The wider frontend must not be slower than the single-block one.
    let (_, single) = run(
        nested_branch_kernel(iters),
        Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))),
        default_cfg(),
    );
    assert!(
        stats.cycles as f64 <= single.cycles as f64 * 1.05,
        "two blocks/cycle ({}) should not lose to one ({})",
        stats.cycles,
        single.cycles
    );
}

#[test]
fn tiny_timeout_invalidates_streams() {
    let engine = MultiStreamReuse::new(MssrConfig::default().with_timeout(8));
    let (_, stats) = run(nested_branch_kernel(400), Some(Box::new(engine)), default_cfg());
    assert!(
        stats.engine.timeouts > 0,
        "an 8-instruction timeout must expire streams on this kernel"
    );
}
