//! Aligner edge cases and the free-list conservation invariant.
//!
//! The aligner tests pin down the §3.4 corner cases (empty WPB, exact
//! single-block overlap, reconvergence-PC tie-breaking). The free-list
//! tests drive [`MultiStreamReuse`] through every path that acquires or
//! releases physical-register holds — capture, wrap-around replacement,
//! pressure reclaim, verification flush, RGID reset — and assert the
//! engine never leaks a register: after its state is invalidated, every
//! hold it took has been released.

use mssr_core::align::{find_overlap, find_overlap_vpn, vpn};
use mssr_core::{MssrConfig, MultiStreamReuse};
use mssr_isa::{ArchReg, Opcode, Pc};
use mssr_sim::{
    BlockRange, DstBinding, EngineCtx, FlushKind, FreeList, PhysReg, ReuseEngine, Rgid, SeqNum,
    SquashEvent, SquashedInst, StageCtx,
};

fn r(s: u64, e: u64) -> BlockRange {
    BlockRange { start: Pc::new(s), end: Pc::new(e) }
}

#[test]
fn empty_wpb_never_reconverges() {
    let head = r(0x100, 0x11c);
    assert_eq!(find_overlap(&head, &[]), None);
    assert_eq!(find_overlap_vpn(&head, vpn(head.start), &[], vpn(head.start)), None);
}

#[test]
fn exact_single_block_overlap() {
    // Head identical to the only WPB entry: reconvergence at its first
    // instruction, on entry 0.
    let entries = [r(0x200, 0x21c)];
    let hit = find_overlap(&r(0x200, 0x21c), &entries).unwrap();
    assert_eq!(hit.entry, 0);
    assert_eq!(hit.reconv_pc, Pc::new(0x200));
    // A single-instruction block against itself is the degenerate case.
    let one = [r(0x300, 0x300)];
    let hit = find_overlap(&r(0x300, 0x300), &one).unwrap();
    assert_eq!(hit.entry, 0);
    assert_eq!(hit.reconv_pc, Pc::new(0x300));
}

#[test]
fn reconv_pc_tie_breaking_is_max_of_starts() {
    let entries = [r(0x400, 0x43c)];
    // Head starts before the WPB block: the WPB start wins.
    assert_eq!(find_overlap(&r(0x3f0, 0x40c), &entries).unwrap().reconv_pc, Pc::new(0x400));
    // Head starts after the WPB start: the head start wins.
    assert_eq!(find_overlap(&r(0x410, 0x44c), &entries).unwrap().reconv_pc, Pc::new(0x410));
    // Equal starts: the tie is trivial — both aligners agree.
    assert_eq!(find_overlap(&r(0x400, 0x40c), &entries).unwrap().reconv_pc, Pc::new(0x400));
    // Overlap at exactly one instruction, from both directions.
    assert_eq!(
        find_overlap(&r(0x43c, 0x45c), &entries).unwrap().reconv_pc,
        Pc::new(0x43c),
        "head tail-touches the WPB block"
    );
    assert_eq!(
        find_overlap(&r(0x3e0, 0x400), &entries).unwrap().reconv_pc,
        Pc::new(0x400),
        "head head-touches the WPB block"
    );
}

// --- free-list conservation -------------------------------------------

const PHYS_REGS: usize = 256;
/// Registers 0..LIVE are live (retainable) in the test free list.
const LIVE: usize = 100;

fn freelist() -> FreeList {
    FreeList::new(PHYS_REGS, LIVE)
}

fn sq_inst(pc: u64, preg: usize, executed: bool) -> SquashedInst {
    SquashedInst {
        seq: SeqNum::new(pc / 4),
        pc: Pc::new(pc),
        op: Opcode::Add,
        dst: Some(DstBinding { arch: ArchReg::A0, preg: PhysReg::new(preg), rgid: Rgid::new(1) }),
        src_rgids: [None, None],
        src_pregs: [None, None],
        executed,
        is_load: false,
        is_store: false,
        load_addr: None,
    }
}

fn event(id: u64, pcs: &[(u64, usize, bool)]) -> SquashEvent {
    SquashEvent {
        squash_id: id,
        cause_seq: SeqNum::new(id * 100),
        cause_pc: Pc::new(0xf00),
        redirect: Pc::new(0x2000),
        insts: pcs.iter().map(|&(pc, preg, ex)| sq_inst(pc, preg, ex)).collect(),
        frontend_blocks: vec![],
    }
}

/// Snapshot of every hold count plus the available count.
fn holds_snapshot(fl: &FreeList) -> (Vec<u32>, usize) {
    ((0..PHYS_REGS).map(|p| fl.holds(PhysReg::new(p))).collect(), fl.available())
}

#[test]
fn squash_capture_and_invalidation_conserve_registers() {
    let mut fl = freelist();
    let mut reset = false;
    let before = holds_snapshot(&fl);
    let mut e = MultiStreamReuse::new(MssrConfig::default().with_streams(2));

    // Many capture cycles: each squash retains its executed destinations;
    // wrap-around replacement must release the evicted stream's holds.
    for k in 0..24u64 {
        let p0 = (k as usize * 3) % LIVE;
        let p1 = (k as usize * 3 + 1) % LIVE;
        let pcs = [(0x1000 + k * 0x100, p0, true), (0x1004 + k * 0x100, p1, k % 3 != 0)];
        let mut ctx = EngineCtx {
            free_list: &mut fl,
            stage: StageCtx { cycle: k, rob_size: 256 },
            rgid_reset_requested: &mut reset,
        };
        e.on_mispredict_squash(&event(k + 1, &pcs), &mut ctx);
    }
    // A reuse-verification flush invalidates every stream (§3.7): all
    // remaining reservations must come back.
    {
        let mut ctx = EngineCtx {
            free_list: &mut fl,
            stage: StageCtx { cycle: 100, rob_size: 256 },
            rgid_reset_requested: &mut reset,
        };
        e.on_flush(FlushKind::ReuseVerification, &mut ctx);
    }
    assert_eq!(holds_snapshot(&fl), before, "flush leaked or over-released holds");
}

#[test]
fn pressure_reclaim_conserves_registers() {
    let mut fl = freelist();
    let mut reset = false;
    let before = holds_snapshot(&fl);
    let mut e = MultiStreamReuse::new(MssrConfig::default().with_streams(4));
    for k in 0..4u64 {
        let mut ctx = EngineCtx {
            free_list: &mut fl,
            stage: StageCtx { cycle: k, rob_size: 256 },
            rgid_reset_requested: &mut reset,
        };
        e.on_mispredict_squash(
            &event(k + 1, &[(0x1000 + k * 0x100, k as usize + 10, true)]),
            &mut ctx,
        );
    }
    // Starve rename until the engine has surrendered every stream.
    for k in 0..4u64 {
        let mut ctx = EngineCtx {
            free_list: &mut fl,
            stage: StageCtx { cycle: 10 + k, rob_size: 256 },
            rgid_reset_requested: &mut reset,
        };
        e.on_register_pressure(&mut ctx);
    }
    assert_eq!(holds_snapshot(&fl), before, "pressure reclaim leaked holds");
}

#[test]
fn rgid_reset_conserves_registers() {
    let mut fl = freelist();
    let mut reset = false;
    let before = holds_snapshot(&fl);
    let mut e = MultiStreamReuse::new(MssrConfig::default());
    {
        let mut ctx = EngineCtx {
            free_list: &mut fl,
            stage: StageCtx { cycle: 0, rob_size: 256 },
            rgid_reset_requested: &mut reset,
        };
        e.on_mispredict_squash(&event(1, &[(0x1000, 80, true), (0x1004, 81, true)]), &mut ctx);
        for _ in 0..9 {
            e.on_rgid_overflow(&mut ctx);
        }
    }
    assert!(reset, "overflow threshold requests a global reset");
    {
        let mut ctx = EngineCtx {
            free_list: &mut fl,
            stage: StageCtx { cycle: 1, rob_size: 256 },
            rgid_reset_requested: &mut reset,
        };
        // State captured between the request and the end-of-cycle reset
        // must also be dropped and released.
        e.on_mispredict_squash(&event(2, &[(0x3000, 82, true)]), &mut ctx);
        e.on_rgid_reset(&mut ctx);
    }
    assert_eq!(holds_snapshot(&fl), before, "RGID reset leaked holds");
}

#[test]
fn baseline_pipeline_returns_every_transient_register() {
    // End-to-end: after a halted baseline run the only live physical
    // registers are the committed architectural mappings, so the free
    // list must hold exactly phys_regs - NUM_ARCH_REGS.
    use mssr_sim::SimConfig;
    use mssr_workloads::microbench;
    let w = microbench::nested_mispred(50);
    let cfg = SimConfig::default().with_max_cycles(10_000_000);
    let mut sim = w.instantiate(cfg.clone());
    sim.run();
    assert!(sim.is_halted());
    assert_eq!(sim.free_phys_regs(), cfg.phys_regs - mssr_isa::NUM_ARCH_REGS);
}

#[test]
fn engine_pipeline_never_leaks_registers_across_runs() {
    // With an engine attached, streams may legitimately hold
    // reservations at halt, but two identical runs must hold identical
    // amounts — a leak that grows with work would diverge under
    // different iteration counts long before exhausting the file.
    use mssr_sim::SimConfig;
    use mssr_workloads::microbench;
    let cfg = SimConfig::default().with_max_cycles(10_000_000);
    let w = microbench::nested_mispred(50);
    let runs: Vec<usize> = (0..2)
        .map(|_| {
            let mut sim = w.instantiate_with(
                cfg.clone(),
                Box::new(MultiStreamReuse::new(MssrConfig::default())),
            );
            sim.run();
            assert!(sim.is_halted());
            sim.free_phys_regs()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    // And the engine can never hold more than its streams can log.
    let max_reserved = MssrConfig::default().streams * MssrConfig::default().log_entries;
    assert!(
        runs[0] + mssr_isa::NUM_ARCH_REGS + max_reserved >= cfg.phys_regs,
        "more registers missing than the engine could possibly reserve"
    );
}
