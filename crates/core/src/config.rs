//! Configuration of the Multi-Stream Squash Reuse engine.

/// How reused loads are protected against memory-order violations
/// (paper §3.8.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemCheckPolicy {
    /// Re-execute every reused load and compare the fresh value with the
    /// reused one before commit; a mismatch flushes the pipeline and
    /// invalidates the Squash Logs. This is the mechanism the paper
    /// evaluates ("we choose to implement the latter mechanism for
    /// simplicity").
    LoadVerification,
    /// Track executed-store and snoop addresses in a Bloom filter; a
    /// load whose recorded address hits the filter is not reused.
    BloomFilter,
}

/// Parameters of the Multi-Stream Squash Reuse mechanism.
///
/// The default is the paper's typical configuration: 4 streams, 16
/// Wrong-Path Buffer block entries per stream, 64 Squash Log instruction
/// entries per stream, a 1024-instruction reconvergence timeout, an
/// 8-overflow RGID reset threshold, and load-verification memory
/// checking.
///
/// # Example
///
/// ```
/// use mssr_core::MssrConfig;
///
/// let cfg = MssrConfig::default().with_streams(2).with_log_entries(128);
/// assert_eq!(cfg.streams, 2);
/// assert_eq!(cfg.log_entries, 128);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct MssrConfig {
    /// Number of squashed streams tracked simultaneously (N).
    pub streams: usize,
    /// Wrong-Path Buffer block entries per stream (M).
    pub wpb_entries: usize,
    /// Squash Log instruction entries per stream (P).
    pub log_entries: usize,
    /// Invalidate a stream if no reconvergence is found within this many
    /// renamed instructions (paper §3.3.2 uses 1024).
    pub timeout_insts: u64,
    /// Reused-load protection mechanism.
    pub mem_policy: MemCheckPolicy,
    /// Restrict each WPB stream to a single 4 KiB virtual page (the
    /// timing optimization of §3.4: entries store PC bits 12–1 and one
    /// VPN register per stream).
    pub vpn_restrict: bool,
    /// Accumulated RGID overflow events that trigger a global reset.
    pub overflow_reset_threshold: u64,
    /// Bloom filter size in bits (power of two), for
    /// [`MemCheckPolicy::BloomFilter`].
    pub bloom_bits: usize,
}

impl Default for MssrConfig {
    fn default() -> MssrConfig {
        MssrConfig {
            streams: 4,
            wpb_entries: 16,
            log_entries: 64,
            timeout_insts: 1024,
            mem_policy: MemCheckPolicy::LoadVerification,
            vpn_restrict: false,
            overflow_reset_threshold: 8,
            bloom_bits: 1024,
        }
    }
}

impl MssrConfig {
    /// Sets the number of tracked streams (N).
    pub fn with_streams(mut self, n: usize) -> MssrConfig {
        self.streams = n;
        self
    }

    /// Sets the WPB block entries per stream (M).
    pub fn with_wpb_entries(mut self, m: usize) -> MssrConfig {
        self.wpb_entries = m;
        self
    }

    /// Sets the Squash Log entries per stream (P).
    pub fn with_log_entries(mut self, p: usize) -> MssrConfig {
        self.log_entries = p;
        self
    }

    /// Sets the reconvergence timeout in renamed instructions.
    pub fn with_timeout(mut self, t: u64) -> MssrConfig {
        self.timeout_insts = t;
        self
    }

    /// Sets the reused-load protection mechanism.
    pub fn with_mem_policy(mut self, p: MemCheckPolicy) -> MssrConfig {
        self.mem_policy = p;
        self
    }

    /// Enables or disables the single-page WPB restriction.
    pub fn with_vpn_restrict(mut self, on: bool) -> MssrConfig {
        self.vpn_restrict = on;
        self
    }

    /// A configuration that models DCI (Dynamic Control Independence):
    /// queue-based squash reuse limited to a single squashed stream. The
    /// paper evaluates DCI exactly this way (§4.1.2).
    pub fn dci() -> MssrConfig {
        MssrConfig::default().with_streams(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_typical_configuration() {
        let c = MssrConfig::default();
        assert_eq!(c.streams, 4);
        assert_eq!(c.wpb_entries, 16);
        assert_eq!(c.log_entries, 64);
        assert_eq!(c.timeout_insts, 1024);
        assert_eq!(c.overflow_reset_threshold, 8);
        assert_eq!(c.mem_policy, MemCheckPolicy::LoadVerification);
        assert!(!c.vpn_restrict);
    }

    #[test]
    fn dci_is_single_stream() {
        assert_eq!(MssrConfig::dci().streams, 1);
    }

    #[test]
    fn builders_apply() {
        let c = MssrConfig::default()
            .with_streams(2)
            .with_wpb_entries(32)
            .with_log_entries(128)
            .with_timeout(512)
            .with_mem_policy(MemCheckPolicy::BloomFilter)
            .with_vpn_restrict(true);
        assert_eq!(c.streams, 2);
        assert_eq!(c.wpb_entries, 32);
        assert_eq!(c.log_entries, 128);
        assert_eq!(c.timeout_insts, 512);
        assert_eq!(c.mem_policy, MemCheckPolicy::BloomFilter);
        assert!(c.vpn_restrict);
    }
}
