//! Per-stream state: one Wrong-Path Buffer (block ranges) paired with one
//! Squash Log (instruction entries), as in paper §3.3.
//!
//! Each branch-misprediction squash dumps its wrong path into one stream:
//! the WPB records the fetch-block PC ranges (used by the fetch-stage
//! aligners to detect reconvergence), and the Squash Log mirrors the same
//! instruction sequence at instruction granularity (used by the rename
//! stage for the lockstep reuse test). Streams are replaced round-robin.

use mssr_isa::{ArchReg, Opcode, Pc};
use mssr_sim::{
    BlockRange, CkptError, CkptReader, CkptWriter, DstBinding, PhysReg, Rgid, SeqNum, SquashEvent,
};

/// Decodes an [`ArchReg`] from its iteration index (checkpoint wire form).
pub(crate) fn arch_reg_from(r: &mut CkptReader) -> Result<ArchReg, CkptError> {
    let i = r.u8()? as usize;
    ArchReg::all()
        .nth(i)
        .ok_or_else(|| CkptError::Corrupt(format!("arch register index {i} out of range")))
}

/// Decodes an [`Opcode`] from its stable wire code.
pub(crate) fn opcode_from(r: &mut CkptReader) -> Result<Opcode, CkptError> {
    let c = r.u8()?;
    Opcode::from_code(c).ok_or_else(|| CkptError::Corrupt(format!("unknown opcode code {c}")))
}

/// One Squash Log entry (paper Table 2: source RGIDs, destination RGID,
/// destination physical register, valid bit — plus simulation-side
/// metadata).
#[derive(Clone, Debug)]
pub struct LogEntry {
    /// PC of the squashed instruction.
    pub pc: Pc,
    /// Opcode (used to confirm lockstep identity).
    pub op: Opcode,
    /// Destination: the squashed mapping whose physical register's value
    /// is preserved.
    pub dst: Option<DstBinding>,
    /// Source RGIDs at the squashed rename (`None` = absent/`x0`).
    pub src_rgids: [Option<Rgid>; 2],
    /// Whether the wrong-path execution produced the result.
    pub executed: bool,
    /// Whether this is a load.
    pub is_load: bool,
    /// Recorded wrong-path address for executed loads.
    pub load_addr: Option<u64>,
    /// Whether this engine still holds a reservation on `dst`'s physical
    /// register.
    pub preg_held: bool,
    /// Set once the entry has been consumed by the lockstep walk (reused,
    /// failed, or skipped) — it can never grant again.
    pub consumed: bool,
}

impl LogEntry {
    fn ckpt_save(&self, w: &mut CkptWriter) {
        w.pc(self.pc);
        w.u8(self.op.code());
        match self.dst {
            None => w.bool(false),
            Some(d) => {
                w.bool(true);
                w.u8(d.arch.index() as u8);
                w.preg(d.preg);
                w.rgid(d.rgid);
            }
        }
        for g in self.src_rgids {
            w.opt_rgid(g);
        }
        w.bool(self.executed);
        w.bool(self.is_load);
        w.opt_u64(self.load_addr);
        w.bool(self.preg_held);
        w.bool(self.consumed);
    }

    fn ckpt_load(r: &mut CkptReader) -> Result<LogEntry, CkptError> {
        let pc = r.pc()?;
        let op = opcode_from(r)?;
        let dst = if r.bool()? {
            Some(DstBinding { arch: arch_reg_from(r)?, preg: r.preg()?, rgid: r.rgid()? })
        } else {
            None
        };
        Ok(LogEntry {
            pc,
            op,
            dst,
            src_rgids: [r.opt_rgid()?, r.opt_rgid()?],
            executed: r.bool()?,
            is_load: r.bool()?,
            load_addr: r.opt_u64()?,
            preg_held: r.bool()?,
            consumed: r.bool()?,
        })
    }
}

/// One squashed stream: WPB blocks + Squash Log entries.
#[derive(Clone, Debug, Default)]
pub struct Stream {
    /// Whether the stream holds a squashed path.
    pub valid: bool,
    /// The squash event that created it (recency & stream distance).
    pub squash_id: u64,
    /// Sequence number of the diverging (mispredicted) branch — compared
    /// against the current redirect's branch to classify reconvergence.
    pub cause_seq: SeqNum,
    /// WPB block entries, oldest (closest to the branch) first.
    pub blocks: Vec<BlockRange>,
    /// VPN of the stream's page when the single-page restriction is on.
    pub vpn: u64,
    /// Squash Log entries, oldest first; index i corresponds to stream
    /// instruction offset i.
    pub log: Vec<LogEntry>,
    /// Value of the engine's renamed-instruction counter at creation
    /// (reconvergence timeout clock).
    pub created_at: u64,
}

impl Stream {
    /// Fills the stream from a squash event.
    ///
    /// WPB blocks are rebuilt from the squashed instruction PCs plus the
    /// frontend's in-flight block ranges, truncated to `max_blocks`
    /// (younger blocks are discarded, per §3.3.2). The Squash Log takes
    /// the first `max_log` instructions. When `vpn_restrict` is set, the
    /// stream covers a single 4 KiB page: block collection stops at the
    /// first out-of-page block.
    ///
    /// After capture, log entries with `preg_held` set are exactly the
    /// executed instructions with destinations — the caller must `retain`
    /// their physical registers (walk the log in order).
    ///
    /// Runs once per squash on the hot path; fills `self.blocks` /
    /// `self.log` in place (capacities kept across captures) and never
    /// allocates once the stream has reached its steady-state size.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware interface: one dump port per field group
    pub fn capture(
        &mut self,
        ev: &SquashEvent,
        renamed_counter: u64,
        max_blocks: usize,
        max_log: usize,
        max_block_insts: usize,
        vpn_restrict: bool,
        load_barrier: Option<SeqNum>,
    ) {
        self.valid = true;
        self.squash_id = ev.squash_id;
        self.cause_seq = ev.cause_seq;
        self.created_at = renamed_counter;
        self.blocks.clear();
        self.log.clear();

        // Rebuild fetch-block ranges from the squashed instruction PCs,
        // merging directly into the stream's own buffer.
        for inst in &ev.insts {
            match self.blocks.last_mut() {
                Some(b) if inst.pc == b.end.next() && b.len() < max_block_insts as u64 => {
                    b.end = inst.pc;
                }
                _ => self.blocks.push(BlockRange { start: inst.pc, end: inst.pc }),
            }
        }
        self.blocks.extend(ev.frontend_blocks.iter().copied());

        // Truncate at the first block over the WPB size (younger blocks
        // are discarded) or, under the single-page restriction, the first
        // block on a different page than the stream head.
        self.vpn = self.blocks.first().map_or(0, |b| crate::align::vpn(b.start));
        let vpn = self.vpn;
        if let Some(cut) =
            self.blocks.iter().position(|b| vpn_restrict && crate::align::vpn(b.start) != vpn)
        {
            self.blocks.truncate(cut);
        }
        self.blocks.truncate(max_blocks);

        for inst in ev.insts.iter().take(max_log) {
            let executed = inst.executed;
            // Loads renamed at or before the barrier read memory before
            // the hazard filter lost its evidence (a Bloom clear); they
            // must never be reuse candidates.
            let load_ok = !inst.is_load || load_barrier.is_none_or(|b| inst.seq > b);
            let reusable = executed && inst.dst.is_some() && !inst.is_store && load_ok;
            self.log.push(LogEntry {
                pc: inst.pc,
                op: inst.op,
                dst: inst.dst,
                src_rgids: inst.src_rgids,
                executed: executed && load_ok,
                is_load: inst.is_load,
                load_addr: inst.load_addr,
                preg_held: reusable,
                consumed: false,
            });
        }
    }

    /// Drains the stream, calling `release` (in log order) for every
    /// physical register whose hold must be dropped (unconsumed,
    /// still-held destinations). Closure-based so the hot path never
    /// materializes the register list.
    pub fn invalidate(&mut self, mut release: impl FnMut(PhysReg)) {
        for e in self.log.iter().filter(|e| e.preg_held) {
            if let Some(d) = e.dst {
                release(d.preg);
            }
        }
        self.valid = false;
        self.blocks.clear();
        self.log.clear();
    }

    /// Serializes the stream into a checkpoint stream.
    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.bool(self.valid);
        w.u64(self.squash_id);
        w.seq(self.cause_seq);
        w.u64(self.blocks.len() as u64);
        for b in &self.blocks {
            w.pc(b.start);
            w.pc(b.end);
        }
        w.u64(self.vpn);
        w.u64(self.log.len() as u64);
        for e in &self.log {
            e.ckpt_save(w);
        }
        w.u64(self.created_at);
    }

    /// Restores a stream saved by [`Stream::ckpt_save`].
    pub(crate) fn ckpt_load(r: &mut CkptReader) -> Result<Stream, CkptError> {
        let valid = r.bool()?;
        let squash_id = r.u64()?;
        let cause_seq = r.seq()?;
        let nb = r.seq_len(16)?;
        let mut blocks = Vec::with_capacity(nb);
        for _ in 0..nb {
            blocks.push(BlockRange { start: r.pc()?, end: r.pc()? });
        }
        let vpn = r.u64()?;
        let nl = r.seq_len(14)?;
        let mut log = Vec::with_capacity(nl);
        for _ in 0..nl {
            log.push(LogEntry::ckpt_load(r)?);
        }
        Ok(Stream { valid, squash_id, cause_seq, blocks, vpn, log, created_at: r.u64()? })
    }

    /// The instruction offset of `pc` within the stream, derived from the
    /// block structure — the paper's "offset of the reconvergent
    /// instruction from the start of the squashed stream", communicated
    /// from the IFU to the Rename stage.
    pub fn offset_of(&self, block_idx: usize, pc: Pc) -> u64 {
        let mut off = 0u64;
        for b in &self.blocks[..block_idx] {
            off += b.len();
        }
        off + (pc - self.blocks[block_idx].start) / mssr_isa::INST_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_sim::SquashedInst;

    fn inst(pc: u64, executed: bool, dst_preg: Option<usize>) -> SquashedInst {
        SquashedInst {
            seq: SeqNum::new(pc / 4),
            pc: Pc::new(pc),
            op: Opcode::Add,
            dst: dst_preg.map(|p| DstBinding {
                arch: ArchReg::A0,
                preg: PhysReg::new(p),
                rgid: Rgid::new(1),
            }),
            src_rgids: [None, None],
            src_pregs: [None, None],
            executed,
            is_load: false,
            is_store: false,
            load_addr: None,
        }
    }

    fn event(insts: Vec<SquashedInst>, frontend: Vec<BlockRange>) -> SquashEvent {
        SquashEvent {
            squash_id: 7,
            cause_seq: SeqNum::new(100),
            cause_pc: Pc::new(0xffc),
            redirect: Pc::new(0x2000),
            insts,
            frontend_blocks: frontend,
        }
    }

    #[test]
    fn capture_groups_contiguous_pcs_into_blocks() {
        let mut s = Stream::default();
        let insts = vec![
            inst(0x1000, true, Some(80)),
            inst(0x1004, true, Some(81)),
            inst(0x2000, false, None), // discontinuity: taken jump landed here
            inst(0x2004, true, Some(82)),
        ];
        s.capture(&event(insts, vec![]), 0, 16, 64, 8, false, None);
        assert_eq!(s.blocks.len(), 2);
        assert_eq!(s.blocks[0], BlockRange { start: Pc::new(0x1000), end: Pc::new(0x1004) });
        assert_eq!(s.blocks[1], BlockRange { start: Pc::new(0x2000), end: Pc::new(0x2004) });
        let held: Vec<usize> =
            s.log.iter().enumerate().filter(|(_, e)| e.preg_held).map(|(i, _)| i).collect();
        assert_eq!(held, vec![0, 1, 3], "executed instructions with destinations");
        assert_eq!(s.log.len(), 4);
        assert!(s.log[0].preg_held);
        assert!(!s.log[2].preg_held);
    }

    #[test]
    fn capture_splits_blocks_at_fetch_size() {
        let mut s = Stream::default();
        let insts: Vec<SquashedInst> = (0..10).map(|i| inst(0x1000 + i * 4, false, None)).collect();
        s.capture(&event(insts, vec![]), 0, 16, 64, 8, false, None);
        assert_eq!(s.blocks.len(), 2);
        assert_eq!(s.blocks[0].len(), 8);
        assert_eq!(s.blocks[1].len(), 2);
    }

    #[test]
    fn capture_truncates_blocks_and_log() {
        let mut s = Stream::default();
        let insts: Vec<SquashedInst> =
            (0..40).map(|i| inst(0x1000 + i * 4, true, Some(80 + i as usize))).collect();
        s.capture(&event(insts, vec![]), 0, 2, 16, 8, false, None);
        assert_eq!(s.blocks.len(), 2, "younger blocks discarded");
        assert_eq!(s.log.len(), 16, "younger squashed instructions discarded");
        let held = s.log.iter().filter(|e| e.preg_held).count();
        assert_eq!(held, 16, "only logged entries hold registers");
    }

    #[test]
    fn capture_appends_frontend_blocks() {
        let mut s = Stream::default();
        let fe = vec![BlockRange { start: Pc::new(0x3000), end: Pc::new(0x301c) }];
        s.capture(&event(vec![inst(0x1000, false, None)], fe.clone()), 0, 16, 64, 8, false, None);
        assert_eq!(s.blocks.len(), 2);
        assert_eq!(s.blocks[1], fe[0]);
        assert_eq!(s.log.len(), 1, "frontend blocks have no log entries");
    }

    #[test]
    fn vpn_restriction_stops_at_page_boundary() {
        let mut s = Stream::default();
        let insts =
            vec![inst(0x1ff8, false, None), inst(0x1ffc, false, None), inst(0x2000, false, None)];
        s.capture(&event(insts, vec![]), 0, 16, 64, 8, true, None);
        // 0x1ff8..0x1ffc is page 1; 0x2000 starts page 2 → dropped.
        assert_eq!(s.blocks.len(), 1);
        assert_eq!(s.vpn, 1);
    }

    #[test]
    fn offset_accounts_for_prior_blocks() {
        let mut s = Stream::default();
        let insts = vec![
            inst(0x1000, false, None),
            inst(0x1004, false, None),
            inst(0x2000, false, None),
            inst(0x2004, false, None),
            inst(0x2008, false, None),
        ];
        s.capture(&event(insts, vec![]), 0, 16, 64, 8, false, None);
        assert_eq!(s.offset_of(0, Pc::new(0x1000)), 0);
        assert_eq!(s.offset_of(0, Pc::new(0x1004)), 1);
        assert_eq!(s.offset_of(1, Pc::new(0x2000)), 2);
        assert_eq!(s.offset_of(1, Pc::new(0x2008)), 4);
    }

    #[test]
    fn invalidate_returns_held_registers_once() {
        let mut s = Stream::default();
        let insts = vec![inst(0x1000, true, Some(90)), inst(0x1004, true, Some(91))];
        s.capture(&event(insts, vec![]), 0, 16, 64, 8, false, None);
        s.log[0].preg_held = false; // consumed by a grant
        let mut released = Vec::new();
        s.invalidate(|p| released.push(p));
        assert_eq!(released, vec![PhysReg::new(91)]);
        assert!(!s.valid);
        assert!(s.log.is_empty());
        released.clear();
        s.invalidate(|p| released.push(p));
        assert!(released.is_empty(), "second invalidation releases nothing");
    }
}
