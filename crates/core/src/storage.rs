//! The storage model of paper Table 2: how many bits the Multi-Stream
//! Squash Reuse mechanism adds to the processor.
//!
//! Storage splits into a *constant* part (ROB RGID fields, RAT RGIDs, RAT
//! checkpoints — independent of the stream configuration) and a
//! *variable* part (Wrong-Path Buffers and Squash Logs, scaling with the
//! number of streams N, WPB entries per stream M, and Squash Log entries
//! per stream P).

/// Parameters of the storage model, defaulted to the paper's values.
#[derive(Clone, Copy, Debug)]
pub struct StorageParams {
    /// Number of streams (N).
    pub streams: usize,
    /// WPB block entries per stream (M).
    pub wpb_entries: usize,
    /// Squash Log entries per stream (P).
    pub log_entries: usize,
    /// ROB entries (paper: 256).
    pub rob_entries: usize,
    /// Architectural registers (paper: 64).
    pub arch_regs: usize,
    /// RAT checkpoints (paper: 32).
    pub rat_checkpoints: usize,
    /// RGID width in bits (paper: 6).
    pub rgid_bits: usize,
    /// Physical register name width in bits (paper: 8, for 256 registers).
    pub preg_bits: usize,
    /// Source registers per Squash Log entry (paper: 3, RISC-V FMA).
    pub srcs_per_entry: usize,
    /// PC bits stored per WPB entry bound (paper: 11, PC bits 11..1).
    pub pc_bits: usize,
    /// VPN register width per stream (paper: 36, PC bits 47..12 under sv48).
    pub vpn_bits: usize,
}

impl Default for StorageParams {
    fn default() -> StorageParams {
        StorageParams {
            streams: 4,
            wpb_entries: 16,
            log_entries: 64,
            rob_entries: 256,
            arch_regs: 64,
            rat_checkpoints: 32,
            rgid_bits: 6,
            preg_bits: 8,
            srcs_per_entry: 3,
            pc_bits: 11,
            vpn_bits: 36,
        }
    }
}

/// A computed storage breakdown, in bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageBreakdown {
    /// Constant storage: ROB RGIDs + RAT RGIDs + checkpointed RAT RGIDs.
    pub constant_bits: u64,
    /// Variable storage: WPB + Squash Log.
    pub variable_bits: u64,
}

impl StorageBreakdown {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.constant_bits + self.variable_bits
    }

    /// Constant storage in KiB.
    pub fn constant_kib(&self) -> f64 {
        self.constant_bits as f64 / 8.0 / 1024.0
    }

    /// Variable storage in KiB.
    pub fn variable_kib(&self) -> f64 {
        self.variable_bits as f64 / 8.0 / 1024.0
    }

    /// Total storage in KiB.
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }
}

fn log2_ceil(v: usize) -> u64 {
    (usize::BITS - v.saturating_sub(1).leading_zeros()) as u64
}

/// Evaluates the Table 2 storage formulas.
///
/// The constant part is
/// `(srcs+1) × rgid_bits × ROB + arch × rgid_bits + arch × rgid_bits × checkpoints`
/// and the variable part is
/// `(23·M + 33·P + 36)·N + log2(M·P·N⁴)` bits for the paper's field
/// widths (1 valid + 11+11 PC bits per WPB entry; 1 valid + 3×6 source
/// RGIDs + 6 destination RGID + 8 destination physical register per
/// Squash Log entry; 36-bit VPN per stream; and the stream/entry
/// pointers).
///
/// # Example
///
/// ```
/// use mssr_core::storage::{storage, StorageParams};
///
/// let b = storage(&StorageParams::default());
/// assert_eq!(b.constant_bits, 18_816); // paper: 2.30 KB
/// assert!((b.total_kib() - 3.53).abs() < 0.01); // paper: 3.53 KB
/// ```
pub fn storage(p: &StorageParams) -> StorageBreakdown {
    let constant_bits = ((p.srcs_per_entry + 1) * p.rgid_bits * p.rob_entries
        + p.arch_regs * p.rgid_bits
        + p.arch_regs * p.rgid_bits * p.rat_checkpoints) as u64;

    let n = p.streams as u64;
    let m = p.wpb_entries as u64;
    let pe = p.log_entries as u64;
    // Wrong-Path Buffer: stream read/write pointers, entry read pointer,
    // VPN per stream, and (valid + start + end) per entry.
    let wpb = 2 * log2_ceil(p.streams)
        + log2_ceil(p.wpb_entries)
        + (1 + 2 * p.pc_bits as u64) * n * m
        + p.vpn_bits as u64 * n;
    // Squash Log: pointers plus (valid + src RGIDs + dst RGID + dst preg)
    // per entry.
    let log_entry_bits = 1 + (p.srcs_per_entry * p.rgid_bits + p.rgid_bits + p.preg_bits) as u64;
    let log = 2 * log2_ceil(p.streams) + log2_ceil(p.log_entries) + log_entry_bits * n * pe;

    StorageBreakdown { constant_bits, variable_bits: wpb + log }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constant_storage() {
        // 4×6×256 + 64×6 + 64×6×32 = 18,816 bits = 2.30 KB (Table 2).
        let b = storage(&StorageParams::default());
        assert_eq!(b.constant_bits, 18_816);
        assert!((b.constant_kib() - 2.2969).abs() < 1e-3);
    }

    #[test]
    fn paper_variable_storage() {
        // (23·16 + 33·64 + 36)·4 + log2(16·64·4⁴) = 10,064 + 18 bits.
        let b = storage(&StorageParams::default());
        assert_eq!(b.variable_bits, 10_064 + 18);
        assert!((b.variable_kib() - 1.2307).abs() < 1e-3);
    }

    #[test]
    fn paper_total_is_3_53_kib() {
        let b = storage(&StorageParams::default());
        assert!(
            (b.total_kib() - 3.528).abs() < 0.01,
            "paper reports 3.53 KB, got {}",
            b.total_kib()
        );
    }

    #[test]
    fn variable_matches_closed_form() {
        // The paper's closed form: (23M + 33P + 36)N + log2(M·P·N⁴).
        for (n, m, p) in [(1usize, 16usize, 64usize), (2, 32, 64), (4, 64, 128), (8, 16, 256)] {
            let b = storage(&StorageParams {
                streams: n,
                wpb_entries: m,
                log_entries: p,
                ..StorageParams::default()
            });
            let closed = ((23 * m + 33 * p + 36) * n) as u64
                + log2_ceil(m)
                + log2_ceil(p)
                + 4 * log2_ceil(n);
            assert_eq!(b.variable_bits, closed, "N={n} M={m} P={p}");
        }
    }

    #[test]
    fn storage_scales_linearly_in_streams() {
        let one = storage(&StorageParams { streams: 1, ..StorageParams::default() });
        let four = storage(&StorageParams { streams: 4, ..StorageParams::default() });
        // Pointer bits aside, variable storage is ~4×.
        let ratio = four.variable_bits as f64 / one.variable_bits as f64;
        assert!((ratio - 4.0).abs() < 0.05, "ratio {ratio}");
        assert_eq!(
            one.constant_bits, four.constant_bits,
            "constant part is configuration-independent"
        );
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(64), 6);
    }
}
