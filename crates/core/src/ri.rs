//! Register Integration (Roth & Sohi, MICRO 2000) — the table-based
//! squash-reuse baseline the paper compares against (§2.2.3, §4.1.2).
//!
//! Squashed, executed instructions are stored in a PC-indexed,
//! set-associative *reuse table* keyed by their source **physical
//! register names**. At rename, an instruction whose PC, opcode and
//! current source physical registers match a table entry *integrates* the
//! entry's destination physical register instead of executing.
//!
//! The paper highlights three structural weaknesses, all reproduced here:
//!
//! * **Table conflicts**: code blocks cluster in memory, so entries evict
//!   each other; per-set replacement counters feed Figure 3.
//! * **Transitive invalidation**: when an entry dies (evicted or its
//!   destination register recycled), every entry referencing that
//!   register as a source must also die, recursively.
//! * **Temporal references**: one PC-indexed entry per set conflict means
//!   multiple dynamic instances fight for the same slot.

use std::cell::RefCell;
use std::rc::Rc;

use mssr_isa::{ArchReg, Opcode, Pc};
use mssr_sim::{
    fnv1a64, CkptError, CkptReader, CkptWriter, EngineCtx, EngineStats, FlushKind, PhysReg,
    RenamedInst, ReuseEngine, ReuseGrant, ReuseQuery, SeqNum, SquashEvent,
};

use crate::config::MemCheckPolicy;
use crate::memcheck::BloomFilter;
use crate::stream::{arch_reg_from, opcode_from};

/// Configuration of the Register Integration reuse table.
#[derive(Clone, Copy, Debug)]
pub struct RiConfig {
    /// Number of sets (the paper evaluates 64 and 128).
    pub sets: usize,
    /// Associativity (the paper evaluates 1, 2 and 4 ways).
    pub ways: usize,
    /// Reused-load protection mechanism (shared with the MSSR engine so
    /// comparisons are apples-to-apples).
    pub mem_policy: MemCheckPolicy,
    /// Bloom filter size for [`MemCheckPolicy::BloomFilter`].
    pub bloom_bits: usize,
}

impl Default for RiConfig {
    fn default() -> RiConfig {
        RiConfig {
            sets: 64,
            ways: 4,
            mem_policy: MemCheckPolicy::LoadVerification,
            bloom_bits: 1024,
        }
    }
}

impl RiConfig {
    /// Sets the number of sets.
    pub fn with_sets(mut self, n: usize) -> RiConfig {
        self.sets = n;
        self
    }

    /// Sets the associativity.
    pub fn with_ways(mut self, n: usize) -> RiConfig {
        self.ways = n;
        self
    }

    /// Sets the reused-load protection mechanism.
    pub fn with_mem_policy(mut self, p: MemCheckPolicy) -> RiConfig {
        self.mem_policy = p;
        self
    }
}

#[derive(Clone, Debug)]
struct RiEntry {
    pc: Pc,
    op: Opcode,
    dst_arch: ArchReg,
    dst_preg: PhysReg,
    src_pregs: [Option<PhysReg>; 2],
    is_load: bool,
    load_addr: Option<u64>,
    lru: u64,
}

/// Shared handle to the per-set replacement counters (Figure 3's data).
///
/// Obtain it with [`RegisterIntegration::replacement_counters`] *before*
/// boxing the engine into the simulator; it stays readable afterwards.
pub type RiCounters = Rc<RefCell<Vec<u64>>>;

/// The Register Integration reuse engine.
///
/// # Example
///
/// ```
/// use mssr_core::{RegisterIntegration, RiConfig};
/// use mssr_sim::ReuseEngine;
///
/// let ri = RegisterIntegration::new(RiConfig::default().with_ways(2));
/// assert_eq!(ri.name(), "ri");
/// ```
#[derive(Debug)]
pub struct RegisterIntegration {
    cfg: RiConfig,
    /// `table[set][way]`.
    table: Vec<Vec<Option<RiEntry>>>,
    tick: u64,
    replacements: RiCounters,
    bloom: BloomFilter,
    /// Highest sequence number seen at rename.
    max_seen_seq: SeqNum,
    /// Loads renamed at or before this barrier read memory before the
    /// last Bloom clear and are never inserted as reusable (see the
    /// equivalent barrier in `MultiStreamReuse`).
    bloom_barrier: SeqNum,
    /// Reusable victim-scan buffers for [`Self::invalidate_referencing`]:
    /// the evict recursion needs one list per depth, so each call pops a
    /// buffer and returns it when done. Transient — never checkpointed.
    scan_pool: Vec<Vec<(usize, usize)>>,
    stats: EngineStats,
}

impl RegisterIntegration {
    /// Creates an empty reuse table.
    pub fn new(cfg: RiConfig) -> RegisterIntegration {
        RegisterIntegration {
            table: vec![vec![None; cfg.ways]; cfg.sets],
            tick: 0,
            replacements: Rc::new(RefCell::new(vec![0; cfg.sets])),
            bloom: BloomFilter::new(cfg.bloom_bits),
            max_seen_seq: SeqNum::ZERO,
            bloom_barrier: SeqNum::ZERO,
            scan_pool: Vec::new(),
            stats: EngineStats::default(),
            cfg,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RiConfig {
        &self.cfg
    }

    /// Shared handle to the per-set replacement counters (Figure 3).
    pub fn replacement_counters(&self) -> RiCounters {
        Rc::clone(&self.replacements)
    }

    /// Number of valid entries (tests and introspection).
    pub fn occupancy(&self) -> usize {
        self.table.iter().flatten().filter(|e| e.is_some()).count()
    }

    fn set_index(&self, pc: Pc) -> usize {
        (pc.addr() >> 2) as usize % self.cfg.sets
    }

    /// Removes an entry, releasing its destination register and
    /// transitively invalidating entries that referenced it as a source
    /// (§3.7.2's expensive operation, implemented as the paper describes).
    fn evict(&mut self, set: usize, way: usize, ctx: &mut EngineCtx<'_>) {
        let Some(e) = self.table[set][way].take() else { return };
        let dead = e.dst_preg;
        ctx.free_list.release(dead);
        self.invalidate_referencing(dead, ctx);
    }

    fn invalidate_referencing(&mut self, p: PhysReg, ctx: &mut EngineCtx<'_>) {
        // Collect victims first to keep the recursion simple. The buffer
        // comes from the pool (one per recursion depth) so steady-state
        // invalidation never allocates.
        let mut victims = self.scan_pool.pop().unwrap_or_default();
        debug_assert!(victims.is_empty());
        for (s, set) in self.table.iter().enumerate() {
            for (w, e) in set.iter().enumerate() {
                if let Some(e) = e {
                    if e.src_pregs.contains(&Some(p)) {
                        victims.push((s, w));
                    }
                }
            }
        }
        for &(s, w) in &victims {
            self.stats.extra_count("ri_transitive_invalidations", 1);
            self.evict(s, w, ctx);
        }
        victims.clear();
        self.scan_pool.push(victims);
    }

    fn clear_table(&mut self, ctx: &mut EngineCtx<'_>) {
        for set in 0..self.cfg.sets {
            for way in 0..self.cfg.ways {
                if let Some(e) = self.table[set][way].take() {
                    ctx.free_list.release(e.dst_preg);
                }
            }
        }
        self.bloom.clear();
        self.bloom_barrier = self.max_seen_seq;
    }
}

trait ExtraCount {
    fn extra_count(&mut self, key: &str, n: u64);
}

impl ExtraCount for EngineStats {
    fn extra_count(&mut self, key: &str, n: u64) {
        if let Some(e) = self.extra.iter_mut().find(|(k, _)| k == key) {
            e.1 += n;
        } else {
            self.extra.push((key.to_string(), n));
        }
    }
}

impl ReuseEngine for RegisterIntegration {
    fn name(&self) -> &'static str {
        "ri"
    }

    fn on_mispredict_squash(&mut self, ev: &SquashEvent, ctx: &mut EngineCtx<'_>) {
        for inst in &ev.insts {
            if !inst.executed || inst.is_store {
                continue;
            }
            if inst.is_load
                && self.cfg.mem_policy == MemCheckPolicy::BloomFilter
                && inst.seq <= self.bloom_barrier
            {
                continue; // read predates the surviving hazard evidence
            }
            let Some(d) = inst.dst else { continue };
            let (dst_arch, dst_preg) = (d.arch, d.preg);
            if inst.op.is_control() {
                continue;
            }
            self.tick += 1;
            let set = self.set_index(inst.pc);
            // Pick an invalid way, else the LRU victim.
            let way = match (0..self.cfg.ways).find(|&w| self.table[set][w].is_none()) {
                Some(w) => w,
                None => {
                    let w = (0..self.cfg.ways)
                        .min_by_key(|&w| self.table[set][w].as_ref().map_or(0, |e| e.lru))
                        .expect("at least one way");
                    self.replacements.borrow_mut()[set] += 1;
                    self.stats.table_replacements += 1;
                    self.evict(set, w, ctx);
                    w
                }
            };
            // The squashed instruction's *source* physical names are not
            // in the event (it carries RGIDs); RI instead needs the
            // physical mappings at the squashed rename. The simulator
            // preserves them in the squashed-instruction record via the
            // ROB — reconstructed here from the event's extension below.
            let src_pregs = inst_src_pregs(inst);
            ctx.free_list.retain(dst_preg);
            self.table[set][way] = Some(RiEntry {
                pc: inst.pc,
                op: inst.op,
                dst_arch,
                dst_preg,
                src_pregs,
                is_load: inst.is_load,
                load_addr: inst.load_addr,
                lru: self.tick,
            });
            self.stats.entries_logged += 1;
        }
        self.stats.streams_captured += 1;
    }

    fn try_reuse(&mut self, q: &ReuseQuery<'_>, ctx: &mut EngineCtx<'_>) -> Option<ReuseGrant> {
        self.stats.reuse_tests += 1;
        let set = self.set_index(q.pc);
        self.tick += 1;
        let tick = self.tick;
        let way = (0..self.cfg.ways).find(|&w| {
            self.table[set][w].as_ref().is_some_and(|e| {
                e.pc == q.pc
                    && e.op == q.inst.op()
                    && Some(e.dst_arch) == q.inst.dst()
                    && e.src_pregs == q.src_pregs
            })
        });
        let Some(way) = way else {
            self.stats.reuse_fail_stale += 1;
            return None;
        };
        let e = self.table[set][way].as_mut().expect("matched way is valid");
        e.lru = tick;
        let needs_load_verify = if e.is_load {
            match self.cfg.mem_policy {
                MemCheckPolicy::BloomFilter => {
                    if e.load_addr.is_none_or(|a| self.bloom.maybe_contains(a)) {
                        self.stats.reuse_fail_mem += 1;
                        return None;
                    }
                    false
                }
                MemCheckPolicy::LoadVerification => true,
            }
        } else {
            false
        };
        // Integration: the entry is consumed and its hold transfers to
        // the live mapping.
        let e = self.table[set][way].take().expect("matched way is valid");
        let _ = ctx;
        if crate::trace_enabled() {
            eprintln!("ri-grant pc={} op={}", q.pc, e.op);
        }
        self.stats.reuse_grants += 1;
        if q.src_pregs == [None, None] {
            self.stats.extra_count("ri_no_src_grants", 1);
        }
        if e.is_load {
            self.stats.reused_loads += 1;
        }
        Some(ReuseGrant {
            preg: e.dst_preg,
            rgid: None, // RI has no RGID concept; a fresh one is allocated
            load_addr: e.load_addr,
            needs_load_verify,
        })
    }

    fn on_renamed(&mut self, r: &RenamedInst, _ctx: &mut EngineCtx<'_>) {
        self.max_seen_seq = self.max_seen_seq.max(r.seq);
    }

    fn on_flush(&mut self, kind: FlushKind, ctx: &mut EngineCtx<'_>) {
        if kind == FlushKind::ReuseVerification {
            self.clear_table(ctx);
        }
    }

    fn on_preg_freed(&mut self, p: PhysReg, ctx: &mut EngineCtx<'_>) {
        // A recycled physical register may be rewritten with a new value;
        // entries naming it as a source are no longer trustworthy.
        self.invalidate_referencing(p, ctx);
    }

    fn on_register_pressure(&mut self, ctx: &mut EngineCtx<'_>) {
        self.stats.pressure_reclaims += 1;
        self.clear_table(ctx);
    }

    fn on_rgid_reset(&mut self, ctx: &mut EngineCtx<'_>) {
        // RI does not use RGIDs, but physical-name validity is unrelated
        // to the reset; nothing to drop. (Kept explicit for clarity.)
        let _ = ctx;
    }

    fn on_store_executed(&mut self, addr: u64, _ctx: &mut EngineCtx<'_>) {
        if self.cfg.mem_policy == MemCheckPolicy::BloomFilter {
            self.bloom.insert(addr);
        }
    }

    fn on_snoop(&mut self, addr: u64, _ctx: &mut EngineCtx<'_>) {
        if self.cfg.mem_policy == MemCheckPolicy::BloomFilter {
            self.bloom.insert(addr);
        }
    }

    fn reuse_credit_latency(&self, op: Opcode, pipeline_estimate: u64) -> u64 {
        // As for MSSR: a verified reused load re-executes, recovering no
        // execution latency.
        if op == Opcode::Ld && self.cfg.mem_policy == MemCheckPolicy::LoadVerification {
            0
        } else {
            pipeline_estimate
        }
    }

    fn stats(&self) -> EngineStats {
        let mut s = self.stats.clone();
        s.extra.push(("ri_occupancy".to_string(), self.occupancy() as u64));
        s
    }

    fn reserved_hold_count(&self) -> u64 {
        // Every integration-table entry retains its destination register
        // once; eviction and invalidation release it, and a grant removes
        // the entry as the hold transfers to the new live mapping — so
        // occupancy equals the engine's outstanding reservations.
        self.occupancy() as u64
    }

    fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(fnv1a64(format!("{:?}", self.cfg).as_bytes()));
        // The table dimensions and replacement-counter length are fixed
        // by the (guarded) configuration, so no length prefixes needed.
        for set in &self.table {
            for e in set {
                match e {
                    None => w.bool(false),
                    Some(e) => {
                        w.bool(true);
                        w.pc(e.pc);
                        w.u8(e.op.code());
                        w.u8(e.dst_arch.index() as u8);
                        w.preg(e.dst_preg);
                        w.opt_preg(e.src_pregs[0]);
                        w.opt_preg(e.src_pregs[1]);
                        w.bool(e.is_load);
                        w.opt_u64(e.load_addr);
                        w.u64(e.lru);
                    }
                }
            }
        }
        w.u64(self.tick);
        for &c in self.replacements.borrow().iter() {
            w.u64(c);
        }
        self.bloom.ckpt_save(w);
        w.seq(self.max_seen_seq);
        w.seq(self.bloom_barrier);
        self.stats.ckpt_save(w);
    }

    fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        if r.u64()? != fnv1a64(format!("{:?}", self.cfg).as_bytes()) {
            return Err(CkptError::ConfigMismatch);
        }
        for set in &mut self.table {
            for slot in set {
                *slot = if r.bool()? {
                    let pc = r.pc()?;
                    let op = opcode_from(r)?;
                    let dst_arch = arch_reg_from(r)?;
                    Some(RiEntry {
                        pc,
                        op,
                        dst_arch,
                        dst_preg: r.preg()?,
                        src_pregs: [r.opt_preg()?, r.opt_preg()?],
                        is_load: r.bool()?,
                        load_addr: r.opt_u64()?,
                        lru: r.u64()?,
                    })
                } else {
                    None
                };
            }
        }
        self.tick = r.u64()?;
        for c in self.replacements.borrow_mut().iter_mut() {
            *c = r.u64()?;
        }
        self.bloom.ckpt_load(r)?;
        self.max_seen_seq = r.seq()?;
        self.bloom_barrier = r.seq()?;
        self.stats = EngineStats::ckpt_load(r)?;
        Ok(())
    }
}

/// Source physical registers of a squashed instruction.
fn inst_src_pregs(inst: &mssr_sim::SquashedInst) -> [Option<PhysReg>; 2] {
    inst.src_pregs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_sim::{FreeList, SeqNum, SquashEvent};

    fn ctx<'a>(fl: &'a mut FreeList, reset: &'a mut bool) -> EngineCtx<'a> {
        EngineCtx {
            free_list: fl,
            stage: mssr_sim::StageCtx { cycle: 0, rob_size: 256 },
            rgid_reset_requested: reset,
        }
    }

    fn freelist() -> FreeList {
        FreeList::new(256, 100)
    }

    fn sq_inst(pc: u64, dst_preg: usize, srcs: [Option<usize>; 2]) -> mssr_sim::SquashedInst {
        mssr_sim::SquashedInst {
            seq: SeqNum::new(pc / 4),
            pc: Pc::new(pc),
            op: Opcode::Add,
            dst: Some(mssr_sim::DstBinding {
                arch: ArchReg::A0,
                preg: PhysReg::new(dst_preg),
                rgid: mssr_sim::Rgid::new(1),
            }),
            src_rgids: [None, None],
            src_pregs: srcs.map(|s| s.map(PhysReg::new)),
            executed: true,
            is_load: false,
            is_store: false,
            load_addr: None,
        }
    }

    fn event(insts: Vec<mssr_sim::SquashedInst>) -> SquashEvent {
        SquashEvent {
            squash_id: 1,
            cause_seq: SeqNum::new(1),
            cause_pc: Pc::new(0xf00),
            redirect: Pc::new(0x2000),
            insts,
            frontend_blocks: vec![],
        }
    }

    fn query<'a>(pc: u64, inst: &'a mssr_isa::Inst, srcs: [Option<usize>; 2]) -> ReuseQuery<'a> {
        ReuseQuery {
            seq: SeqNum::new(1000),
            pc: Pc::new(pc),
            inst,
            src_rgids: [None, None],
            src_pregs: srcs.map(|s| s.map(PhysReg::new)),
        }
    }

    #[test]
    fn insertion_and_integration() {
        let mut fl = freelist();
        let mut reset = false;
        let mut ri = RegisterIntegration::new(RiConfig::default());
        ri.on_mispredict_squash(
            &event(vec![sq_inst(0x1000, 80, [Some(10), Some(11)])]),
            &mut ctx(&mut fl, &mut reset),
        );
        assert_eq!(ri.occupancy(), 1);
        assert_eq!(fl.holds(PhysReg::new(80)), 2, "table holds the result register");
        // A matching rename integrates the entry.
        let inst = mssr_isa::Inst::alu_rr(Opcode::Add, ArchReg::A0, ArchReg::A1, ArchReg::A2);
        let g = ri
            .try_reuse(&query(0x1000, &inst, [Some(10), Some(11)]), &mut ctx(&mut fl, &mut reset))
            .expect("matching sources integrate");
        assert_eq!(g.preg, PhysReg::new(80));
        assert!(g.rgid.is_none(), "RI has no RGID concept");
        assert_eq!(ri.occupancy(), 0, "entry consumed");
    }

    #[test]
    fn mismatched_sources_do_not_integrate() {
        let mut fl = freelist();
        let mut reset = false;
        let mut ri = RegisterIntegration::new(RiConfig::default());
        ri.on_mispredict_squash(
            &event(vec![sq_inst(0x1000, 80, [Some(10), Some(11)])]),
            &mut ctx(&mut fl, &mut reset),
        );
        let inst = mssr_isa::Inst::alu_rr(Opcode::Add, ArchReg::A0, ArchReg::A1, ArchReg::A2);
        assert!(ri
            .try_reuse(&query(0x1000, &inst, [Some(10), Some(12)]), &mut ctx(&mut fl, &mut reset))
            .is_none());
        assert!(
            ri.try_reuse(
                &query(0x1004, &inst, [Some(10), Some(11)]),
                &mut ctx(&mut fl, &mut reset)
            )
            .is_none(),
            "different PC"
        );
        assert_eq!(ri.occupancy(), 1, "entry survives failed lookups");
    }

    #[test]
    fn freed_source_register_transitively_invalidates() {
        let mut fl = freelist();
        let mut reset = false;
        let mut ri = RegisterIntegration::new(RiConfig::default());
        // B consumes A's destination as a source: a dependence chain.
        ri.on_mispredict_squash(
            &event(vec![
                sq_inst(0x1000, 80, [Some(10), None]),
                sq_inst(0x1004, 81, [Some(80), None]),
            ]),
            &mut ctx(&mut fl, &mut reset),
        );
        assert_eq!(ri.occupancy(), 2);
        // The pipeline recycles p10 (source of A): A dies, and B must die
        // with it because B's source p80... no — B sources p80 which the
        // table still holds. Free p10 instead: A dies; then B (sourcing
        // A's destination p80, now released) dies transitively.
        ri.on_preg_freed(PhysReg::new(10), &mut ctx(&mut fl, &mut reset));
        assert_eq!(ri.occupancy(), 0, "chain fully invalidated");
        assert_eq!(fl.holds(PhysReg::new(80)), 1);
        assert_eq!(fl.holds(PhysReg::new(81)), 1);
    }

    #[test]
    fn set_conflicts_count_replacements() {
        let mut fl = freelist();
        let mut reset = false;
        let mut ri = RegisterIntegration::new(RiConfig::default().with_sets(4).with_ways(1));
        let counters = ri.replacement_counters();
        // Two PCs mapping to the same set (stride = sets * 4 bytes).
        ri.on_mispredict_squash(
            &event(vec![sq_inst(0x1000, 80, [None, None]), sq_inst(0x1010, 81, [None, None])]),
            &mut ctx(&mut fl, &mut reset),
        );
        assert_eq!(ri.occupancy(), 1, "second insertion evicted the first");
        assert_eq!(counters.borrow().iter().sum::<u64>(), 1);
        assert_eq!(fl.holds(PhysReg::new(80)), 1, "victim's register released");
    }

    #[test]
    fn config_builders() {
        let c = RiConfig::default().with_sets(128).with_ways(2);
        assert_eq!(c.sets, 128);
        assert_eq!(c.ways, 2);
    }

    #[test]
    fn empty_table_has_zero_occupancy() {
        let ri = RegisterIntegration::new(RiConfig::default());
        assert_eq!(ri.occupancy(), 0);
        assert_eq!(ri.replacement_counters().borrow().len(), 64);
    }

    #[test]
    fn set_index_wraps_pc() {
        let ri = RegisterIntegration::new(RiConfig::default().with_sets(64));
        assert_eq!(ri.set_index(Pc::new(0x1000)), ri.set_index(Pc::new(0x1000 + 64 * 4)));
        assert_ne!(ri.set_index(Pc::new(0x1000)), ri.set_index(Pc::new(0x1004)));
    }
}
