//! Memory-hazard tracking for reused loads: the Bloom filter of §3.8.3.
//!
//! While squashed loads wait in the Squash Log for possible reuse, the
//! engine must notice stores (and snoops) to the same addresses — those
//! loads would otherwise be reused with stale data. Eager invalidation is
//! expensive, so the paper proposes a Bloom filter over the interesting
//! addresses, checked in parallel with the reuse test.

use mssr_sim::{CkptError, CkptReader, CkptWriter};

/// A simple two-hash Bloom filter over 8-byte-granular addresses.
///
/// False positives only reject a reuse (safe); false negatives are
/// impossible, which is the property correctness relies on.
///
/// # Example
///
/// ```
/// use mssr_core::memcheck::BloomFilter;
///
/// let mut b = BloomFilter::new(1024);
/// b.insert(0x1000);
/// assert!(b.maybe_contains(0x1000));
/// assert!(b.maybe_contains(0x1004), "same 8-byte block");
/// b.clear();
/// assert!(!b.maybe_contains(0x1000));
/// ```
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    insertions: u64,
}

impl BloomFilter {
    /// Creates a filter with `nbits` bits (rounded up to a power of two,
    /// minimum 64).
    pub fn new(nbits: usize) -> BloomFilter {
        let n = nbits.next_power_of_two().max(64);
        BloomFilter { bits: vec![0; n / 64], mask: n as u64 - 1, insertions: 0 }
    }

    fn hashes(&self, addr: u64) -> (u64, u64) {
        // Compare at 8-byte granularity, matching the LSQ.
        let a = addr >> 3;
        let h1 = a.wrapping_mul(0x9e3779b97f4a7c15);
        let h2 = (a ^ 0xdead_beef_cafe_f00d).wrapping_mul(0xc2b2ae3d27d4eb4f);
        (h1 >> 32 & self.mask, h2 >> 32 & self.mask)
    }

    /// Records an address.
    pub fn insert(&mut self, addr: u64) {
        let (a, b) = self.hashes(addr);
        self.bits[(a / 64) as usize] |= 1 << (a % 64);
        self.bits[(b / 64) as usize] |= 1 << (b % 64);
        self.insertions += 1;
    }

    /// Whether the address may have been recorded (no false negatives).
    pub fn maybe_contains(&self, addr: u64) -> bool {
        let (a, b) = self.hashes(addr);
        self.bits[(a / 64) as usize] & (1 << (a % 64)) != 0
            && self.bits[(b / 64) as usize] & (1 << (b % 64)) != 0
    }

    /// Resets the filter (done together with Squash Log invalidation).
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.insertions = 0;
    }

    /// Number of insertions since the last clear.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Serializes the filter contents into a checkpoint stream.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.bits.len() as u64);
        for &word in &self.bits {
            w.u64(word);
        }
        w.u64(self.insertions);
    }

    /// Restores filter contents saved by [`BloomFilter::ckpt_save`]. The
    /// configured size must match.
    pub fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let n = r.seq_len(8)?;
        if n != self.bits.len() {
            return Err(CkptError::Corrupt(format!(
                "{n} Bloom filter words in checkpoint, expected {}",
                self.bits.len()
            )));
        }
        for word in &mut self.bits {
            *word = r.u64()?;
        }
        self.insertions = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_filter_contains_nothing() {
        let b = BloomFilter::new(256);
        for addr in [0u64, 8, 0x1000, u64::MAX] {
            assert!(!b.maybe_contains(addr));
        }
    }

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::new(512);
        let addrs: Vec<u64> = (0..50).map(|i| 0x4000 + i * 24).collect();
        for &a in &addrs {
            b.insert(a);
        }
        for &a in &addrs {
            assert!(b.maybe_contains(a), "inserted address must hit: {a:#x}");
        }
        assert_eq!(b.insertions(), 50);
    }

    #[test]
    fn block_granularity() {
        let mut b = BloomFilter::new(256);
        b.insert(0x100);
        assert!(b.maybe_contains(0x107), "same 8B block");
    }

    #[test]
    fn mostly_discriminates_distinct_addresses() {
        let mut b = BloomFilter::new(4096);
        for i in 0..32 {
            b.insert(0x10000 + i * 8);
        }
        // Probe disjoint addresses; a small filter may alias a few, but
        // most must miss.
        let false_hits = (0..1000u64).filter(|i| b.maybe_contains(0x900000 + i * 8)).count();
        assert!(false_hits < 100, "false-positive rate too high: {false_hits}/1000");
    }

    #[test]
    fn clear_resets() {
        let mut b = BloomFilter::new(128);
        b.insert(0x42);
        b.clear();
        assert!(!b.maybe_contains(0x42));
        assert_eq!(b.insertions(), 0);
    }

    #[test]
    fn size_rounds_to_power_of_two() {
        let b = BloomFilter::new(100); // rounds to 128
        assert_eq!(b.bits.len() * 64, 128);
        let b = BloomFilter::new(1); // clamps to 64
        assert_eq!(b.bits.len() * 64, 64);
    }
}
