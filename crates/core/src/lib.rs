//! # mssr-core
//!
//! The paper's contribution: **Multi-Stream Squash Reuse** for
//! control-independent processors, plus the squash-reuse baselines it is
//! compared against.
//!
//! After a branch misprediction, conventional processors discard all
//! younger work — including *control-independent, data-independent*
//! (CIDI) results that the corrected path will recompute identically.
//! Squash reuse recycles those results. This crate tracks **multiple**
//! previously squashed streams (not just the last one, as prior art
//! does) and detects reconvergence between the corrected fetch stream
//! and any of them:
//!
//! * [`MultiStreamReuse`] — the paper's engine: Wrong-Path Buffers with
//!   left/right-aligner range search ([`align`]), Squash Logs walked in
//!   lockstep at rename, and the **RGID** (Rename Mapping Generation ID)
//!   data-integrity test that makes any-two-state comparison possible.
//! * [`RegisterIntegration`] — the table-based baseline (Roth & Sohi),
//!   with the table-conflict and transitive-invalidation behaviours the
//!   paper analyzes.
//! * DCI (Chou et al.) — the queue-based single-stream baseline,
//!   obtained as [`MultiStreamReuse::dci`] (the paper evaluates it the
//!   same way, §4.1.2).
//! * [`storage`] and [`complexity`] — the Table 2 storage model and the
//!   Table 4 synthesis-complexity model.
//!
//! # Example
//!
//! ```
//! use mssr_core::{MssrConfig, MultiStreamReuse};
//! use mssr_isa::{regs::*, Assembler};
//! use mssr_sim::{SimConfig, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A loop with a data-dependent branch: the baseline wastes the
//! // squashed work; the MSSR engine reuses part of it.
//! let mut a = Assembler::new();
//! a.li(S0, 0);
//! a.li(S1, 500);
//! a.li(S3, 12345);
//! a.label("loop");
//! a.li(T0, 0x9e3779b97f4a7c15u64 as i64);
//! a.mul(S3, S3, T0);
//! a.andi(T1, S3, 1);
//! a.beq(T1, ZERO, "skip");
//! a.addi(S2, S2, 3);
//! a.label("skip");
//! a.mul(T2, S0, S0); // CIDI work: depends only on the loop counter
//! a.add(S4, S4, T2);
//! a.addi(S0, S0, 1);
//! a.blt(S0, S1, "loop");
//! a.halt();
//! let program = a.assemble()?;
//!
//! let engine = MultiStreamReuse::new(MssrConfig::default());
//! let mut sim = Simulator::with_engine(SimConfig::default(), program, Box::new(engine));
//! let stats = sim.run();
//! assert!(stats.engine.reuse_grants > 0, "CIDI results should be reused");
//! # Ok(())
//! # }
//! ```

pub mod align;
pub mod complexity;
mod config;
mod engine;
pub mod memcheck;
mod ri;
pub mod storage;
mod stream;

pub use config::{MemCheckPolicy, MssrConfig};

/// Whether `MSSR_TRACE` debugging output is enabled (checked once).
pub(crate) fn trace_enabled() -> bool {
    use std::sync::OnceLock;
    static TRACE: OnceLock<bool> = OnceLock::new();
    *TRACE.get_or_init(|| std::env::var_os("MSSR_TRACE").is_some())
}

pub use engine::MultiStreamReuse;
pub use ri::{RegisterIntegration, RiConfig, RiCounters};
pub use stream::{LogEntry, Stream};
