//! Reconvergence detection: the left/right aligner logic of paper §3.4.
//!
//! The IFU detects a reconvergence point by finding the first overlap
//! between the prediction block currently being fetched and any block in
//! a Wrong-Path Buffer stream. Because every WPB entry is a *contiguous*
//! instruction range, overlap is decided purely on `start`/`end` PCs:
//!
//! ```text
//! start_pc_head <= end_pc_wpb  &&  end_pc_head >= start_pc_wpb
//! ```
//!
//! Hardware evaluates the two conditions with a *left aligner* and a
//! *right aligner*, producing two bit-masks that are ANDed; a priority
//! encoder picks the first overlapping entry, and the reconvergence PC
//! is `max(start_pc_head, start_pc_wpb)`. This module implements exactly
//! that structure (bit-mask words and all) so the unit tests can check it
//! against a naive scan.

use mssr_isa::Pc;
use mssr_sim::BlockRange;

/// The result of an aligner search over one stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlapHit {
    /// Index of the first overlapping WPB entry in the stream.
    pub entry: usize,
    /// The reconvergence PC: the first instruction common to both
    /// blocks, `max(start_head, start_wpb)`.
    pub reconv_pc: Pc,
}

/// Runs the left/right aligner over a stream of WPB entries.
///
/// `head` is the prediction block being fetched; `entries` are the
/// stream's blocks in stream order (oldest first, i.e. closest to the
/// mispredicted branch first — so the priority encoder's "first set bit"
/// is the paper's "reconvergence point closest to the mispredicted
/// branch").
///
/// # Example
///
/// ```
/// use mssr_core::align::find_overlap;
/// use mssr_sim::BlockRange;
/// use mssr_isa::Pc;
///
/// let stream = [
///     BlockRange { start: Pc::new(0x100), end: Pc::new(0x11c) },
///     BlockRange { start: Pc::new(0x200), end: Pc::new(0x21c) },
/// ];
/// let head = BlockRange { start: Pc::new(0x210), end: Pc::new(0x22c) };
/// let hit = find_overlap(&head, &stream).unwrap();
/// assert_eq!(hit.entry, 1);
/// assert_eq!(hit.reconv_pc, Pc::new(0x210));
/// ```
pub fn find_overlap(head: &BlockRange, entries: &[BlockRange]) -> Option<OverlapHit> {
    // One 64-bit mask word at a time, held in registers: this runs once
    // per fetched prediction block per stream, so it must not allocate.
    // Chunk order is stream order, and within a word the priority encode
    // is the lowest set bit, so the first overlapping entry still wins.
    for (w, chunk) in entries.chunks(64).enumerate() {
        let mut left = 0u64; // start_head <= end_wpb
        let mut right = 0u64; // end_head >= start_wpb
        for (i, e) in chunk.iter().enumerate() {
            if head.start <= e.end {
                left |= 1u64 << i;
            }
            if head.end >= e.start {
                right |= 1u64 << i;
            }
        }
        // Bit-wise AND, then priority-encode the first set bit.
        let m = left & right;
        if m != 0 {
            let entry = w * 64 + m.trailing_zeros() as usize;
            let reconv_pc = head.start.max(entries[entry].start);
            return Some(OverlapHit { entry, reconv_pc });
        }
    }
    None
}

/// The single-page variant (paper §3.4's timing optimization): the WPB
/// stores only PC bits 12–1 and one Virtual Page Number register per
/// stream; the head block's VPN is compared in parallel with the range
/// overlap. Blocks on a different page can never match.
pub fn find_overlap_vpn(
    head: &BlockRange,
    head_vpn: u64,
    entries: &[BlockRange],
    stream_vpn: u64,
) -> Option<OverlapHit> {
    if head_vpn != stream_vpn {
        return None;
    }
    find_overlap(head, entries)
}

/// The virtual page number of a PC (4 KiB pages; bits 47:12 under sv48).
pub fn vpn(pc: Pc) -> u64 {
    pc.addr() >> 12
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> BlockRange {
        BlockRange { start: Pc::new(s), end: Pc::new(e) }
    }

    /// Reference implementation: naive scan.
    fn naive(head: &BlockRange, entries: &[BlockRange]) -> Option<OverlapHit> {
        entries
            .iter()
            .position(|e| head.start <= e.end && head.end >= e.start)
            .map(|i| OverlapHit { entry: i, reconv_pc: head.start.max(entries[i].start) })
    }

    #[test]
    fn empty_stream_has_no_overlap() {
        assert_eq!(find_overlap(&r(0, 0x1c), &[]), None);
    }

    #[test]
    fn first_overlap_wins() {
        let entries = [r(0x100, 0x11c), r(0x120, 0x13c), r(0x140, 0x15c)];
        let head = r(0x130, 0x14c); // overlaps entries 1 and 2
        let hit = find_overlap(&head, &entries).unwrap();
        assert_eq!(hit.entry, 1, "priority encoder takes the first entry");
        assert_eq!(hit.reconv_pc, Pc::new(0x130));
    }

    #[test]
    fn reconv_pc_is_max_of_starts() {
        let entries = [r(0x200, 0x21c)];
        // Head begins before the WPB block: reconvergence at the block start.
        let hit = find_overlap(&r(0x1f0, 0x20c), &entries).unwrap();
        assert_eq!(hit.reconv_pc, Pc::new(0x200));
        // Head begins inside the WPB block: reconvergence at the head start.
        let hit = find_overlap(&r(0x210, 0x22c), &entries).unwrap();
        assert_eq!(hit.reconv_pc, Pc::new(0x210));
    }

    #[test]
    fn no_overlap_when_disjoint() {
        let entries = [r(0x100, 0x11c), r(0x200, 0x21c)];
        assert_eq!(find_overlap(&r(0x140, 0x15c), &entries), None);
    }

    #[test]
    fn works_past_64_entries() {
        // Force the mask into a second word.
        let mut entries: Vec<BlockRange> =
            (0..70).map(|i| r(0x1000 + i * 0x100, 0x1000 + i * 0x100 + 0x1c)).collect();
        entries[69] = r(0x9000, 0x901c);
        let hit = find_overlap(&r(0x9010, 0x902c), &entries).unwrap();
        assert_eq!(hit.entry, 69);
        assert_eq!(hit.reconv_pc, Pc::new(0x9010));
    }

    #[test]
    fn matches_naive_scan_exhaustively() {
        // Sweep head positions across a stream layout; aligner and naive
        // reference must agree everywhere.
        let entries = [r(0x100, 0x11c), r(0x130, 0x134), r(0x200, 0x23c), r(0x300, 0x300)];
        for start in (0x0..0x400u64).step_by(4) {
            for len in [0u64, 4, 28, 60] {
                let head = r(start, start + len);
                assert_eq!(
                    find_overlap(&head, &entries),
                    naive(&head, &entries),
                    "mismatch at head {head:?}"
                );
            }
        }
    }

    #[test]
    fn vpn_gate_blocks_cross_page_matches() {
        let entries = [r(0x1100, 0x111c)];
        let head = r(0x1100, 0x111c);
        assert!(find_overlap_vpn(&head, vpn(head.start), &entries, vpn(Pc::new(0x1100))).is_some());
        assert!(
            find_overlap_vpn(&head, vpn(head.start), &entries, vpn(Pc::new(0x2100))).is_none(),
            "different page must not match even with identical low bits"
        );
    }

    #[test]
    fn vpn_extracts_4k_pages() {
        assert_eq!(vpn(Pc::new(0x0fff)), 0);
        assert_eq!(vpn(Pc::new(0x1000)), 1);
        assert_eq!(vpn(Pc::new(0x3_4567)), 0x34);
    }
}
