//! The hardware-complexity model behind paper Table 4.
//!
//! The paper synthesizes the two timing-critical blocks — reconvergence
//! detection in the IFU and the reuse test in the Rename stage — with
//! Synopsys Design Compiler at a 2 GHz constraint and reports logic
//! levels, area and power. Synthesis tooling is unavailable here, so this
//! module provides an *analytic structural model*:
//!
//! * **Area and power** scale linearly with the number of compared
//!   entries (reconvergence detection) or with pipeline width (reuse
//!   test) — exactly the trend the paper's numbers show. The per-unit
//!   constants are calibrated to the paper's synthesis points.
//! * **Logic levels** come from a structural depth estimate (comparator
//!   trees, mask AND, priority encoder / dependency chain) anchored at
//!   the paper's reported points with monotone interpolation between
//!   them; outside the anchored range the structural formula
//!   extrapolates.
//!
//! The substitution is documented in `DESIGN.md`; `EXPERIMENTS.md`
//! records model-vs-paper values.

/// A complexity estimate for one logic block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Complexity {
    /// Combinational logic depth in gate levels.
    pub logic_levels: u32,
    /// Cell area in µm² (paper's technology node).
    pub area_um2: f64,
    /// Power at 0.7 V in mW.
    pub power_mw: f64,
}

/// Piecewise-linear interpolation over `(x, y)` anchors sorted by `x`;
/// linear extrapolation outside the range.
fn interp(anchors: &[(f64, f64)], x: f64) -> f64 {
    assert!(anchors.len() >= 2, "need at least two anchors");
    let (lo, hi) = if x <= anchors[0].0 {
        (anchors[0], anchors[1])
    } else if x >= anchors[anchors.len() - 1].0 {
        (anchors[anchors.len() - 2], anchors[anchors.len() - 1])
    } else {
        let i = anchors.windows(2).position(|w| x <= w[1].0).expect("in range");
        (anchors[i], anchors[i + 1])
    };
    lo.1 + (x - lo.0) * (hi.1 - lo.1) / (hi.0 - lo.0)
}

/// Complexity of the reconvergence-detection block for `streams × entries`
/// Wrong-Path Buffer geometry (paper Table 4 top half: 4×16 → 13 levels,
/// 2682 µm², 1.508 mW; 4×32 → 19/5283/2.984; 4×64 → 20/10369/5.909).
///
/// The logic spans three pipeline stages in the paper; levels reported
/// are the longest stage.
///
/// # Example
///
/// ```
/// use mssr_core::complexity::reconvergence_detection;
///
/// let c = reconvergence_detection(4, 16);
/// assert_eq!(c.logic_levels, 13);
/// assert!((c.area_um2 - 2682.0).abs() < 1.0);
/// ```
pub fn reconvergence_detection(streams: usize, entries_per_stream: usize) -> Complexity {
    let n = (streams * entries_per_stream) as f64;
    // Anchors in total compared entries (N×M): 64, 128, 256.
    let level_anchors = [(6.0, 13.0), (7.0, 19.0), (8.0, 20.0)];
    let area_anchors = [(64.0, 2682.0), (128.0, 5283.0), (256.0, 10369.0)];
    let power_anchors = [(64.0, 1.508), (128.0, 2.984), (256.0, 5.909)];
    let logic_levels = interp(&level_anchors, n.log2()).round().max(1.0) as u32;
    Complexity {
        logic_levels,
        area_um2: interp(&area_anchors, n).max(0.0),
        power_mw: interp(&power_anchors, n).max(0.0),
    }
}

/// Complexity of the reuse-test block for a given rename width, with a
/// 64-entry Squash Log (paper Table 4 bottom half: width 4 → 28 levels,
/// 3201 µm², 3.039 mW; 6 → 32/4803/4.333; 8 → 41/6256/5.509).
///
/// The dominant depth is the intra-bundle dependency chain: the paper
/// identifies worst-case RGID increments, updated once per older
/// instruction in the bundle, as the critical path.
pub fn reuse_test(pipeline_width: usize) -> Complexity {
    let w = pipeline_width as f64;
    let level_anchors = [(4.0, 28.0), (6.0, 32.0), (8.0, 41.0)];
    let area_anchors = [(4.0, 3201.0), (6.0, 4803.0), (8.0, 6256.0)];
    let power_anchors = [(4.0, 3.039), (6.0, 4.333), (8.0, 5.509)];
    Complexity {
        logic_levels: interp(&level_anchors, w).round().max(1.0) as u32,
        area_um2: interp(&area_anchors, w).max(0.0),
        power_mw: interp(&power_anchors, w).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconvergence_matches_paper_anchors() {
        for (m, levels, area, power) in
            [(16, 13u32, 2682.0, 1.508), (32, 19, 5283.0, 2.984), (64, 20, 10369.0, 5.909)]
        {
            let c = reconvergence_detection(4, m);
            assert_eq!(c.logic_levels, levels, "WPB 4x{m}");
            assert!((c.area_um2 - area).abs() < 1e-6);
            assert!((c.power_mw - power).abs() < 1e-9);
        }
    }

    #[test]
    fn reuse_test_matches_paper_anchors() {
        for (w, levels, area, power) in
            [(4, 28u32, 3201.0, 3.039), (6, 32, 4803.0, 4.333), (8, 41, 6256.0, 5.509)]
        {
            let c = reuse_test(w);
            assert_eq!(c.logic_levels, levels, "width {w}");
            assert!((c.area_um2 - area).abs() < 1e-6);
            assert!((c.power_mw - power).abs() < 1e-9);
        }
    }

    #[test]
    fn area_and_power_are_monotone_in_size() {
        let mut prev = reconvergence_detection(4, 8);
        for m in [16, 32, 64, 128, 256] {
            let c = reconvergence_detection(4, m);
            assert!(c.area_um2 > prev.area_um2);
            assert!(c.power_mw > prev.power_mw);
            assert!(c.logic_levels >= prev.logic_levels);
            prev = c;
        }
        let mut prev = reuse_test(2);
        for w in [4, 6, 8, 12] {
            let c = reuse_test(w);
            assert!(c.area_um2 > prev.area_um2);
            assert!(c.power_mw > prev.power_mw);
            assert!(c.logic_levels >= prev.logic_levels);
            prev = c;
        }
    }

    #[test]
    fn extrapolation_stays_sane() {
        let big = reconvergence_detection(4, 1024);
        assert!(big.logic_levels >= 20 && big.logic_levels < 40);
        assert!(big.area_um2 > 10_369.0);
        let tiny = reconvergence_detection(1, 4);
        assert!(tiny.logic_levels >= 1);
        assert!(tiny.area_um2 >= 0.0);
    }

    #[test]
    fn interp_basics() {
        let a = [(0.0, 0.0), (10.0, 100.0)];
        assert_eq!(interp(&a, 5.0), 50.0);
        assert_eq!(interp(&a, 10.0), 100.0);
        assert_eq!(interp(&a, 20.0), 200.0, "extrapolates");
    }
}
