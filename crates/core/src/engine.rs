//! The Multi-Stream Squash Reuse engine (the paper's contribution).
//!
//! Responsibilities, mapped to the paper:
//!
//! * **Stream capture** (§3.3): every branch-misprediction squash dumps
//!   the wrong path into a round-robin-selected [`Stream`] (WPB blocks +
//!   Squash Log entries), reserving the destination physical registers of
//!   executed instructions via free-list holds.
//! * **Reconvergence detection** (§3.4): each new prediction block is
//!   range-checked against every stream's WPB with the left/right aligner
//!   logic; the most recently updated stream wins, and within it the
//!   entry closest to the mispredicted branch. Each detection is
//!   classified (simple / software-induced / hardware-induced) and its
//!   stream distance recorded — the data behind Figures 4 and 11.
//! * **The reuse test** (§3.1, §3.5): once the corrected stream reaches
//!   the reconvergence PC, the Squash Log is walked in lockstep with
//!   rename. An instruction is reused when its source RGIDs match the
//!   logged ones pairwise; the squashed mapping (physical register and
//!   RGID) is forwarded to the new instruction.
//! * **Register freeing policy** (§3.3.2): holds are dropped when an
//!   entry was never executed, fails its test, is skipped, diverges,
//!   times out (1024 instructions), or is reclaimed under register
//!   pressure (least-recent stream first).
//! * **Memory hazards** (§3.8): reused loads either re-execute and
//!   verify (the paper's evaluated mechanism — the pipeline implements
//!   the comparison) or are filtered through a Bloom filter of executed
//!   store/snoop addresses.
//! * **RGID reset protocol** (§3.3.2): after more than the threshold of
//!   overflow events (or when all logs empty out with overflows pending),
//!   the engine requests a global RGID reset. The paper then suspends
//!   stream capture until a ROB's worth of instructions has committed, so
//!   no pre-reset RGID can enter a Squash Log; this implementation is
//!   *strictly stronger* — the pipeline nulls every live RGID (RAT and
//!   ROB) at the reset instant, making pre-reset generations unmatchable
//!   immediately — so the capture-suspension window is unnecessary and
//!   omitted. (In tight loops, 6-bit generation counters wrap every ~63
//!   iterations; with the paper's drain window that would suspend capture
//!   almost continuously.)

use mssr_isa::{Opcode, Pc};
use mssr_sim::{
    fnv1a64, CkptError, CkptReader, CkptWriter, DstBinding, EngineCtx, EngineStats, FlushKind,
    PredBlock, RenamedInst, ReuseEngine, ReuseGrant, ReuseQuery, SeqNum, SquashEvent,
};

use crate::align;
use crate::config::{MemCheckPolicy, MssrConfig};
use crate::memcheck::BloomFilter;
use crate::stream::Stream;

/// Fetch-block instruction limit used when regrouping squashed PCs into
/// WPB entries (32-byte blocks of 4-byte instructions, Table 3).
const FETCH_BLOCK_INSTS: usize = 8;

/// A detected reconvergence waiting for the corrected stream to reach the
/// reconvergence PC at rename.
#[derive(Clone, Copy, Debug)]
struct Pending {
    stream: usize,
    /// Instruction offset from the start of the squashed stream.
    offset: u64,
    reconv_pc: Pc,
    created_at: u64,
}

/// An in-progress lockstep walk of one Squash Log.
#[derive(Clone, Copy, Debug)]
struct Active {
    stream: usize,
    idx: usize,
}

/// The Multi-Stream Squash Reuse engine. Plug into the simulator with
/// [`Simulator::with_engine`](mssr_sim::Simulator::with_engine).
///
/// # Example
///
/// ```
/// use mssr_core::{MssrConfig, MultiStreamReuse};
/// use mssr_sim::{SimConfig, Simulator};
/// use mssr_isa::{regs::*, Assembler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Assembler::new();
/// a.li(T0, 1);
/// a.halt();
/// let engine = MultiStreamReuse::new(MssrConfig::default());
/// let mut sim = Simulator::with_engine(SimConfig::default(), a.assemble()?, Box::new(engine));
/// sim.run();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiStreamReuse {
    cfg: MssrConfig,
    streams: Vec<Stream>,
    next_stream: usize,
    pending: Option<Pending>,
    active: Option<Active>,
    /// Total instructions renamed (the timeout clock).
    renamed: u64,
    last_squash_id: u64,
    last_cause_seq: SeqNum,
    bloom: BloomFilter,
    /// Highest sequence number seen at rename (drives the Bloom barrier).
    max_seen_seq: SeqNum,
    /// Loads renamed at or before this sequence number read memory before
    /// the last Bloom clear; their squashed results are never reusable
    /// (the clear destroyed the store-address evidence that would protect
    /// them). Only meaningful under [`MemCheckPolicy::BloomFilter`].
    bloom_barrier: SeqNum,
    overflow_events: u64,
    commits: u64,
    stats: EngineStats,
}

impl MultiStreamReuse {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: MssrConfig) -> MultiStreamReuse {
        MultiStreamReuse {
            streams: (0..cfg.streams).map(|_| Stream::default()).collect(),
            next_stream: 0,
            pending: None,
            active: None,
            renamed: 0,
            last_squash_id: 0,
            last_cause_seq: SeqNum::ZERO,
            bloom: BloomFilter::new(cfg.bloom_bits),
            max_seen_seq: SeqNum::ZERO,
            bloom_barrier: SeqNum::ZERO,
            overflow_events: 0,
            commits: 0,
            stats: EngineStats::default(),
            cfg,
        }
    }

    /// A DCI-equivalent engine: single-stream queue-based squash reuse
    /// (the paper's §4.1.2 DCI comparison point).
    pub fn dci() -> MultiStreamReuse {
        MultiStreamReuse::new(MssrConfig::dci())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MssrConfig {
        &self.cfg
    }

    /// Number of currently valid streams (for tests and introspection).
    pub fn valid_streams(&self) -> usize {
        self.streams.iter().filter(|s| s.valid).count()
    }

    fn invalidate_stream(&mut self, i: usize, ctx: &mut EngineCtx<'_>) {
        if !self.streams[i].valid {
            return;
        }
        self.streams[i].invalidate(|p| ctx.free_list.release(p));
        if let Some(a) = self.active {
            if a.stream == i {
                self.active = None;
            }
        }
        if let Some(p) = self.pending {
            if p.stream == i {
                self.pending = None;
            }
        }
        self.after_invalidation(ctx);
    }

    fn invalidate_all(&mut self, ctx: &mut EngineCtx<'_>) {
        self.pending = None;
        self.active = None;
        for i in 0..self.streams.len() {
            if self.streams[i].valid {
                self.streams[i].invalidate(|p| ctx.free_list.release(p));
            }
        }
        self.after_invalidation(ctx);
    }

    /// Bloom reset and the "all logs unoccupied" RGID-reset trigger.
    fn after_invalidation(&mut self, ctx: &mut EngineCtx<'_>) {
        if self.streams.iter().all(|s| !s.valid) {
            self.clear_bloom();
            if self.overflow_events > 0 {
                self.request_rgid_reset(ctx);
            }
        }
    }

    /// Clears the Bloom filter and raises the load barrier: loads already
    /// renamed may have read memory under evidence the clear destroys, so
    /// their squashed results can never be reuse candidates.
    fn clear_bloom(&mut self) {
        self.bloom.clear();
        self.bloom_barrier = self.max_seen_seq;
    }

    fn request_rgid_reset(&mut self, ctx: &mut EngineCtx<'_>) {
        *ctx.rgid_reset_requested = true;
        self.overflow_events = 0;
        // The pipeline nulls all live RGIDs when it applies the reset, so
        // (unlike the paper's ROB-drain suspension) capture can continue
        // immediately. Pre-reset RGIDs become unusable; drop everything.
        self.pending = None;
        self.active = None;
        for s in &mut self.streams {
            if s.valid {
                s.invalidate(|p| ctx.free_list.release(p));
            }
        }
        self.clear_bloom();
    }

    /// Activates a pending reconvergence when the corrected stream
    /// reaches the reconvergence PC at rename. Skipped entries (before
    /// the offset) can no longer be reused in this pass, so their
    /// registers are freed (§3.3.2 policy).
    fn maybe_activate(&mut self, pc: Pc, ctx: &mut EngineCtx<'_>) {
        let Some(p) = self.pending else { return };
        if p.reconv_pc != pc {
            return;
        }
        self.pending = None;
        let s = &mut self.streams[p.stream];
        if !s.valid {
            return;
        }
        let idx = (p.offset as usize).min(s.log.len());
        for e in &mut s.log[..idx] {
            if e.preg_held {
                e.preg_held = false;
                e.consumed = true;
                if let Some(d) = e.dst {
                    ctx.free_list.release(d.preg);
                }
            }
        }
        if idx >= s.log.len() {
            // Reconvergence landed beyond the Squash Log capacity (the
            // WPB saw further than the log): nothing to reuse.
            self.invalidate_stream(p.stream, ctx);
            return;
        }
        self.active = Some(Active { stream: p.stream, idx });
    }

    fn check_timeouts(&mut self, ctx: &mut EngineCtx<'_>) {
        for i in 0..self.streams.len() {
            if !self.streams[i].valid {
                continue;
            }
            if self.active.is_some_and(|a| a.stream == i)
                || self.pending.is_some_and(|p| p.stream == i)
            {
                continue;
            }
            if self.renamed.saturating_sub(self.streams[i].created_at) > self.cfg.timeout_insts {
                self.stats.timeouts += 1;
                self.invalidate_stream(i, ctx);
            }
        }
        if let Some(p) = self.pending {
            if self.renamed.saturating_sub(p.created_at) > self.cfg.timeout_insts {
                self.pending = None;
            }
        }
    }
}

impl ReuseEngine for MultiStreamReuse {
    fn name(&self) -> &'static str {
        if self.cfg.streams == 1 {
            "dci"
        } else {
            "mssr"
        }
    }

    fn on_block(&mut self, block: &PredBlock, ctx: &mut EngineCtx<'_>) {
        let _ = ctx;
        // Detection pauses once a reconvergence has been identified and
        // until the reuse pass terminates (§3.3.1).
        if self.pending.is_some() || self.active.is_some() {
            return;
        }
        let mut best: Option<(usize, align::OverlapHit, u64)> = None;
        for (i, s) in self.streams.iter().enumerate() {
            if !s.valid {
                continue;
            }
            let hit = if self.cfg.vpn_restrict {
                align::find_overlap_vpn(
                    &block.range,
                    align::vpn(block.range.start),
                    &s.blocks,
                    s.vpn,
                )
            } else {
                align::find_overlap(&block.range, &s.blocks)
            };
            if let Some(h) = hit {
                // Select the most recently updated stream (§3.3.1).
                if best.is_none_or(|(_, _, sid)| s.squash_id > sid) {
                    best = Some((i, h, s.squash_id));
                }
            }
        }
        let Some((si, hit, sid)) = best else { return };
        let s = &self.streams[si];
        self.stats.reconvergences += 1;
        let distance = self.last_squash_id - sid + 1;
        self.stats.record_distance(distance);
        if sid == self.last_squash_id {
            self.stats.recon_simple += 1;
        } else if s.cause_seq < self.last_cause_seq {
            // Merging onto the squashed path of an elder branch.
            self.stats.recon_software += 1;
        } else {
            // Merging onto the squashed path of a younger branch — only
            // possible through out-of-order branch resolution.
            self.stats.recon_hardware += 1;
        }
        let offset = s.offset_of(hit.entry, hit.reconv_pc);
        self.pending = Some(Pending {
            stream: si,
            offset,
            reconv_pc: hit.reconv_pc,
            created_at: self.renamed,
        });
    }

    fn on_mispredict_squash(&mut self, ev: &SquashEvent, ctx: &mut EngineCtx<'_>) {
        // The corrected stream is being replaced: any in-progress reuse
        // pass is void. The partially consumed stream stays valid — the
        // *new* corrected stream may reconverge with its remainder.
        self.pending = None;
        self.active = None;
        self.last_squash_id = ev.squash_id;
        self.last_cause_seq = ev.cause_seq;
        if ev.insts.is_empty() && ev.frontend_blocks.is_empty() {
            return;
        }
        let si = self.next_stream;
        self.next_stream = (si + 1) % self.cfg.streams.max(1);
        if self.streams[si].valid {
            self.streams[si].invalidate(|p| ctx.free_list.release(p));
        }
        let load_barrier =
            (self.cfg.mem_policy == MemCheckPolicy::BloomFilter).then_some(self.bloom_barrier);
        self.streams[si].capture(
            ev,
            self.renamed,
            self.cfg.wpb_entries,
            self.cfg.log_entries,
            FETCH_BLOCK_INSTS,
            self.cfg.vpn_restrict,
            load_barrier,
        );
        for e in self.streams[si].log.iter().filter(|e| e.preg_held) {
            ctx.free_list.retain(e.dst.expect("held entry has dst").preg);
        }
        if crate::trace_enabled() {
            for e in &self.streams[si].log {
                if e.load_addr.is_some_and(|a| a >> 3 == 0x100000 >> 3) {
                    eprintln!(
                        "CAPTURE load pc={} addr={:?} executed={} cycle={} stream={si}",
                        e.pc, e.load_addr, e.executed, ctx.stage.cycle
                    );
                }
            }
        }
        self.stats.streams_captured += 1;
        self.stats.entries_logged += self.streams[si].log.len() as u64;
    }

    fn on_flush(&mut self, kind: FlushKind, ctx: &mut EngineCtx<'_>) {
        match kind {
            // A reused load carried stale data: the paper flushes and
            // invalidates the Squash Logs (§3.8.3).
            FlushKind::ReuseVerification => self.invalidate_all(ctx),
            // A memory-order replay rewinds the RAT; the in-progress pass
            // no longer corresponds to the rename stream.
            FlushKind::MemoryOrder => {
                self.pending = None;
                self.active = None;
            }
            FlushKind::BranchMispredict => {} // handled by on_mispredict_squash
        }
    }

    fn try_reuse(&mut self, q: &ReuseQuery<'_>, ctx: &mut EngineCtx<'_>) -> Option<ReuseGrant> {
        self.maybe_activate(q.pc, ctx);
        let a = self.active?;
        let e = self.streams[a.stream].log.get(a.idx)?;
        if e.pc != q.pc || e.op != q.inst.op() {
            // Divergence; on_renamed terminates the pass.
            return None;
        }
        self.stats.reuse_tests += 1;
        if e.consumed || !e.executed || !e.preg_held {
            self.stats.reuse_fail_not_executed += 1;
            if crate::trace_enabled() {
                eprintln!(
                    "notexec pc={} op={} consumed={} executed={} held={}",
                    q.pc, e.op, e.consumed, e.executed, e.preg_held
                );
            }
            return None;
        }
        let DstBinding { arch: dst_arch, preg, rgid } = e.dst?;
        if Some(dst_arch) != q.inst.dst() {
            return None;
        }
        // The pairwise RGID comparison (§3.1): all source generations
        // must match their squashed counterparts. Null never matches.
        for i in 0..2 {
            match (q.src_rgids[i], e.src_rgids[i]) {
                (None, None) => {}
                (Some(cur), Some(old)) if cur.matches(old) => {}
                _ => {
                    self.stats.reuse_fail_stale += 1;
                    if crate::trace_enabled() {
                        eprintln!(
                            "stale pc={} src{} cur={:?} log={:?} op={}",
                            q.pc, i, q.src_rgids[i], e.src_rgids[i], e.op
                        );
                    }
                    return None;
                }
            }
        }
        let needs_load_verify = if e.is_load {
            match self.cfg.mem_policy {
                MemCheckPolicy::BloomFilter => {
                    let addr = e.load_addr;
                    if crate::trace_enabled() && addr.is_some_and(|a| a >> 3 == 0x100000 >> 3) {
                        eprintln!(
                            "BLOOM test {addr:?} hit={}",
                            addr.is_none_or(|ad| self.bloom.maybe_contains(ad))
                        );
                    }
                    if addr.is_none_or(|ad| self.bloom.maybe_contains(ad)) {
                        self.stats.reuse_fail_mem += 1;
                        return None;
                    }
                    false
                }
                MemCheckPolicy::LoadVerification => true,
            }
        } else {
            false
        };
        let load_addr = e.load_addr;
        // The hold transfers to the new live mapping: stop tracking it.
        let e = self.streams[a.stream].log.get_mut(a.idx).expect("entry exists");
        e.preg_held = false;
        e.consumed = true;
        self.stats.reuse_grants += 1;
        if e.is_load {
            self.stats.reused_loads += 1;
        }
        if crate::trace_enabled() {
            eprintln!("mssr-grant pc={} op={}", q.pc, e.op);
        }
        Some(ReuseGrant { preg, rgid: Some(rgid), load_addr, needs_load_verify })
    }

    fn on_renamed(&mut self, r: &RenamedInst, ctx: &mut EngineCtx<'_>) {
        self.renamed += 1;
        self.max_seen_seq = self.max_seen_seq.max(r.seq);
        // Reconvergence instructions that are not reuse-eligible (stores,
        // branches) still begin the lockstep walk.
        self.maybe_activate(r.pc, ctx);
        if let Some(a) = self.active {
            let s = &mut self.streams[a.stream];
            let matches = s.log.get(a.idx).is_some_and(|e| e.pc == r.pc && e.op == r.op);
            if matches {
                let e = &mut s.log[a.idx];
                if !r.reused && e.preg_held {
                    // Failed or skipped: freeing condition 3 of §3.3.2.
                    e.preg_held = false;
                    if let Some(d) = e.dst {
                        ctx.free_list.release(d.preg);
                    }
                }
                e.consumed = true;
                let next = a.idx + 1;
                if next >= s.log.len() {
                    // Stream fully walked; nothing left to offer.
                    self.active = None;
                    self.invalidate_stream(a.stream, ctx);
                } else {
                    self.active = Some(Active { stream: a.stream, idx: next });
                }
            } else {
                // The corrected stream diverged from the squashed one:
                // freeing condition 4 of §3.3.2.
                self.stats.divergences += 1;
                self.active = None;
                self.invalidate_stream(a.stream, ctx);
            }
        }
        self.check_timeouts(ctx);
    }

    fn on_register_pressure(&mut self, ctx: &mut EngineCtx<'_>) {
        // Freeing condition 5: reclaim the least recent stream.
        let victim = self
            .streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.valid)
            .min_by_key(|(_, s)| s.squash_id)
            .map(|(i, _)| i);
        if let Some(i) = victim {
            self.stats.pressure_reclaims += 1;
            self.invalidate_stream(i, ctx);
        }
    }

    fn on_store_executed(&mut self, addr: u64, _ctx: &mut EngineCtx<'_>) {
        if self.cfg.mem_policy == MemCheckPolicy::BloomFilter {
            if crate::trace_enabled() && addr >> 3 == 0x100000 >> 3 {
                eprintln!("BLOOM insert {addr:#x} cycle={}", _ctx.stage.cycle);
            }
            self.bloom.insert(addr);
        }
    }

    fn on_snoop(&mut self, addr: u64, _ctx: &mut EngineCtx<'_>) {
        if self.cfg.mem_policy == MemCheckPolicy::BloomFilter {
            self.bloom.insert(addr);
        }
    }

    fn on_commit(&mut self, n: u64, _ctx: &mut EngineCtx<'_>) {
        self.commits += n;
    }

    fn on_rgid_overflow(&mut self, ctx: &mut EngineCtx<'_>) {
        self.overflow_events += 1;
        if self.overflow_events > self.cfg.overflow_reset_threshold {
            self.request_rgid_reset(ctx);
        }
    }

    fn on_rgid_reset(&mut self, ctx: &mut EngineCtx<'_>) {
        // Old-window generations can never be compared against the new
        // window; drop everything (streams captured after the reset
        // request but before the end-of-cycle application included).
        self.invalidate_all(ctx);
    }

    fn reuse_credit_latency(&self, op: Opcode, pipeline_estimate: u64) -> u64 {
        // Under load verification a reused load still re-executes (the
        // grant only unblocks dependents earlier, commit waits for the
        // verify), so the grant recovers no execution latency.
        if op == Opcode::Ld && self.cfg.mem_policy == MemCheckPolicy::LoadVerification {
            0
        } else {
            pipeline_estimate
        }
    }

    fn stats(&self) -> EngineStats {
        let mut s = self.stats.clone();
        s.extra.push(("valid_streams".to_string(), self.valid_streams() as u64));
        s
    }

    fn reserved_hold_count(&self) -> u64 {
        // One hold per Squash Log entry still flagged `preg_held`:
        // `Stream::invalidate` releases its entries and clears the log,
        // and a grant flips the flag off as the hold transfers to the
        // new live mapping — so counting flags across all streams is
        // exactly the engine's outstanding reservations.
        self.streams.iter().flat_map(|s| s.log.iter()).filter(|e| e.preg_held).count() as u64
    }

    fn ckpt_save(&self, w: &mut CkptWriter) {
        // The engine configuration shapes the serialized state (stream
        // count, Bloom size) and the engine's future behaviour; guard it
        // the same way the simulator guards `SimConfig`.
        w.u64(fnv1a64(format!("{:?}", self.cfg).as_bytes()));
        w.u64(self.streams.len() as u64);
        for s in &self.streams {
            s.ckpt_save(w);
        }
        w.u64(self.next_stream as u64);
        match self.pending {
            None => w.bool(false),
            Some(p) => {
                w.bool(true);
                w.u64(p.stream as u64);
                w.u64(p.offset);
                w.pc(p.reconv_pc);
                w.u64(p.created_at);
            }
        }
        match self.active {
            None => w.bool(false),
            Some(a) => {
                w.bool(true);
                w.u64(a.stream as u64);
                w.u64(a.idx as u64);
            }
        }
        w.u64(self.renamed);
        w.u64(self.last_squash_id);
        w.seq(self.last_cause_seq);
        self.bloom.ckpt_save(w);
        w.seq(self.max_seen_seq);
        w.seq(self.bloom_barrier);
        w.u64(self.overflow_events);
        w.u64(self.commits);
        self.stats.ckpt_save(w);
    }

    fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        if r.u64()? != fnv1a64(format!("{:?}", self.cfg).as_bytes()) {
            return Err(CkptError::ConfigMismatch);
        }
        let n = r.seq_len(19)?;
        if n != self.streams.len() {
            return Err(CkptError::Corrupt(format!(
                "{n} streams in checkpoint, engine has {}",
                self.streams.len()
            )));
        }
        for s in &mut self.streams {
            *s = Stream::ckpt_load(r)?;
        }
        let stream_bound = |i: u64, what: &str| -> Result<usize, CkptError> {
            if (i as usize) < n {
                Ok(i as usize)
            } else {
                Err(CkptError::Corrupt(format!("{what} stream index {i} out of range")))
            }
        };
        self.next_stream = stream_bound(r.u64()?, "next")?;
        self.pending = if r.bool()? {
            Some(Pending {
                stream: stream_bound(r.u64()?, "pending")?,
                offset: r.u64()?,
                reconv_pc: r.pc()?,
                created_at: r.u64()?,
            })
        } else {
            None
        };
        self.active = if r.bool()? {
            Some(Active { stream: stream_bound(r.u64()?, "active")?, idx: r.u64()? as usize })
        } else {
            None
        };
        self.renamed = r.u64()?;
        self.last_squash_id = r.u64()?;
        self.last_cause_seq = r.seq()?;
        self.bloom.ckpt_load(r)?;
        self.max_seen_seq = r.seq()?;
        self.bloom_barrier = r.seq()?;
        self.overflow_events = r.u64()?;
        self.commits = r.u64()?;
        self.stats = EngineStats::ckpt_load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_isa::{ArchReg, Opcode};
    use mssr_sim::{BlockRange, FreeList, PhysReg, Rgid, SquashedInst};

    fn ctx<'a>(fl: &'a mut FreeList, reset: &'a mut bool) -> EngineCtx<'a> {
        EngineCtx {
            free_list: fl,
            stage: mssr_sim::StageCtx { cycle: 0, rob_size: 256 },
            rgid_reset_requested: reset,
        }
    }

    fn sq_inst(pc: u64, preg: usize, executed: bool) -> SquashedInst {
        SquashedInst {
            seq: SeqNum::new(pc / 4),
            pc: Pc::new(pc),
            op: Opcode::Add,
            dst: Some(mssr_sim::DstBinding {
                arch: ArchReg::A0,
                preg: PhysReg::new(preg),
                rgid: Rgid::new(1),
            }),
            src_rgids: [None, None],
            src_pregs: [None, None],
            executed,
            is_load: false,
            is_store: false,
            load_addr: None,
        }
    }

    fn event(id: u64, cause: u64, pcs: &[(u64, usize, bool)]) -> SquashEvent {
        SquashEvent {
            squash_id: id,
            cause_seq: SeqNum::new(cause),
            cause_pc: Pc::new(0xf00),
            redirect: Pc::new(0x2000),
            insts: pcs.iter().map(|&(pc, preg, ex)| sq_inst(pc, preg, ex)).collect(),
            frontend_blocks: vec![],
        }
    }

    /// A free list whose first 100 registers are live (retainable).
    fn freelist() -> FreeList {
        FreeList::new(256, 100)
    }

    #[test]
    fn capture_is_round_robin_and_reserves_executed_registers() {
        let mut fl = freelist();
        let mut reset = false;
        let mut e = MultiStreamReuse::new(MssrConfig::default().with_streams(2));
        e.on_mispredict_squash(
            &event(1, 10, &[(0x1000, 80, true), (0x1004, 81, false)]),
            &mut ctx(&mut fl, &mut reset),
        );
        assert_eq!(e.valid_streams(), 1);
        assert_eq!(fl.holds(PhysReg::new(80)), 2, "executed dst retained");
        assert_eq!(fl.holds(PhysReg::new(81)), 1, "unexecuted dst not retained");
        e.on_mispredict_squash(&event(2, 20, &[(0x3000, 82, true)]), &mut ctx(&mut fl, &mut reset));
        assert_eq!(e.valid_streams(), 2);
        // Third capture wraps to slot 0, releasing its previous holds.
        e.on_mispredict_squash(&event(3, 30, &[(0x5000, 83, true)]), &mut ctx(&mut fl, &mut reset));
        assert_eq!(e.valid_streams(), 2);
        assert_eq!(fl.holds(PhysReg::new(80)), 1, "replaced stream released its register");
        assert_eq!(fl.holds(PhysReg::new(83)), 2);
    }

    #[test]
    fn detection_prefers_the_most_recent_stream() {
        let mut fl = freelist();
        let mut reset = false;
        let mut e = MultiStreamReuse::new(MssrConfig::default().with_streams(2));
        // Both streams cover 0x1000..0x1004.
        e.on_mispredict_squash(
            &event(1, 10, &[(0x1000, 80, true), (0x1004, 81, true)]),
            &mut ctx(&mut fl, &mut reset),
        );
        e.on_mispredict_squash(
            &event(2, 20, &[(0x1000, 82, true), (0x1004, 83, true)]),
            &mut ctx(&mut fl, &mut reset),
        );
        let blk = PredBlock {
            range: BlockRange { start: Pc::new(0x1000), end: Pc::new(0x1004) },
            cycle: 0,
        };
        e.on_block(&blk, &mut ctx(&mut fl, &mut reset));
        let s = ReuseEngine::stats(&e);
        assert_eq!(s.reconvergences, 1);
        assert_eq!(s.recon_simple, 1, "most recent stream is the redirecting squash's own");
        assert_eq!(s.stream_distance[0], 1, "distance 1");
    }

    #[test]
    fn detection_falls_back_to_older_streams() {
        let mut fl = freelist();
        let mut reset = false;
        let mut e = MultiStreamReuse::new(MssrConfig::default().with_streams(2));
        e.on_mispredict_squash(&event(1, 30, &[(0x1000, 80, true)]), &mut ctx(&mut fl, &mut reset));
        e.on_mispredict_squash(&event(2, 20, &[(0x3000, 81, true)]), &mut ctx(&mut fl, &mut reset));
        // Only the OLDER stream covers this block.
        let blk = PredBlock {
            range: BlockRange { start: Pc::new(0x1000), end: Pc::new(0x1000) },
            cycle: 0,
        };
        e.on_block(&blk, &mut ctx(&mut fl, &mut reset));
        let s = ReuseEngine::stats(&e);
        assert_eq!(s.reconvergences, 1);
        assert_eq!(s.stream_distance[1], 1, "distance 2: one intermediate squash");
        // Stream 1's cause (seq 30) is younger than the redirecting
        // branch (seq 20): hardware-induced.
        assert_eq!(s.recon_hardware, 1);
    }

    #[test]
    fn software_induced_when_the_older_streams_branch_is_elder() {
        let mut fl = freelist();
        let mut reset = false;
        let mut e = MultiStreamReuse::new(MssrConfig::default().with_streams(2));
        e.on_mispredict_squash(&event(1, 10, &[(0x1000, 80, true)]), &mut ctx(&mut fl, &mut reset));
        e.on_mispredict_squash(&event(2, 20, &[(0x3000, 81, true)]), &mut ctx(&mut fl, &mut reset));
        let blk = PredBlock {
            range: BlockRange { start: Pc::new(0x1000), end: Pc::new(0x1000) },
            cycle: 0,
        };
        e.on_block(&blk, &mut ctx(&mut fl, &mut reset));
        assert_eq!(ReuseEngine::stats(&e).recon_software, 1);
    }

    #[test]
    fn pressure_reclaim_drops_the_least_recent_stream() {
        let mut fl = freelist();
        let mut reset = false;
        let mut e = MultiStreamReuse::new(MssrConfig::default().with_streams(2));
        e.on_mispredict_squash(&event(1, 10, &[(0x1000, 80, true)]), &mut ctx(&mut fl, &mut reset));
        e.on_mispredict_squash(&event(2, 20, &[(0x3000, 81, true)]), &mut ctx(&mut fl, &mut reset));
        e.on_register_pressure(&mut ctx(&mut fl, &mut reset));
        assert_eq!(e.valid_streams(), 1);
        assert_eq!(fl.holds(PhysReg::new(80)), 1, "oldest stream reclaimed");
        assert_eq!(fl.holds(PhysReg::new(81)), 2, "newest stream survives");
        assert_eq!(ReuseEngine::stats(&e).pressure_reclaims, 1);
    }

    #[test]
    fn no_detection_while_a_pass_is_pending() {
        let mut fl = freelist();
        let mut reset = false;
        let mut e = MultiStreamReuse::new(MssrConfig::default());
        e.on_mispredict_squash(&event(1, 10, &[(0x1000, 80, true)]), &mut ctx(&mut fl, &mut reset));
        let blk = PredBlock {
            range: BlockRange { start: Pc::new(0x1000), end: Pc::new(0x1000) },
            cycle: 0,
        };
        e.on_block(&blk, &mut ctx(&mut fl, &mut reset));
        e.on_block(&blk, &mut ctx(&mut fl, &mut reset));
        assert_eq!(
            ReuseEngine::stats(&e).reconvergences,
            1,
            "detection pauses once a reconvergence is pending (§3.3.1)"
        );
    }

    #[test]
    fn rgid_reset_request_after_overflow_threshold() {
        let mut fl = freelist();
        let mut reset = false;
        let mut e = MultiStreamReuse::new(MssrConfig::default());
        e.on_mispredict_squash(&event(1, 10, &[(0x1000, 80, true)]), &mut ctx(&mut fl, &mut reset));
        for _ in 0..9 {
            e.on_rgid_overflow(&mut ctx(&mut fl, &mut reset));
        }
        assert!(reset, "more than 8 overflows requests a global reset");
        assert_eq!(e.valid_streams(), 0, "streams dropped with the request");
        assert_eq!(fl.holds(PhysReg::new(80)), 1, "holds released");
    }

    #[test]
    fn on_rgid_reset_drops_streams_captured_after_the_request() {
        let mut fl = freelist();
        let mut reset = false;
        let mut e = MultiStreamReuse::new(MssrConfig::default());
        for _ in 0..9 {
            e.on_rgid_overflow(&mut ctx(&mut fl, &mut reset));
        }
        // A squash lands in the same cycle, after the request.
        e.on_mispredict_squash(&event(1, 10, &[(0x1000, 80, true)]), &mut ctx(&mut fl, &mut reset));
        assert_eq!(e.valid_streams(), 1);
        // The pipeline applies the reset at end of cycle.
        e.on_rgid_reset(&mut ctx(&mut fl, &mut reset));
        assert_eq!(e.valid_streams(), 0, "old-window generations must not survive the reset");
        assert_eq!(fl.holds(PhysReg::new(80)), 1);
    }

    #[test]
    fn timeout_expires_unmatched_streams() {
        let mut fl = freelist();
        let mut reset = false;
        let mut e = MultiStreamReuse::new(MssrConfig::default().with_timeout(4));
        e.on_mispredict_squash(&event(1, 10, &[(0x1000, 80, true)]), &mut ctx(&mut fl, &mut reset));
        for i in 0..6u64 {
            let r = RenamedInst {
                seq: SeqNum::new(100 + i),
                pc: Pc::new(0x9000 + 4 * i),
                op: Opcode::Add,
                dst: None,
                reused: false,
            };
            e.on_renamed(&r, &mut ctx(&mut fl, &mut reset));
        }
        assert_eq!(e.valid_streams(), 0, "stream expired after the timeout");
        assert_eq!(ReuseEngine::stats(&e).timeouts, 1);
        assert_eq!(fl.holds(PhysReg::new(80)), 1);
    }
}
