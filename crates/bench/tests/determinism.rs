//! The self-profiler's out-of-band contract, pinned end to end: a
//! harness run's *stdout* (the trajectory) must be byte-identical with
//! `--profile` on or off, and across worker counts. The profiler reads
//! the host clock and writes to stderr only — if a stage stamp ever
//! leaked into a counter, a seed, or a record, these comparisons are
//! the first thing to break.

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn opts(jobs: usize, profile: bool) -> HarnessOpts {
    let mut o = HarnessOpts::new(Scale::Test);
    o.jobs = jobs;
    o.json = true;
    o.profile = profile;
    o
}

#[test]
fn profiling_leaves_the_trajectory_byte_identical_across_jobs() {
    // The reference: single worker, no profiling.
    let plain = run_named(&["table1"], &opts(1, false));
    assert!(plain.contains("\"type\":\"cell\""), "fixture sanity: {plain}");
    for (jobs, profile) in [(1usize, true), (4, false), (4, true)] {
        let t = run_named(&["table1"], &opts(jobs, profile));
        assert_eq!(
            t, plain,
            "trajectory diverged at jobs={jobs} profile={profile} — \
             profiling must be strictly out-of-band"
        );
    }
}

#[test]
fn profiled_sampled_runs_keep_event_streams_identical_too() {
    // Sampling emits per-interval event records into stdout — the most
    // sensitive surface for an accidental profiler leak, since events
    // interleave with the sampler the profiler stamps around.
    let mk = |profile: bool| {
        let mut o = opts(2, profile);
        o.sample = 5_000;
        run_named(&["table1"], &o)
    };
    let off = mk(false);
    assert!(off.contains("\"ev\":\"sample\""), "fixture sanity: {off}");
    assert_eq!(mk(true), off, "sampled trajectory must not see the profiler");
}

/// The `--bpred` axis, pinned the same way: for every predictor kind the
/// trajectory must be byte-identical across worker counts, and a
/// warm-checkpoint rerun (restoring the mid-run snapshots the cold run
/// wrote, oracle feed included) must reproduce the cold trajectory
/// exactly. The non-default kinds must also actually change the
/// trajectory — an override that silently falls back to TAGE would pass
/// every equality check above.
#[test]
fn bpred_sweeps_are_deterministic_across_jobs_and_checkpoints() {
    use mssr_sim::BpredKind;

    let with_bpred = |jobs: usize, kind: BpredKind| {
        let mut o = opts(jobs, false);
        o.bpred = Some(kind);
        o
    };
    let default = run_named(&["table1"], &opts(1, false));
    for kind in BpredKind::ALL {
        let one = run_named(&["table1"], &with_bpred(1, kind));
        let four = run_named(&["table1"], &with_bpred(4, kind));
        assert_eq!(one, four, "--bpred {kind}: trajectory diverged between jobs 1 and 4");
        if kind == BpredKind::default() {
            assert_eq!(one, default, "explicit default --bpred must be a no-op");
        } else {
            assert_ne!(one, default, "--bpred {kind}: override did not change the trajectory");
        }
    }

    // Cold vs warm checkpoints, on the feed-carrying kind (the codec
    // with the most state to get wrong).
    let dir = std::env::temp_dir().join(format!("mssr-bpred-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let ckpt_run = || {
        let mut o = with_bpred(2, BpredKind::Oracle);
        o.ckpt_dir = Some(dir.clone());
        o.ckpt_every = 5_000;
        run_named(&["table1"], &o)
    };
    let cold = ckpt_run();
    let n_ckpts = std::fs::read_dir(&dir).expect("ckpt dir").count();
    assert!(n_ckpts > 0, "cold run must write checkpoints");
    let warm = ckpt_run();
    assert_eq!(cold, warm, "warm-checkpoint oracle run diverged from the cold run");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The bpred experiment itself (the predictor × engine sweep) is part of
/// `run_all` and must hold the same jobs-equality bar.
#[test]
fn bpred_experiment_is_byte_identical_across_jobs() {
    let one = run_named(&["bpred"], &opts(1, false));
    assert!(one.contains("\"bpred\":\"oracle\""), "sweep must tag non-default cells: {one}");
    assert_eq!(one, run_named(&["bpred"], &opts(4, false)), "bpred experiment diverged");
}
