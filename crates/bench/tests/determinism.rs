//! The self-profiler's out-of-band contract, pinned end to end: a
//! harness run's *stdout* (the trajectory) must be byte-identical with
//! `--profile` on or off, and across worker counts. The profiler reads
//! the host clock and writes to stderr only — if a stage stamp ever
//! leaked into a counter, a seed, or a record, these comparisons are
//! the first thing to break.

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn opts(jobs: usize, profile: bool) -> HarnessOpts {
    let mut o = HarnessOpts::new(Scale::Test);
    o.jobs = jobs;
    o.json = true;
    o.profile = profile;
    o
}

#[test]
fn profiling_leaves_the_trajectory_byte_identical_across_jobs() {
    // The reference: single worker, no profiling.
    let plain = run_named(&["table1"], &opts(1, false));
    assert!(plain.contains("\"type\":\"cell\""), "fixture sanity: {plain}");
    for (jobs, profile) in [(1usize, true), (4, false), (4, true)] {
        let t = run_named(&["table1"], &opts(jobs, profile));
        assert_eq!(
            t, plain,
            "trajectory diverged at jobs={jobs} profile={profile} — \
             profiling must be strictly out-of-band"
        );
    }
}

#[test]
fn profiled_sampled_runs_keep_event_streams_identical_too() {
    // Sampling emits per-interval event records into stdout — the most
    // sensitive surface for an accidental profiler leak, since events
    // interleave with the sampler the profiler stamps around.
    let mk = |profile: bool| {
        let mut o = opts(2, profile);
        o.sample = 5_000;
        run_named(&["table1"], &o)
    };
    let off = mk(false);
    assert!(off.contains("\"ev\":\"sample\""), "fixture sanity: {off}");
    assert_eq!(mk(true), off, "sampled trajectory must not see the profiler");
}
