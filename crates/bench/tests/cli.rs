//! Command-line behavior of the harness binaries that unit tests cannot
//! see: argument validation exit codes and the one-line stderr warning
//! for flag combinations the harness silently degrades.
//!
//! The warning test is the regression guard for a real footgun: with
//! `--trace`/`--sample`, restoring a checkpoint would replay only the
//! tail of the event stream, so the harness ignores `--ckpt-dir` — and
//! before this suite existed it did so *silently*, leaving users to
//! wonder why no checkpoints appeared.

use std::process::{Command, Output};

fn table1(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_table1")).args(args).output().expect("table1 binary runs")
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mssr-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

const CKPT_WARNING: &str = "--ckpt-dir is ignored under --trace/--sample";

#[test]
fn ckpt_dir_under_sample_warns_once_on_stderr() {
    let dir = scratch("warn");
    let out = table1(&[
        "--scale",
        "test",
        "--json",
        "--jobs",
        "1",
        "--sample",
        "2000",
        "--ckpt-dir",
        dir.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "run failed: {stderr}");
    assert!(stderr.contains(CKPT_WARNING), "missing warning, stderr: {stderr}");
    assert_eq!(
        stderr.matches(CKPT_WARNING).count(),
        1,
        "warning must print once, not per cell: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ckpt_dir_without_trace_or_sample_stays_quiet() {
    let dir = scratch("quiet");
    let out =
        table1(&["--scale", "test", "--json", "--jobs", "1", "--ckpt-dir", dir.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "run failed: {stderr}");
    assert!(!stderr.contains(CKPT_WARNING), "spurious warning: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoints_warn_on_stderr_and_mark_the_trajectory() {
    let dir = scratch("corrupt");
    // Seed the directory with real checkpoints...
    let out = table1(&[
        "--scale",
        "test",
        "--json",
        "--jobs",
        "1",
        "--ckpt-dir",
        dir.to_str().unwrap(),
        "--ckpt-every",
        "5000",
    ]);
    assert!(out.status.success(), "seeding run failed");
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).expect("ckpt dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "ckpt") {
            std::fs::write(&path, b"not a checkpoint").expect("corrupt ckpt");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "seeding run must have written checkpoints");
    // ...then rerun: every restore must be skipped with a warning naming
    // the file and the error, and the trajectory must record the
    // degraded (cold) run in the cell's extra counters.
    let out =
        table1(&["--scale", "test", "--json", "--jobs", "1", "--ckpt-dir", dir.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "rerun failed: {stderr}");
    assert!(
        stderr.contains("skipped") && stderr.contains("invalid checkpoint"),
        "missing skip warning, stderr: {stderr}"
    );
    assert!(stderr.contains(".ckpt"), "warning must name the skipped file: {stderr}");
    assert!(
        stdout.contains("\"ckpt_restore_skips\""),
        "trajectory must record degraded restores: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn simpoint_argument_validation_rejects_bad_combinations() {
    // All of these fail during argument parsing, before any simulation.
    let cases: [(&[&str], &str); 4] = [
        (&["--simpoint", "2000,3"], "--simpoint requires --json"),
        (&["--json", "--simpoint", "2000"], "expected `INTERVAL,MAXK`"),
        (&["--json", "--simpoint", "0,3"], "must be positive"),
        (&["--json", "--simpoint", "2000,3", "--ffwd", "100"], "drop --ffwd"),
    ];
    for (args, needle) in cases {
        let out = table1(args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{args:?} should exit 2: {stderr}");
        assert!(stderr.contains(needle), "{args:?}: expected `{needle}` in: {stderr}");
    }
}

#[test]
fn profile_records_are_stderr_only_and_render_as_a_table() {
    let out = table1(&["--scale", "test", "--json", "--jobs", "2", "--profile"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "run failed: {stderr}");
    // Strictly out-of-band: the trajectory never carries profile records.
    assert!(!stdout.contains("\"type\":\"profile\""), "profile leaked into stdout: {stdout}");
    let cells = stdout.matches("{\"type\":\"cell\"").count();
    let profs = stderr.matches("{\"type\":\"profile\"").count();
    assert!(cells > 0, "fixture sanity: {stdout}");
    assert_eq!(profs, cells, "one profile record per cell, stderr: {stderr}");
    // Each record attributes wall-clock to every bucket of the schema.
    for key in ["\"ns\":{\"fetch\":", "\"commit\":", "\"squash\":", "\"total_us\":", "\"stride\":"]
    {
        assert!(stderr.contains(key), "missing {key} in profile records: {stderr}");
    }
    // The saved stream renders as the self-profile table with stage
    // shares and throughput columns.
    let dir = scratch("profile");
    let prof = dir.join("profile.jsonl");
    std::fs::write(&prof, stderr.as_bytes()).expect("save profile stream");
    let report = Command::new(env!("CARGO_BIN_EXE_mssr-report"))
        .args(["--profile", prof.to_str().unwrap()])
        .output()
        .expect("mssr-report runs");
    let rout = String::from_utf8_lossy(&report.stdout);
    assert!(report.status.success(), "report failed: {}", String::from_utf8_lossy(&report.stderr));
    for col in ["Self-profile", "workload", "execute", "sim_MIPS", "Mcyc/s", "%"] {
        assert!(rout.contains(col), "missing {col} in profile table:\n{rout}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rollup_appends_a_throughput_aggregate_only_when_timed() {
    let run = |args: &[&str]| {
        let out =
            Command::new(env!("CARGO_BIN_EXE_rollup")).args(args).output().expect("rollup runs");
        assert!(out.status.success(), "rollup failed: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    // Untimed runs keep the plain CSV — byte-compatible with the
    // determinism gates that cmp rollup output across --jobs.
    let plain = run(&["--scale", "test", "--jobs", "2"]);
    assert!(!plain.contains("SIM_MIPS_MILLI"), "untimed rollup must not aggregate: {plain}");
    // --timing appends one aggregate row per configuration with ordered
    // min <= median <= max throughput.
    let timed = run(&["--scale", "test", "--jobs", "2", "--timing"]);
    let (csv, agg) = timed
        .split_once("\nCFG,SIM_MIPS_MILLI_MIN,SIM_MIPS_MILLI_MED,SIM_MIPS_MILLI_MAX\n")
        .expect("aggregate section");
    assert_eq!(csv, plain, "timed run must keep the base CSV");
    let rows: Vec<&str> = agg.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(rows.len(), 4, "BASE + 3 rollup configurations: {agg}");
    for row in rows {
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), 4, "CFG,min,med,max: {row}");
        let v: Vec<u64> =
            cols[1..].iter().map(|c| c.parse().expect("integer milli-MIPS")).collect();
        assert!(v[0] > 0 && v[0] <= v[1] && v[1] <= v[2], "ordered nonzero aggregate: {row}");
    }
}
