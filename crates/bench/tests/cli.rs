//! Command-line behavior of the harness binaries that unit tests cannot
//! see: argument validation exit codes and the one-line stderr warning
//! for flag combinations the harness silently degrades.
//!
//! The warning test is the regression guard for a real footgun: with
//! `--trace`/`--sample`, restoring a checkpoint would replay only the
//! tail of the event stream, so the harness ignores `--ckpt-dir` — and
//! before this suite existed it did so *silently*, leaving users to
//! wonder why no checkpoints appeared.

use std::process::{Command, Output};

fn table1(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_table1")).args(args).output().expect("table1 binary runs")
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mssr-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

const CKPT_WARNING: &str = "--ckpt-dir is ignored under --trace/--sample";

#[test]
fn ckpt_dir_under_sample_warns_once_on_stderr() {
    let dir = scratch("warn");
    let out = table1(&[
        "--scale",
        "test",
        "--json",
        "--jobs",
        "1",
        "--sample",
        "2000",
        "--ckpt-dir",
        dir.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "run failed: {stderr}");
    assert!(stderr.contains(CKPT_WARNING), "missing warning, stderr: {stderr}");
    assert_eq!(
        stderr.matches(CKPT_WARNING).count(),
        1,
        "warning must print once, not per cell: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ckpt_dir_without_trace_or_sample_stays_quiet() {
    let dir = scratch("quiet");
    let out =
        table1(&["--scale", "test", "--json", "--jobs", "1", "--ckpt-dir", dir.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "run failed: {stderr}");
    assert!(!stderr.contains(CKPT_WARNING), "spurious warning: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoints_warn_on_stderr_and_mark_the_trajectory() {
    let dir = scratch("corrupt");
    // Seed the directory with real checkpoints...
    let out = table1(&[
        "--scale",
        "test",
        "--json",
        "--jobs",
        "1",
        "--ckpt-dir",
        dir.to_str().unwrap(),
        "--ckpt-every",
        "5000",
    ]);
    assert!(out.status.success(), "seeding run failed");
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).expect("ckpt dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "ckpt") {
            std::fs::write(&path, b"not a checkpoint").expect("corrupt ckpt");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "seeding run must have written checkpoints");
    // ...then rerun: every restore must be skipped with a warning naming
    // the file and the error, and the trajectory must record the
    // degraded (cold) run in the cell's extra counters.
    let out =
        table1(&["--scale", "test", "--json", "--jobs", "1", "--ckpt-dir", dir.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "rerun failed: {stderr}");
    assert!(
        stderr.contains("skipped") && stderr.contains("invalid checkpoint"),
        "missing skip warning, stderr: {stderr}"
    );
    assert!(stderr.contains(".ckpt"), "warning must name the skipped file: {stderr}");
    assert!(
        stdout.contains("\"ckpt_restore_skips\""),
        "trajectory must record degraded restores: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn simpoint_argument_validation_rejects_bad_combinations() {
    // All of these fail during argument parsing, before any simulation.
    let cases: [(&[&str], &str); 4] = [
        (&["--simpoint", "2000,3"], "--simpoint requires --json"),
        (&["--json", "--simpoint", "2000"], "expected `INTERVAL,MAXK`"),
        (&["--json", "--simpoint", "0,3"], "must be positive"),
        (&["--json", "--simpoint", "2000,3", "--ffwd", "100"], "drop --ffwd"),
    ];
    for (args, needle) in cases {
        let out = table1(args);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(out.status.code(), Some(2), "{args:?} should exit 2: {stderr}");
        assert!(stderr.contains(needle), "{args:?}: expected `{needle}` in: {stderr}");
    }
}
