//! Protocol and concurrency behavior of the `mssr-serve` job server:
//! malformed and oversized requests, mid-stream disconnects, duplicate
//! request ids, backpressure under a full queue, per-request timeouts,
//! graceful drain — and the property the server exists for: a served
//! response is byte-identical to the batch harness's trajectory line
//! for the same cell, whether served cold, from cache, or from a warm
//! fast-forward snapshot, at any `--jobs`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use mssr_bench::harness::serve::{
    fetch_all, fetch_metrics, load_gen, Client, LoadOpts, Reply, ServeOpts, Server,
};
use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

/// A small single-experiment server at test scale; the `table1` cell
/// grid is the universe every test below speaks to.
fn opts() -> ServeOpts {
    let mut o = ServeOpts::new(Scale::Test);
    o.experiments = vec!["table1".to_string()];
    o.jobs = 2;
    o
}

fn start(o: ServeOpts) -> (Server, String) {
    let server = Server::start(o).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr)
}

/// The batch trajectory of `table1` filtered to the `"cell"`/`"event"`
/// lines a serve fetch reassembles.
fn batch_lines(jobs: usize, sample: u64, ffwd: u64) -> String {
    let mut o = HarnessOpts::new(Scale::Test);
    o.jobs = jobs;
    o.json = true;
    o.sample = sample;
    o.ffwd = ffwd;
    run_named(&["table1"], &o)
        .lines()
        .filter(|l| l.starts_with("{\"type\":\"cell\"") || l.starts_with("{\"type\":\"event\""))
        .map(|l| format!("{l}\n"))
        .collect()
}

#[test]
fn malformed_json_gets_an_error_and_the_connection_survives() {
    let (server, addr) = start(opts());
    let mut c = Client::connect(&addr, 10_000).unwrap();
    assert!(c.send("{not json"));
    let reply = c.recv().expect("error reply");
    assert!(reply.contains("\"error\""), "want error, got: {reply}");
    assert!(reply.contains("malformed"), "want malformed, got: {reply}");
    // The same connection keeps working.
    assert!(c.send("{\"type\":\"ping\"}"));
    assert_eq!(c.recv().as_deref(), Some("{\"type\":\"pong\"}"));
    server.shutdown();
}

#[test]
fn oversized_request_line_is_rejected_and_closes_the_connection() {
    let mut o = opts();
    o.max_line = 256;
    let (server, addr) = start(o);
    let mut c = Client::connect(&addr, 10_000).unwrap();
    let huge = format!("{{\"type\":\"run\",\"pad\":\"{}\"}}", "x".repeat(1024));
    assert!(c.send(&huge));
    let reply = c.recv().expect("error reply before close");
    assert!(reply.contains("exceeds 256 bytes"), "got: {reply}");
    assert_eq!(c.recv(), None, "server must close after an oversized line");
    server.shutdown();
}

#[test]
fn mid_stream_disconnect_leaves_the_server_healthy() {
    let (server, addr) = start(opts());
    {
        // Half a request, then a hard drop.
        let mut s = TcpStream::connect(&addr).unwrap();
        let mut hello = [0u8; 64];
        let _ = s.read(&mut hello);
        s.write_all(b"{\"type\":\"run\",\"cel").unwrap();
        drop(s);
    }
    {
        // Disconnect while a sampled cell is computing for us: the
        // worker's live event writes fail harmlessly.
        let mut c = Client::connect(&addr, 10_000).unwrap();
        assert!(c.send("{\"type\":\"run\",\"cell\":0,\"sample\":2000}"));
        drop(c);
    }
    std::thread::sleep(Duration::from_millis(50));
    let mut c = Client::connect(&addr, 10_000).unwrap();
    assert!(c.send("{\"type\":\"ping\"}"));
    assert_eq!(c.recv().as_deref(), Some("{\"type\":\"pong\"}"));
    server.shutdown();
}

#[test]
fn duplicate_request_id_with_same_payload_is_an_idempotent_retry() {
    let (server, addr) = start(opts());
    let mut c = Client::connect(&addr, 30_000).unwrap();
    let req = "{\"type\":\"run\",\"id\":\"retry-1\",\"cell\":0,\"sample\":2000}";
    let Reply::Done { events: e1, cell_line: l1, cached } = c.request(req) else {
        panic!("first attempt must succeed");
    };
    assert!(!cached, "first touch is a miss");
    let Reply::Done { events: e2, cell_line: l2, cached } = c.request(req) else {
        panic!("retry must succeed");
    };
    assert!(cached, "retry is served from cache");
    assert_eq!(l1, l2, "cell record must be byte-identical on retry");
    assert_eq!(e1, e2, "event replay must be byte-identical on retry");
    server.shutdown();
}

#[test]
fn duplicate_request_id_with_different_payload_is_refused() {
    let (server, addr) = start(opts());
    let mut c = Client::connect(&addr, 30_000).unwrap();
    let Reply::Done { .. } = c.request("{\"type\":\"run\",\"id\":\"amb-1\",\"cell\":0}") else {
        panic!("first use of the id must succeed");
    };
    match c.request("{\"type\":\"run\",\"id\":\"amb-1\",\"cell\":1}") {
        Reply::Error { error } => {
            assert!(error.contains("different payload"), "got: {error}");
        }
        other => panic!("conflicting id reuse must error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn bad_run_requests_get_specific_errors() {
    let (server, addr) = start(opts());
    let mut c = Client::connect(&addr, 10_000).unwrap();
    let cases = [
        ("{\"type\":\"run\",\"cell\":9999}", "unknown cell"),
        ("{\"type\":\"run\"}", "needs \"cell\""),
        ("{\"type\":\"run\",\"workload\":\"nope\",\"engine\":\"nope\"}", "no cell matches"),
        ("{\"type\":\"frobnicate\"}", "unknown request type"),
        ("{\"cell\":0}", "needs a string \"type\""),
    ];
    for (req, needle) in cases {
        match c.request(req) {
            Reply::Error { error } => assert!(error.contains(needle), "{req}: got {error}"),
            other => panic!("{req}: expected error, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn run_by_workload_and_engine_name_matches_run_by_cell_id() {
    let (server, addr) = start(opts());
    let mut c = Client::connect(&addr, 30_000).unwrap();
    // Discover cell 0's names from the server itself.
    assert!(c.send("{\"type\":\"list\"}"));
    let list = c.recv().expect("list reply");
    let grab = |key: &str| {
        let pat = format!("\"{key}\":\"");
        let at = list.find(&pat).expect(key) + pat.len();
        list[at..].split('"').next().unwrap().to_string()
    };
    let (wl, eng) = (grab("workload"), grab("engine"));
    let Reply::Done { cell_line: by_id, .. } = c.request("{\"type\":\"run\",\"cell\":0}") else {
        panic!("by-id run failed");
    };
    let by_name_req = format!("{{\"type\":\"run\",\"workload\":\"{wl}\",\"engine\":\"{eng}\"}}");
    let Reply::Done { cell_line: by_name, cached, .. } = c.request(&by_name_req) else {
        panic!("by-name run failed");
    };
    assert_eq!(by_id, by_name);
    assert!(cached, "same cell identity must hit the cache");
    server.shutdown();
}

#[test]
fn served_trajectories_are_byte_identical_to_batch_cold_warm_and_across_jobs() {
    let batch = batch_lines(1, 2000, 0);
    assert!(batch.contains("\"type\":\"event\""), "batch run must carry sample events");
    for jobs in [1usize, 3] {
        let mut o = opts();
        o.jobs = jobs;
        let (server, addr) = start(o);
        let cold = fetch_all(&addr, 2000, 0).expect("cold fetch");
        let warm = fetch_all(&addr, 2000, 0).expect("warm fetch");
        assert_eq!(cold, batch, "cold serve (jobs={jobs}) must equal the batch trajectory");
        assert_eq!(warm, batch, "cache hits (jobs={jobs}) must replay identical bytes");
        server.shutdown();
    }
}

#[test]
fn warm_ffwd_snapshots_serve_identical_bytes_across_sampling_modes() {
    let batch = batch_lines(1, 2000, 5_000);
    let (server, addr) = start(opts());
    // First an unsampled pass at the same ffwd: it plants the in-memory
    // boundary snapshots the sampled pass below will restore from.
    let _ = fetch_all(&addr, 0, 5_000).expect("unsampled warmup fetch");
    let warm = fetch_all(&addr, 2000, 5_000).expect("sampled fetch");
    assert_eq!(
        warm, batch,
        "a run restored from a shared ffwd boundary snapshot must be byte-identical to cold batch"
    );
    server.shutdown();
}

#[test]
fn full_queue_answers_busy_with_a_retry_hint_instead_of_buffering() {
    let mut o = opts();
    o.jobs = 1;
    o.queue_bound = 1;
    o.delay_ms = 300;
    let (server, addr) = start(o);
    // Three distinct cells from three connections: one runs, one queues,
    // the third must be rejected with a hint. The stagger lets the
    // worker pop the first job before the second arrives, so exactly
    // one submission sees a full queue.
    let mut clients: Vec<Client> =
        (0..3).map(|_| Client::connect(&addr, 30_000).unwrap()).collect();
    for (i, c) in clients.iter_mut().enumerate() {
        assert!(c.send(&format!("{{\"type\":\"run\",\"cell\":{i}}}")));
        std::thread::sleep(Duration::from_millis(60));
    }
    // The last submission sees bound-full state; collect all outcomes.
    let mut done = 0;
    let mut busy = 0;
    for c in &mut clients {
        loop {
            let line = c.recv().expect("reply");
            if line.contains("\"type\":\"done\"") {
                done += 1;
                break;
            }
            if line.contains("\"type\":\"busy\"") {
                assert!(line.contains("retry_after_ms"), "busy needs a hint: {line}");
                busy += 1;
                break;
            }
        }
    }
    assert_eq!(done, 2, "worker slot + one queued request complete");
    assert_eq!(busy, 1, "the over-bound request is rejected, not buffered");
    server.shutdown();
}

#[test]
fn request_timeout_fires_and_a_retry_with_the_same_id_recovers() {
    let mut o = opts();
    o.jobs = 1;
    o.delay_ms = 400;
    o.timeout_ms = 50;
    let (server, addr) = start(o);
    let mut c = Client::connect(&addr, 30_000).unwrap();
    let req = "{\"type\":\"run\",\"id\":\"slow-1\",\"cell\":0}";
    match c.request(req) {
        Reply::Error { error } => assert!(error.contains("timed out"), "got: {error}"),
        other => panic!("expected timeout error, got {other:?}"),
    }
    // The cell kept computing; a same-id retry joins or hits it.
    let mut attempts = 0;
    loop {
        attempts += 1;
        match c.request(req) {
            Reply::Done { cached, .. } => {
                assert!(cached, "retry must be served from the original computation");
                break;
            }
            Reply::Error { error } if error.contains("timed out") && attempts < 50 => {}
            other => panic!("retry attempt {attempts}: {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn shutdown_drains_queued_work_before_bye() {
    let mut o = opts();
    o.jobs = 1;
    o.delay_ms = 200;
    let (server, addr) = start(o);
    let mut waiter = Client::connect(&addr, 30_000).unwrap();
    assert!(waiter.send("{\"type\":\"run\",\"cell\":0}"));
    std::thread::sleep(Duration::from_millis(30)); // let it enqueue
    let mut admin = Client::connect(&addr, 30_000).unwrap();
    assert!(admin.send("{\"type\":\"shutdown\"}"));
    // The in-flight cell completes for its waiter...
    match waiter.request("") {
        Reply::Done { .. } => {}
        other => panic!("queued request must finish during drain, got {other:?}"),
    }
    // ...and only then does the drainer get its bye.
    let bye = admin.recv().expect("bye");
    assert!(bye.contains("\"type\":\"bye\""), "got: {bye}");
    server.wait();
}

#[test]
fn concurrent_mixed_load_hits_cache_and_stays_consistent() {
    let (server, addr) = start(opts());
    let mut lo = LoadOpts::new(&addr);
    lo.clients = 16;
    lo.requests = 4;
    lo.dup_pct = 75;
    let report = load_gen(&lo).expect("load run");
    let field = |k: &str| -> u64 {
        let pat = format!("\"{k}\": ");
        let at = report.find(&pat).unwrap_or_else(|| panic!("{k} in {report}")) + pat.len();
        report[at..].split(|ch: char| !ch.is_ascii_digit()).next().unwrap().parse().unwrap()
    };
    assert_eq!(field("requests_ok"), 64, "all requests complete: {report}");
    assert_eq!(field("errors"), 0, "no errors: {report}");
    assert!(field("responses_cached") > 0, "duplicates must hit the cache: {report}");
    server.shutdown();
}

#[test]
fn metrics_exposition_reflects_request_outcomes() {
    let (server, addr) = start(opts());
    let mut c = Client::connect(&addr, 60_000).unwrap();
    // One fresh execution, then the same cell again from cache.
    match c.request("{\"type\":\"run\",\"cell\":0}") {
        Reply::Done { cached, .. } => assert!(!cached, "first touch must execute"),
        other => panic!("want done, got {other:?}"),
    }
    match c.request("{\"type\":\"run\",\"cell\":0}") {
        Reply::Done { cached, .. } => assert!(cached, "second touch must hit the cache"),
        other => panic!("want done, got {other:?}"),
    }
    let body = fetch_metrics(&addr).expect("metrics scrape");
    assert!(body.contains("# TYPE mssr_requests_total counter"), "{body}");
    assert!(body.contains("# TYPE mssr_request_latency_us histogram"), "{body}");
    assert!(body.contains("\nmssr_cache_misses_total 1\n"), "{body}");
    assert!(body.contains("\nmssr_cache_hits_total 1\n"), "{body}");
    // The per-outcome latency histograms saw exactly one request each,
    // and the cumulative +Inf bucket agrees with the count.
    assert!(body.contains("mssr_request_latency_us_count{result=\"hit\"} 1\n"), "{body}");
    assert!(body.contains("mssr_request_latency_us_count{result=\"miss\"} 1\n"), "{body}");
    assert!(
        body.contains("mssr_request_latency_us_bucket{result=\"hit\",le=\"+Inf\"} 1\n"),
        "{body}"
    );
    // Every non-comment line is `name[{labels}] value` with an integer
    // sample — i.e. the body parses as Prometheus text exposition.
    for line in body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (name, v) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line: {line}"));
        assert!(!name.is_empty(), "bad line: {line}");
        v.parse::<u64>().unwrap_or_else(|e| panic!("bad sample `{v}` in `{line}`: {e}"));
    }
    server.shutdown();
}

#[test]
fn metrics_latency_counts_cross_check_against_load_report() {
    // The CI "Serve smoke" assertion in miniature: after a load run, the
    // hit-labelled histogram count equals hits+joins and the
    // miss-labelled one equals misses, as reported by the server's own
    // stats embedded in the load report.
    let mut o = opts();
    o.jobs = 1;
    let (server, addr) = start(o);
    let mut load = LoadOpts::new(&addr);
    load.clients = 8;
    load.requests = 4;
    let report = load_gen(&load).expect("load run");
    let body = fetch_metrics(&addr).expect("metrics scrape");
    let grab = |text: &str, key: &str| -> u64 {
        let at = text.find(key).unwrap_or_else(|| panic!("missing {key} in: {text}"));
        text[at + key.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap_or_else(|e| panic!("bad {key}: {e}"))
    };
    let hits = grab(&report, "\"hits\":");
    let joins = grab(&report, "\"joins\":");
    let misses = grab(&report, "\"misses\":");
    assert!(hits + joins + misses > 0, "load must issue requests: {report}");
    assert_eq!(
        grab(&body, "mssr_request_latency_us_count{result=\"hit\"} "),
        hits + joins,
        "{body}"
    );
    assert_eq!(grab(&body, "mssr_request_latency_us_count{result=\"miss\"} "), misses, "{body}");
    server.shutdown();
}
