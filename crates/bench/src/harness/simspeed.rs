//! Sim-speed trajectory: the committed record of how fast the
//! simulator runs the Table 1 grid, and the CI gate that compares a
//! PR's measured throughput against it.
//!
//! `ci/regen-bench-simspeed.sh` runs the grid under `--timing
//! --profile` and calls [`measure`] + [`render`] to write
//! `BENCH_simspeed.json`: per-engine min/median/max host throughput
//! (thousandths of simulated MIPS) plus the stage-share breakdown from
//! the self-profiler, so a perf regression shows up as *which stage got
//! slower*, not just a smaller number.
//!
//! Wall-clock is machine-dependent, so the gate is a noise-tolerant
//! *ratio*: [`check`] fails only when a PR's median throughput drops
//! below `min_ratio_pct` percent of the committed baseline for any
//! engine. Stage shares are context for the human reading the diff, not
//! gated.

use super::report::{parse_profile, Json, Trajectory};
use mssr_sim::json_escape;

/// One engine's aggregated sim-speed record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineSpeed {
    /// Engine label (`BASE`, `RCVG_N_P`, ...).
    pub engine: String,
    /// Cells aggregated (one per workload on the grid).
    pub cells: u64,
    /// Slowest cell, thousandths of simulated MIPS.
    pub mips_min_milli: u64,
    /// Median cell (lower-median of the sorted cells).
    pub mips_median_milli: u64,
    /// Fastest cell.
    pub mips_max_milli: u64,
    /// Stage/bucket shares of attributed wall-clock in thousandths,
    /// aggregated over the engine's profile records (empty when the run
    /// had no `--profile` stream).
    pub stage_share_milli: Vec<(String, u64)>,
}

/// A sim-speed trajectory: the parsed form of `BENCH_simspeed.json`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Simspeed {
    /// Experiment the grid came from (`table1`).
    pub experiment: String,
    /// Workload scale of the run.
    pub scale: String,
    /// Per-engine aggregates, in first-appearance (trajectory) order.
    pub engines: Vec<EngineSpeed>,
}

/// Aggregates a `--timing` trajectory and its `--profile` stderr stream
/// into a [`Simspeed`] record.
///
/// # Errors
///
/// Returns a message when the trajectory is malformed, empty, or was
/// run without `--timing` (every throughput would read zero — a
/// baseline of zeros would wave every regression through).
pub fn measure(
    trajectory_text: &str,
    profile_text: &str,
    experiment: &str,
) -> Result<Simspeed, String> {
    let t = Trajectory::parse(trajectory_text)?;
    if t.cells.is_empty() {
        return Err("trajectory has no cells".to_string());
    }
    if t.cells.iter().all(|c| c.sim_mips_milli == 0) {
        return Err(
            "trajectory carries no sim_mips_milli — run the harness with --timing".to_string()
        );
    }
    let profile = parse_profile(profile_text);
    let mut engines: Vec<EngineSpeed> = Vec::new();
    for cell in &t.cells {
        if cell.sim_mips_milli == 0 {
            return Err(format!(
                "cell {} ({} × {}) is untimed — run the whole grid with --timing",
                cell.id, cell.workload, cell.engine
            ));
        }
        if !engines.iter().any(|e| e.engine == cell.engine) {
            engines.push(EngineSpeed { engine: cell.engine.clone(), ..EngineSpeed::default() });
        }
    }
    for e in &mut engines {
        let mut mips: Vec<u64> =
            t.cells.iter().filter(|c| c.engine == e.engine).map(|c| c.sim_mips_milli).collect();
        mips.sort_unstable();
        e.cells = mips.len() as u64;
        e.mips_min_milli = mips[0];
        e.mips_median_milli = mips[(mips.len() - 1) / 2];
        e.mips_max_milli = mips[mips.len() - 1];
        // Stage shares: sum each bucket's estimated whole-run time over
        // the engine's profile records, then normalize to thousandths.
        // Bucket order follows the first record so output is stable.
        let recs: Vec<_> = profile.iter().filter(|r| r.engine == e.engine).collect();
        let mut sums: Vec<(String, u64)> = Vec::new();
        for r in &recs {
            for (name, _) in &r.ns {
                if !sums.iter().any(|(k, _)| k == name) {
                    sums.push((name.clone(), 0));
                }
            }
        }
        for (name, acc) in &mut sums {
            for r in &recs {
                *acc = acc.saturating_add(r.est_ns(name));
            }
        }
        let total: u128 = sums.iter().map(|&(_, v)| u128::from(v)).sum();
        e.stage_share_milli = sums
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .map(|(k, v)| (k, (u128::from(v) * 1000 / total.max(1)) as u64))
            .collect();
    }
    Ok(Simspeed { experiment: experiment.to_string(), scale: t.scale, engines })
}

/// Renders a [`Simspeed`] record as the pretty-printed JSON body of
/// `BENCH_simspeed.json` (the same integer-only subset [`Json::parse`]
/// reads back).
pub fn render(s: &Simspeed) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"experiment\": \"{}\",\n", json_escape(&s.experiment)));
    out.push_str(&format!("  \"scale\": \"{}\",\n", json_escape(&s.scale)));
    out.push_str("  \"engines\": [\n");
    for (i, e) in s.engines.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"engine\": \"{}\",\n", json_escape(&e.engine)));
        out.push_str(&format!("      \"cells\": {},\n", e.cells));
        out.push_str(&format!("      \"mips_min_milli\": {},\n", e.mips_min_milli));
        out.push_str(&format!("      \"mips_median_milli\": {},\n", e.mips_median_milli));
        out.push_str(&format!("      \"mips_max_milli\": {},\n", e.mips_max_milli));
        let shares: Vec<String> = e
            .stage_share_milli
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
            .collect();
        out.push_str(&format!("      \"stage_share_milli\": {{{}}}\n", shares.join(", ")));
        out.push_str(if i + 1 == s.engines.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `BENCH_simspeed.json` body back into a [`Simspeed`].
///
/// # Errors
///
/// Returns a message on malformed JSON or a missing `engines` array.
pub fn parse(text: &str) -> Result<Simspeed, String> {
    let v = Json::parse(text)?;
    let Some(Json::Arr(engines)) = v.get("engines") else {
        return Err("missing engines array".to_string());
    };
    let mut s = Simspeed {
        experiment: v.get("experiment").and_then(Json::str_val).unwrap_or("?").to_string(),
        scale: v.get("scale").and_then(Json::str_val).unwrap_or("?").to_string(),
        engines: Vec::new(),
    };
    for e in engines {
        let mut rec = EngineSpeed {
            engine: e.get("engine").and_then(Json::str_val).unwrap_or("?").to_string(),
            cells: e.field_u64("cells"),
            mips_min_milli: e.field_u64("mips_min_milli"),
            mips_median_milli: e.field_u64("mips_median_milli"),
            mips_max_milli: e.field_u64("mips_max_milli"),
            stage_share_milli: Vec::new(),
        };
        if let Some(Json::Obj(kv)) = e.get("stage_share_milli") {
            for (k, val) in kv {
                rec.stage_share_milli.push((k.clone(), val.num().unwrap_or(0)));
            }
        }
        s.engines.push(rec);
    }
    Ok(s)
}

/// One engine's comparison against the committed baseline.
#[derive(Clone, Debug)]
pub struct SpeedCheck {
    /// Greppable summary line (`SIMSPEED engine=... ratio_pct=...`).
    pub line: String,
    /// Whether this engine passed the gate.
    pub ok: bool,
}

/// Compares a freshly measured [`Simspeed`] against the committed
/// baseline: one [`SpeedCheck`] per baseline engine, failing when the
/// current median throughput falls below `min_ratio_pct` percent of the
/// baseline median (or the engine disappeared from the grid). Engines
/// new in `current` pass silently — the next regen commits them.
pub fn check(current: &Simspeed, baseline: &Simspeed, min_ratio_pct: u64) -> Vec<SpeedCheck> {
    let mut out = Vec::new();
    for base in &baseline.engines {
        let Some(cur) = current.engines.iter().find(|e| e.engine == base.engine) else {
            out.push(SpeedCheck {
                line: format!("SIMSPEED engine={} status=MISSING", base.engine),
                ok: false,
            });
            continue;
        };
        let ratio_pct = (u128::from(cur.mips_median_milli) * 100
            / u128::from(base.mips_median_milli.max(1))) as u64;
        let ok = ratio_pct >= min_ratio_pct;
        out.push(SpeedCheck {
            line: format!(
                "SIMSPEED engine={} base_mips_milli={} cur_mips_milli={} ratio_pct={} \
                 min_ratio_pct={min_ratio_pct} status={}",
                base.engine,
                base.mips_median_milli,
                cur.mips_median_milli,
                ratio_pct,
                if ok { "ok" } else { "FAIL" },
            ),
            ok,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(id: u64, workload: &str, engine: &str, mips_milli: u64) -> String {
        format!(
            concat!(
                "{{\"type\":\"cell\",\"id\":{},\"workload\":\"{}\",\"suite\":\"micro\",",
                "\"engine\":\"{}\",\"seed\":\"0x1\",\"stats\":{{\"cycles\":1000,",
                "\"committed_instructions\":500,\"engine\":{{\"sim_mips_milli\":{}}},",
                "\"account\":{{}}}}}}\n",
            ),
            id, workload, engine, mips_milli
        )
    }

    fn fixture() -> String {
        let mut s = String::from(
            "{\"type\":\"meta\",\"root_seed\":\"0x1\",\"scale\":\"test\",\"cells\":4}\n",
        );
        s.push_str(&cell(0, "a", "BASE", 3000));
        s.push_str(&cell(1, "a", "RCVG_2_64", 2000));
        s.push_str(&cell(2, "b", "BASE", 1000));
        s.push_str(&cell(3, "b", "RCVG_2_64", 6000));
        s
    }

    fn profile_fixture() -> String {
        concat!(
            "{\"type\":\"profile\",\"cell\":0,\"workload\":\"a\",\"engine\":\"BASE\",",
            "\"cycles\":1000,\"insts\":500,\"total_us\":100,\"stride\":64,",
            "\"sampled_cycles\":16,\"ns\":{\"fetch\":100,\"rename\":0,\"issue\":0,",
            "\"execute\":300,\"commit\":0,\"squash\":0,\"ckpt\":0,\"ffwd\":0,\"bbv\":0}}\n",
        )
        .to_string()
    }

    #[test]
    fn measure_aggregates_min_median_max_per_engine() {
        let s = measure(&fixture(), &profile_fixture(), "table1").unwrap();
        assert_eq!(s.experiment, "table1");
        assert_eq!(s.scale, "test");
        assert_eq!(s.engines.len(), 2);
        let base = &s.engines[0];
        assert_eq!(base.engine, "BASE");
        assert_eq!(base.cells, 2);
        assert_eq!(
            (base.mips_min_milli, base.mips_median_milli, base.mips_max_milli),
            (1000, 1000, 3000)
        );
        // fetch 100ns and execute 300ns, both ×64 stride: shares 25%/75%.
        assert_eq!(
            base.stage_share_milli,
            vec![("fetch".to_string(), 250), ("execute".to_string(), 750)]
        );
        // No profile records for RCVG → no share breakdown, still timed.
        assert_eq!(s.engines[1].mips_median_milli, 2000);
        assert!(s.engines[1].stage_share_milli.is_empty());
    }

    #[test]
    fn untimed_trajectories_are_rejected() {
        let mut s = String::from(
            "{\"type\":\"meta\",\"root_seed\":\"0x1\",\"scale\":\"test\",\"cells\":1}\n",
        );
        s.push_str(&cell(0, "a", "BASE", 0));
        let err = measure(&s, "", "table1").unwrap_err();
        assert!(err.contains("--timing"), "{err}");
    }

    #[test]
    fn render_parse_round_trips() {
        let s = measure(&fixture(), &profile_fixture(), "table1").unwrap();
        let body = render(&s);
        let back = parse(&body).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn check_gates_on_median_ratio() {
        let base = measure(&fixture(), "", "table1").unwrap();
        // Identical run: every engine at 100%.
        let same = check(&base, &base, 75);
        assert!(same.iter().all(|c| c.ok));
        assert!(same[0].line.contains("ratio_pct=100"), "{}", same[0].line);
        // BASE median halves (1000 → 500): 50% < 75% fails, RCVG passes.
        let mut slow = base.clone();
        slow.engines[0].mips_median_milli = 500;
        let checks = check(&slow, &base, 75);
        assert!(!checks[0].ok && checks[0].line.contains("status=FAIL"), "{}", checks[0].line);
        assert!(checks[1].ok);
        // An engine missing from the current run is a failure.
        let mut gone = base.clone();
        gone.engines.remove(0);
        let checks = check(&gone, &base, 75);
        assert!(!checks[0].ok && checks[0].line.contains("status=MISSING"), "{}", checks[0].line);
    }
}
