//! A std-only metrics registry: atomic counters, gauges, and
//! log2-bucketed latency histograms, rendered as Prometheus text
//! exposition (version 0.0.4).
//!
//! `mssr-serve` instantiates one registry per server and answers the
//! `metrics` protocol request with [`Renderer`] output, so any scraper
//! that speaks the JSON-lines protocol can poll a long-running server.
//! The types here are deliberately tiny: lock-free `AtomicU64` cells
//! with relaxed ordering (metrics tolerate torn cross-metric reads; a
//! scrape is a statistical snapshot, not a transaction), no label
//! interning, no dynamic registration — the registry is a plain struct
//! whose fields *are* the schema.
//!
//! The module also owns the process-wide [`warn`] helper: operational
//! warnings (skipped checkpoints, degraded flag combinations) go to
//! stderr exactly as before *and* increment [`warnings_total`], making
//! them countable by a scraper instead of only greppable in logs.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const, so counters can be statics).
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A set-to-current-value gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets: upper bounds `2^0 .. 2^25`
/// microseconds (1 µs to ~33 s), doubling per bucket. Observations
/// beyond the last finite bound land in `+Inf` only.
pub const HIST_BUCKETS: usize = 26;

/// A log2-bucketed latency histogram over microseconds.
///
/// Bucket `i` counts observations with `value <= 2^i µs` (non-cumulative
/// in storage; [`Renderer::histogram`] accumulates for the Prometheus
/// `le` convention). Doubling bounds give ~1 significant bit of latency
/// resolution over six decades for 27 words of storage — the classic
/// HdrHistogram trade squeezed to its cheapest form.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    inf: AtomicU64,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A zeroed histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            inf: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        match self.buckets.get(bucket_index(us)) {
            Some(b) => b.fetch_add(1, Ordering::Relaxed),
            None => self.inf.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values (µs).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }
}

/// The index of the tightest bucket bound `2^i >= us` (out of range for
/// the `+Inf` bucket). `ceil(log2)` via leading zeros — unlike
/// `next_power_of_two`, it cannot overflow near `u64::MAX`.
fn bucket_index(us: u64) -> usize {
    (64 - (us.max(1) - 1).leading_zeros()) as usize
}

/// Renders metrics into one Prometheus text exposition body.
///
/// The caller drives it field-by-field — the registry struct's fields
/// are the schema, so rendering is a straight-line function over them
/// and the output order is deterministic.
#[derive(Debug, Default)]
pub struct Renderer {
    out: String,
}

impl Renderer {
    /// An empty exposition.
    pub fn new() -> Renderer {
        Renderer::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    /// Emits one counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Emits one gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Emits one histogram family: every `(labels, histogram)` series
    /// under a single HELP/TYPE header, buckets accumulated into the
    /// Prometheus cumulative-`le` convention with the mandatory `+Inf`,
    /// `_sum`, and `_count` series.
    pub fn histogram(&mut self, name: &str, help: &str, series: &[(&str, &Histogram)]) {
        self.header(name, help, "histogram");
        for (labels, h) in series {
            let sep = if labels.is_empty() { "" } else { "," };
            let mut cum = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                cum += b.load(Ordering::Relaxed);
                self.out.push_str(&format!(
                    "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cum}\n",
                    1u64 << i
                ));
            }
            cum += h.inf.load(Ordering::Relaxed);
            self.out.push_str(&format!("{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cum}\n"));
            let braces = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
            self.out.push_str(&format!("{name}_sum{braces} {}\n", h.sum_us()));
            self.out.push_str(&format!("{name}_count{braces} {}\n", h.count()));
        }
    }

    /// The finished exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Process-wide count of operational warnings emitted through [`warn`].
static WARNINGS: Counter = Counter::new();

/// Emits an operational warning: `warning: {msg}` on stderr (exactly the
/// format the scattered `eprintln!` call sites used) plus a tick of the
/// process-wide warning counter, so a metrics scrape can see how often a
/// server degrades (skipped checkpoints, ignored flags) without grepping
/// its logs.
pub fn warn(msg: impl std::fmt::Display) {
    WARNINGS.inc();
    eprintln!("warning: {msg}");
}

/// Warnings emitted so far (the `mssr_warnings_total` metric).
pub fn warnings_total() -> u64 {
    WARNINGS.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_what_they_say() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert!(bucket_index(u64::MAX) >= HIST_BUCKETS, "huge values fall through to +Inf");
        let h = Histogram::new();
        h.observe_us(3);
        h.observe_us(100);
        h.observe_us(u64::MAX / 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 3 + 100 + u64::MAX / 2);
    }

    #[test]
    fn renderer_emits_valid_exposition_lines() {
        let h = Histogram::new();
        h.observe_us(1);
        h.observe_us(5);
        let mut r = Renderer::new();
        r.counter("mssr_requests_total", "Requests received.", 9);
        r.gauge("mssr_queue_depth", "Jobs queued.", 2);
        r.histogram("mssr_latency_us", "Request latency.", &[("result=\"hit\"", &h)]);
        let text = r.finish();
        assert!(text.contains("# TYPE mssr_requests_total counter\n"));
        assert!(text.contains("mssr_requests_total 9\n"));
        assert!(text.contains("# TYPE mssr_queue_depth gauge\n"));
        assert!(text.contains("mssr_queue_depth 2\n"));
        assert!(text.contains("# TYPE mssr_latency_us histogram\n"));
        // le="1" sees the 1µs observation; le="8" and +Inf see both.
        assert!(text.contains("mssr_latency_us_bucket{result=\"hit\",le=\"1\"} 1\n"));
        assert!(text.contains("mssr_latency_us_bucket{result=\"hit\",le=\"8\"} 2\n"));
        assert!(text.contains("mssr_latency_us_bucket{result=\"hit\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("mssr_latency_us_sum{result=\"hit\"} 6\n"));
        assert!(text.contains("mssr_latency_us_count{result=\"hit\"} 2\n"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, v) = line.rsplit_once(' ').expect("value separated by space");
            v.parse::<u64>().expect("integer sample value");
        }
    }

    #[test]
    fn histogram_without_labels_renders_bare_series() {
        let h = Histogram::new();
        h.observe_us(2);
        let mut r = Renderer::new();
        r.histogram("mssr_x_us", "X.", &[("", &h)]);
        let text = r.finish();
        assert!(text.contains("mssr_x_us_bucket{le=\"2\"} 1\n"), "{text}");
        assert!(text.contains("mssr_x_us_sum 2\n"), "{text}");
        assert!(text.contains("mssr_x_us_count 1\n"), "{text}");
    }

    #[test]
    fn warn_increments_the_process_counter() {
        let before = warnings_total();
        warn("metrics-test warning");
        warn(format_args!("formatted {}", 42));
        assert_eq!(warnings_total(), before + 2);
    }
}
