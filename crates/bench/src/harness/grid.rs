//! The parallel experiment grid: cell pool, deduplication, workload
//! caching, and the work-stealing scoped-thread runner.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use std::path::Path;

use mssr_core::{MemCheckPolicy, MssrConfig, MultiStreamReuse, RegisterIntegration, RiConfig};
use mssr_sim::{
    fnv1a64, BbvCollector, BpredKind, BufferSink, CycleAccount, ProfReport, ReuseEngine, SimConfig,
    SimStats, Simulator, TraceEvent, TraceKind, TraceSink, PROF_DEFAULT_STRIDE,
};
use mssr_workloads::{Scale, Workload};

use super::metrics::warn;
use super::simpoint::{self, SimpointPlan};
use super::{cell_seed, splitmix64, HarnessOpts};
use crate::EngineSpec;

/// Salt mixed into the root seed for SimPoint clustering, so the
/// clustering's random choices are independent of the per-cell seed
/// stream while remaining a pure function of the root seed.
const SIMPOINT_SEED_SALT: u64 = 0x5350_4f49_4e54; // "SPOINT"

/// Detailed warmup prefix of each representative interval, as a
/// fraction of the interval length (interval/4). The warmup runs in
/// detail before the measured region and its counters are subtracted
/// out, removing the cold-pipeline fill bias a representative would
/// otherwise pay at its start (a real mid-program interval runs with a
/// full ROB; a fast-forwarded one starts empty). Warmup instructions
/// still count against the detailed-simulation budget.
const SIMPOINT_WARMUP_DIV: u64 = 4;

/// Index of a cell in its [`CellPool`] (and of its result in the vector
/// returned by [`CellPool::run`]).
pub type CellId = usize;

/// An engine configuration under evaluation: a base [`EngineSpec`] plus
/// the ablation axes (memory-check policy, reconvergence timeout,
/// single-page WPB restriction) the `ablation` experiment sweeps.
#[derive(Clone, Debug)]
pub struct EngineCfg {
    /// The base engine shape.
    pub spec: EngineSpec,
    /// Override of the reused-load memory-check policy.
    pub mem_policy: Option<MemCheckPolicy>,
    /// Override of the reconvergence timeout (renamed instructions).
    pub timeout: Option<u64>,
    /// Override of the single-page WPB restriction.
    pub vpn_restrict: Option<bool>,
}

impl From<EngineSpec> for EngineCfg {
    fn from(spec: EngineSpec) -> EngineCfg {
        EngineCfg { spec, mem_policy: None, timeout: None, vpn_restrict: None }
    }
}

impl EngineCfg {
    /// Sets the memory-check policy override.
    pub fn with_mem_policy(mut self, p: MemCheckPolicy) -> EngineCfg {
        self.mem_policy = Some(p);
        self
    }

    /// Sets the reconvergence-timeout override.
    pub fn with_timeout(mut self, t: u64) -> EngineCfg {
        self.timeout = Some(t);
        self
    }

    /// Sets the single-page WPB override.
    pub fn with_vpn_restrict(mut self, on: bool) -> EngineCfg {
        self.vpn_restrict = Some(on);
        self
    }

    /// The configuration's label: the spec label plus one suffix per
    /// override, so deduplication and reports distinguish ablations.
    pub fn label(&self) -> String {
        let mut l = self.spec.label();
        match self.mem_policy {
            Some(MemCheckPolicy::LoadVerification) => l.push_str("+ldverify"),
            Some(MemCheckPolicy::BloomFilter) => l.push_str("+bloom"),
            None => {}
        }
        if let Some(t) = self.timeout {
            l.push_str(&format!("+t{t}"));
        }
        match self.vpn_restrict {
            Some(true) => l.push_str("+vpn"),
            Some(false) => l.push_str("+fullpc"),
            None => {}
        }
        l
    }

    fn mssr_config(&self, streams: usize, log_entries: usize) -> MssrConfig {
        let mut cfg = MssrConfig::default()
            .with_streams(streams)
            .with_log_entries(log_entries)
            .with_wpb_entries((log_entries / 4).max(4));
        if let Some(p) = self.mem_policy {
            cfg = cfg.with_mem_policy(p);
        }
        if let Some(t) = self.timeout {
            cfg = cfg.with_timeout(t);
        }
        if let Some(v) = self.vpn_restrict {
            cfg = cfg.with_vpn_restrict(v);
        }
        cfg
    }

    /// Builds the Register Integration engine, if this is an RI spec
    /// (separate from [`EngineCfg::build`] so the grid runner can keep
    /// the per-set replacement-counter handle).
    pub fn build_ri(&self) -> Option<RegisterIntegration> {
        match self.spec {
            EngineSpec::Ri { sets, ways } => {
                let mut cfg = RiConfig::default().with_sets(sets).with_ways(ways);
                if let Some(p) = self.mem_policy {
                    cfg = cfg.with_mem_policy(p);
                }
                Some(RegisterIntegration::new(cfg))
            }
            _ => None,
        }
    }

    /// Builds the engine, or `None` for the baseline.
    pub fn build(&self) -> Option<Box<dyn ReuseEngine>> {
        match self.spec {
            EngineSpec::Baseline => None,
            EngineSpec::Mssr { streams, log_entries } => {
                Some(Box::new(MultiStreamReuse::new(self.mssr_config(streams, log_entries))))
            }
            EngineSpec::Ri { .. } => {
                Some(Box::new(self.build_ri().expect("ri spec")) as Box<dyn ReuseEngine>)
            }
        }
    }
}

/// One experiment cell: workload × engine configuration × simulator
/// configuration.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Workload id in the pool.
    pub workload: usize,
    /// Engine configuration.
    pub engine: EngineCfg,
    /// Simulator configuration.
    pub cfg: SimConfig,
}

/// The result of one cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell's deterministic seed (derived from the root seed).
    pub seed: u64,
    /// Simulated statistics.
    pub stats: SimStats,
    /// Register Integration per-set replacement counts (RI cells only).
    pub ri_set_replacements: Option<Vec<u64>>,
    /// The cell's JSON-lines event trace (`--trace` runs only). Events
    /// are collected per cell on the worker thread that ran it and
    /// emitted in cell order, so trace output is byte-identical across
    /// `--jobs` values like every other grid output.
    pub trace: Option<String>,
    /// The cell's sampling plan and per-representative measurements
    /// (`--simpoint` runs only). [`CellResult::stats`] then holds the
    /// field-wise sum over representatives, not a whole-program run;
    /// `mssr-report` reconstructs whole-program CPI from this record.
    pub simpoint: Option<SimpointCellResult>,
    /// The cell's host wall-clock profile (`--profile` runs only). Like
    /// `--timing`, this is machine-dependent — which is why the harness
    /// emits it on stderr, never into the trajectory.
    pub profile: Option<CellProfile>,
}

/// One cell's self-profile: the simulator's per-bucket wall-clock
/// attribution plus the cell's total wall time (the sim-MIPS and
/// cycles-per-second denominator).
#[derive(Clone, Debug)]
pub struct CellProfile {
    /// Whole-cell wall time in microseconds (≥ 1).
    pub total_us: u64,
    /// Per-stage sampled nanoseconds and whole-call ckpt/ffwd/bbv
    /// timings (see [`mssr_sim::ProfBucket`]).
    pub report: ProfReport,
}

/// One representative interval's detailed measurement under `--simpoint`.
#[derive(Clone, Debug)]
pub struct SimpointRep {
    /// Interval index in the BBV trace.
    pub index: u64,
    /// First instruction of the interval (the measurement start; the
    /// detailed run begins `warmup_insts` earlier).
    pub start_inst: u64,
    /// Instructions the plan assigned to the interval.
    pub planned_insts: u64,
    /// Cluster weight: instructions across the cluster's members.
    pub weight_insts: u64,
    /// Mean normalized-L1 BBV distance of cluster members to this
    /// representative, in thousandths (the error-bound input).
    pub spread_milli: u64,
    /// Detailed warmup instructions run before the measured region
    /// (their counters are excluded from `cycles`/`insts`/`account` but
    /// count against the detailed-simulation budget).
    pub warmup_insts: u64,
    /// Detailed cycles simulated in the measured region.
    pub cycles: u64,
    /// Detailed instructions committed in the measured region (the
    /// plan's count, give or take commit-width overshoot on the stop
    /// boundaries).
    pub insts: u64,
    /// The measured region's CPI-stack account.
    pub account: CycleAccount,
}

/// A cell's `--simpoint` record: the plan plus per-representative
/// measurements.
#[derive(Clone, Debug)]
pub struct SimpointCellResult {
    /// Interval length in instructions.
    pub interval: u64,
    /// Total instructions of the functional pass.
    pub total_insts: u64,
    /// Number of intervals clustered.
    pub n_intervals: u64,
    /// Chosen cluster count.
    pub k: u64,
    /// Per-representative measurements, in interval order.
    pub reps: Vec<SimpointRep>,
}

/// A process-wide in-memory checkpoint cache keyed by checkpoint stem —
/// the `mssr-serve` analogue of `--ckpt-dir`. It holds fast-forward
/// *boundary* snapshots only (taken before any detailed cycle has run),
/// which is what makes sharing them across sampling modes safe: a
/// restored boundary snapshot has no event-stream history to truncate,
/// unlike the mid-run checkpoints `--ckpt-every` writes to disk.
pub(crate) struct CkptMem {
    map: Mutex<HashMap<String, Arc<Vec<u8>>>>,
}

impl CkptMem {
    /// An empty cache.
    pub(crate) fn new() -> CkptMem {
        CkptMem { map: Mutex::new(HashMap::new()) }
    }

    /// The cached snapshot for `stem`, if one exists.
    pub(crate) fn get(&self, stem: &str) -> Option<Arc<Vec<u8>>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner).get(stem).cloned()
    }

    /// Caches `bytes` for `stem`; the first snapshot for a stem wins
    /// (identical stems are snapshots of identical simulator states).
    pub(crate) fn put(&self, stem: &str, bytes: Vec<u8>) {
        self.map
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(stem.to_string())
            .or_insert_with(|| Arc::new(bytes));
    }

    /// Number of cached snapshots.
    pub(crate) fn entries(&self) -> usize {
        self.map.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}

/// A per-line observer of a cell's live trace stream: called with each
/// raw event line as the simulator emits it, before the line lands in
/// the cell's buffer. `mssr-serve` uses this to stream progress samples
/// to the requesting client while the cell is still running.
pub(crate) type LiveSink = Box<dyn FnMut(&str) + Send>;

/// The buffer sink of the grid runner: collects raw event lines exactly
/// like [`BufferSink`] (same bytes, same order) and additionally feeds
/// each line to an optional live observer.
struct CallbackSink {
    buf: Arc<Mutex<String>>,
    live: Option<LiveSink>,
}

impl TraceSink for CallbackSink {
    fn record(&mut self, ev: &TraceEvent) {
        let line = ev.to_json();
        if let Some(f) = &mut self.live {
            f(&line);
        }
        let mut b = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        b.push_str(&line);
        b.push('\n');
    }
}

/// How to execute one cell — the per-run subset of [`HarnessOpts`] plus
/// the serve-only in-memory checkpoint cache. Batch runs build one from
/// their options; `mssr-serve` builds one per request.
pub(crate) struct CellRun<'a> {
    /// Record the full pipeline event trace.
    pub trace: bool,
    /// Interval-sampling period in cycles (`0` = off).
    pub sample: u64,
    /// Functional fast-forward depth in instructions.
    pub ffwd: u64,
    /// On-disk checkpoint directory (already `None` under trace/sample).
    pub ckpt_dir: Option<&'a Path>,
    /// Periodic checkpoint-save period (`0` = off).
    pub ckpt_every: u64,
    /// Record wall-clock simulated MIPS into the stats.
    pub timing: bool,
    /// Arm the simulator's per-stage self-profiler and return a
    /// [`CellProfile`] with the result (out-of-band; simulated output is
    /// byte-identical either way).
    pub profile: bool,
    /// Shared in-memory cache of fast-forward boundary snapshots.
    pub ckpt_mem: Option<&'a CkptMem>,
}

impl<'a> CellRun<'a> {
    /// The batch harness's execution parameters: disk checkpoints only,
    /// disabled under `--trace`/`--sample` (a restored mid-run
    /// checkpoint would emit only the tail of its event stream).
    pub(crate) fn from_opts(opts: &'a HarnessOpts) -> CellRun<'a> {
        let ckpt_dir = if opts.trace || opts.sample > 0 { None } else { opts.ckpt_dir.as_deref() };
        CellRun {
            trace: opts.trace,
            sample: opts.sample,
            ffwd: opts.ffwd,
            ckpt_dir,
            ckpt_every: opts.ckpt_every,
            timing: opts.timing,
            profile: opts.profile,
            ckpt_mem: None,
        }
    }
}

/// The shared cell pool of one harness invocation.
///
/// Workloads are interned by name, so each assembled `Program` (plus its
/// memory image and reference results) is built once and shared
/// immutably — `&Workload` — across every engine and worker thread.
/// Cells are deduplicated on (workload, engine label, simulator config),
/// so e.g. a GAP baseline declared by both `fig12` and `rollup` is
/// simulated once.
pub struct CellPool {
    scale: Scale,
    workloads: Vec<Workload>,
    by_name: HashMap<String, usize>,
    cells: Vec<CellSpec>,
    dedup: HashMap<(usize, String, String), CellId>,
    bpred_override: Option<BpredKind>,
}

impl CellPool {
    /// An empty pool at a workload scale.
    pub fn new(scale: Scale) -> CellPool {
        CellPool {
            scale,
            workloads: Vec::new(),
            by_name: HashMap::new(),
            cells: Vec::new(),
            dedup: HashMap::new(),
            bpred_override: None,
        }
    }

    /// Forces every subsequently declared cell onto one branch predictor
    /// (the harness's `--bpred` axis). Applied before deduplication and
    /// checkpoint-stem derivation, so overridden cells never collide
    /// with default ones.
    pub fn set_bpred_override(&mut self, kind: Option<BpredKind>) {
        self.bpred_override = kind;
    }

    /// The pool's workload scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Interns a workload by name (workload names encode their
    /// parameters, so equal names mean equal workloads).
    pub fn intern(&mut self, w: Workload) -> usize {
        if let Some(&id) = self.by_name.get(w.name()) {
            debug_assert_eq!(
                self.workloads[id].static_insts(),
                w.static_insts(),
                "name collision with different program: {}",
                w.name()
            );
            return id;
        }
        let id = self.workloads.len();
        self.by_name.insert(w.name().to_string(), id);
        self.workloads.push(w);
        id
    }

    /// The interned workload with id `id`.
    pub fn workload(&self, id: usize) -> &Workload {
        &self.workloads[id]
    }

    /// Declares a cell, returning its id (an existing id if an identical
    /// cell was declared before).
    pub fn cell(&mut self, workload: usize, engine: EngineCfg, mut cfg: SimConfig) -> CellId {
        if let Some(kind) = self.bpred_override {
            cfg = cfg.with_bpred(kind);
        }
        let key = (workload, engine.label(), format!("{cfg:?}"));
        if let Some(&id) = self.dedup.get(&key) {
            return id;
        }
        let id = self.cells.len();
        self.dedup.insert(key, id);
        self.cells.push(CellSpec { workload, engine, cfg });
        id
    }

    /// The spec of cell `id`.
    pub fn cell_spec(&self, id: CellId) -> &CellSpec {
        &self.cells[id]
    }

    /// The workload of cell `id`.
    pub fn cell_workload(&self, id: CellId) -> &Workload {
        &self.workloads[self.cells[id].workload]
    }

    /// Number of (deduplicated) cells declared.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are declared.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Runs every cell across `opts.jobs` workers; `results[i]` is cell
    /// `i`'s result regardless of which worker ran it or when.
    pub fn run(&self, opts: &HarnessOpts) -> Vec<CellResult> {
        if opts.ckpt_dir.is_some() && (opts.trace || opts.sample > 0) {
            warn(
                "--ckpt-dir is ignored under --trace/--sample (a restored run would emit only the tail of its event stream)",
            );
        }
        let plans = opts.simpoint.map(|_| self.simpoint_plans(opts));
        run_cells(self.cells.len(), opts.jobs, |i| {
            let seed = cell_seed(opts.root_seed, i as u64);
            match plans.as_ref().and_then(|p| p[self.cells[i].workload].as_ref()) {
                Some(plan) => self.run_cell_simpoint(i, seed, opts, plan),
                None => self.run_cell(i, seed, opts),
            }
        })
    }

    /// The SimPoint analysis pass: one functional run per workload
    /// referenced by at least one cell, collecting basic-block vectors
    /// and clustering them into a sampling plan. Runs on the same
    /// work-stealing grid as the cells; plans are a pure function of
    /// (workload, interval, maxk, root seed), independent of `--jobs`.
    /// Workloads no cell references get no plan.
    fn simpoint_plans(&self, opts: &HarnessOpts) -> Vec<Option<SimpointPlan>> {
        let (interval, max_k) = opts.simpoint.expect("caller checked --simpoint");
        // The functional pass is engine-independent; only the simulator
        // config's instruction bound matters, taken from the first cell
        // that references the workload.
        let cfg_of: Vec<Option<&SimConfig>> = (0..self.workloads.len())
            .map(|w| self.cells.iter().find(|c| c.workload == w).map(|c| &c.cfg))
            .collect();
        run_cells(self.workloads.len(), opts.jobs, |w| {
            let cfg = cfg_of[w]?;
            let mut sim = self.workloads[w].instantiate(cfg.clone());
            let mut bbv = BbvCollector::new(interval);
            let executed = sim.fast_forward_collect(cfg.max_insts, &mut bbv);
            let trace = bbv.finish(executed);
            Some(simpoint::plan(
                &trace,
                max_k,
                cell_seed(opts.root_seed ^ splitmix64(SIMPOINT_SEED_SALT), w as u64),
            ))
        })
    }

    /// The stable checkpoint-file stem of a cell: everything that shapes
    /// its simulation (workload, engine, simulator config, seed, scale,
    /// fast-forward) is hashed in, so a stale directory can never hand a
    /// cell another cell's state. (`Simulator::restore` re-checks the
    /// config/program/engine identity anyway; the stem just makes
    /// distinct cells use distinct files.)
    fn ckpt_stem(&self, spec: &CellSpec, seed: u64, ffwd: u64) -> String {
        let w = &self.workloads[spec.workload];
        let key = fnv1a64(
            format!(
                "{}|{}|{:?}|{seed:#x}|{:?}|{ffwd}",
                w.name(),
                spec.engine.label(),
                spec.cfg,
                self.scale
            )
            .as_bytes(),
        );
        format!("{:016x}", key)
    }

    fn run_cell(&self, i: CellId, seed: u64, opts: &HarnessOpts) -> CellResult {
        self.run_cell_with(i, seed, &CellRun::from_opts(opts), None)
    }

    /// Runs one cell under explicit execution parameters, optionally
    /// feeding each raw trace line to `live` as it is emitted. This is
    /// the shared execution path of the batch harness and `mssr-serve`,
    /// which is what keeps served results byte-identical to batch
    /// trajectories.
    pub(crate) fn run_cell_with(
        &self,
        i: CellId,
        seed: u64,
        rp: &CellRun<'_>,
        live: Option<LiveSink>,
    ) -> CellResult {
        let spec = &self.cells[i];
        let w = &self.workloads[spec.workload];
        let trace = rp.trace;
        let sample = rp.sample;
        // When tracing or sampling, events go into a per-cell buffer whose
        // handle we keep; the simulator consumes the sink itself. Without
        // `--trace` the sink's kind mask admits sample events only.
        let (sink, buf) = if trace || sample > 0 {
            let buf = Arc::new(Mutex::new(String::new()));
            (Some(CallbackSink { buf: Arc::clone(&buf), live }), Some(buf))
        } else {
            (None, None)
        };
        let mut ckpt_skips: Vec<String> = Vec::new();
        let run = |engine: Option<Box<dyn ReuseEngine>>, skips: &mut Vec<String>| {
            let mut sim = match engine {
                Some(e) => w.instantiate_with(spec.cfg.clone(), e),
                None => w.instantiate(spec.cfg.clone()),
            };
            if rp.profile {
                sim.set_profiling(PROF_DEFAULT_STRIDE);
            }
            if sample > 0 {
                sim.set_sample_interval(sample);
            }
            let mask = if !trace && sample > 0 { TraceKind::Sample.bit() } else { !0 };
            let stem = self.ckpt_stem(spec, seed, rp.ffwd);
            // The shared-memory restore runs *before* the sink attaches:
            // the donor may have checkpointed under a different trace
            // configuration, and nothing it replays (including the
            // restore event itself) belongs in this run's stream. A cold
            // run's stream starts with the fast-forward event, which
            // `rearm_tracing` re-emits below once the sink is live.
            let mut restored = false;
            if let Some(mem) = rp.ckpt_mem {
                if let Some(bytes) = mem.get(&stem) {
                    match sim.restore(&bytes) {
                        Ok(()) => restored = true,
                        Err(e) => skips.push(format!("<memory snapshot>: {e}")),
                    }
                }
            }
            if let Some(s) = sink {
                sim.set_trace_sink(Box::new(s));
                if !trace {
                    sim.set_trace_mask(mask);
                }
            }
            if restored {
                // A checkpoint restores its saver's sampler interval,
                // trace mask, and event counters; re-assert this run's.
                // The snapshot is a fast-forward boundary — zero detailed
                // cycles behind it — so a fresh sampler plus the re-armed
                // tracer is exactly the state a cold run of this
                // configuration has here.
                sim.set_sample_interval(sample);
                sim.rearm_tracing(mask);
            }
            if !restored {
                if let Some(dir) = rp.ckpt_dir {
                    let (ok, disk_skips) = restore_newest_ckpt(&mut sim, dir, &stem);
                    skips.extend(disk_skips);
                    restored = ok;
                }
            }
            if !restored && rp.ffwd > 0 {
                sim.fast_forward(rp.ffwd);
                // The boundary state is the shareable artifact: every
                // later request for this cell identity (any sampling
                // mode) can start detailed simulation from it.
                if let Some(mem) = rp.ckpt_mem {
                    mem.put(&stem, sim.snapshot());
                }
            }
            if let Some(dir) = rp.ckpt_dir.filter(|_| rp.ckpt_every > 0) {
                save_periodic_ckpts(&mut sim, dir, &stem, rp.ckpt_every);
            }
            let stats = w.finish(&mut sim);
            let prof = sim.profile_report();
            (stats, prof)
        };
        let started = (rp.timing || rp.profile).then(std::time::Instant::now);
        let (mut stats, prof, ri_set_replacements) = match spec.engine.build_ri() {
            Some(ri) => {
                // Keep the replacement-counter handle across the run
                // (fig3's per-set replacement-frequency data).
                let counters = ri.replacement_counters();
                let (stats, prof) = run(Some(Box::new(ri)), &mut ckpt_skips);
                let snapshot = counters.borrow().clone();
                (stats, prof, Some(snapshot))
            }
            None => {
                let (stats, prof) = run(spec.engine.build(), &mut ckpt_skips);
                (stats, prof, None)
            }
        };
        let total_us = started.map(|t0| (t0.elapsed().as_micros().max(1) as u64).max(1));
        if rp.timing {
            // MIPS = insts / µs; thousandths keep the trajectory integer.
            let us = total_us.expect("timed above");
            stats.engine.sim_mips_milli =
                (stats.committed_instructions.saturating_mul(1000) / us).max(1);
        }
        let profile = rp
            .profile
            .then(|| CellProfile { total_us: total_us.expect("timed above"), report: prof });
        record_ckpt_skips(&mut stats, &ckpt_skips, i, w.name(), &spec.engine.label());
        let trace = buf.map(|b| std::mem::take(&mut *b.lock().expect("trace buffer poisoned")));
        CellResult { seed, stats, ri_set_replacements, trace, simpoint: None, profile }
    }

    /// Runs one cell in SimPoint mode: for each representative interval
    /// of the workload's plan, fast-forward (or restore a checkpoint) to
    /// the interval start, simulate the interval in detail, and record
    /// its cycles and CPI account. The cell's `stats` become the
    /// field-wise sum over representatives; reconstruction to
    /// whole-program CPI happens in `mssr-report` using the weights.
    fn run_cell_simpoint(
        &self,
        i: CellId,
        seed: u64,
        opts: &HarnessOpts,
        plan: &SimpointPlan,
    ) -> CellResult {
        let spec = &self.cells[i];
        let w = &self.workloads[spec.workload];
        let trace = opts.trace;
        let sample = opts.sample;
        // Same rule as the plain path: checkpoint traffic is disabled
        // under --trace/--sample (a restored run would emit only the tail
        // of its event stream).
        let ckpt_dir = if trace || sample > 0 { None } else { opts.ckpt_dir.as_deref() };
        let started = (opts.timing || opts.profile).then(std::time::Instant::now);
        let mut stats = SimStats::default();
        let mut ri_set_replacements: Option<Vec<u64>> = None;
        let mut trace_out = String::new();
        let mut ckpt_skips: Vec<String> = Vec::new();
        let mut prof = ProfReport::default();
        let mut reps = Vec::with_capacity(plan.reps.len());
        for rep in &plan.reps {
            let (sink, buf) = if trace || sample > 0 {
                let sink = BufferSink::new();
                let handle = sink.handle();
                (Some(sink), Some(handle))
            } else {
                (None, None)
            };
            let ri = spec.engine.build_ri();
            let counters = ri.as_ref().map(RegisterIntegration::replacement_counters);
            let engine = match ri {
                Some(r) => Some(Box::new(r) as Box<dyn ReuseEngine>),
                None => spec.engine.build(),
            };
            let mut sim = match engine {
                Some(e) => w.instantiate_with(spec.cfg.clone(), e),
                None => w.instantiate(spec.cfg.clone()),
            };
            if opts.profile {
                sim.set_profiling(PROF_DEFAULT_STRIDE);
            }
            if sample > 0 {
                sim.set_sample_interval(sample);
            }
            if let Some(s) = sink {
                sim.set_trace_sink(Box::new(s));
                if !trace {
                    sim.set_trace_mask(TraceKind::Sample.bit());
                }
            }
            // Detailed warmup: back the fast-forward off by a quarter
            // interval (bounded by the program start) so the measured
            // region runs on a filled pipeline; its counters are
            // subtracted out below.
            let warm = (plan.interval / SIMPOINT_WARMUP_DIV).min(rep.start_inst);
            let ffwd = rep.start_inst - warm;
            // One checkpoint per representative: the stem hashes the
            // detailed-run start as its fast-forward depth, exactly the
            // stems the PR 4 machinery restores from.
            let stem = self.ckpt_stem(spec, seed, ffwd);
            let restored = match ckpt_dir {
                Some(dir) => {
                    let (ok, skips) = restore_newest_ckpt(&mut sim, dir, &stem);
                    ckpt_skips.extend(skips);
                    ok
                }
                None => false,
            };
            if !restored {
                if ffwd > 0 {
                    sim.fast_forward(ffwd);
                }
                if let Some(dir) = ckpt_dir {
                    save_ckpt_once(&sim, dir, &stem);
                }
            }
            if warm > 0 {
                sim.run_until_insts(warm);
            }
            let warm_stats = sim.stats();
            sim.run_until_insts(warm_stats.committed_instructions + rep.insts);
            let mut st = sim.stats();
            if sim.take_trace_sink().is_some() {
                st = sim.stats(); // trace_* counters final only after flush
            }
            // The measured region is the post-warmup delta; the warmup
            // and functional fast-forward are reported as skipped work.
            let mut delta = st.clone();
            merge_stats(&mut delta, &warm_stats, u64::saturating_sub);
            delta.ffwd_insts = st.ffwd_insts + warm_stats.committed_instructions;
            delta.skipped_cycles = st.skipped_cycles + warm_stats.cycles;
            if let Some(c) = counters {
                let snap = c.borrow();
                match &mut ri_set_replacements {
                    Some(acc) => {
                        for (a, b) in acc.iter_mut().zip(snap.iter()) {
                            *a += b;
                        }
                    }
                    None => ri_set_replacements = Some(snap.clone()),
                }
            }
            if let Some(b) = buf {
                trace_out.push_str(&std::mem::take(&mut *b.lock().expect("trace buffer poisoned")));
            }
            reps.push(SimpointRep {
                index: rep.index,
                start_inst: rep.start_inst,
                planned_insts: rep.insts,
                weight_insts: rep.weight_insts,
                spread_milli: rep.spread_milli,
                warmup_insts: warm_stats.committed_instructions,
                cycles: delta.cycles,
                insts: delta.committed_instructions,
                account: delta.account,
            });
            merge_stats(&mut stats, &delta, u64::wrapping_add);
            prof.merge(&sim.profile_report());
        }
        let total_us = started.map(|t0| (t0.elapsed().as_micros().max(1) as u64).max(1));
        if opts.timing {
            let us = total_us.expect("timed above");
            stats.engine.sim_mips_milli =
                (stats.committed_instructions.saturating_mul(1000) / us).max(1);
        }
        let profile = opts
            .profile
            .then(|| CellProfile { total_us: total_us.expect("timed above"), report: prof });
        record_ckpt_skips(&mut stats, &ckpt_skips, i, w.name(), &spec.engine.label());
        let trace = (trace || sample > 0).then_some(trace_out);
        let simpoint = Some(SimpointCellResult {
            interval: plan.interval,
            total_insts: plan.total_insts,
            n_intervals: plan.n_intervals,
            k: plan.k,
            reps,
        });
        CellResult { seed, stats, ri_set_replacements, trace, simpoint, profile }
    }
}

/// Field-wise merge of two stats records through `f` — `a = f(a, b)`
/// per counter. With `wrapping_add` it sums representative intervals
/// into the cell total; with `saturating_sub` it subtracts a warmup
/// snapshot to isolate the measured region. `sim_mips_milli` is
/// excluded — wall-clock throughput is recomputed over the whole cell
/// when `--timing` asks for it.
fn merge_stats(a: &mut SimStats, b: &SimStats, f: fn(u64, u64) -> u64) {
    a.cycles = f(a.cycles, b.cycles);
    a.committed_instructions = f(a.committed_instructions, b.committed_instructions);
    a.committed_branches = f(a.committed_branches, b.committed_branches);
    a.committed_cond_branches = f(a.committed_cond_branches, b.committed_cond_branches);
    a.mispredictions = f(a.mispredictions, b.mispredictions);
    a.renamed_instructions = f(a.renamed_instructions, b.renamed_instructions);
    a.squashed_instructions = f(a.squashed_instructions, b.squashed_instructions);
    a.flushes_branch = f(a.flushes_branch, b.flushes_branch);
    a.flushes_mem_order = f(a.flushes_mem_order, b.flushes_mem_order);
    a.flushes_reuse_verify = f(a.flushes_reuse_verify, b.flushes_reuse_verify);
    a.committed_loads = f(a.committed_loads, b.committed_loads);
    a.committed_stores = f(a.committed_stores, b.committed_stores);
    a.store_forwards = f(a.store_forwards, b.store_forwards);
    a.store_forward_stalls = f(a.store_forward_stalls, b.store_forward_stalls);
    a.l1_hits = f(a.l1_hits, b.l1_hits);
    a.l1_misses = f(a.l1_misses, b.l1_misses);
    a.l2_hits = f(a.l2_hits, b.l2_hits);
    a.l2_misses = f(a.l2_misses, b.l2_misses);
    a.snoops = f(a.snoops, b.snoops);
    a.ffwd_insts = f(a.ffwd_insts, b.ffwd_insts);
    a.skipped_cycles = f(a.skipped_cycles, b.skipped_cycles);
    let (e, g) = (&mut a.engine, &b.engine);
    e.reuse_tests = f(e.reuse_tests, g.reuse_tests);
    e.reuse_grants = f(e.reuse_grants, g.reuse_grants);
    e.reused_loads = f(e.reused_loads, g.reused_loads);
    e.reuse_fail_stale = f(e.reuse_fail_stale, g.reuse_fail_stale);
    e.reuse_fail_not_executed = f(e.reuse_fail_not_executed, g.reuse_fail_not_executed);
    e.reuse_fail_mem = f(e.reuse_fail_mem, g.reuse_fail_mem);
    e.reconvergences = f(e.reconvergences, g.reconvergences);
    e.recon_simple = f(e.recon_simple, g.recon_simple);
    e.recon_software = f(e.recon_software, g.recon_software);
    e.recon_hardware = f(e.recon_hardware, g.recon_hardware);
    for (d, s) in e.stream_distance.iter_mut().zip(g.stream_distance) {
        *d = f(*d, s);
    }
    e.divergences = f(e.divergences, g.divergences);
    e.timeouts = f(e.timeouts, g.timeouts);
    e.rgid_overflows = f(e.rgid_overflows, g.rgid_overflows);
    e.rgid_resets = f(e.rgid_resets, g.rgid_resets);
    e.streams_captured = f(e.streams_captured, g.streams_captured);
    e.entries_logged = f(e.entries_logged, g.entries_logged);
    e.pressure_reclaims = f(e.pressure_reclaims, g.pressure_reclaims);
    e.table_replacements = f(e.table_replacements, g.table_replacements);
    for (k, v) in &g.extra {
        match e.extra.iter_mut().find(|(key, _)| key == k) {
            Some((_, slot)) => *slot = f(*slot, *v),
            None => e.extra.push((k.clone(), f(0, *v))),
        }
    }
    for (d, s) in a.account.slots.iter_mut().zip(b.account.slots) {
        *d = f(*d, s);
    }
    a.account.credit_reuse_cycles = f(a.account.credit_reuse_cycles, b.account.credit_reuse_cycles);
    a.account.credit_recon_fetches =
        f(a.account.credit_recon_fetches, b.account.credit_recon_fetches);
}

/// Saves the simulator's current state as `{stem}.{committed}.ckpt` in
/// `dir` unless that file already exists (tmp+rename, like the periodic
/// saver, so concurrent cells never see a torn file).
fn save_ckpt_once(sim: &Simulator, dir: &Path, stem: &str) {
    let _ = std::fs::create_dir_all(dir);
    let committed = sim.stats().committed_instructions;
    let path = dir.join(format!("{stem}.{committed}.ckpt"));
    if path.exists() {
        return;
    }
    let tmp = dir.join(format!("{stem}.{committed}.ckpt.tmp"));
    if std::fs::write(&tmp, sim.snapshot()).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

/// Reports a cell's skipped-checkpoint tally: one stderr warning naming
/// every skipped file and its [`mssr_sim::CkptError`], plus a
/// `ckpt_restore_skips` counter in the cell's `EngineStats::extra` so
/// trajectories record the degraded restore. Clean cells emit nothing,
/// keeping their trajectory bytes unchanged.
fn record_ckpt_skips(stats: &mut SimStats, skips: &[String], i: CellId, w: &str, engine: &str) {
    if skips.is_empty() {
        return;
    }
    warn(format_args!(
        "cell {i} ({w}/{engine}): skipped {} invalid checkpoint(s), ran cold: {}",
        skips.len(),
        skips.join("; ")
    ));
    stats.engine.extra.push(("ckpt_restore_skips".to_string(), skips.len() as u64));
}

/// Restores the newest valid checkpoint for `stem` from `dir` into `sim`.
/// Invalid or mismatched files (corruption, a different build's config)
/// are skipped in favour of the next-newest; with none valid the cell
/// just runs from scratch — checkpoints are an accelerator, never a
/// correctness dependency. Each skipped file is reported back as
/// `"<name>: <reason>"` so the caller can surface the degradation
/// instead of silently eating the cold-start cost.
fn restore_newest_ckpt(sim: &mut Simulator, dir: &Path, stem: &str) -> (bool, Vec<String>) {
    let mut skips = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return (false, skips) };
    let mut found: Vec<(u64, std::path::PathBuf)> = entries
        .filter_map(|e| {
            let path = e.ok()?.path();
            let name = path.file_name()?.to_str()?;
            let rest = name.strip_prefix(stem)?.strip_prefix('.')?;
            let insts: u64 = rest.strip_suffix(".ckpt")?.parse().ok()?;
            Some((insts, path))
        })
        .collect();
    found.sort_unstable_by_key(|&(insts, _)| std::cmp::Reverse(insts));
    for (_, path) in found {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("<checkpoint>").to_string();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                skips.push(format!("{name}: unreadable ({e})"));
                continue;
            }
        };
        match sim.restore(&bytes) {
            Ok(()) => return (true, skips),
            Err(e) => skips.push(format!("{name}: {e}")),
        }
    }
    (false, skips)
}

/// Runs `sim` to completion, saving a checkpoint into `dir` every
/// `every` committed instructions. Files are written to a temporary name
/// and renamed into place so concurrent readers never see a torn file.
fn save_periodic_ckpts(sim: &mut Simulator, dir: &Path, stem: &str, every: u64) {
    let _ = std::fs::create_dir_all(dir);
    loop {
        let committed = sim.stats().committed_instructions;
        sim.run_until_insts(committed + every);
        let now = sim.stats().committed_instructions;
        if sim.is_halted() || now < committed + every {
            // Halted, or stopped short (cycle bound): the final state is
            // the run's result, not a resume point worth saving.
            return;
        }
        let path = dir.join(format!("{stem}.{now}.ckpt"));
        if !path.exists() {
            let tmp = dir.join(format!("{stem}.{now}.ckpt.tmp"));
            if std::fs::write(&tmp, sim.snapshot()).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }
}

/// Runs `n` independent cells across `jobs` scoped worker threads with a
/// work-stealing index queue (an atomic next-cell counter: idle workers
/// steal the next undone index, so long cells never serialize behind
/// short ones). Returns results in cell order — output is independent of
/// scheduling, which is what makes `--jobs N` byte-identical to
/// `--jobs 1`.
pub fn run_cells<T: Send>(n: usize, jobs: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let jobs = jobs.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    // Each worker catches its cell's panic and parks the payload in the
    // cell's slot; the collector below re-raises it with the failing
    // cell index attached. Without this, a worker panic surfaces only
    // as the scope's opaque "a scoped thread panicked" (the original
    // payload is lost) plus poisoned-mutex panics from the other
    // workers' slots.
    type Slot<T> = Mutex<Option<std::thread::Result<T>>>;
    let slots: Vec<Slot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = catch_unwind(AssertUnwindSafe(|| f(i)));
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, m)| match m.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(Ok(v)) => v,
            Some(Err(payload)) => {
                panic!("grid cell {i} panicked: {}", panic_message(payload.as_ref()))
            }
            None => panic!("grid cell {i} was never run"),
        })
        .collect()
}

/// Best-effort text of a caught panic payload (`&str` and `String`
/// cover every `panic!` in this workspace).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_workloads::microbench;

    #[test]
    fn run_cells_preserves_order_under_parallelism() {
        // Uneven work so threads finish out of order.
        let out = run_cells(64, 8, |i| {
            let mut acc = 0u64;
            for k in 0..((64 - i as u64) * 1000) {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            (i, acc % 2)
        });
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.0, i);
        }
    }

    #[test]
    fn run_cells_handles_empty_and_oversubscribed() {
        assert!(run_cells(0, 8, |i| i).is_empty());
        assert_eq!(run_cells(3, 64, |i| i * 2), vec![0, 2, 4]);
    }

    #[test]
    fn run_cells_reports_the_failing_cell_on_worker_panic() {
        // Pre-fix, a worker panic surfaced as the scope's opaque
        // "a scoped thread panicked": no cell index, no original payload.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output quiet
        let res = std::panic::catch_unwind(|| {
            run_cells(8, 4, |i| {
                if i == 5 {
                    panic!("boom in cell five");
                }
                i
            })
        });
        std::panic::set_hook(hook);
        let payload = res.expect_err("a panicking cell must fail the grid");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("cell 5"), "failing index must be named: {msg}");
        assert!(msg.contains("boom in cell five"), "original payload must survive: {msg}");
    }

    #[test]
    fn restore_newest_ckpt_reports_each_skipped_invalid_file() {
        let dir = std::env::temp_dir().join(format!("mssr-grid-skips-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        std::fs::write(dir.join("aa.100.ckpt"), b"definitely not a checkpoint").unwrap();
        std::fs::write(dir.join("aa.50.ckpt"), b"also garbage").unwrap();
        std::fs::write(dir.join("bb.100.ckpt"), b"other stem, ignored").unwrap();
        let w = microbench::nested_mispred(10);
        let mut sim = w.instantiate(SimConfig::default().with_max_cycles(100_000));
        let (ok, skips) = restore_newest_ckpt(&mut sim, &dir, "aa");
        assert!(!ok, "garbage files must not restore");
        assert_eq!(skips.len(), 2, "every invalid file for the stem is reported: {skips:?}");
        assert!(skips[0].contains("aa.100.ckpt"), "newest first: {skips:?}");
        assert!(skips[1].contains("aa.50.ckpt"), "{skips:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_ckpt_skips_counts_into_extra_and_leaves_clean_cells_alone() {
        let mut stats = SimStats::default();
        record_ckpt_skips(&mut stats, &[], 0, "w", "BASE");
        assert!(stats.engine.extra.is_empty(), "clean cells must not grow extra counters");
        record_ckpt_skips(
            &mut stats,
            &["a.1.ckpt: bad".into(), "a.0.ckpt: bad".into()],
            0,
            "w",
            "BASE",
        );
        assert_eq!(stats.engine.extra, vec![("ckpt_restore_skips".to_string(), 2)]);
    }

    #[test]
    fn ckpt_mem_first_snapshot_wins_and_counts() {
        let mem = CkptMem::new();
        assert!(mem.get("s").is_none());
        assert_eq!(mem.entries(), 0);
        mem.put("s", vec![1, 2, 3]);
        mem.put("s", vec![9, 9, 9]);
        assert_eq!(*mem.get("s").expect("cached"), vec![1, 2, 3]);
        assert_eq!(mem.entries(), 1);
    }

    #[test]
    fn pool_dedups_workloads_and_cells() {
        let mut pool = CellPool::new(Scale::Test);
        let a = pool.intern(microbench::nested_mispred(50));
        let b = pool.intern(microbench::nested_mispred(50));
        let c = pool.intern(microbench::nested_mispred(60));
        assert_eq!(a, b);
        assert_ne!(a, c);
        let cfg = SimConfig::default().with_max_cycles(1_000_000);
        let c1 = pool.cell(a, EngineSpec::Baseline.into(), cfg.clone());
        let c2 = pool.cell(a, EngineSpec::Baseline.into(), cfg.clone());
        let c3 = pool.cell(a, EngineSpec::Mssr { streams: 4, log_entries: 64 }.into(), cfg.clone());
        let c4 = pool.cell(
            a,
            EngineCfg::from(EngineSpec::Mssr { streams: 4, log_entries: 64 }).with_timeout(64),
            cfg,
        );
        assert_eq!(c1, c2, "identical cells dedup");
        assert_ne!(c1, c3);
        assert_ne!(c3, c4, "ablation overrides are distinct cells");
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn engine_cfg_labels_and_builds() {
        let e = EngineCfg::from(EngineSpec::Mssr { streams: 4, log_entries: 64 })
            .with_mem_policy(MemCheckPolicy::BloomFilter)
            .with_timeout(64)
            .with_vpn_restrict(true);
        assert_eq!(e.label(), "RCVG_4_64+bloom+t64+vpn");
        assert_eq!(e.build().unwrap().name(), "mssr");
        assert!(EngineCfg::from(EngineSpec::Baseline).build().is_none());
        let ri = EngineCfg::from(EngineSpec::Ri { sets: 64, ways: 2 });
        assert_eq!(ri.label(), "RI_64x2");
        assert!(ri.build_ri().is_some());
        assert_eq!(ri.build().unwrap().name(), "ri");
    }
}
