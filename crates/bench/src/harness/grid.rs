//! The parallel experiment grid: cell pool, deduplication, workload
//! caching, and the work-stealing scoped-thread runner.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use std::path::Path;

use mssr_core::{MemCheckPolicy, MssrConfig, MultiStreamReuse, RegisterIntegration, RiConfig};
use mssr_sim::{fnv1a64, BufferSink, ReuseEngine, SimConfig, SimStats, Simulator, TraceKind};
use mssr_workloads::{Scale, Workload};

use super::{cell_seed, HarnessOpts};
use crate::EngineSpec;

/// Index of a cell in its [`CellPool`] (and of its result in the vector
/// returned by [`CellPool::run`]).
pub type CellId = usize;

/// An engine configuration under evaluation: a base [`EngineSpec`] plus
/// the ablation axes (memory-check policy, reconvergence timeout,
/// single-page WPB restriction) the `ablation` experiment sweeps.
#[derive(Clone, Debug)]
pub struct EngineCfg {
    /// The base engine shape.
    pub spec: EngineSpec,
    /// Override of the reused-load memory-check policy.
    pub mem_policy: Option<MemCheckPolicy>,
    /// Override of the reconvergence timeout (renamed instructions).
    pub timeout: Option<u64>,
    /// Override of the single-page WPB restriction.
    pub vpn_restrict: Option<bool>,
}

impl From<EngineSpec> for EngineCfg {
    fn from(spec: EngineSpec) -> EngineCfg {
        EngineCfg { spec, mem_policy: None, timeout: None, vpn_restrict: None }
    }
}

impl EngineCfg {
    /// Sets the memory-check policy override.
    pub fn with_mem_policy(mut self, p: MemCheckPolicy) -> EngineCfg {
        self.mem_policy = Some(p);
        self
    }

    /// Sets the reconvergence-timeout override.
    pub fn with_timeout(mut self, t: u64) -> EngineCfg {
        self.timeout = Some(t);
        self
    }

    /// Sets the single-page WPB override.
    pub fn with_vpn_restrict(mut self, on: bool) -> EngineCfg {
        self.vpn_restrict = Some(on);
        self
    }

    /// The configuration's label: the spec label plus one suffix per
    /// override, so deduplication and reports distinguish ablations.
    pub fn label(&self) -> String {
        let mut l = self.spec.label();
        match self.mem_policy {
            Some(MemCheckPolicy::LoadVerification) => l.push_str("+ldverify"),
            Some(MemCheckPolicy::BloomFilter) => l.push_str("+bloom"),
            None => {}
        }
        if let Some(t) = self.timeout {
            l.push_str(&format!("+t{t}"));
        }
        match self.vpn_restrict {
            Some(true) => l.push_str("+vpn"),
            Some(false) => l.push_str("+fullpc"),
            None => {}
        }
        l
    }

    fn mssr_config(&self, streams: usize, log_entries: usize) -> MssrConfig {
        let mut cfg = MssrConfig::default()
            .with_streams(streams)
            .with_log_entries(log_entries)
            .with_wpb_entries((log_entries / 4).max(4));
        if let Some(p) = self.mem_policy {
            cfg = cfg.with_mem_policy(p);
        }
        if let Some(t) = self.timeout {
            cfg = cfg.with_timeout(t);
        }
        if let Some(v) = self.vpn_restrict {
            cfg = cfg.with_vpn_restrict(v);
        }
        cfg
    }

    /// Builds the Register Integration engine, if this is an RI spec
    /// (separate from [`EngineCfg::build`] so the grid runner can keep
    /// the per-set replacement-counter handle).
    pub fn build_ri(&self) -> Option<RegisterIntegration> {
        match self.spec {
            EngineSpec::Ri { sets, ways } => {
                let mut cfg = RiConfig::default().with_sets(sets).with_ways(ways);
                if let Some(p) = self.mem_policy {
                    cfg = cfg.with_mem_policy(p);
                }
                Some(RegisterIntegration::new(cfg))
            }
            _ => None,
        }
    }

    /// Builds the engine, or `None` for the baseline.
    pub fn build(&self) -> Option<Box<dyn ReuseEngine>> {
        match self.spec {
            EngineSpec::Baseline => None,
            EngineSpec::Mssr { streams, log_entries } => {
                Some(Box::new(MultiStreamReuse::new(self.mssr_config(streams, log_entries))))
            }
            EngineSpec::Ri { .. } => {
                Some(Box::new(self.build_ri().expect("ri spec")) as Box<dyn ReuseEngine>)
            }
        }
    }
}

/// One experiment cell: workload × engine configuration × simulator
/// configuration.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Workload id in the pool.
    pub workload: usize,
    /// Engine configuration.
    pub engine: EngineCfg,
    /// Simulator configuration.
    pub cfg: SimConfig,
}

/// The result of one cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell's deterministic seed (derived from the root seed).
    pub seed: u64,
    /// Simulated statistics.
    pub stats: SimStats,
    /// Register Integration per-set replacement counts (RI cells only).
    pub ri_set_replacements: Option<Vec<u64>>,
    /// The cell's JSON-lines event trace (`--trace` runs only). Events
    /// are collected per cell on the worker thread that ran it and
    /// emitted in cell order, so trace output is byte-identical across
    /// `--jobs` values like every other grid output.
    pub trace: Option<String>,
}

/// The shared cell pool of one harness invocation.
///
/// Workloads are interned by name, so each assembled `Program` (plus its
/// memory image and reference results) is built once and shared
/// immutably — `&Workload` — across every engine and worker thread.
/// Cells are deduplicated on (workload, engine label, simulator config),
/// so e.g. a GAP baseline declared by both `fig12` and `rollup` is
/// simulated once.
pub struct CellPool {
    scale: Scale,
    workloads: Vec<Workload>,
    by_name: HashMap<String, usize>,
    cells: Vec<CellSpec>,
    dedup: HashMap<(usize, String, String), CellId>,
}

impl CellPool {
    /// An empty pool at a workload scale.
    pub fn new(scale: Scale) -> CellPool {
        CellPool {
            scale,
            workloads: Vec::new(),
            by_name: HashMap::new(),
            cells: Vec::new(),
            dedup: HashMap::new(),
        }
    }

    /// The pool's workload scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Interns a workload by name (workload names encode their
    /// parameters, so equal names mean equal workloads).
    pub fn intern(&mut self, w: Workload) -> usize {
        if let Some(&id) = self.by_name.get(w.name()) {
            debug_assert_eq!(
                self.workloads[id].static_insts(),
                w.static_insts(),
                "name collision with different program: {}",
                w.name()
            );
            return id;
        }
        let id = self.workloads.len();
        self.by_name.insert(w.name().to_string(), id);
        self.workloads.push(w);
        id
    }

    /// The interned workload with id `id`.
    pub fn workload(&self, id: usize) -> &Workload {
        &self.workloads[id]
    }

    /// Declares a cell, returning its id (an existing id if an identical
    /// cell was declared before).
    pub fn cell(&mut self, workload: usize, engine: EngineCfg, cfg: SimConfig) -> CellId {
        let key = (workload, engine.label(), format!("{cfg:?}"));
        if let Some(&id) = self.dedup.get(&key) {
            return id;
        }
        let id = self.cells.len();
        self.dedup.insert(key, id);
        self.cells.push(CellSpec { workload, engine, cfg });
        id
    }

    /// The spec of cell `id`.
    pub fn cell_spec(&self, id: CellId) -> &CellSpec {
        &self.cells[id]
    }

    /// The workload of cell `id`.
    pub fn cell_workload(&self, id: CellId) -> &Workload {
        &self.workloads[self.cells[id].workload]
    }

    /// Number of (deduplicated) cells declared.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are declared.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Runs every cell across `opts.jobs` workers; `results[i]` is cell
    /// `i`'s result regardless of which worker ran it or when.
    pub fn run(&self, opts: &HarnessOpts) -> Vec<CellResult> {
        run_cells(self.cells.len(), opts.jobs, |i| {
            self.run_cell(i, cell_seed(opts.root_seed, i as u64), opts)
        })
    }

    /// The stable checkpoint-file stem of a cell: everything that shapes
    /// its simulation (workload, engine, simulator config, seed, scale,
    /// fast-forward) is hashed in, so a stale directory can never hand a
    /// cell another cell's state. (`Simulator::restore` re-checks the
    /// config/program/engine identity anyway; the stem just makes
    /// distinct cells use distinct files.)
    fn ckpt_stem(&self, spec: &CellSpec, seed: u64, ffwd: u64) -> String {
        let w = &self.workloads[spec.workload];
        let key = fnv1a64(
            format!(
                "{}|{}|{:?}|{seed:#x}|{:?}|{ffwd}",
                w.name(),
                spec.engine.label(),
                spec.cfg,
                self.scale
            )
            .as_bytes(),
        );
        format!("{:016x}", key)
    }

    fn run_cell(&self, i: CellId, seed: u64, opts: &HarnessOpts) -> CellResult {
        let spec = &self.cells[i];
        let w = &self.workloads[spec.workload];
        let trace = opts.trace;
        let sample = opts.sample;
        // Checkpoint reuse is disabled under --trace/--sample: a restored
        // run emits only the tail of its event stream, which would change
        // the trajectory relative to a straight-through run.
        let ckpt_dir = if trace || sample > 0 { None } else { opts.ckpt_dir.as_deref() };
        // When tracing or sampling, events go into a per-cell buffer whose
        // handle we keep; the simulator consumes the sink itself. Without
        // `--trace` the sink's kind mask admits sample events only.
        let (sink, buf) = if trace || sample > 0 {
            let sink = BufferSink::new();
            let handle = sink.handle();
            (Some(sink), Some(handle))
        } else {
            (None, None)
        };
        let run = |engine: Option<Box<dyn ReuseEngine>>| {
            let mut sim = match engine {
                Some(e) => w.instantiate_with(spec.cfg.clone(), e),
                None => w.instantiate(spec.cfg.clone()),
            };
            if sample > 0 {
                sim.set_sample_interval(sample);
            }
            if let Some(s) = sink {
                sim.set_trace_sink(Box::new(s));
                if !trace {
                    sim.set_trace_mask(TraceKind::Sample.bit());
                }
            }
            let stem = self.ckpt_stem(spec, seed, opts.ffwd);
            let restored = ckpt_dir.is_some_and(|dir| restore_newest_ckpt(&mut sim, dir, &stem));
            if !restored && opts.ffwd > 0 {
                sim.fast_forward(opts.ffwd);
            }
            if let Some(dir) = ckpt_dir.filter(|_| opts.ckpt_every > 0) {
                save_periodic_ckpts(&mut sim, dir, &stem, opts.ckpt_every);
            }
            w.finish(&mut sim)
        };
        let started = opts.timing.then(std::time::Instant::now);
        let (mut stats, ri_set_replacements) = match spec.engine.build_ri() {
            Some(ri) => {
                // Keep the replacement-counter handle across the run
                // (fig3's per-set replacement-frequency data).
                let counters = ri.replacement_counters();
                let stats = run(Some(Box::new(ri)));
                let snapshot = counters.borrow().clone();
                (stats, Some(snapshot))
            }
            None => (run(spec.engine.build()), None),
        };
        if let Some(t0) = started {
            // MIPS = insts / µs; thousandths keep the trajectory integer.
            let us = (t0.elapsed().as_micros().max(1) as u64).max(1);
            stats.engine.sim_mips_milli =
                (stats.committed_instructions.saturating_mul(1000) / us).max(1);
        }
        let trace = buf.map(|b| std::mem::take(&mut *b.lock().expect("trace buffer poisoned")));
        CellResult { seed, stats, ri_set_replacements, trace }
    }
}

/// Restores the newest valid checkpoint for `stem` from `dir` into `sim`.
/// Invalid or mismatched files (corruption, a different build's config)
/// are skipped in favour of the next-newest; with none valid the cell
/// just runs from scratch — checkpoints are an accelerator, never a
/// correctness dependency.
fn restore_newest_ckpt(sim: &mut Simulator, dir: &Path, stem: &str) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else { return false };
    let mut found: Vec<(u64, std::path::PathBuf)> = entries
        .filter_map(|e| {
            let path = e.ok()?.path();
            let name = path.file_name()?.to_str()?;
            let rest = name.strip_prefix(stem)?.strip_prefix('.')?;
            let insts: u64 = rest.strip_suffix(".ckpt")?.parse().ok()?;
            Some((insts, path))
        })
        .collect();
    found.sort_unstable_by_key(|&(insts, _)| std::cmp::Reverse(insts));
    for (_, path) in found {
        let Ok(bytes) = std::fs::read(&path) else { continue };
        if sim.restore(&bytes).is_ok() {
            return true;
        }
    }
    false
}

/// Runs `sim` to completion, saving a checkpoint into `dir` every
/// `every` committed instructions. Files are written to a temporary name
/// and renamed into place so concurrent readers never see a torn file.
fn save_periodic_ckpts(sim: &mut Simulator, dir: &Path, stem: &str, every: u64) {
    let _ = std::fs::create_dir_all(dir);
    loop {
        let committed = sim.stats().committed_instructions;
        sim.run_until_insts(committed + every);
        let now = sim.stats().committed_instructions;
        if sim.is_halted() || now < committed + every {
            // Halted, or stopped short (cycle bound): the final state is
            // the run's result, not a resume point worth saving.
            return;
        }
        let path = dir.join(format!("{stem}.{now}.ckpt"));
        if !path.exists() {
            let tmp = dir.join(format!("{stem}.{now}.ckpt.tmp"));
            if std::fs::write(&tmp, sim.snapshot()).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }
}

/// Runs `n` independent cells across `jobs` scoped worker threads with a
/// work-stealing index queue (an atomic next-cell counter: idle workers
/// steal the next undone index, so long cells never serialize behind
/// short ones). Returns results in cell order — output is independent of
/// scheduling, which is what makes `--jobs N` byte-identical to
/// `--jobs 1`.
pub fn run_cells<T: Send>(n: usize, jobs: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let jobs = jobs.clamp(1, n.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every cell ran to completion"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_workloads::microbench;

    #[test]
    fn run_cells_preserves_order_under_parallelism() {
        // Uneven work so threads finish out of order.
        let out = run_cells(64, 8, |i| {
            let mut acc = 0u64;
            for k in 0..((64 - i as u64) * 1000) {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            (i, acc % 2)
        });
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.0, i);
        }
    }

    #[test]
    fn run_cells_handles_empty_and_oversubscribed() {
        assert!(run_cells(0, 8, |i| i).is_empty());
        assert_eq!(run_cells(3, 64, |i| i * 2), vec![0, 2, 4]);
    }

    #[test]
    fn pool_dedups_workloads_and_cells() {
        let mut pool = CellPool::new(Scale::Test);
        let a = pool.intern(microbench::nested_mispred(50));
        let b = pool.intern(microbench::nested_mispred(50));
        let c = pool.intern(microbench::nested_mispred(60));
        assert_eq!(a, b);
        assert_ne!(a, c);
        let cfg = SimConfig::default().with_max_cycles(1_000_000);
        let c1 = pool.cell(a, EngineSpec::Baseline.into(), cfg.clone());
        let c2 = pool.cell(a, EngineSpec::Baseline.into(), cfg.clone());
        let c3 = pool.cell(a, EngineSpec::Mssr { streams: 4, log_entries: 64 }.into(), cfg.clone());
        let c4 = pool.cell(
            a,
            EngineCfg::from(EngineSpec::Mssr { streams: 4, log_entries: 64 }).with_timeout(64),
            cfg,
        );
        assert_eq!(c1, c2, "identical cells dedup");
        assert_ne!(c1, c3);
        assert_ne!(c3, c4, "ablation overrides are distinct cells");
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn engine_cfg_labels_and_builds() {
        let e = EngineCfg::from(EngineSpec::Mssr { streams: 4, log_entries: 64 })
            .with_mem_policy(MemCheckPolicy::BloomFilter)
            .with_timeout(64)
            .with_vpn_restrict(true);
        assert_eq!(e.label(), "RCVG_4_64+bloom+t64+vpn");
        assert_eq!(e.build().unwrap().name(), "mssr");
        assert!(EngineCfg::from(EngineSpec::Baseline).build().is_none());
        let ri = EngineCfg::from(EngineSpec::Ri { sets: 64, ways: 2 });
        assert_eq!(ri.label(), "RI_64x2");
        assert!(ri.build_ri().is_some());
        assert_eq!(ri.build().unwrap().name(), "ri");
    }
}
