//! SimPoint-style phase analysis: deterministic k-means over
//! basic-block vectors, BIC model selection, and representative-interval
//! picking.
//!
//! The pipeline is the classic SimPoint recipe (Sherwood et al.) built
//! std-only on the simulator's exact BBV traces
//! ([`mssr_sim::BbvTrace`]): normalize each interval's sparse block
//! counts to frequencies, random-project to [`PROJECT_DIMS`] dimensions,
//! cluster with k-means for k = 1..=maxk, score each k with the
//! Bayesian information criterion, and keep the smallest k whose score
//! reaches 90% of the observed range. Each cluster contributes one
//! representative interval (the member closest to the centroid) whose
//! weight is the cluster's share of total instructions.
//!
//! # Determinism rules
//!
//! Every step is bit-deterministic and invariant under permutation of
//! the input vectors:
//!
//! * the projection hashes block *addresses* (not indices) into fixed
//!   ±1 signs, and accumulates in sorted-address order;
//! * k-means++ seeding and Lloyd iterations walk vectors in a
//!   *canonical order* (sorted lexicographically by coordinates), so
//!   seeded choices, centroid summation order, and empty-cluster repair
//!   do not depend on input order or thread count;
//! * all tie-breaks are explicit (lowest centroid index, smallest
//!   interval index, first in canonical order);
//! * the only randomness is a splitmix64 stream from the caller's seed.
//!
//! Floating point stays IEEE-deterministic because summation order is
//! fixed; results are quantized to integer thousandths before they
//! reach any trajectory output.

use mssr_sim::BbvTrace;

use super::splitmix64;

/// Random-projection target dimensionality (SimPoint uses 15; a power
/// of two keeps the sign-hash trivial).
pub const PROJECT_DIMS: usize = 16;

/// Lloyd-iteration cap (clustering converges in far fewer on BBV data).
const MAX_ITERS: usize = 64;

/// A deterministic splitmix64 stream.
struct Rng {
    seed: u64,
    ctr: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng { seed, ctr: 0 }
    }

    fn next_u64(&mut self) -> u64 {
        self.ctr += 1;
        splitmix64(self.seed ^ splitmix64(self.ctr))
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Projects one sparse BBV (sorted `(block address, count)` pairs over
/// `insts` instructions) into `dims` dimensions with a ±1 sign hash per
/// (address, dimension). Counts are normalized to frequencies first, so
/// intervals of different length (the partial tail) are comparable.
pub fn project(blocks: &[(u64, u64)], insts: u64, dims: usize, seed: u64) -> Vec<f64> {
    assert!(dims <= 64, "sign projection draws one bit per dimension from a 64-bit hash");
    let mut out = vec![0.0; dims];
    if insts == 0 {
        return out;
    }
    let inv = 1.0 / insts as f64;
    for &(addr, count) in blocks {
        let signs = splitmix64(seed ^ splitmix64(addr));
        let freq = count as f64 * inv;
        for (d, slot) in out.iter_mut().enumerate() {
            if signs >> d & 1 == 1 {
                *slot += freq;
            } else {
                *slot -= freq;
            }
        }
    }
    out
}

fn sqdist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Compares two vectors lexicographically by `total_cmp` (the canonical
/// order every deterministic walk uses).
fn lex_cmp(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let c = x.total_cmp(y);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    std::cmp::Ordering::Equal
}

/// A k-means clustering result.
#[derive(Clone, Debug)]
pub struct Kmeans {
    /// Final centroids (at most the requested k; fewer when the data has
    /// fewer distinct points).
    pub centroids: Vec<Vec<f64>>,
    /// `assign[i]` is the centroid index of input vector `i`.
    pub assign: Vec<usize>,
    /// Sum of squared distances of every vector to its centroid.
    pub inertia: f64,
}

/// Deterministic k-means: seeded k-means++ initialization, Lloyd
/// iterations in canonical order, explicit tie-breaks (see the module
/// docs for the determinism rules). Same seed ⇒ identical centroids and
/// assignments, regardless of input permutation or caller threading.
///
/// # Panics
///
/// Panics if `vectors` is empty or `k` is zero.
pub fn kmeans(vectors: &[Vec<f64>], k: usize, seed: u64) -> Kmeans {
    assert!(!vectors.is_empty(), "k-means needs at least one vector");
    assert!(k > 0, "k-means needs k >= 1");
    let n = vectors.len();
    let k = k.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| lex_cmp(&vectors[a], &vectors[b]));

    // k-means++ over the canonical order: the first centroid is a seeded
    // pick; each next is drawn proportionally to squared distance from
    // the chosen set, via a prefix walk (deterministic for a given seed,
    // permutation-invariant because the walk order is canonical).
    let mut rng = Rng::new(seed);
    let mut centroids: Vec<Vec<f64>> =
        vec![vectors[order[(rng.next_u64() % n as u64) as usize]].clone()];
    while centroids.len() < k {
        let d2: Vec<f64> = order
            .iter()
            .map(|&i| {
                centroids.iter().map(|c| sqdist(&vectors[i], c)).fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            break; // every remaining point coincides with a centroid
        }
        let target = rng.next_f64() * total;
        let mut cum = 0.0;
        let mut pick = *order.last().expect("non-empty");
        for (pos, &i) in order.iter().enumerate() {
            cum += d2[pos];
            if cum > target {
                pick = i;
                break;
            }
        }
        centroids.push(vectors[pick].clone());
    }

    let dims = vectors[0].len();
    let nearest = |v: &[f64], cs: &[Vec<f64>]| -> usize {
        let mut best = 0;
        let mut best_d = sqdist(v, &cs[0]);
        for (j, c) in cs.iter().enumerate().skip(1) {
            let d = sqdist(v, c);
            if d < best_d {
                best = j;
                best_d = d;
            }
        }
        best
    };
    let mut assign: Vec<usize> = vectors.iter().map(|v| nearest(v, &centroids)).collect();
    for _ in 0..MAX_ITERS {
        // Means accumulate in canonical order so float summation is
        // permutation-invariant.
        let mut sums = vec![vec![0.0; dims]; centroids.len()];
        let mut counts = vec![0u64; centroids.len()];
        for &i in &order {
            let j = assign[i];
            counts[j] += 1;
            for (s, x) in sums[j].iter_mut().zip(&vectors[i]) {
                *s += x;
            }
        }
        // Empty-cluster repair candidate: the point farthest from its
        // current centroid (first such point in canonical order),
        // computed before centroids move.
        let mut far = order[0];
        let mut far_d = -1.0;
        for &i in &order {
            let d = sqdist(&vectors[i], &centroids[assign[i]]);
            if d > far_d {
                far = i;
                far_d = d;
            }
        }
        for (j, c) in centroids.iter_mut().enumerate() {
            if counts[j] > 0 {
                let inv = 1.0 / counts[j] as f64;
                for (slot, s) in c.iter_mut().zip(&sums[j]) {
                    *slot = s * inv;
                }
            } else {
                *c = vectors[far].clone();
            }
        }
        let next: Vec<usize> = vectors.iter().map(|v| nearest(v, &centroids)).collect();
        let stable = next == assign;
        assign = next;
        if stable {
            break;
        }
    }
    let inertia: f64 = order.iter().map(|&i| sqdist(&vectors[i], &centroids[assign[i]])).sum();
    Kmeans { centroids, assign, inertia }
}

/// The Bayesian information criterion of a clustering under a spherical
/// Gaussian model (the X-means formulation). Larger is better;
/// `f64::INFINITY` marks a perfect (zero-variance) fit.
fn bic(n: usize, dims: usize, km: &Kmeans) -> f64 {
    let k = km.centroids.len();
    if n <= k {
        return f64::INFINITY;
    }
    let variance = km.inertia / (dims * (n - k)) as f64;
    if variance <= f64::EPSILON {
        return f64::INFINITY;
    }
    let nf = n as f64;
    let df = dims as f64;
    let mut counts = vec![0u64; k];
    for &a in &km.assign {
        counts[a] += 1;
    }
    let mut loglik = -nf * df / 2.0 * (2.0 * std::f64::consts::PI * variance).ln()
        - (n - k) as f64 * df / 2.0
        - nf * nf.ln();
    for &c in &counts {
        if c > 0 {
            loglik += c as f64 * (c as f64).ln();
        }
    }
    let params = (k * (dims + 1)) as f64;
    loglik - params / 2.0 * nf.ln()
}

/// Clusters for every k in `1..=max_k` and picks the smallest k whose
/// BIC score reaches 90% of the observed score range (the SimPoint
/// elbow policy), returning that clustering.
pub fn choose_k(vectors: &[Vec<f64>], max_k: usize, seed: u64) -> Kmeans {
    assert!(max_k > 0, "need max_k >= 1");
    let max_k = max_k.min(vectors.len());
    let runs: Vec<Kmeans> = (1..=max_k).map(|k| kmeans(vectors, k, seed)).collect();
    let scores: Vec<f64> = runs.iter().map(|km| bic(vectors.len(), vectors[0].len(), km)).collect();
    // A perfect fit (infinite score) at the smallest k wins outright.
    if let Some(pos) = scores.iter().position(|s| s.is_infinite()) {
        return runs.into_iter().nth(pos).expect("position in range");
    }
    let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let pos = if hi - lo <= f64::EPSILON {
        0
    } else {
        scores
            .iter()
            .position(|s| (s - lo) / (hi - lo) >= 0.9)
            .expect("the maximum reaches the threshold")
    };
    runs.into_iter().nth(pos).expect("position in range")
}

/// One representative interval of a [`SimpointPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepInterval {
    /// Index of the representative interval in the BBV trace.
    pub index: u64,
    /// First instruction of the interval in the functional pass (the
    /// fast-forward depth of its detailed run and checkpoint).
    pub start_inst: u64,
    /// Instructions in the interval (the detailed-run length).
    pub insts: u64,
    /// Weight: total instructions across the cluster's member intervals.
    pub weight_insts: u64,
    /// Mean normalized-L1 BBV distance of the cluster's members to this
    /// representative, in thousandths (0 = phase-homogeneous cluster;
    /// the reconstruction error bound derives from it).
    pub spread_milli: u64,
}

/// A workload's SimPoint plan: which intervals to simulate in detail,
/// and with what weights.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimpointPlan {
    /// Interval length in instructions.
    pub interval: u64,
    /// Total instructions of the functional pass.
    pub total_insts: u64,
    /// Number of intervals clustered.
    pub n_intervals: u64,
    /// The chosen cluster count.
    pub k: u64,
    /// Representatives, sorted by interval index.
    pub reps: Vec<RepInterval>,
}

impl SimpointPlan {
    /// Instructions the plan simulates in detail (the ≤20% budget the
    /// acceptance gate tracks).
    pub fn detailed_insts(&self) -> u64 {
        self.reps.iter().map(|r| r.insts).sum()
    }
}

/// Normalized L1 distance between two sparse BBVs (merge walk in sorted
/// address order; each vector normalized by its own instruction count).
fn bbv_l1(a: &[(u64, u64)], na: u64, b: &[(u64, u64)], nb: u64) -> f64 {
    let (inv_a, inv_b) = (1.0 / na.max(1) as f64, 1.0 / nb.max(1) as f64);
    let (mut i, mut j) = (0, 0);
    let mut d = 0.0;
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&(ka, va)), Some(&(kb, vb))) if ka == kb => {
                d += (va as f64 * inv_a - vb as f64 * inv_b).abs();
                i += 1;
                j += 1;
            }
            (Some(&(ka, va)), Some(&(kb, _))) if ka < kb => {
                d += va as f64 * inv_a;
                i += 1;
            }
            (Some(_), Some(&(_, vb))) => {
                d += vb as f64 * inv_b;
                j += 1;
            }
            (Some(&(_, va)), None) => {
                d += va as f64 * inv_a;
                i += 1;
            }
            (None, Some(&(_, vb))) => {
                d += vb as f64 * inv_b;
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    d
}

/// Builds the SimPoint plan for one BBV trace: project, cluster with
/// [`choose_k`], pick per-cluster representatives, and weight them by
/// cluster instruction counts.
///
/// # Panics
///
/// Panics on an empty trace (a workload that executed no instructions
/// has nothing to sample).
pub fn plan(trace: &BbvTrace, max_k: usize, seed: u64) -> SimpointPlan {
    assert!(!trace.intervals.is_empty(), "cannot plan over an empty BBV trace");
    let vectors: Vec<Vec<f64>> = trace
        .intervals
        .iter()
        .map(|iv| project(&iv.blocks, iv.insts, PROJECT_DIMS, seed))
        .collect();
    let km = choose_k(&vectors, max_k, seed);
    let k = km.centroids.len();
    let mut reps = Vec::with_capacity(k);
    for (j, centroid) in km.centroids.iter().enumerate() {
        let members: Vec<usize> = (0..vectors.len()).filter(|&i| km.assign[i] == j).collect();
        if members.is_empty() {
            continue; // k-means++ stopped early on duplicate-heavy data
        }
        // Representative: the member nearest the centroid, smallest
        // interval index on ties (members iterate in index order).
        let mut rep = members[0];
        let mut rep_d = sqdist(&vectors[rep], centroid);
        for &m in &members[1..] {
            let d = sqdist(&vectors[m], centroid);
            if d < rep_d {
                rep = m;
                rep_d = d;
            }
        }
        let weight_insts: u64 = members.iter().map(|&m| trace.intervals[m].insts).sum();
        let rep_iv = &trace.intervals[rep];
        let spread: f64 = members
            .iter()
            .map(|&m| {
                let iv = &trace.intervals[m];
                bbv_l1(&iv.blocks, iv.insts, &rep_iv.blocks, rep_iv.insts)
            })
            .sum::<f64>()
            / members.len() as f64;
        reps.push(RepInterval {
            index: rep as u64,
            start_inst: rep_iv.start_inst,
            insts: rep_iv.insts,
            weight_insts,
            spread_milli: (spread * 1000.0 + 0.5) as u64,
        });
    }
    reps.sort_by_key(|r| r.index);
    SimpointPlan {
        interval: trace.interval,
        total_insts: trace.total_insts,
        n_intervals: trace.intervals.len() as u64,
        k: reps.len() as u64,
        reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_sim::BbvInterval;

    /// Synthetic sparse BBVs around `centers` distinct phases.
    fn synthetic_vectors(n: usize, centers: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|i| {
                let phase = i % centers;
                let blocks: Vec<(u64, u64)> = (0..8)
                    .map(|b| {
                        let addr = 0x1000 * (phase as u64 + 1) + 8 * b;
                        (addr, 50 + rng.next_u64() % 10)
                    })
                    .collect();
                let insts = blocks.iter().map(|&(_, c)| c).sum();
                project(&blocks, insts, PROJECT_DIMS, 7)
            })
            .collect()
    }

    #[test]
    fn projection_is_deterministic_and_length_invariant() {
        let blocks = vec![(0x100, 30), (0x200, 70)];
        let a = project(&blocks, 100, PROJECT_DIMS, 42);
        let b = project(&blocks, 100, PROJECT_DIMS, 42);
        assert_eq!(a, b);
        // Doubling every count (same frequencies) projects identically.
        let doubled: Vec<(u64, u64)> = blocks.iter().map(|&(a, c)| (a, c * 2)).collect();
        let c = project(&doubled, 200, PROJECT_DIMS, 42);
        assert_eq!(a, c);
        // A different seed flips signs.
        assert_ne!(a, project(&blocks, 100, PROJECT_DIMS, 43));
    }

    #[test]
    fn kmeans_recovers_well_separated_phases() {
        let vs = synthetic_vectors(30, 3, 1);
        let km = kmeans(&vs, 3, 99);
        assert_eq!(km.centroids.len(), 3);
        // Same phase ⇒ same cluster; different phase ⇒ different cluster.
        for i in 0..vs.len() {
            assert_eq!(km.assign[i], km.assign[i % 3], "phase consistency");
        }
        assert_ne!(km.assign[0], km.assign[1]);
        assert_ne!(km.assign[1], km.assign[2]);
    }

    #[test]
    fn kmeans_is_permutation_invariant() {
        let vs = synthetic_vectors(24, 4, 2);
        let km = kmeans(&vs, 4, 7);
        // Reverse the input; assignments must map back exactly and the
        // centroid list must be bit-identical.
        let rev: Vec<Vec<f64>> = vs.iter().rev().cloned().collect();
        let km_rev = kmeans(&rev, 4, 7);
        assert_eq!(km.centroids, km_rev.centroids, "centroids depend on input order");
        let n = vs.len();
        for i in 0..n {
            assert_eq!(km.assign[i], km_rev.assign[n - 1 - i], "assignment of vector {i}");
        }
        assert_eq!(km.inertia.to_bits(), km_rev.inertia.to_bits());
    }

    #[test]
    fn every_vector_is_assigned_to_its_nearest_centroid() {
        let vs = synthetic_vectors(40, 5, 3);
        let km = kmeans(&vs, 5, 11);
        for (i, v) in vs.iter().enumerate() {
            let mine = sqdist(v, &km.centroids[km.assign[i]]);
            for c in &km.centroids {
                assert!(mine <= sqdist(v, c) + 1e-12, "vector {i} not nearest its centroid");
            }
        }
    }

    #[test]
    fn choose_k_finds_the_phase_count() {
        let vs = synthetic_vectors(40, 2, 4);
        let km = choose_k(&vs, 8, 5);
        // Two clearly separated phases: BIC must not collapse to 1 and
        // must not burn the whole budget.
        assert!(km.centroids.len() >= 2, "chose k={}", km.centroids.len());
        assert!(km.centroids.len() <= 4, "chose k={}", km.centroids.len());
    }

    #[test]
    fn duplicate_points_cap_k() {
        let vs = vec![vec![1.0, 2.0]; 6];
        let km = kmeans(&vs, 4, 1);
        assert_eq!(km.centroids.len(), 1, "identical points cannot support k > 1");
        assert_eq!(km.assign, vec![0; 6]);
        assert_eq!(km.inertia, 0.0);
        assert_eq!(choose_k(&vs, 4, 1).centroids.len(), 1);
    }

    fn toy_trace() -> BbvTrace {
        // Two alternating phases, 10 intervals of 100 instructions.
        let intervals: Vec<BbvInterval> = (0..10)
            .map(|i| {
                let base = if i % 2 == 0 { 0x1000 } else { 0x8000 };
                BbvInterval {
                    start_inst: i * 100,
                    insts: 100,
                    blocks: vec![(base, 60), (base + 0x40, 40)],
                }
            })
            .collect();
        BbvTrace { interval: 100, total_insts: 1000, intervals }
    }

    #[test]
    fn plan_weights_cover_every_instruction() {
        let p = plan(&toy_trace(), 6, 9);
        assert_eq!(p.reps.iter().map(|r| r.weight_insts).sum::<u64>(), p.total_insts);
        assert_eq!(p.k, 2, "two phases, two representatives");
        // Each representative sits at the earliest interval of its phase
        // (ties broken by smallest index) and clusters are homogeneous.
        assert_eq!(p.reps.iter().map(|r| r.index).collect::<Vec<_>>(), vec![0, 1]);
        for r in &p.reps {
            assert_eq!(r.weight_insts, 500);
            assert_eq!(r.spread_milli, 0, "identical members have zero spread");
        }
        assert_eq!(p.detailed_insts(), 200);
    }

    #[test]
    fn bbv_l1_handles_disjoint_and_overlapping_keys() {
        let a = vec![(0x100u64, 50u64), (0x200, 50)];
        let b = vec![(0x200u64, 50u64), (0x300, 50)];
        // |0.5-0| + |0.5-0.5| + |0-0.5| = 1.0
        assert!((bbv_l1(&a, 100, &b, 100) - 1.0).abs() < 1e-12);
        assert_eq!(bbv_l1(&a, 100, &a, 100), 0.0);
        // Fully disjoint: total variation 2.0.
        let c = vec![(0x900u64, 100u64)];
        assert!((bbv_l1(&a, 100, &c, 100) - 2.0).abs() < 1e-12);
    }
}
