//! # The experiment harness
//!
//! A std-only replacement for Criterion plus a parallel experiment-grid
//! runner. Two halves:
//!
//! * [`measure`] — a small wall-clock measurement core (warmup
//!   iterations, N samples, median/MAD/min reporting) used by the
//!   `cargo bench` targets;
//! * [`CellPool`]/[`Experiment`] — the simulated-experiment grid: every
//!   table and figure of the paper declares its (workload × engine ×
//!   config) cells into a shared pool, the pool deduplicates identical
//!   cells and caches each assembled [`mssr_workloads::Workload`] so it
//!   is built once and shared immutably across engines, and
//!   [`CellPool::run`] shards the cells across `std::thread::scope`
//!   workers with a work-stealing index queue.
//!
//! Everything reported from the grid derives from *simulated* statistics
//! — deterministic integer counters — so output is byte-identical for
//! any `--jobs` value and any machine. Per-cell seeds derive from the
//! root seed by splitmix64 and are recorded in the JSON-lines output, so
//! future stochastic components (e.g. randomized snoop injection) stay
//! reproducible cell-by-cell.
//!
//! JSON-lines trajectory format (`BENCH_*.json`): one JSON object per
//! line. The first line is a `"meta"` record (root seed, scale, cell
//! count); each subsequent `"cell"` record carries the workload, engine
//! label, seed, and the full [`mssr_sim::SimStats`] counter set; final
//! `"experiment"` records map each experiment to its cell ids. Under
//! `--trace`, each cell record is followed by its `"event"` records —
//! the cell's structured pipeline trace (see `mssr_sim::TraceEvent`),
//! one event per line, wrapped as
//! `{"type":"event","cell":<id>,"ev":{...}}`. Under `--sample N`, each
//! cell contributes interval-sample events (`{"ev":"sample",...}`) in
//! the same wrapping — without `--trace`, those are the *only* events
//! emitted. The `mssr-report` binary consumes these trajectories.

mod experiments;
mod grid;
mod measure;
pub mod metrics;
pub mod report;
pub mod serve;
pub mod simpoint;
pub mod simspeed;

pub use experiments::{all_experiments, experiment, Experiment, EXPERIMENT_NAMES};
pub use grid::{
    run_cells, CellId, CellPool, CellProfile, CellResult, CellSpec, EngineCfg, SimpointCellResult,
    SimpointRep,
};
pub use measure::{measure, MeasureConfig, Measurement};

use mssr_sim::{json_escape, BpredKind, ProfBucket};
use mssr_workloads::Scale;

/// Default root seed for the experiment grid ("MSSR" in ASCII).
pub const DEFAULT_ROOT_SEED: u64 = 0x4d53_5352;

/// Stateless splitmix64 finalizer.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic seed of grid cell `cell` under `root_seed`.
pub fn cell_seed(root_seed: u64, cell: u64) -> u64 {
    splitmix64(root_seed ^ splitmix64(cell))
}

/// Harness invocation options, shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Worker threads for the grid (default: available parallelism).
    pub jobs: usize,
    /// Root seed; per-cell seeds derive from it by splitmix64.
    pub root_seed: u64,
    /// Workload input scale.
    pub scale: Scale,
    /// Emit the JSON-lines trajectory instead of human-readable reports.
    pub json: bool,
    /// Record a structured event trace per cell and emit the events into
    /// the JSON-lines trajectory (requires `--json`).
    pub trace: bool,
    /// Interval-sampling period in cycles (`0` = off): snapshot
    /// per-interval statistics deltas every N cycles and emit them as
    /// sample events in the trajectory (requires `--json`).
    pub sample: u64,
    /// Checkpoint directory (`--ckpt-dir`): cells restore the newest
    /// valid checkpoint found there and save new ones per `ckpt_every`.
    /// Checkpoint traffic is disabled under `--trace`/`--sample` — a
    /// restored run would emit only the tail of its event stream.
    pub ckpt_dir: Option<std::path::PathBuf>,
    /// Functional fast-forward (`--ffwd N`): execute the first N
    /// instructions of every cell architecturally (warming branch
    /// predictor and caches) before detailed simulation.
    pub ffwd: u64,
    /// Checkpoint period (`--ckpt-every N`): while running a cell, save a
    /// checkpoint into `ckpt_dir` every N committed instructions.
    pub ckpt_every: u64,
    /// SimPoint sampling (`--simpoint INTERVAL,MAXK`): a functional pass
    /// collects basic-block vectors per `INTERVAL` instructions, k-means
    /// (k ≤ `MAXK`) picks representative intervals, and the grid runs
    /// only the representatives; `mssr-report` reconstructs whole-program
    /// CPI from the weighted per-representative records.
    pub simpoint: Option<(u64, usize)>,
    /// Measure host throughput (`--timing`): record each cell's
    /// simulated-MIPS into its stats record. The one opt-in that makes
    /// output machine-dependent — off for every byte-identity comparison.
    pub timing: bool,
    /// Self-profile the simulator (`--profile`): attribute host
    /// wall-clock to each pipeline stage and the ckpt/ffwd/bbv paths,
    /// emitting one `{"type":"profile",...}` record per cell on
    /// *stderr*. Strictly out-of-band: stdout (reports or trajectory)
    /// is byte-identical with it on or off.
    pub profile: bool,
    /// Branch-predictor override (`--bpred NAME`): force every cell of
    /// the grid onto one predictor pair. `None` (the default) leaves
    /// each experiment's own configuration — and the trajectory bytes —
    /// untouched.
    pub bpred: Option<BpredKind>,
}

impl HarnessOpts {
    /// Defaults at a given scale.
    pub fn new(scale: Scale) -> HarnessOpts {
        let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
        HarnessOpts {
            jobs,
            root_seed: DEFAULT_ROOT_SEED,
            scale,
            json: false,
            trace: false,
            sample: 0,
            ckpt_dir: None,
            ffwd: 0,
            ckpt_every: 0,
            simpoint: None,
            timing: false,
            profile: false,
            bpred: None,
        }
    }

    /// Parses CLI arguments (`--jobs N`, `--seed S`, `--scale
    /// test|medium|large`, `--json`, `--trace`, `--sample N`, `--help`).
    /// The scale defaults to `MSSR_SCALE` when set, then to
    /// `default_scale`.
    ///
    /// # Panics
    ///
    /// Exits the process with usage on an unknown or malformed argument.
    pub fn parse_args(default_scale: Scale) -> HarnessOpts {
        match Self::from_iter(std::env::args().skip(1), crate::scale_from_env(default_scale)) {
            Ok(opts) => opts,
            Err(msg) => {
                if msg != "help" {
                    eprintln!("{msg}");
                }
                eprintln!("{USAGE}");
                std::process::exit(if msg == "help" { 0 } else { 2 });
            }
        }
    }

    /// Pure argument parsing (testable); `msg == "help"` requests usage.
    pub fn from_iter(
        args: impl IntoIterator<Item = String>,
        default_scale: Scale,
    ) -> Result<HarnessOpts, String> {
        let mut opts = HarnessOpts::new(default_scale);
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            match arg.as_str() {
                "--jobs" | "-j" => {
                    opts.jobs = value("--jobs")?
                        .parse::<usize>()
                        .map_err(|e| format!("--jobs: {e}"))?
                        .max(1);
                }
                "--seed" => {
                    let v = value("--seed")?;
                    let t = v.trim();
                    opts.root_seed = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
                        Some(h) => u64::from_str_radix(h, 16),
                        None => t.parse(),
                    }
                    .map_err(|e| format!("--seed: {e}"))?;
                }
                "--scale" => {
                    opts.scale = match value("--scale")?.as_str() {
                        "test" => Scale::Test,
                        "medium" => Scale::Medium,
                        "large" => Scale::Large,
                        s => return Err(format!("--scale: unknown scale `{s}`")),
                    };
                }
                "--json" => opts.json = true,
                "--trace" => opts.trace = true,
                "--sample" => {
                    opts.sample =
                        value("--sample")?.parse::<u64>().map_err(|e| format!("--sample: {e}"))?;
                }
                "--ckpt-dir" => {
                    opts.ckpt_dir = Some(std::path::PathBuf::from(value("--ckpt-dir")?));
                }
                "--ffwd" => {
                    opts.ffwd =
                        value("--ffwd")?.parse::<u64>().map_err(|e| format!("--ffwd: {e}"))?;
                }
                "--ckpt-every" => {
                    opts.ckpt_every = value("--ckpt-every")?
                        .parse::<u64>()
                        .map_err(|e| format!("--ckpt-every: {e}"))?;
                }
                "--simpoint" => {
                    let v = value("--simpoint")?;
                    let (a, b) = v.split_once(',').ok_or_else(|| {
                        format!("--simpoint: expected `INTERVAL,MAXK`, got `{v}`")
                    })?;
                    let interval =
                        a.trim().parse::<u64>().map_err(|e| format!("--simpoint interval: {e}"))?;
                    let maxk =
                        b.trim().parse::<usize>().map_err(|e| format!("--simpoint maxk: {e}"))?;
                    if interval == 0 || maxk == 0 {
                        return Err("--simpoint: interval and maxk must be positive".into());
                    }
                    opts.simpoint = Some((interval, maxk));
                }
                "--timing" => opts.timing = true,
                "--profile" => opts.profile = true,
                "--bpred" => {
                    let v = value("--bpred")?;
                    opts.bpred = Some(BpredKind::parse(&v).ok_or_else(|| {
                        let names: Vec<&str> = BpredKind::ALL.iter().map(|k| k.name()).collect();
                        format!("--bpred: unknown predictor `{v}` (one of {})", names.join(", "))
                    })?);
                }
                "--help" | "-h" => return Err("help".to_string()),
                s => return Err(format!("unknown argument `{s}`")),
            }
        }
        if opts.trace && !opts.json {
            return Err("--trace requires --json (events extend the JSON-lines output)".into());
        }
        if opts.sample > 0 && !opts.json {
            return Err("--sample requires --json (samples extend the JSON-lines output)".into());
        }
        if opts.ckpt_every > 0 && opts.ckpt_dir.is_none() {
            return Err("--ckpt-every requires --ckpt-dir (somewhere to save them)".into());
        }
        if opts.simpoint.is_some() {
            if !opts.json {
                return Err(
                    "--simpoint requires --json (mssr-report reconstructs from the trajectory)"
                        .into(),
                );
            }
            if opts.ffwd > 0 {
                return Err(
                    "--simpoint places its own fast-forwards per representative; drop --ffwd"
                        .into(),
                );
            }
            if opts.ckpt_every > 0 {
                return Err(
                    "--simpoint saves checkpoints at representative starts; drop --ckpt-every"
                        .into(),
                );
            }
        }
        Ok(opts)
    }
}

const USAGE: &str =
    "usage: <experiment> [--jobs N] [--seed S] [--scale test|medium|large] [--json] [--trace] [--sample N]
                    [--ckpt-dir DIR] [--ffwd N] [--ckpt-every N] [--simpoint I,K]
  --jobs N        worker threads for the experiment grid (default: all cores)
  --seed S        root seed for per-cell seeds (decimal or 0x-hex)
  --scale         workload input scale (default: MSSR_SCALE env, then medium)
  --json          emit the JSON-lines trajectory instead of reports
  --trace         with --json: emit per-cell pipeline event records
  --sample N      with --json: emit per-cell statistics deltas every N cycles
  --ckpt-dir DIR  reuse/save per-cell checkpoints in DIR (off under --trace/--sample)
  --ffwd N        functionally fast-forward the first N instructions of each cell
  --ckpt-every N  with --ckpt-dir: save a checkpoint every N committed instructions
  --simpoint I,K  with --json: SimPoint sampling — cluster I-instruction BBV intervals (k <= K)
                  and run only the representative intervals of each workload
  --bpred NAME    force every cell onto one branch predictor
                  (tage | tagescl | ittage | alwayswrong | oracle; default: each cell's own config)
  --timing        record per-cell simulated MIPS (wall-clock: output becomes machine-dependent)
  --profile       self-profile the simulator: emit per-cell {\"type\":\"profile\",...} records on
                  stderr (stdout stays byte-identical; render with mssr-report --profile FILE)";

pub(crate) fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Medium => "medium",
        Scale::Large => "large",
    }
}

/// One `"cell"` record of the JSON-lines trajectory (no trailing
/// newline). Shared verbatim by the batch harness and `mssr-serve`, so
/// a served result is byte-for-byte the line the batch trajectory
/// carries for the same cell.
pub(crate) fn cell_json_line(pool: &CellPool, i: CellId, r: &CellResult) -> String {
    let spec = pool.cell_spec(i);
    let w = pool.workload(spec.workload);
    let mut out = format!(
        "{{\"type\":\"cell\",\"id\":{i},\"workload\":\"{}\",\"suite\":\"{}\",\"engine\":\"{}\",\"seed\":\"{:#x}\"",
        json_escape(w.name()),
        w.suite(),
        json_escape(&spec.engine.label()),
        r.seed
    );
    // The predictor is recorded only when it differs from the default,
    // so default-grid trajectories stay byte-identical to pre-lab runs.
    if spec.cfg.bpred != BpredKind::default() {
        out.push_str(&format!(",\"bpred\":\"{}\"", spec.cfg.bpred.name()));
    }
    if let Some(repl) = &r.ri_set_replacements {
        out.push_str(",\"ri_set_replacements\":[");
        for (k, v) in repl.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
    }
    out.push_str(",\"stats\":");
    out.push_str(&r.stats.to_json());
    out.push('}');
    out
}

/// Appends a cell's wrapped `"event"` records to `out`, one per raw
/// trace line — the exact wrapping the batch trajectory uses.
pub(crate) fn push_event_lines(out: &mut String, cell: CellId, raw: &str) {
    for line in raw.lines() {
        out.push_str(&format!("{{\"type\":\"event\",\"cell\":{cell},\"ev\":{line}}}\n"));
    }
}

/// One `"profile"` record (no trailing newline): a cell's host
/// wall-clock self-profile. These lines go to *stderr*, never into the
/// trajectory — `Trajectory::parse` rejects unknown record types by
/// design, and profile data is machine-dependent, so keeping it out of
/// stdout is what keeps `--profile` byte-transparent. `mssr-report
/// --profile FILE` consumes a saved stderr stream.
pub(crate) fn profile_json_line(pool: &CellPool, i: CellId, r: &CellResult) -> Option<String> {
    let p = r.profile.as_ref()?;
    let spec = pool.cell_spec(i);
    let w = pool.workload(spec.workload);
    let mut out = format!(
        "{{\"type\":\"profile\",\"cell\":{i},\"workload\":\"{}\",\"engine\":\"{}\",\"cycles\":{},\"insts\":{},\"total_us\":{},\"stride\":{},\"sampled_cycles\":{},\"ns\":{{",
        json_escape(w.name()),
        json_escape(&spec.engine.label()),
        r.stats.cycles,
        r.stats.committed_instructions,
        p.total_us,
        p.report.stride,
        p.report.sampled_cycles,
    );
    for (k, b) in ProfBucket::ALL.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", b.name(), p.report.get(*b)));
    }
    out.push_str("}}");
    Some(out)
}

/// Runs a set of experiments over one shared, deduplicated cell pool —
/// the whole `run_all` sweep is a single parallel grid invocation — and
/// returns the rendered output (reports, or the JSON-lines trajectory
/// under `--json`).
pub fn run_experiments(exps: &[Box<dyn Experiment>], opts: &HarnessOpts) -> String {
    let mut pool = CellPool::new(opts.scale);
    pool.set_bpred_override(opts.bpred);
    let ids: Vec<Vec<CellId>> = exps.iter().map(|e| e.cells(&mut pool)).collect();
    let results = pool.run(opts);
    if opts.profile {
        // Profile records are emitted in cell order on stderr; the
        // returned output (stdout) is byte-identical with or without
        // `--profile`, which the determinism suite pins.
        for (i, r) in results.iter().enumerate() {
            if let Some(line) = profile_json_line(&pool, i, r) {
                eprintln!("{line}");
            }
        }
    }
    let mut out = String::new();
    if opts.json {
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"root_seed\":\"{:#x}\",\"scale\":\"{}\",\"cells\":{}}}\n",
            opts.root_seed,
            scale_name(opts.scale),
            results.len()
        ));
        for (i, r) in results.iter().enumerate() {
            out.push_str(&cell_json_line(&pool, i, r));
            out.push('\n');
            // Each cell's events follow its record, wrapped so consumers
            // can associate them; per-cell buffers emitted in cell order
            // keep the trajectory byte-identical across `--jobs` values.
            if let Some(trace) = &r.trace {
                push_event_lines(&mut out, i, trace);
            }
            // Under --simpoint, each cell's record is followed by its
            // sampling plan and per-representative measurements (all
            // unsigned integers, like every other trajectory field).
            if let Some(sp) = &r.simpoint {
                out.push_str(&format!(
                    "{{\"type\":\"simpoint\",\"cell\":{i},\"interval\":{},\"total_insts\":{},\"intervals\":{},\"k\":{},\"reps\":[",
                    sp.interval, sp.total_insts, sp.n_intervals, sp.k
                ));
                for (j, rep) in sp.reps.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"index\":{},\"start_inst\":{},\"planned_insts\":{},\"weight_insts\":{},\"spread_milli\":{},\"warmup_insts\":{},\"cycles\":{},\"insts\":{},\"account\":{}}}",
                        rep.index,
                        rep.start_inst,
                        rep.planned_insts,
                        rep.weight_insts,
                        rep.spread_milli,
                        rep.warmup_insts,
                        rep.cycles,
                        rep.insts,
                        rep.account.to_json()
                    ));
                }
                out.push_str("]}\n");
            }
        }
        for (e, ids) in exps.iter().zip(&ids) {
            out.push_str(&format!(
                "{{\"type\":\"experiment\",\"name\":\"{}\",\"cells\":[",
                e.name()
            ));
            for (k, id) in ids.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&id.to_string());
            }
            out.push_str("]}\n");
        }
    } else {
        for (e, ids) in exps.iter().zip(&ids) {
            if exps.len() > 1 {
                out.push_str(&format!("\n######## {} ########\n\n", e.name()));
            }
            out.push_str(&e.render(&pool, ids, &results));
        }
    }
    out
}

/// Looks up experiments by name and runs them (the experiment binaries'
/// entry point).
///
/// # Panics
///
/// Panics on an unknown experiment name.
pub fn run_named(names: &[&str], opts: &HarnessOpts) -> String {
    let exps: Vec<Box<dyn Experiment>> = names
        .iter()
        .map(|n| experiment(n).unwrap_or_else(|| panic!("unknown experiment `{n}`")))
        .collect();
    run_experiments(&exps, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn cli_parsing() {
        let o = HarnessOpts::from_iter(
            args(&["--jobs", "3", "--seed", "0x2a", "--scale", "test", "--json"]),
            Scale::Medium,
        )
        .unwrap();
        assert_eq!(o.jobs, 3);
        assert_eq!(o.root_seed, 42);
        assert_eq!(o.scale, Scale::Test);
        assert!(o.json);
        assert!(HarnessOpts::from_iter(args(&["--bogus"]), Scale::Test).is_err());
        assert!(HarnessOpts::from_iter(args(&["--jobs"]), Scale::Test).is_err());
        assert_eq!(HarnessOpts::from_iter(args(&["-h"]), Scale::Test).unwrap_err(), "help");
    }

    #[test]
    fn sample_flag_parses_and_requires_json() {
        let o = HarnessOpts::from_iter(args(&["--json", "--sample", "500"]), Scale::Test).unwrap();
        assert_eq!(o.sample, 500);
        assert_eq!(HarnessOpts::from_iter(args(&["--json"]), Scale::Test).unwrap().sample, 0);
        let err = HarnessOpts::from_iter(args(&["--sample", "500"]), Scale::Test).unwrap_err();
        assert!(err.contains("--sample requires --json"));
        assert!(HarnessOpts::from_iter(args(&["--sample", "x"]), Scale::Test).is_err());
    }

    #[test]
    fn bpred_flag_parses_every_kind_and_rejects_unknown() {
        assert_eq!(HarnessOpts::from_iter(args(&[]), Scale::Test).unwrap().bpred, None);
        for kind in BpredKind::ALL {
            let o = HarnessOpts::from_iter(args(&["--bpred", kind.name()]), Scale::Test).unwrap();
            assert_eq!(o.bpred, Some(kind));
        }
        let err =
            HarnessOpts::from_iter(args(&["--bpred", "perceptron"]), Scale::Test).unwrap_err();
        assert!(err.contains("unknown predictor"), "{err}");
    }

    #[test]
    fn timing_flag_parses_and_defaults_off() {
        assert!(HarnessOpts::from_iter(args(&["--timing"]), Scale::Test).unwrap().timing);
        assert!(!HarnessOpts::from_iter(args(&[]), Scale::Test).unwrap().timing);
    }

    #[test]
    fn simpoint_flag_parses_and_validates() {
        let o =
            HarnessOpts::from_iter(args(&["--json", "--simpoint", "2000,6"]), Scale::Test).unwrap();
        assert_eq!(o.simpoint, Some((2000, 6)));
        assert_eq!(HarnessOpts::from_iter(args(&["--json"]), Scale::Test).unwrap().simpoint, None);
        for bad in [
            vec!["--simpoint", "2000,6"],                           // needs --json
            vec!["--json", "--simpoint", "2000"],                   // missing comma
            vec!["--json", "--simpoint", "0,6"],                    // zero interval
            vec!["--json", "--simpoint", "2000,0"],                 // zero maxk
            vec!["--json", "--simpoint", "x,6"],                    // malformed
            vec!["--json", "--simpoint", "2000,6", "--ffwd", "10"], // conflicting ffwd
        ] {
            assert!(HarnessOpts::from_iter(args(&bad), Scale::Test).is_err(), "{bad:?}");
        }
        let err = HarnessOpts::from_iter(
            args(&["--json", "--simpoint", "2000,6", "--ckpt-dir", "d", "--ckpt-every", "5"]),
            Scale::Test,
        )
        .unwrap_err();
        assert!(err.contains("--ckpt-every"), "{err}");
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(cell_seed(1, 2), cell_seed(1, 2));
        assert_ne!(cell_seed(1, 2), cell_seed(1, 3));
        assert_ne!(cell_seed(1, 2), cell_seed(2, 2));
    }
}
