//! Every table and figure of the paper as an [`Experiment`]: a cell
//! declaration (into the shared, deduplicated [`CellPool`]) plus a
//! renderer over the grid's results. The experiment binaries
//! (`fig3`…`table4`, `ablation`, `rollup`, `run_all`) are thin wrappers
//! around this registry.

use mssr_core::storage::{storage, StorageParams};
use mssr_core::{complexity, MemCheckPolicy};
use mssr_sim::{BpredKind, SimConfig};
use mssr_workloads::{microbench, suite_workloads, Scale, Suite};

use super::grid::{CellId, CellPool, CellResult, EngineCfg};
use crate::{experiment_sim_config, render_csv, render_table, speedup_pct, EngineSpec};

/// One regenerated table or figure.
pub trait Experiment: Sync {
    /// The experiment's name (the binary name: `"fig10"`, `"table1"`, …).
    fn name(&self) -> &'static str;

    /// Declares the experiment's cells into the pool, returning their
    /// ids in the order [`Experiment::render`] consumes them.
    fn cells(&self, pool: &mut CellPool) -> Vec<CellId>;

    /// Renders the report from the grid results (`results[id]` is cell
    /// `id`'s result).
    fn render(&self, pool: &CellPool, ids: &[CellId], results: &[CellResult]) -> String;
}

/// Experiment names in `run_all` order (analytic tables first, then the
/// simulated tables and figures).
pub const EXPERIMENT_NAMES: [&str; 12] = [
    "table2", "table3", "table4", "table1", "fig3", "fig4", "fig10", "fig11", "fig12", "rollup",
    "ablation", "bpred",
];

/// Every experiment, in `run_all` order.
pub fn all_experiments() -> Vec<Box<dyn Experiment>> {
    EXPERIMENT_NAMES.iter().map(|n| experiment(n).expect("registered")).collect()
}

/// Looks up one experiment by name.
pub fn experiment(name: &str) -> Option<Box<dyn Experiment>> {
    Some(match name {
        "table1" => Box::new(Table1) as Box<dyn Experiment>,
        "table2" => Box::new(Table2),
        "table3" => Box::new(Table3),
        "table4" => Box::new(Table4),
        "fig3" => Box::new(Fig3),
        "fig4" => Box::new(Fig4),
        "fig10" => Box::new(Fig10),
        "fig11" => Box::new(Fig11),
        "fig12" => Box::new(Fig12),
        "rollup" => Box::new(Rollup),
        "ablation" => Box::new(Ablation),
        "bpred" => Box::new(BpredLab),
        _ => return None,
    })
}

/// The microbenchmark iteration count per scale (the historical values
/// of the `table1`/`fig3`/`ablation` binaries).
fn micro_iters(scale: Scale) -> u64 {
    match scale {
        Scale::Test => 500,
        Scale::Medium => 3000,
        Scale::Large => 8000,
    }
}

struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
        let iters = micro_iters(pool.scale());
        let mut ids = Vec::new();
        for w in [microbench::nested_mispred(iters), microbench::linear_mispred(iters)] {
            let wid = pool.intern(w);
            ids.push(pool.cell(wid, EngineSpec::Baseline.into(), experiment_sim_config()));
            for n in [1usize, 2, 4] {
                ids.push(pool.cell(
                    wid,
                    EngineSpec::Mssr { streams: n, log_entries: 64 }.into(),
                    experiment_sim_config(),
                ));
            }
            for ways in [1usize, 2, 4] {
                ids.push(pool.cell(
                    wid,
                    EngineSpec::Ri { sets: 64, ways }.into(),
                    experiment_sim_config(),
                ));
            }
        }
        ids
    }

    fn render(&self, _pool: &CellPool, ids: &[CellId], results: &[CellResult]) -> String {
        let mut out =
            String::from("== Table 1: microbenchmark improvements over no-reuse baseline ==\n");
        out.push_str("paper: nested 2.4/14.3/23.4%  linear 6.5/16.7/19.7% (MSSR 1/2/4 streams)\n");
        out.push_str("       nested -0.1/1.9/17.9%  linear 1.7/6.2/16.4% (RI 1/2/4 ways)\n\n");
        // Per variant: [baseline, mssr1, mssr2, mssr4, ri1, ri2, ri4].
        let variants: Vec<&[CellId]> = ids.chunks(7).collect();
        let mut rows = Vec::new();
        for (i, label) in
            ["Single Stream / Way", "Two Streams / Ways", "Four Streams / Ways"].iter().enumerate()
        {
            let cell = |variant: &[CellId], off: usize| {
                let base = &results[variant[0]].stats;
                format!("{:+.1}%", speedup_pct(base, &results[variant[off + i]].stats))
            };
            rows.push(vec![
                label.to_string(),
                cell(variants[0], 1),
                cell(variants[0], 4),
                cell(variants[1], 1),
                cell(variants[1], 4),
            ]);
        }
        out.push_str(&render_table(
            &["", "Nested MSSR", "Nested RI", "Linear MSSR", "Linear RI"],
            &rows,
        ));
        out.push('\n');
        out
    }
}

struct Table2;

impl Experiment for Table2 {
    fn name(&self) -> &'static str {
        "table2"
    }

    fn cells(&self, _pool: &mut CellPool) -> Vec<CellId> {
        Vec::new()
    }

    fn render(&self, _pool: &CellPool, _ids: &[CellId], _results: &[CellResult]) -> String {
        let mut out =
            String::from("== Table 2: additional storage for the squash-reuse scheme ==\n");
        out.push_str(
            "paper: constant 2.30 KB, variable 1.23 KB, total 3.53 KB at N=4, M=16, P=64\n\n",
        );
        for (n, m, p) in [(4usize, 16usize, 64usize), (1, 16, 64), (2, 32, 64), (4, 64, 128)] {
            let b = storage(&StorageParams {
                streams: n,
                wpb_entries: m,
                log_entries: p,
                ..StorageParams::default()
            });
            out.push_str(&format!(
                "N={n:<2} M={m:<3} P={p:<4}: constant {:>6} bits ({:.2} KiB)  variable {:>6} bits ({:.2} KiB)  total {:.2} KiB\n",
                b.constant_bits,
                b.constant_kib(),
                b.variable_bits,
                b.variable_kib(),
                b.total_kib()
            ));
        }
        out
    }
}

struct Table3;

impl Experiment for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn cells(&self, _pool: &mut CellPool) -> Vec<CellId> {
        Vec::new()
    }

    fn render(&self, _pool: &CellPool, _ids: &[CellId], _results: &[CellResult]) -> String {
        let c = experiment_sim_config();
        let mut out = String::from("== Table 3: baseline configuration ==\n");
        out.push_str("Frontend\n");
        out.push_str(&format!(
            "  Fetch block size        {} B ({} instructions)\n",
            c.fetch_block_insts * 4,
            c.fetch_block_insts
        ));
        out.push_str(&format!(
            "  Nextline predictor      Bimodal ({} entries)\n",
            c.bimodal_entries
        ));
        out.push_str(&format!(
            "  Main branch predictor   TAGE ({} tables x {} entries)\n",
            c.tage_tables, c.tage_entries
        ));
        out.push_str(&format!("  Pipeline stages         {}\n", c.frontend_stages));
        out.push_str("Backend\n");
        out.push_str(&format!("  Decode/Rename width     {}\n", c.rename_width));
        out.push_str(&format!("  Reorder buffer          {} entries\n", c.rob_size));
        out.push_str(&format!(
            "  Reservation stations    {}-entry {}xALU + {}xBRU | {}-entry {}xLSU\n",
            c.iq_int_size, c.alu_units, c.bru_units, c.iq_mem_size, c.lsu_units
        ));
        out.push_str(&format!("  Load/store queue        {} / {} entries\n", c.lq_size, c.sq_size));
        out.push_str(&format!("  Physical registers      {}\n", c.phys_regs));
        out.push_str(&format!(
            "  RGID width              {} bits (paper: 6; see DESIGN.md calibration note)\n",
            c.rgid_bits
        ));
        out.push_str("Memory\n");
        out.push_str(&format!(
            "  DCache                  {} KB, {}-way, {}-cycle\n",
            c.l1d.size_bytes / 1024,
            c.l1d.ways,
            c.l1d.latency
        ));
        out.push_str(&format!(
            "  L2                      {} MB, {}-way, {}-cycle\n",
            c.l2.size_bytes / 1024 / 1024,
            c.l2.ways,
            c.l2.latency
        ));
        out.push_str(&format!("  DRAM                    {}-cycle\n", c.dram_latency));
        out
    }
}

struct Table4;

impl Experiment for Table4 {
    fn name(&self) -> &'static str {
        "table4"
    }

    fn cells(&self, _pool: &mut CellPool) -> Vec<CellId> {
        Vec::new()
    }

    fn render(&self, _pool: &CellPool, _ids: &[CellId], _results: &[CellResult]) -> String {
        let mut out =
            String::from("== Table 4: complexity of critical logic (analytic model) ==\n\n");
        out.push_str("Reconvergence detection\n");
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>14}\n",
            "WPB size", "logic levels", "area / um^2", "power/mW @0.7V"
        ));
        for m in [16usize, 32, 64] {
            let c = complexity::reconvergence_detection(4, m);
            out.push_str(&format!(
                "{:<10} {:>12} {:>12.0} {:>14.3}\n",
                format!("4x{m}"),
                c.logic_levels,
                c.area_um2,
                c.power_mw
            ));
        }
        out.push_str("\nReuse test (64-entry Squash Log)\n");
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>14}\n",
            "width", "logic levels", "area / um^2", "power/mW @0.7V"
        ));
        for w in [4usize, 6, 8] {
            let c = complexity::reuse_test(w);
            out.push_str(&format!(
                "{:<10} {:>12} {:>12.0} {:>14.3}\n",
                w, c.logic_levels, c.area_um2, c.power_mw
            ));
        }
        out.push_str("\n(Calibrated to the paper's synthesis anchors; values between and\n");
        out.push_str(" beyond the anchors follow the model's monotone interpolation.)\n");
        out
    }
}

struct Fig3;

impl Experiment for Fig3 {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
        let wid = pool.intern(microbench::nested_mispred(micro_iters(pool.scale())));
        [1usize, 2, 4]
            .into_iter()
            .map(|ways| {
                pool.cell(wid, EngineSpec::Ri { sets: 64, ways }.into(), experiment_sim_config())
            })
            .collect()
    }

    fn render(&self, _pool: &CellPool, ids: &[CellId], results: &[CellResult]) -> String {
        let mut out =
            String::from("== Figure 3: RI reuse-table replacement frequency (64 sets) ==\n");
        out.push_str("paper: dark (high-replacement) sets at 1 way, mostly light at 4 ways\n\n");
        for (&id, ways) in ids.iter().zip([1usize, 2, 4]) {
            let r = &results[id];
            let counts = r.ri_set_replacements.as_ref().expect("ri cell records counters");
            let max = counts.iter().copied().max().unwrap_or(1).max(1);
            let total: u64 = counts.iter().sum();
            out.push_str(&format!(
                "{ways}-way: {total} replacements total ({:.1} per squash)\n",
                total as f64 / r.stats.mispredictions.max(1) as f64
            ));
            // ASCII heatmap: one character per set, shade by replacement count.
            let shades = [' ', '.', ':', '+', '#', '@'];
            let mut line = String::from("  [");
            for &c in counts.iter() {
                let idx = (c * (shades.len() as u64 - 1)).div_ceil(max) as usize;
                line.push(shades[idx.min(shades.len() - 1)]);
            }
            line.push_str("]\n");
            out.push_str(&line);
        }
        out
    }
}

struct Fig4;

impl Experiment for Fig4 {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
        all_interned(pool)
            .into_iter()
            .map(|wid| {
                pool.cell(
                    wid,
                    EngineSpec::Mssr { streams: 4, log_entries: 64 }.into(),
                    experiment_sim_config(),
                )
            })
            .collect()
    }

    fn render(&self, pool: &CellPool, ids: &[CellId], results: &[CellResult]) -> String {
        let mut out =
            String::from("== Figure 4: breakdown of reconvergence types (4 streams) ==\n");
        out.push_str("paper: GAP mostly simple; branchy SPECint show 15-43% multi-stream\n\n");
        let mut rows = Vec::new();
        for &id in ids {
            let w = pool.cell_workload(id);
            let e = &results[id].stats.engine;
            let total = e.reconvergences.max(1) as f64;
            rows.push(vec![
                w.name().to_string(),
                format!("{}", w.suite()),
                format!("{}", e.reconvergences),
                format!("{:.1}%", 100.0 * e.recon_simple as f64 / total),
                format!("{:.1}%", 100.0 * e.recon_software as f64 / total),
                format!("{:.1}%", 100.0 * e.recon_hardware as f64 / total),
                format!("{:.1}%", 100.0 * (e.recon_software + e.recon_hardware) as f64 / total),
            ]);
        }
        out.push_str(&render_table(
            &["benchmark", "suite", "reconv", "simple", "sw-induced", "hw-induced", "multi-stream"],
            &rows,
        ));
        out.push('\n');
        out
    }
}

/// The (streams, WPB entries) sweep of Figure 10, per the paper's legend.
const FIG10_CONFIGS: [(usize, usize); 5] = [(1, 16), (1, 64), (2, 64), (4, 64), (4, 1024)];

struct Fig10;

impl Experiment for Fig10 {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
        let mut ids = Vec::new();
        for suite in [Suite::Spec2006, Suite::Spec2017, Suite::Gap] {
            for w in suite_workloads(suite, pool.scale()) {
                let wid = pool.intern(w);
                ids.push(pool.cell(wid, EngineSpec::Baseline.into(), experiment_sim_config()));
                for (streams, wpb) in FIG10_CONFIGS {
                    ids.push(pool.cell(
                        wid,
                        EngineSpec::Mssr { streams, log_entries: wpb * 4 }.into(),
                        experiment_sim_config(),
                    ));
                }
            }
        }
        ids
    }

    fn render(&self, pool: &CellPool, ids: &[CellId], results: &[CellResult]) -> String {
        let mut out =
            String::from("== Figure 10: IPC improvement per stream x WPB configuration ==\n");
        out.push_str("paper: avg +2.2% (SPECint2006) +0.8% (SPECint2017) +2.4% (GAP) at 4x64;\n");
        out.push_str("       max astar +8.9%, bc +6.1%, cc +4.0%\n\n");
        let mut rows = Vec::new();
        let mut cur: Option<Suite> = None;
        let mut sums = vec![0.0f64; FIG10_CONFIGS.len()];
        let mut count = 0usize;
        let flush = |rows: &mut Vec<Vec<String>>, suite: Suite, sums: &[f64], count: usize| {
            let mut avg = vec!["average".to_string(), format!("{suite}"), String::new()];
            for s in sums {
                avg.push(format!("{:+.2}%", s / count.max(1) as f64));
            }
            rows.push(avg);
            rows.push(vec![String::new()]);
        };
        for chunk in ids.chunks(1 + FIG10_CONFIGS.len()) {
            let w = pool.cell_workload(chunk[0]);
            if cur.is_some_and(|s| s != w.suite()) {
                flush(&mut rows, cur.unwrap(), &sums, count);
                sums = vec![0.0; FIG10_CONFIGS.len()];
                count = 0;
            }
            cur = Some(w.suite());
            let base = &results[chunk[0]].stats;
            let mut row =
                vec![w.name().to_string(), format!("{}", w.suite()), format!("{:.3}", base.ipc())];
            for (i, &id) in chunk[1..].iter().enumerate() {
                let pct = speedup_pct(base, &results[id].stats);
                sums[i] += pct;
                row.push(format!("{pct:+.2}%"));
            }
            count += 1;
            rows.push(row);
        }
        if let Some(suite) = cur {
            flush(&mut rows, suite, &sums, count);
        }
        let headers: Vec<String> = ["benchmark", "suite", "base IPC"]
            .iter()
            .map(|s| s.to_string())
            .chain(FIG10_CONFIGS.iter().map(|(n, m)| format!("{n}x{m}")))
            .collect();
        let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        out.push_str(&render_table(&hdr_refs, &rows));
        out.push('\n');
        out
    }
}

struct Fig11;

impl Experiment for Fig11 {
    fn name(&self) -> &'static str {
        "fig11"
    }

    fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
        // Track more streams than the default so longer distances are
        // observable (the histogram saturates at the stream count).
        all_interned(pool)
            .into_iter()
            .map(|wid| {
                pool.cell(
                    wid,
                    EngineSpec::Mssr { streams: 8, log_entries: 64 }.into(),
                    experiment_sim_config(),
                )
            })
            .collect()
    }

    fn render(&self, pool: &CellPool, ids: &[CellId], results: &[CellResult]) -> String {
        let mut out =
            String::from("== Figure 11: reconvergence stream distance (8 streams tracked) ==\n");
        out.push_str("paper: >50% at distance 1; 90-95% within distance 3\n\n");
        let mut rows = Vec::new();
        let mut totals = [0u64; 8];
        for &id in ids {
            let w = pool.cell_workload(id);
            let h = results[id].stats.engine.stream_distance;
            let total: u64 = h.iter().sum();
            for (t, v) in totals.iter_mut().zip(h.iter()) {
                *t += v;
            }
            if total == 0 {
                continue;
            }
            let cum = |k: usize| 100.0 * h[..k].iter().sum::<u64>() as f64 / total as f64;
            rows.push(vec![
                w.name().to_string(),
                format!("{total}"),
                format!("{:.1}%", cum(1)),
                format!("{:.1}%", cum(2)),
                format!("{:.1}%", cum(3)),
                format!("{:.1}%", cum(4)),
            ]);
        }
        let grand: u64 = totals.iter().sum::<u64>().max(1);
        let cum_all = |k: usize| 100.0 * totals[..k].iter().sum::<u64>() as f64 / grand as f64;
        rows.push(vec![
            "ALL".to_string(),
            format!("{grand}"),
            format!("{:.1}%", cum_all(1)),
            format!("{:.1}%", cum_all(2)),
            format!("{:.1}%", cum_all(3)),
            format!("{:.1}%", cum_all(4)),
        ]);
        out.push_str(&render_table(&["benchmark", "reconv", "<=1", "<=2", "<=3", "<=4"], &rows));
        out.push('\n');
        out
    }
}

/// Figure 12's matched-capacity sweep: RGID streams × log entries vs RI
/// sets × ways.
fn fig12_specs() -> Vec<EngineSpec> {
    vec![
        EngineSpec::Mssr { streams: 1, log_entries: 64 },
        EngineSpec::Mssr { streams: 2, log_entries: 64 },
        EngineSpec::Mssr { streams: 4, log_entries: 64 },
        EngineSpec::Mssr { streams: 1, log_entries: 128 },
        EngineSpec::Mssr { streams: 2, log_entries: 128 },
        EngineSpec::Mssr { streams: 4, log_entries: 128 },
        EngineSpec::Ri { sets: 64, ways: 1 },
        EngineSpec::Ri { sets: 64, ways: 2 },
        EngineSpec::Ri { sets: 64, ways: 4 },
        EngineSpec::Ri { sets: 128, ways: 1 },
        EngineSpec::Ri { sets: 128, ways: 2 },
        EngineSpec::Ri { sets: 128, ways: 4 },
    ]
}

struct Fig12;

impl Experiment for Fig12 {
    fn name(&self) -> &'static str {
        "fig12"
    }

    fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
        let mut ids = Vec::new();
        for w in suite_workloads(Suite::Gap, pool.scale()) {
            let wid = pool.intern(w);
            ids.push(pool.cell(wid, EngineSpec::Baseline.into(), experiment_sim_config()));
            for spec in fig12_specs() {
                ids.push(pool.cell(wid, spec.into(), experiment_sim_config()));
            }
        }
        ids
    }

    fn render(&self, pool: &CellPool, ids: &[CellId], results: &[CellResult]) -> String {
        let mut out = String::from("== Figure 12: RI vs RGID on GAP (matched capacities) ==\n");
        out.push_str("paper: RGID wins on bc/bfs/cc, comparable on pr/sssp/tc; two streams\n");
        out.push_str("       give the best overall results\n\n");
        let specs = fig12_specs();
        let mut rows = Vec::new();
        for chunk in ids.chunks(1 + specs.len()) {
            let w = pool.cell_workload(chunk[0]);
            let base = &results[chunk[0]].stats;
            for (&id, spec) in chunk[1..].iter().zip(&specs) {
                let s = &results[id].stats;
                rows.push(vec![
                    w.name().to_string(),
                    spec.label(),
                    format!("{}", s.cycles),
                    format!("{:+.2}%", speedup_pct(base, s)),
                ]);
            }
        }
        out.push_str(&render_table(&["BM", "CFG", "CYCLES", "diff"], &rows));
        out.push('\n');
        out
    }
}

/// The artifact rollup's configurations (§A.6).
const ROLLUP_SPECS: [EngineSpec; 3] = [
    EngineSpec::Mssr { streams: 1, log_entries: 64 },
    EngineSpec::Mssr { streams: 2, log_entries: 256 },
    EngineSpec::Mssr { streams: 4, log_entries: 256 },
];

struct Rollup;

impl Experiment for Rollup {
    fn name(&self) -> &'static str {
        "rollup"
    }

    fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
        let mut ids = Vec::new();
        for w in suite_workloads(Suite::Gap, pool.scale()) {
            let wid = pool.intern(w);
            ids.push(pool.cell(wid, EngineSpec::Baseline.into(), experiment_sim_config()));
            for spec in ROLLUP_SPECS {
                ids.push(pool.cell(wid, spec.into(), experiment_sim_config()));
            }
        }
        ids
    }

    fn render(&self, pool: &CellPool, ids: &[CellId], results: &[CellResult]) -> String {
        let mut rows = Vec::new();
        for chunk in ids.chunks(1 + ROLLUP_SPECS.len()) {
            let w = pool.cell_workload(chunk[0]);
            let base = &results[chunk[0]].stats;
            let bm = w.name().split('/').next().unwrap_or(w.name()).to_string();
            for (&id, spec) in chunk[1..].iter().zip(&ROLLUP_SPECS) {
                let s = &results[id].stats;
                let diff = base.cycles as f64 / s.cycles as f64 - 1.0;
                rows.push(vec![
                    spec.label(),
                    bm.clone(),
                    format!("{:.1}", s.cycles as f64),
                    format!("{diff:.6}"),
                ]);
            }
        }
        let mut out = render_csv(&["CFG", "BM", "CYCLES", "diff"], &rows);
        // `--timing` runs append a host-throughput aggregate: per
        // configuration, min/median/max simulated MIPS (thousandths)
        // over the suite. Untimed runs leave the CSV bytes unchanged —
        // the determinism gates compare plain rollup output.
        if results.iter().any(|r| r.stats.engine.sim_mips_milli > 0) {
            let mut labels: Vec<String> = Vec::new();
            for &id in ids {
                let l = pool.cell_spec(id).engine.label();
                if !labels.contains(&l) {
                    labels.push(l);
                }
            }
            let agg: Vec<Vec<String>> = labels
                .iter()
                .map(|l| {
                    let mut mips: Vec<u64> = ids
                        .iter()
                        .filter(|&&id| pool.cell_spec(id).engine.label() == *l)
                        .map(|&id| results[id].stats.engine.sim_mips_milli)
                        .collect();
                    mips.sort_unstable();
                    vec![
                        l.clone(),
                        mips[0].to_string(),
                        mips[(mips.len() - 1) / 2].to_string(),
                        mips[mips.len() - 1].to_string(),
                    ]
                })
                .collect();
            out.push('\n');
            out.push_str(&render_csv(
                &["CFG", "SIM_MIPS_MILLI_MIN", "SIM_MIPS_MILLI_MED", "SIM_MIPS_MILLI_MAX"],
                &agg,
            ));
        }
        out
    }
}

/// RGID widths swept by the ablation.
const ABLATION_RGID_BITS: [u32; 4] = [6, 8, 10, 14];
/// Reconvergence timeouts swept by the ablation.
const ABLATION_TIMEOUTS: [u64; 4] = [64, 256, 1024, 4096];

struct Ablation;

impl Experiment for Ablation {
    fn name(&self) -> &'static str {
        "ablation"
    }

    fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
        let wid = pool.intern(microbench::nested_mispred(micro_iters(pool.scale())));
        let mssr: EngineCfg = EngineSpec::Mssr { streams: 4, log_entries: 64 }.into();
        let mut ids = Vec::new();
        // RGID width sweep: baseline + engine per width.
        for bits in ABLATION_RGID_BITS {
            let cfg = SimConfig { rgid_bits: bits, ..experiment_sim_config() };
            ids.push(pool.cell(wid, EngineSpec::Baseline.into(), cfg.clone()));
            ids.push(pool.cell(wid, mssr.clone(), cfg));
        }
        // Memory-check policy: shared baseline + engine per policy.
        ids.push(pool.cell(wid, EngineSpec::Baseline.into(), experiment_sim_config()));
        for policy in [MemCheckPolicy::LoadVerification, MemCheckPolicy::BloomFilter] {
            ids.push(pool.cell(wid, mssr.clone().with_mem_policy(policy), experiment_sim_config()));
        }
        // Reconvergence-timeout sweep.
        for timeout in ABLATION_TIMEOUTS {
            ids.push(pool.cell(wid, mssr.clone().with_timeout(timeout), experiment_sim_config()));
        }
        // In-flight writeback draining at squash, on/off.
        for drain in [true, false] {
            let cfg = SimConfig { drain_inflight_on_squash: drain, ..experiment_sim_config() };
            ids.push(pool.cell(wid, EngineSpec::Baseline.into(), cfg.clone()));
            ids.push(pool.cell(wid, mssr.clone(), cfg));
        }
        // Single-page (VPN-restricted) WPB, off/on.
        for vpn in [false, true] {
            ids.push(pool.cell(wid, mssr.clone().with_vpn_restrict(vpn), experiment_sim_config()));
        }
        ids
    }

    fn render(&self, _pool: &CellPool, ids: &[CellId], results: &[CellResult]) -> String {
        let mut next = ids.iter().copied();
        let mut take = || &results[next.next().expect("cells and render agree")];
        let mut out = String::new();

        out.push_str("== Ablation: RGID width (6-bit paper / 10-bit calibrated / 14-bit) ==\n");
        let mut rows = Vec::new();
        for bits in ABLATION_RGID_BITS {
            let base = take();
            let s = take();
            rows.push(vec![
                format!("{bits}-bit"),
                format!("{:+.2}%", speedup_pct(&base.stats, &s.stats)),
                format!("{}", s.stats.engine.reuse_grants),
                format!("{}", s.stats.engine.rgid_overflows),
                format!("{}", s.stats.engine.rgid_resets),
            ]);
        }
        out.push_str(&render_table(&["RGID", "speedup", "grants", "overflows", "resets"], &rows));

        out.push_str("== Ablation: reused-load memory check policy ==\n");
        let mut rows = Vec::new();
        let base = take().clone();
        for name in ["load re-execution", "bloom filter"] {
            let s = take();
            rows.push(vec![
                name.to_string(),
                format!("{:+.2}%", speedup_pct(&base.stats, &s.stats)),
                format!("{}", s.stats.engine.reused_loads),
                format!("{}", s.stats.flushes_reuse_verify),
                format!("{}", s.stats.engine.reuse_fail_mem),
            ]);
        }
        out.push_str(&render_table(
            &["policy", "speedup", "reused loads", "verify flushes", "bloom rejects"],
            &rows,
        ));

        out.push_str("== Ablation: reconvergence timeout ==\n");
        let mut rows = Vec::new();
        for timeout in ABLATION_TIMEOUTS {
            let s = take();
            rows.push(vec![
                format!("{timeout}"),
                format!("{:+.2}%", speedup_pct(&base.stats, &s.stats)),
                format!("{}", s.stats.engine.timeouts),
                format!("{}", s.stats.engine.reuse_grants),
            ]);
        }
        out.push_str(&render_table(
            &["timeout (insts)", "speedup", "stream timeouts", "grants"],
            &rows,
        ));

        out.push_str("== Ablation: in-flight writeback draining at squash ==\n");
        let mut rows = Vec::new();
        for name in ["drain (hardware)", "no drain"] {
            let b2 = take();
            let s = take();
            rows.push(vec![
                name.to_string(),
                format!("{:+.2}%", speedup_pct(&b2.stats, &s.stats)),
                format!("{}", s.stats.engine.reuse_grants),
                format!("{}", s.stats.engine.reuse_fail_not_executed),
            ]);
        }
        out.push_str(&render_table(
            &["squash drain", "speedup", "grants", "not-executed fails"],
            &rows,
        ));

        out.push_str("== Ablation: single-page (VPN-restricted) WPB ==\n");
        let mut rows = Vec::new();
        for name in ["full PC", "single page"] {
            let s = take();
            rows.push(vec![
                name.to_string(),
                format!("{:+.2}%", speedup_pct(&base.stats, &s.stats)),
                format!("{}", s.stats.engine.reconvergences),
            ]);
        }
        out.push_str(&render_table(&["WPB addressing", "speedup", "reconvergences"], &rows));
        out
    }
}

/// The predictor lab: every [`BpredKind`] against baseline and MSSR-4
/// engines on both misprediction microbenchmarks, relating conditional
/// MPKI to squash-reuse benefit. The oracle predictor anchors the zero
/// end (≈0 MPKI, nothing to reuse) and the adversarial predictor the
/// saturated end (every conditional branch mispredicts).
struct BpredLab;

impl Experiment for BpredLab {
    fn name(&self) -> &'static str {
        "bpred"
    }

    fn cells(&self, pool: &mut CellPool) -> Vec<CellId> {
        let iters = micro_iters(pool.scale());
        let mssr: EngineCfg = EngineSpec::Mssr { streams: 4, log_entries: 64 }.into();
        let mut ids = Vec::new();
        for kind in BpredKind::ALL {
            for w in [microbench::nested_mispred(iters), microbench::linear_mispred(iters)] {
                let wid = pool.intern(w);
                let cfg = experiment_sim_config().with_bpred(kind);
                ids.push(pool.cell(wid, EngineSpec::Baseline.into(), cfg.clone()));
                ids.push(pool.cell(wid, mssr.clone(), cfg));
            }
        }
        ids
    }

    fn render(&self, _pool: &CellPool, ids: &[CellId], results: &[CellResult]) -> String {
        let mut out = String::from("== Predictor lab: reuse benefit vs conditional MPKI ==\n");
        out.push_str(
            "per predictor: baseline conditional MPKI and MSSR-4 speedup on each workload\n\n",
        );
        // Per kind: [nested base, nested mssr, linear base, linear mssr].
        let mut rows = Vec::new();
        for (kind, chunk) in BpredKind::ALL.iter().zip(ids.chunks(4)) {
            let s = |i: usize| &results[chunk[i]].stats;
            rows.push(vec![
                kind.name().to_string(),
                format!("{:.2}", s(0).mpki()),
                format!("{:+.1}%", speedup_pct(s(0), s(1))),
                format!("{:.2}", s(2).mpki()),
                format!("{:+.1}%", speedup_pct(s(2), s(3))),
            ]);
        }
        out.push_str(&render_table(
            &["predictor", "nested MPKI", "nested speedup", "linear MPKI", "linear speedup"],
            &rows,
        ));
        out
    }
}

/// Interns every workload of the evaluation (suite order: micro,
/// SPEC2006, SPEC2017, GAP) and returns their ids.
fn all_interned(pool: &mut CellPool) -> Vec<usize> {
    mssr_workloads::all_workloads(pool.scale()).into_iter().map(|w| pool.intern(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_named_consistently() {
        for name in EXPERIMENT_NAMES {
            let e = experiment(name).expect("registered");
            assert_eq!(e.name(), name);
        }
        assert!(experiment("fig99").is_none());
        assert_eq!(all_experiments().len(), EXPERIMENT_NAMES.len());
    }

    #[test]
    fn cell_declarations_are_deterministic() {
        for name in EXPERIMENT_NAMES {
            let e = experiment(name).unwrap();
            let mut p1 = CellPool::new(Scale::Test);
            let mut p2 = CellPool::new(Scale::Test);
            assert_eq!(e.cells(&mut p1), e.cells(&mut p2), "{name}");
        }
    }

    #[test]
    fn analytic_tables_render_without_cells() {
        let pool = CellPool::new(Scale::Test);
        for name in ["table2", "table3", "table4"] {
            let e = experiment(name).unwrap();
            let out = e.render(&pool, &[], &[]);
            assert!(out.contains("=="), "{name} renders a header");
        }
    }

    #[test]
    fn shared_pool_dedups_across_experiments() {
        // fig12 and rollup both declare GAP baselines: the shared pool
        // must simulate them once.
        let mut pool = CellPool::new(Scale::Test);
        let a = experiment("fig12").unwrap().cells(&mut pool);
        let n_after_fig12 = pool.len();
        let b = experiment("rollup").unwrap().cells(&mut pool);
        assert_eq!(a.len(), 6 * 13);
        assert_eq!(b.len(), 6 * 4);
        assert!(pool.len() < n_after_fig12 + b.len(), "rollup's baselines dedup against fig12's");
    }
}
