//! `mssr-serve`: a long-running simulation job server with shared
//! result and checkpoint caching (ROADMAP item 2).
//!
//! The batch harness re-simulates identical cells and re-warms
//! identical fast-forward prefixes on every invocation. The server
//! keeps one process resident instead: clients submit experiment-cell
//! requests over std-only TCP + JSON lines (the workspace's zero-dep
//! rule extends to the wire), identical requests deduplicate against a
//! content-addressed in-memory result cache, fast-forward boundary
//! snapshots are shared across requests through [`CkptMem`], and cells
//! execute on the same work-stealing execution path as the batch grid —
//! [`CellPool::run_cell_with`] — which is what makes a served result
//! byte-identical to the line the batch trajectory carries.
//!
//! ## Protocol
//!
//! One JSON object per `\n`-terminated line, both directions. On
//! connect the server sends `{"type":"hello","proto":1,...}`. Requests:
//!
//! * `{"type":"ping"}` → `{"type":"pong"}`
//! * `{"type":"list"}` → `{"type":"cells","count":N,"cells":[...]}` —
//!   the cell universe (ids, workloads, engines) the server was started
//!   with.
//! * `{"type":"stats"}` → `{"type":"stats",...}` — request/cache/queue
//!   counters.
//! * `{"type":"metrics"}` → `{"type":"metrics","body":...}` — the same
//!   state as Prometheus text exposition (JSON-escaped in `body`):
//!   request/cache counters, queue-depth and worker gauges, and
//!   per-request latency histograms split by cache outcome.
//! * `{"type":"run","id":ID,"cell":N}` with optional `"seed"`,
//!   `"sample"`, `"ffwd"` members (or `"workload"`+`"engine"` names in
//!   place of `"cell"`) — runs or replays one cell. The response is the
//!   cell's progress-sample `"event"` lines (when `"sample" > 0`),
//!   its batch-identical `"cell"` record, then a `"done"` terminator
//!   carrying the request id and whether the result came from cache.
//! * `{"type":"shutdown"}` → drains queued work, `{"type":"bye",...}`.
//!
//! Error responses are `{"type":"error","error":...}`; an over-full
//! queue answers `{"type":"busy","retry_after_ms":N}` instead of
//! buffering unboundedly (the retry hint scales with measured cell
//! latency and queue depth).
//!
//! ## Robustness rules
//!
//! * **Bounded queue** — at most `queue_bound` cells wait; beyond that
//!   clients get `busy` with a retry hint (explicit backpressure).
//! * **Per-request timeout** — a waiter gives up after `timeout_ms`
//!   with an error; the cell keeps computing and a retry joins it.
//! * **Idempotent request ids** — a retried id with the same payload
//!   joins the original computation or hits its cached result; the
//!   same id with a *different* payload is refused.
//! * **Single-flight** — concurrent requests for one cell identity run
//!   it once; late arrivals wait on the in-flight computation.
//! * **Graceful drain** — `shutdown` stops intake, lets queued cells
//!   finish (their waiters get results), then replies `bye`.
//!
//! Checkpoint sharing follows the batch rule for *disk* checkpoints
//! (unusable under sampling: a mid-run restore would truncate the event
//! stream) but shares in-memory fast-forward *boundary* snapshots
//! across every sampling mode — a boundary snapshot precedes all
//! detailed cycles, so restoring one and re-asserting the requested
//! sample interval reproduces a cold run exactly (see DESIGN.md,
//! "Serve architecture").

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use mssr_sim::BpredKind;
use mssr_sim::{fnv1a64, json_escape};
use mssr_workloads::Scale;

use super::grid::{panic_message, CellRun, CkptMem, LiveSink};
use super::metrics::{warnings_total, Counter, Histogram, Renderer};
use super::report::Json;
use super::{
    cell_json_line, cell_seed, experiment, push_event_lines, scale_name, splitmix64, CellId,
    CellPool, DEFAULT_ROOT_SEED, EXPERIMENT_NAMES,
};

/// Ceiling on request-line length a server accepts by default (64 KiB —
/// every legitimate request fits in well under 1 KiB).
pub const DEFAULT_MAX_LINE: usize = 64 * 1024;

/// Response lines (cell records, event replays) can be much longer than
/// requests; clients accept up to this.
const CLIENT_MAX_LINE: usize = 4 << 20;

/// Ceiling on remembered request ids; the map clears and starts over
/// beyond this (bounding memory at the price of a finite idempotency
/// window, which retries within any realistic horizon never notice).
const MAX_REMEMBERED_IDS: usize = 65_536;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads executing cells.
    pub jobs: usize,
    /// Bounded-queue depth; submissions beyond it are rejected with a
    /// `busy` + retry-after response.
    pub queue_bound: usize,
    /// Per-request wait budget in milliseconds.
    pub timeout_ms: u64,
    /// Workload input scale of the cell universe.
    pub scale: Scale,
    /// Root seed; per-cell default seeds derive from it exactly as in
    /// the batch harness.
    pub root_seed: u64,
    /// Experiments whose cells form the server's universe (cell ids
    /// match a batch run of the same experiment list).
    pub experiments: Vec<String>,
    /// Optional on-disk checkpoint directory (unsampled requests only,
    /// same rule as the batch harness).
    pub ckpt_dir: Option<std::path::PathBuf>,
    /// Result-cache capacity in entries (FIFO eviction).
    pub cache_cap: usize,
    /// Branch-predictor override for every cell in the universe
    /// (`--bpred`); `None` keeps each cell's configured default.
    pub bpred: Option<BpredKind>,
    /// Request-line length ceiling in bytes.
    pub max_line: usize,
    /// Artificial per-cell delay in milliseconds — a load-shaping knob
    /// for tests and benchmarks that need deterministic backpressure.
    pub delay_ms: u64,
}

impl ServeOpts {
    /// Defaults at a given scale: all experiments, all cores, a
    /// 64-deep queue, 60 s request timeout.
    pub fn new(scale: Scale) -> ServeOpts {
        ServeOpts {
            addr: "127.0.0.1:0".to_string(),
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_bound: 64,
            timeout_ms: 60_000,
            scale,
            root_seed: DEFAULT_ROOT_SEED,
            experiments: EXPERIMENT_NAMES.iter().map(|n| n.to_string()).collect(),
            ckpt_dir: None,
            cache_cap: 4096,
            bpred: None,
            max_line: DEFAULT_MAX_LINE,
            delay_ms: 0,
        }
    }
}

/// One computed (or failed) cell response, shared between the cache and
/// every waiter.
struct Served {
    cell: CellId,
    /// The batch-identical `"cell"` record (no trailing newline).
    cell_line: String,
    /// Wrapped `"event"` lines, each newline-terminated (empty for
    /// unsampled runs).
    events: String,
    /// A deterministic failure (workload panic): cached like a result
    /// so a poison cell is not re-run per request.
    error: Option<String>,
}

enum Entry {
    InFlight,
    Done(Arc<Served>),
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<String, Entry>,
    /// Completion order of `Done` keys, for FIFO eviction.
    order: VecDeque<String>,
}

impl CacheInner {
    fn insert_done(&mut self, key: &str, served: Arc<Served>, cap: usize) {
        self.map.insert(key.to_string(), Entry::Done(served));
        self.order.push_back(key.to_string());
        while self.order.len() > cap.max(1) {
            let Some(old) = self.order.pop_front() else { break };
            // Never evict the entry just inserted (a recomputed key can
            // appear in `order` twice; dropping the stale occurrence is
            // enough) and never touch in-flight markers.
            if old != key && matches!(self.map.get(&old), Some(Entry::Done(_))) {
                self.map.remove(&old);
            }
        }
    }
}

/// One queued cell execution.
struct Job {
    key: String,
    cell: CellId,
    seed: u64,
    sample: u64,
    ffwd: u64,
    /// The submitting connection's writer, for live progress streaming
    /// (sampled requests only). Best-effort: a vanished client must not
    /// kill the job.
    live: Option<Arc<Mutex<TcpStream>>>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    hits: AtomicU64,
    joins: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    running: AtomicU64,
    served_cells: AtomicU64,
    job_us: AtomicU64,
    connections: AtomicU64,
}

/// The server's scrape-only metrics: what the [`Counters`] snapshot
/// cannot express (latency distributions, degradation tallies). Gauges
/// (queue depth, busy workers, cache entries) are read live from
/// [`State`] at scrape time instead of being stored twice.
#[derive(Default)]
struct Metrics {
    /// Latency of requests answered from cache or by joining an
    /// in-flight computation (the "warm" path).
    lat_hit_us: Histogram,
    /// Latency of requests that submitted a fresh cell execution.
    lat_miss_us: Histogram,
    /// Invalid on-disk checkpoints skipped by served cells (each one a
    /// cold start that should have been warm).
    ckpt_restore_skips: Counter,
}

struct State {
    opts: ServeOpts,
    pool: CellPool,
    addr: SocketAddr,
    cache: Mutex<CacheInner>,
    cache_cv: Condvar,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    ids: Mutex<HashMap<String, String>>,
    ckpt_mem: CkptMem,
    stop: AtomicBool,
    n: Counters,
    m: Metrics,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running server: an accept thread plus `jobs` cell workers over one
/// shared [`State`].
pub struct Server {
    state: Arc<State>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, builds the cell universe, and starts the worker and
    /// accept threads.
    ///
    /// # Errors
    ///
    /// Returns a message when the bind fails or an experiment name is
    /// unknown.
    pub fn start(opts: ServeOpts) -> Result<Server, String> {
        let mut pool = CellPool::new(opts.scale);
        pool.set_bpred_override(opts.bpred);
        for name in &opts.experiments {
            let e = experiment(name).ok_or_else(|| format!("unknown experiment `{name}`"))?;
            e.cells(&mut pool);
        }
        let listener =
            TcpListener::bind(&opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let jobs = opts.jobs.max(1);
        let state = Arc::new(State {
            opts,
            pool,
            addr,
            cache: Mutex::new(CacheInner::default()),
            cache_cv: Condvar::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            ids: Mutex::new(HashMap::new()),
            ckpt_mem: CkptMem::new(),
            stop: AtomicBool::new(false),
            n: Counters::default(),
            m: Metrics::default(),
        });
        let workers = (0..jobs)
            .map(|_| {
                let st = Arc::clone(&state);
                std::thread::spawn(move || worker_loop(&st))
            })
            .collect();
        let accept = {
            let st = Arc::clone(&state);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if st.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    st.n.connections.fetch_add(1, Ordering::SeqCst);
                    let st2 = Arc::clone(&st);
                    std::thread::spawn(move || handle_conn(&st2, stream));
                }
            })
        };
        Ok(Server { state, accept: Some(accept), workers })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Number of cells in the server's universe.
    pub fn cells(&self) -> usize {
        self.state.pool.len()
    }

    /// Blocks until a client's `shutdown` request has drained the
    /// server, then joins every thread.
    pub fn wait(mut self) {
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Initiates a drain (as a `shutdown` request would) and joins
    /// every thread.
    pub fn shutdown(self) {
        let addr = self.state.addr.to_string();
        if let Ok(mut c) = Client::connect(&addr, 60_000) {
            let _ = c.send("{\"type\":\"shutdown\"}");
            let _ = c.recv(); // bye
        }
        self.wait();
    }
}

fn worker_loop(state: &Arc<State>) {
    loop {
        let job = {
            let mut q = lock(&state.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                q = state.queue_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        state.n.running.fetch_add(1, Ordering::SeqCst);
        let t0 = Instant::now();
        if state.opts.delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(state.opts.delay_ms));
        }
        let served = Arc::new(run_job(state, &job));
        state.n.job_us.fetch_add(t0.elapsed().as_micros() as u64, Ordering::SeqCst);
        state.n.served_cells.fetch_add(1, Ordering::SeqCst);
        lock(&state.cache).insert_done(&job.key, served, state.opts.cache_cap);
        state.cache_cv.notify_all();
        state.n.running.fetch_sub(1, Ordering::SeqCst);
        // Wake idle peers and any drain waiter re-checking
        // queue-empty && nothing-running.
        state.queue_cv.notify_all();
    }
}

fn run_job(state: &State, job: &Job) -> Served {
    let rp = CellRun {
        trace: false,
        sample: job.sample,
        ffwd: job.ffwd,
        // Disk checkpoints follow the batch rule (mid-run restores are
        // unusable under sampling); the in-memory boundary cache is
        // always shared.
        ckpt_dir: if job.sample > 0 { None } else { state.opts.ckpt_dir.as_deref() },
        ckpt_every: 0,
        timing: false,
        profile: false,
        ckpt_mem: Some(&state.ckpt_mem),
    };
    let live: Option<LiveSink> = job.live.as_ref().map(|w| {
        let w = Arc::clone(w);
        let cell = job.cell;
        Box::new(move |line: &str| {
            let _ = send_line(&w, &format!("{{\"type\":\"event\",\"cell\":{cell},\"ev\":{line}}}"));
        }) as LiveSink
    });
    match catch_unwind(AssertUnwindSafe(|| state.pool.run_cell_with(job.cell, job.seed, &rp, live)))
    {
        Ok(res) => {
            if let Some((_, skips)) =
                res.stats.engine.extra.iter().find(|(k, _)| k == "ckpt_restore_skips")
            {
                state.m.ckpt_restore_skips.add(*skips);
            }
            let cell_line = cell_json_line(&state.pool, job.cell, &res);
            let mut events = String::new();
            if let Some(tr) = &res.trace {
                push_event_lines(&mut events, job.cell, tr);
            }
            Served { cell: job.cell, cell_line, events, error: None }
        }
        Err(p) => Served {
            cell: job.cell,
            cell_line: String::new(),
            events: String::new(),
            error: Some(format!("cell {} failed: {}", job.cell, panic_message(p.as_ref()))),
        },
    }
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

enum ReadLine {
    Line(String),
    Eof,
    TooLong,
    Failed,
}

/// A newline-framed reader with an explicit line-length ceiling, so an
/// endless unterminated line cannot balloon server memory.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max: usize,
}

impl LineReader {
    fn new(stream: TcpStream, max: usize) -> LineReader {
        LineReader { stream, buf: Vec::new(), max }
    }

    fn next_line(&mut self) -> ReadLine {
        loop {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                // An over-limit line is rejected even when complete: the
                // limit is the protocol contract, not a buffering
                // accident of how the bytes arrived.
                if nl > self.max {
                    return ReadLine::TooLong;
                }
                let rest = self.buf.split_off(nl + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return ReadLine::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buf.len() > self.max {
                return ReadLine::TooLong;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadLine::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(_) => return ReadLine::Failed,
            }
        }
    }
}

/// Writes one newline-terminated line under the stream's mutex (lines
/// are the protocol's atomicity unit: live event streaming and the
/// final response share a writer).
fn send_line(w: &Mutex<TcpStream>, line: &str) -> bool {
    let mut bytes = Vec::with_capacity(line.len() + 1);
    bytes.extend_from_slice(line.as_bytes());
    bytes.push(b'\n');
    lock(w).write_all(&bytes).is_ok()
}

fn send_raw(w: &Mutex<TcpStream>, text: &str) -> bool {
    lock(w).write_all(text.as_bytes()).is_ok()
}

fn handle_conn(state: &Arc<State>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(writer) = stream.try_clone() else { return };
    let w = Arc::new(Mutex::new(writer));
    let hello = format!(
        "{{\"type\":\"hello\",\"proto\":1,\"scale\":\"{}\",\"cells\":{}}}",
        scale_name(state.opts.scale),
        state.pool.len()
    );
    if !send_line(&w, &hello) {
        return;
    }
    let mut rd = LineReader::new(stream, state.opts.max_line);
    loop {
        match rd.next_line() {
            ReadLine::Line(line) => {
                if !dispatch(state, &w, &line) {
                    return;
                }
            }
            // EOF mid-request-stream (including mid-computation: the
            // worker's live writes just start failing) ends the
            // connection, never the server.
            ReadLine::Eof | ReadLine::Failed => return,
            ReadLine::TooLong => {
                state.n.errors.fetch_add(1, Ordering::SeqCst);
                let msg = format!(
                    "{{\"type\":\"error\",\"error\":\"request line exceeds {} bytes; closing\"}}",
                    state.opts.max_line
                );
                send_line(&w, &msg);
                return;
            }
        }
    }
}

fn send_err(state: &State, w: &Mutex<TcpStream>, id: Option<&str>, msg: &str) -> bool {
    state.n.errors.fetch_add(1, Ordering::SeqCst);
    send_line(
        w,
        &format!("{{\"type\":\"error\"{},\"error\":\"{}\"}}", id_frag(id), json_escape(msg)),
    )
}

/// The optional `,"id":"..."` fragment of a response.
fn id_frag(id: Option<&str>) -> String {
    match id {
        Some(i) => format!(",\"id\":\"{}\"", json_escape(i)),
        None => String::new(),
    }
}

/// Routes one request line. Returns `false` when the connection should
/// close (shutdown, write failure, unrecoverable framing).
fn dispatch(state: &Arc<State>, w: &Arc<Mutex<TcpStream>>, line: &str) -> bool {
    let line = line.trim();
    if line.is_empty() {
        return true;
    }
    let req = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return send_err(state, w, None, &format!("malformed request: {e}"));
        }
    };
    match req.get("type").and_then(Json::str_val) {
        Some("ping") => send_line(w, "{\"type\":\"pong\"}"),
        Some("list") => send_line(w, &list_line(state)),
        Some("stats") => send_line(w, &stats_line(state)),
        Some("metrics") => send_line(w, &metrics_line(state)),
        Some("run") => handle_run(state, w, &req),
        Some("shutdown") => {
            handle_shutdown(state, w);
            false
        }
        Some(other) => send_err(state, w, None, &format!("unknown request type `{other}`")),
        None => send_err(state, w, None, "request needs a string \"type\" member"),
    }
}

fn list_line(state: &State) -> String {
    let mut out = format!(
        "{{\"type\":\"cells\",\"scale\":\"{}\",\"count\":{},\"cells\":[",
        scale_name(state.opts.scale),
        state.pool.len()
    );
    for i in 0..state.pool.len() {
        let spec = state.pool.cell_spec(i);
        let wl = state.pool.workload(spec.workload);
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{i},\"workload\":\"{}\",\"engine\":\"{}\"}}",
            json_escape(wl.name()),
            json_escape(&spec.engine.label())
        ));
    }
    out.push_str("]}");
    out
}

fn stats_line(state: &State) -> String {
    let n = &state.n;
    let ld = |a: &AtomicU64| a.load(Ordering::SeqCst);
    let requests = ld(&n.requests);
    let warm = ld(&n.hits) + ld(&n.joins);
    let cache_entries = lock(&state.cache).map.len();
    let queue = lock(&state.queue).len();
    format!(
        concat!(
            "{{\"type\":\"stats\",\"cells\":{},\"requests\":{},\"hits\":{},\"joins\":{},",
            "\"misses\":{},\"hit_rate_milli\":{},\"rejected\":{},\"timeouts\":{},",
            "\"errors\":{},\"queue\":{},\"running\":{},\"served_cells\":{},",
            "\"cache_entries\":{},\"ckpt_mem_entries\":{},\"connections\":{}}}"
        ),
        state.pool.len(),
        requests,
        ld(&n.hits),
        ld(&n.joins),
        ld(&n.misses),
        warm * 1000 / requests.max(1),
        ld(&n.rejected),
        ld(&n.timeouts),
        ld(&n.errors),
        queue,
        ld(&n.running),
        ld(&n.served_cells),
        cache_entries,
        state.ckpt_mem.entries(),
        ld(&n.connections),
    )
}

/// Renders the server's state as Prometheus text exposition and wraps
/// it as the one-line `metrics` response (the body is JSON-escaped; a
/// scraper decodes one string to recover the exposition verbatim).
///
/// Counter/gauge invariants a scraper can rely on: the hit-labelled
/// latency histogram's `_count` equals `hits + joins` and the
/// miss-labelled one equals `misses` (every resolved or timed-out wait
/// is observed exactly once, *before* its response line is written, so
/// a scrape issued after the response never under-counts it).
fn metrics_line(state: &State) -> String {
    let n = &state.n;
    let ld = |a: &AtomicU64| a.load(Ordering::SeqCst);
    let mut r = Renderer::new();
    r.counter("mssr_requests_total", "Run requests received.", ld(&n.requests));
    r.counter("mssr_cache_hits_total", "Requests answered from the result cache.", ld(&n.hits));
    r.counter(
        "mssr_cache_joins_total",
        "Requests that joined an in-flight computation.",
        ld(&n.joins),
    );
    r.counter(
        "mssr_cache_misses_total",
        "Requests that submitted a fresh cell execution.",
        ld(&n.misses),
    );
    r.counter(
        "mssr_busy_rejections_total",
        "Requests rejected with busy by the bounded queue.",
        ld(&n.rejected),
    );
    r.counter("mssr_request_timeouts_total", "Waits that exceeded the budget.", ld(&n.timeouts));
    r.counter("mssr_request_errors_total", "Error responses sent.", ld(&n.errors));
    r.counter("mssr_served_cells_total", "Cell executions completed.", ld(&n.served_cells));
    r.counter("mssr_connections_total", "Connections accepted.", ld(&n.connections));
    r.counter(
        "mssr_ckpt_restore_skips_total",
        "Invalid on-disk checkpoints skipped (cold starts that should have been warm).",
        state.m.ckpt_restore_skips.get(),
    );
    r.counter("mssr_warnings_total", "Operational warnings emitted on stderr.", warnings_total());
    r.gauge(
        "mssr_queue_depth",
        "Cells waiting in the bounded queue.",
        lock(&state.queue).len() as u64,
    );
    r.gauge("mssr_workers_busy", "Workers executing a cell right now.", ld(&n.running));
    r.gauge("mssr_workers", "Worker threads.", state.opts.jobs.max(1) as u64);
    r.gauge("mssr_cache_entries", "Result-cache entries.", lock(&state.cache).map.len() as u64);
    r.gauge(
        "mssr_ckpt_mem_entries",
        "Shared in-memory fast-forward snapshots.",
        state.ckpt_mem.entries() as u64,
    );
    r.histogram(
        "mssr_request_latency_us",
        "Run-request latency in microseconds by cache outcome.",
        &[("result=\"hit\"", &state.m.lat_hit_us), ("result=\"miss\"", &state.m.lat_miss_us)],
    );
    format!("{{\"type\":\"metrics\",\"body\":\"{}\"}}", json_escape(&r.finish()))
}

fn handle_shutdown(state: &Arc<State>, w: &Mutex<TcpStream>) {
    state.stop.store(true, Ordering::SeqCst);
    state.queue_cv.notify_all();
    // Drain: queued cells still execute and their waiters get results;
    // only new submissions are refused (see handle_run).
    {
        let mut q = lock(&state.queue);
        while !(q.is_empty() && state.n.running.load(Ordering::SeqCst) == 0) {
            let (g, _) = state
                .queue_cv
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            q = g;
        }
    }
    send_line(
        w,
        &format!(
            "{{\"type\":\"bye\",\"served_cells\":{}}}",
            state.n.served_cells.load(Ordering::SeqCst)
        ),
    );
    // Unblock the accept loop so it observes the stop flag.
    let _ = TcpStream::connect(state.addr);
}

enum Decision {
    Hit(Arc<Served>),
    Wait { submitted: bool },
    Busy(u64),
    Refused,
}

fn handle_run(state: &Arc<State>, w: &Arc<Mutex<TcpStream>>, req: &Json) -> bool {
    let id: Option<String> = match req.get("id") {
        None => None,
        Some(Json::Str(s)) => Some(s.clone()),
        Some(Json::Num(n)) => Some(n.to_string()),
        Some(_) => return send_err(state, w, None, "\"id\" must be a string or integer"),
    };
    let id_ref = id.as_deref();
    let cell: CellId = if let Some(c) = req.get("cell") {
        match c.num() {
            Some(n) if (n as usize) < state.pool.len() => n as usize,
            Some(n) => {
                let msg = format!(
                    "unknown cell {n} (server has {} cells; try \"list\")",
                    state.pool.len()
                );
                return send_err(state, w, id_ref, &msg);
            }
            None => return send_err(state, w, id_ref, "\"cell\" must be an unsigned integer"),
        }
    } else {
        let wl = req.get("workload").and_then(Json::str_val);
        let eng = req.get("engine").and_then(Json::str_val);
        match (wl, eng) {
            (Some(wl), Some(eng)) => match find_cell(&state.pool, wl, eng) {
                Some(i) => i,
                None => {
                    let msg = format!("no cell matches workload `{wl}` + engine `{eng}`");
                    return send_err(state, w, id_ref, &msg);
                }
            },
            _ => {
                return send_err(
                    state,
                    w,
                    id_ref,
                    "\"run\" needs \"cell\" or \"workload\"+\"engine\"",
                )
            }
        }
    };
    let sample = req.get("sample").and_then(Json::num).unwrap_or(0);
    let ffwd = req.get("ffwd").and_then(Json::num).unwrap_or(0);
    let seed = match req.get("seed") {
        None => cell_seed(state.opts.root_seed, cell as u64),
        Some(Json::Num(n)) => *n,
        Some(Json::Str(s)) => match parse_u64(s) {
            Some(v) => v,
            None => return send_err(state, w, id_ref, "\"seed\" must be decimal or 0x-hex"),
        },
        Some(_) => return send_err(state, w, id_ref, "\"seed\" must be a number or string"),
    };
    // The cache key: everything that shapes the response bytes. Cell id
    // already pins (workload, engine, config, scale) — the pool
    // deduplicated on exactly those. The predictor override is
    // server-wide, but naming it in the key keeps entries honest if a
    // shared external cache ever fronts several servers.
    let bpred = state.opts.bpred.unwrap_or_default().name();
    let key = format!("{cell}|{seed:#x}|s{sample}|f{ffwd}|b{bpred}");
    if let Some(id) = &id {
        let mut ids = lock(&state.ids);
        if ids.len() >= MAX_REMEMBERED_IDS {
            ids.clear();
        }
        match ids.get(id) {
            Some(prev) if *prev != key => {
                return send_err(
                    state,
                    w,
                    Some(id),
                    "request id was already used with a different payload",
                );
            }
            _ => {
                ids.insert(id.clone(), key.clone());
            }
        }
    }
    state.n.requests.fetch_add(1, Ordering::SeqCst);
    let t_req = Instant::now();
    let deadline = t_req + Duration::from_millis(state.opts.timeout_ms.max(1));
    let decision = {
        let mut cache = lock(&state.cache);
        match cache.map.get(&key) {
            Some(Entry::Done(s)) => Decision::Hit(Arc::clone(s)),
            Some(Entry::InFlight) => Decision::Wait { submitted: false },
            None => {
                if state.stop.load(Ordering::SeqCst) {
                    Decision::Refused
                } else {
                    let mut q = lock(&state.queue);
                    if q.len() >= state.opts.queue_bound {
                        Decision::Busy(retry_hint(state, q.len()))
                    } else {
                        cache.map.insert(key.clone(), Entry::InFlight);
                        q.push_back(Job {
                            key: key.clone(),
                            cell,
                            seed,
                            sample,
                            ffwd,
                            live: (sample > 0).then(|| Arc::clone(w)),
                        });
                        state.queue_cv.notify_one();
                        Decision::Wait { submitted: true }
                    }
                }
            }
        }
    };
    match decision {
        Decision::Hit(s) => {
            state.n.hits.fetch_add(1, Ordering::SeqCst);
            state.m.lat_hit_us.observe_us(t_req.elapsed().as_micros() as u64);
            reply_done(state, w, &s, id_ref, true, true)
        }
        Decision::Busy(ms) => {
            state.n.rejected.fetch_add(1, Ordering::SeqCst);
            send_line(
                w,
                &format!("{{\"type\":\"busy\"{},\"retry_after_ms\":{ms}}}", id_frag(id_ref)),
            )
        }
        Decision::Refused => send_err(state, w, id_ref, "server is shutting down"),
        Decision::Wait { submitted } => {
            if submitted {
                state.n.misses.fetch_add(1, Ordering::SeqCst);
            } else {
                state.n.joins.fetch_add(1, Ordering::SeqCst);
            }
            let done = await_done(state, &key, deadline);
            // Every wait is observed exactly once — resolved or timed
            // out — so the per-outcome histogram counts match the
            // miss/join counters a scraper cross-checks against.
            let lat = if submitted { &state.m.lat_miss_us } else { &state.m.lat_hit_us };
            lat.observe_us(t_req.elapsed().as_micros() as u64);
            match done {
                // A submitter already streamed its events live; joiners
                // get the buffered replay. Either way the payload bytes
                // (events, then cell record) are identical.
                Some(s) => reply_done(state, w, &s, id_ref, !submitted, !submitted),
                None => {
                    state.n.timeouts.fetch_add(1, Ordering::SeqCst);
                    let msg = format!(
                        "request timed out after {}ms; the cell keeps running — retry with the same id",
                        state.opts.timeout_ms
                    );
                    send_err(state, w, id_ref, &msg)
                }
            }
        }
    }
}

/// First cell whose workload name and engine label match.
fn find_cell(pool: &CellPool, workload: &str, engine: &str) -> Option<CellId> {
    (0..pool.len()).find(|&i| {
        let spec = pool.cell_spec(i);
        pool.workload(spec.workload).name() == workload && spec.engine.label() == engine
    })
}

/// How long a rejected client should wait: measured mean cell latency
/// times the queue depth ahead of it, split across workers.
fn retry_hint(state: &State, queue_len: usize) -> u64 {
    let done = state.n.served_cells.load(Ordering::SeqCst);
    let avg_ms = match state.n.job_us.load(Ordering::SeqCst).checked_div(done) {
        Some(us) => (us / 1000).max(1),
        None => 50,
    };
    (avg_ms * (queue_len as u64 + 1) / state.opts.jobs.max(1) as u64).clamp(25, 5_000)
}

fn await_done(state: &State, key: &str, deadline: Instant) -> Option<Arc<Served>> {
    let mut cache = lock(&state.cache);
    loop {
        match cache.map.get(key) {
            Some(Entry::Done(s)) => return Some(Arc::clone(s)),
            Some(Entry::InFlight) => {}
            // Evicted between completion and this wake-up (possible only
            // under extreme cache pressure): report as a timeout-style
            // failure; a retry recomputes.
            None => return None,
        }
        let now = Instant::now();
        if now >= deadline {
            return None;
        }
        let (g, _) = state
            .cache_cv
            .wait_timeout(cache, deadline - now)
            .unwrap_or_else(PoisonError::into_inner);
        cache = g;
    }
}

fn reply_done(
    state: &State,
    w: &Mutex<TcpStream>,
    s: &Served,
    id: Option<&str>,
    cached: bool,
    replay_events: bool,
) -> bool {
    if let Some(err) = &s.error {
        return send_err(state, w, id, err);
    }
    let mut out = String::new();
    if replay_events {
        out.push_str(&s.events);
    }
    out.push_str(&s.cell_line);
    out.push('\n');
    out.push_str(&format!(
        "{{\"type\":\"done\"{},\"cell\":{},\"cached\":{}}}\n",
        id_frag(id),
        s.cell,
        cached
    ));
    send_raw(w, &out)
}

fn parse_u64(s: &str) -> Option<u64> {
    let t = s.trim();
    match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(h) => u64::from_str_radix(h, 16).ok(),
        None => t.parse().ok(),
    }
}

// ---------------------------------------------------------------------
// Client side: protocol client, trajectory fetcher, load generator
// ---------------------------------------------------------------------

/// One `run` outcome as seen by a client.
#[derive(Debug)]
pub enum Reply {
    /// The cell's response: wrapped event lines, the batch-identical
    /// cell record, and whether the server answered from cache.
    Done {
        /// Wrapped `"event"` lines in emission order.
        events: Vec<String>,
        /// The `"cell"` record line.
        cell_line: String,
        /// Whether the response was served from cache (or joined an
        /// in-flight computation).
        cached: bool,
    },
    /// Backpressure: retry after the hinted delay.
    Busy {
        /// The server's retry hint in milliseconds.
        retry_after_ms: u64,
    },
    /// A request-level error.
    Error {
        /// The server's message.
        error: String,
    },
    /// The connection died.
    Lost,
}

/// A JSON-lines protocol client over one TCP connection.
pub struct Client {
    w: TcpStream,
    rd: LineReader,
}

impl Client {
    /// Connects and consumes the server's `hello` line.
    ///
    /// # Errors
    ///
    /// Returns a message when the connection or greeting fails.
    pub fn connect(addr: &str, read_timeout_ms: u64) -> Result<Client, String> {
        let s = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let _ = s.set_nodelay(true);
        if read_timeout_ms > 0 {
            let _ = s.set_read_timeout(Some(Duration::from_millis(read_timeout_ms)));
        }
        let w = s.try_clone().map_err(|e| e.to_string())?;
        let mut c = Client { w, rd: LineReader::new(s, CLIENT_MAX_LINE) };
        let hello = c.recv().ok_or_else(|| "no hello from server".to_string())?;
        match Json::parse(&hello).ok().as_ref().and_then(|v| v.get("type")?.str_val()) {
            Some("hello") => Ok(c),
            _ => Err(format!("unexpected greeting: {hello}")),
        }
    }

    /// Sends one raw request line.
    pub fn send(&mut self, line: &str) -> bool {
        self.w.write_all(line.as_bytes()).is_ok() && self.w.write_all(b"\n").is_ok()
    }

    /// Receives one response line (`None` on EOF/error/timeout).
    pub fn recv(&mut self) -> Option<String> {
        match self.rd.next_line() {
            ReadLine::Line(l) => Some(l),
            _ => None,
        }
    }

    /// Sends a `run` request and collects its complete response.
    pub fn request(&mut self, req: &str) -> Reply {
        if !self.send(req) {
            return Reply::Lost;
        }
        let mut events = Vec::new();
        let mut cell_line = String::new();
        loop {
            let Some(line) = self.recv() else { return Reply::Lost };
            let Ok(v) = Json::parse(&line) else { continue };
            match v.get("type").and_then(Json::str_val) {
                Some("event") => events.push(line),
                Some("cell") => cell_line = line,
                Some("done") => {
                    let cached = v.get("cached") == Some(&Json::Bool(true));
                    return Reply::Done { events, cell_line, cached };
                }
                Some("busy") => {
                    return Reply::Busy { retry_after_ms: v.field_u64("retry_after_ms") }
                }
                Some("error") => {
                    let error =
                        v.get("error").and_then(Json::str_val).unwrap_or("unknown").to_string();
                    return Reply::Error { error };
                }
                _ => {}
            }
        }
    }
}

/// The cell count a server advertises through `list`.
fn server_cell_count(c: &mut Client) -> Result<usize, String> {
    if !c.send("{\"type\":\"list\"}") {
        return Err("send failed".into());
    }
    let line = c.recv().ok_or_else(|| "no list reply".to_string())?;
    Json::parse(&line)
        .ok()
        .and_then(|v| v.get("count")?.num())
        .map(|n| n as usize)
        .ok_or_else(|| format!("bad list reply: {line}"))
}

/// Requests every cell of the server in id order and reassembles the
/// batch trajectory's cell/event lines: each cell record first, then
/// its events — byte-identical to a batch run of the same experiments
/// filtered to `"cell"`/`"event"` lines. Retries `busy` responses.
///
/// # Errors
///
/// Returns a message on connection loss or a request-level error.
pub fn fetch_all(addr: &str, sample: u64, ffwd: u64) -> Result<String, String> {
    let mut c = Client::connect(addr, 600_000)?;
    let count = server_cell_count(&mut c)?;
    let mut out = String::new();
    for i in 0..count {
        let mut body = format!("\"cell\":{i}");
        if sample > 0 {
            body.push_str(&format!(",\"sample\":{sample}"));
        }
        if ffwd > 0 {
            body.push_str(&format!(",\"ffwd\":{ffwd}"));
        }
        let req =
            format!("{{\"type\":\"run\",\"id\":\"f{:016x}\",{body}}}", fnv1a64(body.as_bytes()));
        loop {
            match c.request(&req) {
                Reply::Done { events, cell_line, .. } => {
                    out.push_str(&cell_line);
                    out.push('\n');
                    for e in events {
                        out.push_str(&e);
                        out.push('\n');
                    }
                    break;
                }
                Reply::Busy { retry_after_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(5, 1000)));
                }
                Reply::Error { error } => return Err(format!("cell {i}: {error}")),
                Reply::Lost => return Err(format!("connection lost fetching cell {i}")),
            }
        }
    }
    Ok(out)
}

/// Scrapes a server's `metrics` request and returns the decoded
/// Prometheus text exposition body.
///
/// # Errors
///
/// Returns a message on connection loss or a malformed reply.
pub fn fetch_metrics(addr: &str) -> Result<String, String> {
    let mut c = Client::connect(addr, 60_000)?;
    if !c.send("{\"type\":\"metrics\"}") {
        return Err("metrics request failed".into());
    }
    let line = c.recv().ok_or_else(|| "no metrics reply".to_string())?;
    let v = Json::parse(&line).map_err(|e| format!("bad metrics reply: {e}"))?;
    if v.get("type").and_then(Json::str_val) != Some("metrics") {
        return Err(format!("unexpected metrics reply: {line}"));
    }
    v.get("body")
        .and_then(Json::str_val)
        .map(str::to_string)
        .ok_or_else(|| format!("metrics reply without body: {line}"))
}

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct LoadOpts {
    /// Server address.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Percentage of requests aimed at a small hot set with default
    /// seeds (cache hits after first touch); the rest carry unique
    /// seeds (guaranteed misses).
    pub dup_pct: u64,
    /// Sampling period to request (`0` = stats-only responses).
    pub sample: u64,
    /// RNG seed for the request mix.
    pub seed: u64,
}

impl LoadOpts {
    /// Defaults: 64 clients × 8 requests, 60% duplicates, no sampling.
    pub fn new(addr: &str) -> LoadOpts {
        LoadOpts {
            addr: addr.to_string(),
            clients: 64,
            requests: 8,
            dup_pct: 60,
            sample: 0,
            seed: DEFAULT_ROOT_SEED,
        }
    }
}

/// Drives the server with `clients` concurrent connections and returns
/// the `BENCH_serve.json` report body: throughput, latency percentiles,
/// cache behavior, and the server's own counters.
///
/// # Errors
///
/// Returns a message when the server is unreachable.
pub fn load_gen(o: &LoadOpts) -> Result<String, String> {
    let mut probe = Client::connect(&o.addr, 60_000)?;
    let count = server_cell_count(&mut probe)?;
    if count == 0 {
        return Err("server has no cells".into());
    }
    let hot = count.min(4) as u64;
    let lat_us = Mutex::new(Vec::<u64>::new());
    let ok = AtomicU64::new(0);
    let cached_ok = AtomicU64::new(0);
    let busy_seen = AtomicU64::new(0);
    let gave_up = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for cidx in 0..o.clients {
            let lat_us = &lat_us;
            let (ok, cached_ok) = (&ok, &cached_ok);
            let (busy_seen, gave_up, errors) = (&busy_seen, &gave_up, &errors);
            s.spawn(move || {
                let Ok(mut cl) = Client::connect(&o.addr, 120_000) else {
                    errors.fetch_add(o.requests as u64, Ordering::SeqCst);
                    return;
                };
                let mut rng = splitmix64(o.seed ^ splitmix64(cidx as u64 + 1));
                for _ in 0..o.requests {
                    rng = splitmix64(rng);
                    let dup = rng % 100 < o.dup_pct;
                    let mut body = if dup {
                        format!("\"cell\":{}", splitmix64(rng ^ 0xd) % hot)
                    } else {
                        format!(
                            "\"cell\":{},\"seed\":\"{:#x}\"",
                            splitmix64(rng ^ 0xd) % count as u64,
                            splitmix64(rng ^ 0x5eed) | 1
                        )
                    };
                    if o.sample > 0 {
                        body.push_str(&format!(",\"sample\":{}", o.sample));
                    }
                    // Payload-derived id: identical payloads share an id,
                    // so retries are idempotent by construction.
                    let req = format!(
                        "{{\"type\":\"run\",\"id\":\"l{:016x}\",{body}}}",
                        fnv1a64(body.as_bytes())
                    );
                    let t = Instant::now();
                    let mut attempts = 0u32;
                    loop {
                        attempts += 1;
                        match cl.request(&req) {
                            Reply::Done { cached, .. } => {
                                lock(lat_us).push(t.elapsed().as_micros() as u64);
                                ok.fetch_add(1, Ordering::SeqCst);
                                if cached {
                                    cached_ok.fetch_add(1, Ordering::SeqCst);
                                }
                                break;
                            }
                            Reply::Busy { retry_after_ms } => {
                                // Count every rejection but keep retrying
                                // for a long while: the benchmark's claim
                                // is that backpressured work *completes*
                                // once capacity frees up, not that it is
                                // dropped. The cap only guards against a
                                // wedged server.
                                busy_seen.fetch_add(1, Ordering::SeqCst);
                                if attempts >= 500 {
                                    gave_up.fetch_add(1, Ordering::SeqCst);
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(
                                    retry_after_ms.clamp(5, 500),
                                ));
                            }
                            Reply::Error { .. } => {
                                errors.fetch_add(1, Ordering::SeqCst);
                                break;
                            }
                            Reply::Lost => match Client::connect(&o.addr, 120_000) {
                                Ok(c2) if attempts < 5 => cl = c2,
                                _ => {
                                    gave_up.fetch_add(1, Ordering::SeqCst);
                                    break;
                                }
                            },
                        }
                    }
                }
            });
        }
    });
    let wall_us = (t0.elapsed().as_micros() as u64).max(1);
    let mut lat = lat_us.into_inner().unwrap_or_else(PoisonError::into_inner);
    lat.sort_unstable();
    let pct = |p: u64| -> u64 {
        if lat.is_empty() {
            0
        } else {
            lat[((lat.len() as u64 - 1) * p / 100) as usize]
        }
    };
    let ok_n = ok.load(Ordering::SeqCst);
    // requests/s in thousandths, integer math throughout.
    let rps_milli = (u128::from(ok_n) * 1_000_000_000 / u128::from(wall_us)) as u64;
    if !probe.send("{\"type\":\"stats\"}") {
        return Err("stats probe failed".into());
    }
    let server_stats = probe.recv().ok_or_else(|| "no stats reply".to_string())?;
    Ok(format!(
        "{{\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \"dup_pct\": {},\n  \
         \"sample\": {},\n  \"requests_ok\": {ok_n},\n  \"responses_cached\": {},\n  \
         \"busy_rejections\": {},\n  \"gave_up\": {},\n  \"errors\": {},\n  \
         \"wall_ms\": {},\n  \"throughput_rps_milli\": {rps_milli},\n  \"p50_us\": {},\n  \
         \"p99_us\": {},\n  \"server\": {server_stats}\n}}",
        o.clients,
        o.requests,
        o.dup_pct,
        o.sample,
        cached_ok.load(Ordering::SeqCst),
        busy_seen.load(Ordering::SeqCst),
        gave_up.load(Ordering::SeqCst),
        errors.load(Ordering::SeqCst),
        wall_us / 1000,
        pct(50),
        pct(99),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reader_frames_lines_and_bounds_length() {
        // Loopback pair: a writer thread feeds a reader with framed and
        // oversized input.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"one\ntwo\r\n").unwrap();
            s.write_all(&vec![b'x'; 300]).unwrap();
            s.write_all(b"\n").unwrap();
        });
        let (conn, _) = listener.accept().unwrap();
        let mut rd = LineReader::new(conn, 128);
        assert!(matches!(rd.next_line(), ReadLine::Line(l) if l == "one"));
        assert!(matches!(rd.next_line(), ReadLine::Line(l) if l == "two"), "CR stripped");
        assert!(matches!(rd.next_line(), ReadLine::TooLong));
        t.join().unwrap();
    }

    #[test]
    fn cache_evicts_fifo_and_spares_inflight() {
        let mk = |cell| {
            Arc::new(Served { cell, cell_line: String::new(), events: String::new(), error: None })
        };
        let mut c = CacheInner::default();
        c.map.insert("pending".into(), Entry::InFlight);
        c.insert_done("a", mk(0), 2);
        c.insert_done("b", mk(1), 2);
        c.insert_done("c", mk(2), 2);
        assert!(matches!(c.map.get("pending"), Some(Entry::InFlight)), "in-flight survives");
        assert!(!c.map.contains_key("a"), "oldest done entry evicted");
        assert!(c.map.contains_key("b") && c.map.contains_key("c"));
    }

    #[test]
    fn retry_hints_and_seed_parsing() {
        assert_eq!(parse_u64("0x2a"), Some(42));
        assert_eq!(parse_u64("7"), Some(7));
        assert_eq!(parse_u64("zz"), None);
        assert_eq!(id_frag(None), "");
        assert_eq!(id_frag(Some("a\"b")), ",\"id\":\"a\\\"b\"");
    }
}
