//! The wall-clock measurement core: warmup iterations, N timed samples,
//! median/MAD/min reporting. A std-only stand-in for Criterion, used by
//! the `cargo bench` targets (`benches/experiments.rs`,
//! `benches/simulator.rs`).
//!
//! Wall-clock numbers are inherently nondeterministic, so they are kept
//! out of the experiment grid's JSON-lines trajectory (which must be
//! byte-identical across runs); bench targets emit their own `"bench"`
//! records instead.

use std::time::Instant;

/// Measurement parameters.
#[derive(Clone, Copy, Debug)]
pub struct MeasureConfig {
    /// Untimed warmup iterations before sampling.
    pub warmup: usize,
    /// Timed samples.
    pub samples: usize,
}

impl Default for MeasureConfig {
    fn default() -> MeasureConfig {
        MeasureConfig { warmup: 3, samples: 10 }
    }
}

/// A completed measurement: named, with samples sorted ascending.
#[derive(Clone, Debug)]
pub struct Measurement {
    name: String,
    sorted_ns: Vec<u64>,
}

impl Measurement {
    /// Wraps raw nanosecond samples (sorts them).
    pub fn from_samples(name: impl Into<String>, mut ns: Vec<u64>) -> Measurement {
        assert!(!ns.is_empty(), "a measurement needs at least one sample");
        ns.sort_unstable();
        Measurement { name: name.into(), sorted_ns: ns }
    }

    /// The measurement's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Samples in ascending order, nanoseconds.
    pub fn samples_ns(&self) -> &[u64] {
        &self.sorted_ns
    }

    /// Fastest sample.
    pub fn min_ns(&self) -> u64 {
        self.sorted_ns[0]
    }

    /// Slowest sample.
    pub fn max_ns(&self) -> u64 {
        *self.sorted_ns.last().unwrap()
    }

    /// Median (midpoint average for even counts).
    pub fn median_ns(&self) -> u64 {
        median(&self.sorted_ns)
    }

    /// Median absolute deviation from the median — the robust spread
    /// statistic reported alongside the median.
    pub fn mad_ns(&self) -> u64 {
        let med = self.median_ns();
        let mut dev: Vec<u64> = self.sorted_ns.iter().map(|&s| s.abs_diff(med)).collect();
        dev.sort_unstable();
        median(&dev)
    }

    /// One human-readable report line.
    pub fn human(&self) -> String {
        format!(
            "{:<44} median {:>10}  MAD {:>9}  min {:>10}  ({} samples)",
            self.name,
            fmt_ns(self.median_ns()),
            fmt_ns(self.mad_ns()),
            fmt_ns(self.min_ns()),
            self.sorted_ns.len()
        )
    }

    /// One JSON-lines `"bench"` record (the wall-clock counterpart of the
    /// grid's `"cell"` records).
    pub fn json_line(&self) -> String {
        format!(
            "{{\"type\":\"bench\",\"name\":\"{}\",\"samples\":{},\"median_ns\":{},\"mad_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            mssr_sim::json_escape(&self.name),
            self.sorted_ns.len(),
            self.median_ns(),
            self.mad_ns(),
            self.min_ns(),
            self.max_ns()
        )
    }
}

fn median(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Renders nanoseconds at a readable scale.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Measures `f`: `cfg.warmup` untimed runs, then `cfg.samples` timed
/// runs. The closure's result is passed through [`std::hint::black_box`]
/// so the work is not optimized away.
pub fn measure<R>(
    name: impl Into<String>,
    cfg: MeasureConfig,
    mut f: impl FnMut() -> R,
) -> Measurement {
    for _ in 0..cfg.warmup {
        std::hint::black_box(f());
    }
    let samples = cfg.samples.max(1);
    let mut ns = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        std::hint::black_box(f());
        ns.push(t.elapsed().as_nanos() as u64);
    }
    Measurement::from_samples(name, ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad() {
        let m = Measurement::from_samples("t", vec![5, 1, 9, 3, 7]);
        assert_eq!(m.median_ns(), 5);
        assert_eq!(m.min_ns(), 1);
        assert_eq!(m.max_ns(), 9);
        // |1-5|,|3-5|,|5-5|,|7-5|,|9-5| = 4,2,0,2,4 -> median 2
        assert_eq!(m.mad_ns(), 2);
        let even = Measurement::from_samples("t", vec![1, 3]);
        assert_eq!(even.median_ns(), 2);
    }

    #[test]
    fn measure_counts_runs() {
        let mut runs = 0u32;
        let m = measure("count", MeasureConfig { warmup: 2, samples: 5 }, || {
            runs += 1;
            runs
        });
        assert_eq!(runs, 7, "warmup + samples");
        assert_eq!(m.samples_ns().len(), 5);
    }

    #[test]
    fn formatting_scales() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }

    #[test]
    fn json_record_shape() {
        let m = Measurement::from_samples("a\"b", vec![10, 20]);
        let j = m.json_line();
        assert!(j.starts_with("{\"type\":\"bench\",\"name\":\"a\\\"b\","));
        assert!(j.contains("\"median_ns\":15"));
    }
}
