//! Trajectory reader and report renderer behind the `mssr-report`
//! binary.
//!
//! Consumes the JSON-lines trajectories the harness emits under
//! `--json` (see the module docs in [`super`]) and renders:
//!
//! * per-engine **CPI stacks** — every commit slot of every cycle
//!   attributed to one `mssr_sim::Category`, shown as percentages per
//!   (workload × engine) row;
//! * a **speedup table** — cycles vs the `BASE` cell of the same
//!   workload, with the reuse-coverage breakdown (grant rate, coverage
//!   of squashed instructions, credited cycles);
//! * per-interval **IPC sparklines** from `--sample N` records;
//! * a **regression comparison** against a baseline trajectory, used by
//!   CI to fail the build when IPC or reuse-grant rate degrades.
//!
//! Everything here is integer arithmetic over the simulator's
//! deterministic counters (fixed-point thousandths where a ratio is
//! shown), so rendered reports are byte-identical across machines and
//! `--jobs` values, like the trajectories themselves.

use std::fmt;

// ---------------------------------------------------------------------
// A minimal JSON reader for the trajectory subset: objects, arrays,
// strings, unsigned integers, booleans, null. Counters are exact u64s —
// the harness never emits floats, signs, or exponents, and rejecting
// them keeps every downstream computation integer-deterministic.
// ---------------------------------------------------------------------

/// A parsed trajectory JSON value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form trajectories carry).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value.
    ///
    /// # Errors
    ///
    /// Returns a byte-positioned message on malformed input, trailing
    /// data, or number forms outside the trajectory subset.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn num(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn str_val(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric member of an object, defaulting to 0 when absent (older
    /// trajectories predate some counters; missing means "not counted").
    pub fn field_u64(&self, key: &str) -> u64 {
        self.get(key).and_then(Json::num).unwrap_or(0)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\r' | b'\n') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() => self.number(),
            Some(b'-') => Err(format!(
                "negative number at byte {} (trajectory counters are unsigned)",
                self.i
            )),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (trajectory counters are unsigned integers)"
            ));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("number out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(format!("bad escape `\\{}`", c as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let s = &self.b[self.i..];
                    let ch = std::str::from_utf8(s)
                        .map_err(|_| "invalid utf-8".to_string())?
                        .chars()
                        .next()
                        .expect("peeked non-empty");
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            kv.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Trajectory model
// ---------------------------------------------------------------------

/// One `--sample` record of a cell: per-interval statistics deltas
/// (`cycle` is the absolute sample point; the other fields are deltas
/// since the previous sample).
#[derive(Clone, Copy, Debug, Default)]
pub struct SamplePoint {
    /// Cycle at which the sample was taken.
    pub cycle: u64,
    /// Instructions committed during the interval.
    pub insts: u64,
    /// Reuse grants during the interval.
    pub grants: u64,
    /// Branch-squash commit slots accrued during the interval.
    pub squash_slots: u64,
}

/// One cell of a trajectory: a (workload × engine) run with the
/// counters the report needs, the CPI account, and any sample series.
#[derive(Clone, Debug, Default)]
pub struct CellRecord {
    /// Cell id within the trajectory.
    pub id: u64,
    /// Workload name.
    pub workload: String,
    /// Benchmark suite.
    pub suite: String,
    /// Engine label (`BASE`, `RCVG_N_P`, `RI_SxW`, plus ablation tags).
    pub engine: String,
    /// Branch-predictor name (`"tage"` unless the cell record carries an
    /// explicit `"bpred"` field — the default predictor is omitted from
    /// trajectories to keep them byte-stable).
    pub bpred: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub insts: u64,
    /// Architectural branch mispredictions.
    pub mispredictions: u64,
    /// Squashed instructions.
    pub squashed: u64,
    /// Reuse tests issued by the engine.
    pub reuse_tests: u64,
    /// Reuse grants (instructions whose results were reused).
    pub reuse_grants: u64,
    /// CPI-stack categories in trajectory order: (name, commit slots).
    pub account: Vec<(String, u64)>,
    /// Cycles' worth of execution latency recovered by reuse.
    pub credit_reuse_cycles: u64,
    /// Fetches skipped via the reconvergence fast path.
    pub credit_recon_fetches: u64,
    /// Instructions executed functionally during fast-forward (not part
    /// of `insts`; zero for straight-through runs).
    pub ffwd_insts: u64,
    /// Cycles the fast-forward skipped (nominal 1 IPC; zero for
    /// straight-through runs).
    pub skipped_cycles: u64,
    /// Host throughput in thousandths of simulated MIPS (`--timing`
    /// runs only; zero means unmeasured). Display-only: wall-clock is
    /// machine-dependent, so [`regressions`] never compares it.
    pub sim_mips_milli: u64,
    /// `--sample` time series (empty without `--sample`).
    pub samples: Vec<SamplePoint>,
    /// `--simpoint` sampling record (plan + per-representative
    /// measurements); `None` for whole-program runs.
    pub simpoint: Option<SimpointRecord>,
}

/// One representative interval of a cell's `--simpoint` record.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimpointRepRecord {
    /// Interval index in the BBV trace.
    pub index: u64,
    /// First instruction of the interval.
    pub start_inst: u64,
    /// Instructions the plan assigned to the interval.
    pub planned_insts: u64,
    /// Cluster weight in instructions.
    pub weight_insts: u64,
    /// Mean normalized-L1 BBV distance of cluster members to this
    /// representative, in thousandths.
    pub spread_milli: u64,
    /// Detailed warmup instructions run before the measured region
    /// (excluded from `cycles`/`insts`, counted in the detailed budget).
    pub warmup_insts: u64,
    /// Detailed cycles simulated in the measured region.
    pub cycles: u64,
    /// Detailed instructions committed in the measured region.
    pub insts: u64,
}

/// A cell's `--simpoint` record: the sampling plan plus each
/// representative's detailed measurement, from which whole-program CPI
/// is reconstructed.
#[derive(Clone, Debug, Default)]
pub struct SimpointRecord {
    /// Interval length in instructions.
    pub interval: u64,
    /// Total instructions of the functional pass.
    pub total_insts: u64,
    /// Number of intervals clustered.
    pub n_intervals: u64,
    /// Chosen cluster count.
    pub k: u64,
    /// Per-representative records, in interval order.
    pub reps: Vec<SimpointRepRecord>,
}

impl SimpointRecord {
    /// Detailed instructions actually simulated across representatives,
    /// warmup included (the ≤20% budget the acceptance gate tracks).
    pub fn detailed_insts(&self) -> u64 {
        self.reps.iter().map(|r| r.insts + r.warmup_insts).sum()
    }

    /// Reconstructed whole-program cycles, in thousandths: each
    /// representative's CPI extrapolated over its cluster's instruction
    /// weight, `Σᵢ weightᵢ · cyclesᵢ · 1000 / instsᵢ` (u128 internally,
    /// so the fixed-point product never overflows).
    pub fn recon_cycles_milli(&self) -> u64 {
        let mut total: u128 = 0;
        for r in &self.reps {
            if r.insts > 0 {
                total += r.weight_insts as u128 * r.cycles as u128 * 1000 / r.insts as u128;
            }
        }
        u64::try_from(total).unwrap_or(u64::MAX)
    }

    /// Reconstructed whole-program IPC in thousandths.
    pub fn recon_ipc_milli(&self) -> u64 {
        let cycles_milli = self.recon_cycles_milli();
        if cycles_milli == 0 {
            return 0;
        }
        u64::try_from(self.total_insts as u128 * 1_000_000 / cycles_milli as u128)
            .unwrap_or(u64::MAX)
    }

    /// Reconstructed whole-program CPI in thousandths.
    pub fn recon_cpi_milli(&self) -> u64 {
        if self.total_insts == 0 {
            return 0;
        }
        self.recon_cycles_milli() / self.total_insts
    }

    /// The sampling-error bound in thousandths (relative): the
    /// instruction-weighted mean of each cluster's BBV spread around its
    /// representative, halved — total-variation distance between the
    /// cluster's true block mix and the representative's. Zero spread
    /// (perfectly homogeneous phases) bounds the phase-mix error at
    /// zero; residual error then comes only from boundary effects and
    /// warmup, which the e2e gate measures directly.
    pub fn bound_milli(&self) -> u64 {
        if self.total_insts == 0 {
            return 0;
        }
        let s: u128 =
            self.reps.iter().map(|r| r.weight_insts as u128 * r.spread_milli as u128).sum();
        u64::try_from(s / (2 * self.total_insts as u128)).unwrap_or(u64::MAX)
    }
}

impl CellRecord {
    /// IPC in fixed-point thousandths (integer-deterministic).
    pub fn ipc_milli(&self) -> u64 {
        (self.insts * 1000).checked_div(self.cycles).unwrap_or(0)
    }

    /// Reuse-grant rate (grants per test) in thousandths.
    pub fn grant_rate_milli(&self) -> u64 {
        (self.reuse_grants * 1000).checked_div(self.reuse_tests).unwrap_or(0)
    }

    /// Mispredictions per kilo-instruction, in fixed-point thousandths
    /// (u128 internally so huge counters cannot wrap the multiply).
    pub fn mpki_milli(&self) -> u64 {
        if self.insts == 0 {
            return 0;
        }
        u64::try_from(u128::from(self.mispredictions) * 1_000_000 / u128::from(self.insts))
            .unwrap_or(u64::MAX)
    }

    /// Total commit slots across all CPI categories.
    pub fn total_slots(&self) -> u64 {
        self.account.iter().map(|(_, v)| v).sum()
    }
}

/// A parsed JSON-lines trajectory.
#[derive(Clone, Debug, Default)]
pub struct Trajectory {
    /// Workload scale recorded in the meta line.
    pub scale: String,
    /// Root seed recorded in the meta line (`0x…`).
    pub root_seed: String,
    /// The cells, in trajectory (= cell id) order.
    pub cells: Vec<CellRecord>,
}

impl Trajectory {
    /// Parses a JSON-lines trajectory (the harness's `--json` output).
    ///
    /// Pipeline `"event"` records other than samples and the
    /// `"experiment"` index records are skipped — the report works from
    /// cells, accounts and samples.
    ///
    /// # Errors
    ///
    /// Returns a line-positioned message on malformed lines or records.
    pub fn parse(text: &str) -> Result<Trajectory, String> {
        let mut t = Trajectory::default();
        for (n, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", n + 1))?;
            match v.get("type").and_then(Json::str_val) {
                Some("meta") => {
                    t.scale = v.get("scale").and_then(Json::str_val).unwrap_or("").to_string();
                    t.root_seed =
                        v.get("root_seed").and_then(Json::str_val).unwrap_or("").to_string();
                }
                Some("cell") => t.cells.push(Self::cell(&v, n + 1)?),
                Some("event") => Self::event(&mut t, &v),
                Some("simpoint") => Self::simpoint(&mut t, &v),
                Some("experiment") => {}
                other => {
                    return Err(format!("line {}: unknown record type {other:?}", n + 1));
                }
            }
        }
        Ok(t)
    }

    fn cell(v: &Json, line: usize) -> Result<CellRecord, String> {
        let stats = v.get("stats").ok_or_else(|| format!("line {line}: cell without stats"))?;
        let engine = stats.get("engine").cloned().unwrap_or(Json::Obj(Vec::new()));
        let mut c = CellRecord {
            id: v.field_u64("id"),
            workload: v.get("workload").and_then(Json::str_val).unwrap_or("?").to_string(),
            suite: v.get("suite").and_then(Json::str_val).unwrap_or("?").to_string(),
            engine: v.get("engine").and_then(Json::str_val).unwrap_or("?").to_string(),
            bpred: v.get("bpred").and_then(Json::str_val).unwrap_or("tage").to_string(),
            cycles: stats.field_u64("cycles"),
            insts: stats.field_u64("committed_instructions"),
            mispredictions: stats.field_u64("mispredictions"),
            squashed: stats.field_u64("squashed_instructions"),
            reuse_tests: engine.field_u64("reuse_tests"),
            reuse_grants: engine.field_u64("reuse_grants"),
            ffwd_insts: stats.field_u64("ffwd_insts"),
            skipped_cycles: stats.field_u64("skipped_cycles"),
            sim_mips_milli: engine.field_u64("sim_mips_milli"),
            ..CellRecord::default()
        };
        if let Some(Json::Obj(kv)) = stats.get("account") {
            for (k, val) in kv {
                let n = val.num().unwrap_or(0);
                match k.as_str() {
                    "credit_reuse_cycles" => c.credit_reuse_cycles = n,
                    "credit_recon_fetches" => c.credit_recon_fetches = n,
                    _ => c.account.push((k.clone(), n)),
                }
            }
        }
        Ok(c)
    }

    fn simpoint(t: &mut Trajectory, v: &Json) {
        let cell = v.field_u64("cell");
        let mut rec = SimpointRecord {
            interval: v.field_u64("interval"),
            total_insts: v.field_u64("total_insts"),
            n_intervals: v.field_u64("intervals"),
            k: v.field_u64("k"),
            reps: Vec::new(),
        };
        if let Some(Json::Arr(reps)) = v.get("reps") {
            for r in reps {
                rec.reps.push(SimpointRepRecord {
                    index: r.field_u64("index"),
                    start_inst: r.field_u64("start_inst"),
                    planned_insts: r.field_u64("planned_insts"),
                    weight_insts: r.field_u64("weight_insts"),
                    spread_milli: r.field_u64("spread_milli"),
                    warmup_insts: r.field_u64("warmup_insts"),
                    cycles: r.field_u64("cycles"),
                    insts: r.field_u64("insts"),
                });
            }
        }
        if let Some(c) = t.cells.iter_mut().rev().find(|c| c.id == cell) {
            c.simpoint = Some(rec);
        }
    }

    fn event(t: &mut Trajectory, v: &Json) {
        let Some(ev) = v.get("ev") else { return };
        if ev.get("ev").and_then(Json::str_val) != Some("sample") {
            return;
        }
        let cell = v.field_u64("cell");
        // Events follow their cell record, so the match is normally the
        // last cell; search anyway so reordered input still parses.
        if let Some(c) = t.cells.iter_mut().rev().find(|c| c.id == cell) {
            c.samples.push(SamplePoint {
                cycle: ev.field_u64("cycle"),
                insts: ev.field_u64("insts"),
                grants: ev.field_u64("grants"),
                squash_slots: ev.field_u64("squash_slots"),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Renderers
// ---------------------------------------------------------------------

/// Fixed-point thousandths formatted as `D.DDD`.
fn milli(v: u64) -> String {
    format!("{}.{:03}", v / 1000, v % 1000)
}

/// Fixed-point tenths of a percent formatted as `D.D%`.
fn pct10(part: u64, total: u64) -> String {
    if total == 0 {
        return "-".to_string();
    }
    let p = part * 1000 / total;
    format!("{}.{}%", p / 10, p % 10)
}

/// Renders rows as an aligned ASCII table: the first column
/// left-aligned, the rest right-aligned, a `-` rule under the header.
fn table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut w: Vec<usize> = header.iter().map(String::len).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            w[i] = w[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = |cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                out.push_str(&format!("{cell:<width$}", width = w[0]));
            } else {
                out.push_str(&format!("{cell:>width$}", width = w[i]));
            }
        }
        out.push('\n');
    };
    line(header);
    let rule: Vec<String> = (0..cols).map(|i| "-".repeat(w[i])).collect();
    line(&rule);
    for r in rows {
        line(r);
    }
    out
}

/// Renders the per-cell CPI stacks: one row per (workload × engine),
/// IPC plus each category's share of all commit slots, and the reuse
/// credits.
pub fn cpi_stack_table(t: &Trajectory) -> String {
    let Some(first) = t.cells.iter().find(|c| !c.account.is_empty()) else {
        return "(no CPI accounts in trajectory)\n".to_string();
    };
    let mut header: Vec<String> =
        ["workload", "engine", "IPC"].iter().map(|s| s.to_string()).collect();
    for (name, _) in &first.account {
        header.push(name.clone());
    }
    header.push("credit_cycles".to_string());
    header.push("credit_fetches".to_string());
    let rows: Vec<Vec<String>> = t
        .cells
        .iter()
        .map(|c| {
            let total = c.total_slots();
            let mut r = vec![c.workload.clone(), c.engine.clone(), milli(c.ipc_milli())];
            for (name, _) in &first.account {
                let v = c.account.iter().find(|(k, _)| k == name).map_or(0, |&(_, v)| v);
                r.push(pct10(v, total));
            }
            r.push(c.credit_reuse_cycles.to_string());
            r.push(c.credit_recon_fetches.to_string());
            r
        })
        .collect();
    table(&header, &rows)
}

/// Renders the speedup table: cycles and speedup vs the `BASE` cell of
/// the same workload, with the reuse-coverage breakdown (grant rate per
/// test, coverage of squashed instructions, credited cycles). When any
/// cell was fast-forwarded, two extra columns report the functionally
/// executed instruction count and the skipped cycles — `cycles`, `IPC`
/// and `speedup` always measure the detailed region only.
pub fn speedup_table(t: &Trajectory) -> String {
    let ffwd = t.cells.iter().any(|c| c.ffwd_insts > 0);
    let timing = t.cells.iter().any(|c| c.sim_mips_milli > 0);
    let mut header: Vec<String> =
        ["workload", "engine", "cycles", "speedup", "MPKI", "grants", "grant_rate", "coverage"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    if ffwd {
        header.push("ffwd_insts".to_string());
        header.push("skipped_cycles".to_string());
    }
    if timing {
        header.push("sim_MIPS".to_string());
    }
    let rows: Vec<Vec<String>> = t
        .cells
        .iter()
        .map(|c| {
            // The BASE reference must share the predictor: a predictor-lab
            // trajectory carries one BASE cell per bpred kind.
            let base = t
                .cells
                .iter()
                .find(|b| b.workload == c.workload && b.engine == "BASE" && b.bpred == c.bpred)
                .map(|b| b.cycles);
            let speedup = match base {
                Some(b) if c.cycles > 0 => format!("{}x", milli(b * 1000 / c.cycles)),
                _ => "-".to_string(),
            };
            let mut r = vec![
                c.workload.clone(),
                c.engine.clone(),
                c.cycles.to_string(),
                speedup,
                milli(c.mpki_milli()),
                c.reuse_grants.to_string(),
                pct10(c.reuse_grants, c.reuse_tests),
                pct10(c.reuse_grants, c.squashed),
            ];
            if ffwd {
                r.push(c.ffwd_insts.to_string());
                r.push(c.skipped_cycles.to_string());
            }
            if timing {
                // A dash marks cells without a measurement (e.g. a mixed
                // trajectory concatenated from timed and untimed runs).
                r.push(match c.sim_mips_milli {
                    0 => "-".to_string(),
                    v => milli(v),
                });
            }
            r
        })
        .collect();
    table(&header, &rows)
}

/// Renders the predictor lab: one row per cell with its predictor,
/// conditional MPKI, and reuse speedup vs the `BASE` cell of the same
/// (workload, predictor) — the reuse-benefit-vs-MPKI relation the
/// `bpred` experiment sweeps. Empty unless the trajectory carries at
/// least one non-default-predictor cell.
pub fn bpred_table(t: &Trajectory) -> String {
    if t.cells.iter().all(|c| c.bpred == "tage") {
        return "(no predictor-lab cells in trajectory — rerun the bpred experiment or --bpred)\n"
            .to_string();
    }
    let rows: Vec<Vec<String>> = t
        .cells
        .iter()
        .map(|c| {
            let base = t
                .cells
                .iter()
                .find(|b| b.workload == c.workload && b.engine == "BASE" && b.bpred == c.bpred)
                .map(|b| b.cycles);
            let speedup = match base {
                Some(b) if c.cycles > 0 => format!("{}x", milli(b * 1000 / c.cycles)),
                _ => "-".to_string(),
            };
            vec![
                c.workload.clone(),
                c.bpred.clone(),
                c.engine.clone(),
                c.cycles.to_string(),
                milli(c.mpki_milli()),
                speedup,
                c.reuse_grants.to_string(),
            ]
        })
        .collect();
    let header: Vec<String> =
        ["workload", "predictor", "engine", "cycles", "MPKI", "speedup", "grants"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    table(&header, &rows)
}

const SPARK: [char; 8] = [
    '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}',
];

/// Renders one sparkline per sampled cell: instructions committed per
/// interval, scaled to the cell's own maximum.
pub fn sparklines(t: &Trajectory) -> String {
    let mut out = String::new();
    let label_w = t.cells.iter().map(|c| c.workload.len() + 1 + c.engine.len()).max().unwrap_or(0);
    for c in &t.cells {
        if c.samples.is_empty() {
            continue;
        }
        let max = c.samples.iter().map(|s| s.insts).max().unwrap_or(0);
        // A cell whose every interval committed zero instructions draws
        // a flat baseline. Scaling goes through u128: `insts * 7` wraps
        // u64 once a counter passes u64::MAX / 7 (merged or hand-built
        // trajectories can carry such values), which would panic in
        // debug builds and pick the wrong glyph in release.
        let line: String = c
            .samples
            .iter()
            .map(|s| match max {
                0 => SPARK[0],
                m => SPARK[(u128::from(s.insts) * 7 / u128::from(m)) as usize],
            })
            .collect();
        let label = format!("{}/{}", c.workload, c.engine);
        out.push_str(&format!("{label:<label_w$}  {line}\n"));
    }
    if out.is_empty() {
        out.push_str("(no samples in trajectory — rerun with --sample N)\n");
    }
    out
}

/// Renders the SimPoint reconstruction table: one row per sampled cell
/// with the plan shape (intervals, k), the detailed-instruction budget
/// actually spent, the reconstructed whole-program IPC/CPI, and the
/// clustering-derived sampling-error bound.
pub fn simpoint_table(t: &Trajectory) -> String {
    let rows: Vec<Vec<String>> = t
        .cells
        .iter()
        .filter_map(|c| {
            let sp = c.simpoint.as_ref()?;
            Some(vec![
                c.workload.clone(),
                c.engine.clone(),
                sp.n_intervals.to_string(),
                sp.k.to_string(),
                sp.detailed_insts().to_string(),
                pct10(sp.detailed_insts(), sp.total_insts),
                milli(sp.recon_ipc_milli()),
                milli(sp.recon_cpi_milli()),
                format!("±{}", pct10(sp.bound_milli(), 1000)),
            ])
        })
        .collect();
    if rows.is_empty() {
        return "(no simpoint records in trajectory — rerun with --simpoint I,K)\n".to_string();
    }
    let header: Vec<String> = [
        "workload",
        "engine",
        "intervals",
        "k",
        "detailed",
        "det_share",
        "recon_IPC",
        "recon_CPI",
        "bound",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    table(&header, &rows)
}

// ---------------------------------------------------------------------
// Self-profile records (`--profile` stderr stream)
// ---------------------------------------------------------------------

/// The pipeline-stage buckets of a profile record. Stage time is
/// *sampled* (one cycle in `stride` is stamped), so estimating a
/// stage's whole-run time means scaling by the stride; the remaining
/// buckets (ckpt/ffwd/bbv) are whole-call timings used as-is.
const STAGE_BUCKETS: [&str; 6] = ["fetch", "rename", "issue", "execute", "commit", "squash"];

/// One `{"type":"profile",...}` record from a harness `--profile`
/// stderr stream: a cell's host wall-clock attribution.
#[derive(Clone, Debug, Default)]
pub struct ProfileRecord {
    /// Cell id within the run.
    pub cell: u64,
    /// Workload name.
    pub workload: String,
    /// Engine label.
    pub engine: String,
    /// Simulated cycles of the cell.
    pub cycles: u64,
    /// Committed instructions of the cell.
    pub insts: u64,
    /// Whole-cell wall time in microseconds.
    pub total_us: u64,
    /// Stage-sampling stride the profiler ran at.
    pub stride: u64,
    /// Cycles actually stamped.
    pub sampled_cycles: u64,
    /// Per-bucket accumulated nanoseconds, in record order.
    pub ns: Vec<(String, u64)>,
}

impl ProfileRecord {
    /// Nanoseconds recorded for `bucket` (0 when absent).
    pub fn bucket_ns(&self, bucket: &str) -> u64 {
        self.ns.iter().find(|(k, _)| k == bucket).map_or(0, |&(_, v)| v)
    }

    /// Estimated whole-run nanoseconds of `bucket`: sampled stage time
    /// scaled by the stride, whole-call buckets as recorded.
    pub fn est_ns(&self, bucket: &str) -> u64 {
        let v = self.bucket_ns(bucket);
        if STAGE_BUCKETS.contains(&bucket) {
            v.saturating_mul(self.stride.max(1))
        } else {
            v
        }
    }

    /// Total estimated attributed nanoseconds (the share denominator).
    pub fn est_total_ns(&self) -> u64 {
        self.ns.iter().fold(0u64, |acc, (k, _)| acc.saturating_add(self.est_ns(k)))
    }

    /// Host throughput in thousandths of simulated MIPS.
    pub fn sim_mips_milli(&self) -> u64 {
        self.insts.saturating_mul(1000) / self.total_us.max(1)
    }

    /// Host simulation rate in thousandths of megacycles per second.
    pub fn mcps_milli(&self) -> u64 {
        self.cycles.saturating_mul(1000) / self.total_us.max(1)
    }
}

/// Parses a `--profile` stderr stream into its profile records. The
/// stream interleaves with warnings and other diagnostics, so anything
/// that is not a well-formed `{"type":"profile",...}` line is skipped
/// rather than an error.
pub fn parse_profile(text: &str) -> Vec<ProfileRecord> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Ok(v) = Json::parse(line.trim()) else { continue };
        if v.get("type").and_then(Json::str_val) != Some("profile") {
            continue;
        }
        let mut ns = Vec::new();
        if let Some(Json::Obj(kv)) = v.get("ns") {
            for (k, val) in kv {
                ns.push((k.clone(), val.num().unwrap_or(0)));
            }
        }
        out.push(ProfileRecord {
            cell: v.field_u64("cell"),
            workload: v.get("workload").and_then(Json::str_val).unwrap_or("?").to_string(),
            engine: v.get("engine").and_then(Json::str_val).unwrap_or("?").to_string(),
            cycles: v.field_u64("cycles"),
            insts: v.field_u64("insts"),
            total_us: v.field_u64("total_us"),
            stride: v.field_u64("stride"),
            sampled_cycles: v.field_u64("sampled_cycles"),
            ns,
        });
    }
    out
}

/// Renders the self-profile table: one row per cell with each bucket's
/// share of attributed wall-clock (stage samples scaled by the stride,
/// so a row's shares sum to ~100%), plus host throughput as simulated
/// MIPS and megacycles per second. Buckets that are zero in every
/// record (e.g. `bbv` outside SimPoint runs) are omitted.
pub fn profile_table(recs: &[ProfileRecord]) -> String {
    if recs.is_empty() {
        return "(no profile records — run the harness with --profile 2>FILE)\n".to_string();
    }
    let names: Vec<&String> = recs[0]
        .ns
        .iter()
        .map(|(k, _)| k)
        .filter(|k| recs.iter().any(|r| r.bucket_ns(k) > 0))
        .collect();
    let mut header: Vec<String> = ["workload", "engine"].iter().map(|s| s.to_string()).collect();
    header.extend(names.iter().map(|n| n.to_string()));
    header.push("sim_MIPS".to_string());
    header.push("Mcyc/s".to_string());
    let rows: Vec<Vec<String>> = recs
        .iter()
        .map(|r| {
            let total = r.est_total_ns();
            let mut row = vec![r.workload.clone(), r.engine.clone()];
            // Shares are scaled to thousandths before the percentage so
            // huge nanosecond counts cannot overflow pct10's multiply.
            for n in &names {
                row.push(pct10(
                    (u128::from(r.est_ns(n)) * 1000 / u128::from(total.max(1))) as u64,
                    1000,
                ));
            }
            row.push(milli(r.sim_mips_milli()));
            row.push(milli(r.mcps_milli()));
            row
        })
        .collect();
    table(&header, &rows)
}

/// One sampled cell's reconstruction accuracy vs its whole-program
/// golden run.
#[derive(Clone, Debug)]
pub struct SimpointError {
    /// Workload of the sampled cell.
    pub workload: String,
    /// Engine label of the sampled cell.
    pub engine: String,
    /// Reconstructed IPC, in thousandths.
    pub recon_ipc_milli: u64,
    /// The golden run's IPC, in thousandths.
    pub full_ipc_milli: u64,
    /// Relative reconstruction error `|recon − full| / full`, in
    /// thousandths (30 = 3%).
    pub err_milli: u64,
}

impl fmt::Display for SimpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: recon IPC {} vs full {} (err {})",
            self.workload,
            self.engine,
            milli(self.recon_ipc_milli),
            milli(self.full_ipc_milli),
            pct10(self.err_milli, 1000)
        )
    }
}

/// Compares every sampled cell of `new` against the whole-program cell
/// with the same (workload, engine) in `golden`, pairing duplicates by
/// ordinal like [`regressions`]. Cells without a counterpart (or whose
/// golden run has zero IPC) are skipped — a missing golden cell is a
/// harness mismatch the caller surfaces by count, not a panic.
pub fn simpoint_errors(new: &Trajectory, golden: &Trajectory) -> Vec<SimpointError> {
    let mut out = Vec::new();
    for (i, c) in new.cells.iter().enumerate() {
        let Some(sp) = c.simpoint.as_ref() else { continue };
        let same = |d: &&CellRecord| d.workload == c.workload && d.engine == c.engine;
        let ord = new.cells[..i].iter().filter(|d| same(d)).count();
        let Some(g) = golden.cells.iter().filter(same).nth(ord) else { continue };
        let full = g.ipc_milli();
        if full == 0 {
            continue;
        }
        let recon = sp.recon_ipc_milli();
        let err_milli = (recon.abs_diff(full) as u128 * 1000 / full as u128) as u64;
        out.push(SimpointError {
            workload: c.workload.clone(),
            engine: c.engine.clone(),
            recon_ipc_milli: recon,
            full_ipc_milli: full,
            err_milli,
        });
    }
    out
}

/// One detected regression vs the baseline trajectory.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Workload of the degraded cell.
    pub workload: String,
    /// Engine label of the degraded cell.
    pub engine: String,
    /// Which metric degraded (`"IPC"` or `"grant rate"`).
    pub metric: &'static str,
    /// Baseline value, in thousandths.
    pub old_milli: u64,
    /// Current value, in thousandths.
    pub new_milli: u64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "REGRESSION {}/{}: {} {} -> {}",
            self.workload,
            self.engine,
            self.metric,
            milli(self.old_milli),
            milli(self.new_milli)
        )
    }
}

/// Compares `new` against the `old` baseline trajectory: a cell
/// regresses when its IPC or reuse-grant rate falls more than
/// `threshold_pct` percent below the baseline cell with the same
/// (workload, engine). Cells present on only one side are ignored —
/// adding or retiring cells is not a regression.
pub fn regressions(new: &Trajectory, old: &Trajectory, threshold_pct: u64) -> Vec<Regression> {
    let mut out = Vec::new();
    for (i, c) in new.cells.iter().enumerate() {
        // (workload, engine) is not unique: ablation grids rerun the same
        // engine label under different simulator configs. Pair the k-th
        // duplicate on each side so identical trajectories always pass.
        let same = |d: &&CellRecord| {
            d.workload == c.workload && d.engine == c.engine && d.bpred == c.bpred
        };
        let ord = new.cells[..i].iter().filter(|d| same(d)).count();
        let Some(b) = old.cells.iter().filter(same).nth(ord) else {
            continue;
        };
        let degraded = |new_v: u64, old_v: u64| new_v * 100 < old_v * (100 - threshold_pct);
        if degraded(c.ipc_milli(), b.ipc_milli()) {
            out.push(Regression {
                workload: c.workload.clone(),
                engine: c.engine.clone(),
                metric: "IPC",
                old_milli: b.ipc_milli(),
                new_milli: c.ipc_milli(),
            });
        }
        if degraded(c.grant_rate_milli(), b.grant_rate_milli()) {
            out.push(Regression {
                workload: c.workload.clone(),
                engine: c.engine.clone(),
                metric: "grant rate",
                old_milli: b.grant_rate_milli(),
                new_milli: c.grant_rate_milli(),
            });
        }
        // MPKI regresses upward. The asymmetric form also catches a
        // zero-to-nonzero drift (e.g. the oracle predictor starting to
        // mispredict), which a ratio threshold would let through.
        if c.mpki_milli() * 100 > b.mpki_milli() * (100 + threshold_pct) {
            out.push(Regression {
                workload: c.workload.clone(),
                engine: c.engine.clone(),
                metric: "MPKI",
                old_milli: b.mpki_milli(),
                new_milli: c.mpki_milli(),
            });
        }
    }
    out
}

/// Renders the full report (CPI stacks, speedups, sparklines) for one
/// trajectory.
pub fn render_report(t: &Trajectory) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trajectory: {} cells, scale {}, root seed {}\n\n",
        t.cells.len(),
        if t.scale.is_empty() { "?" } else { &t.scale },
        if t.root_seed.is_empty() { "?" } else { &t.root_seed },
    ));
    out.push_str("== CPI stacks (share of commit slots) ==\n");
    out.push_str(&cpi_stack_table(t));
    out.push_str("\n== Speedup vs BASE ==\n");
    out.push_str(&speedup_table(t));
    if t.cells.iter().any(|c| c.bpred != "tage") {
        out.push_str("\n== Predictor lab (reuse benefit vs MPKI) ==\n");
        out.push_str(&bpred_table(t));
    }
    out.push_str("\n== IPC per sample interval ==\n");
    out.push_str(&sparklines(t));
    if t.cells.iter().any(|c| c.simpoint.is_some()) {
        out.push_str("\n== SimPoint reconstruction ==\n");
        out.push_str(&simpoint_table(t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parses_the_trajectory_subset() {
        let v = Json::parse(r#"{"a":1,"b":[true,null,"x\"yA"],"c":{"d":18446744073709551615}}"#)
            .unwrap();
        assert_eq!(v.field_u64("a"), 1);
        assert_eq!(
            v.get("b"),
            Some(&Json::Arr(vec![Json::Bool(true), Json::Null, Json::Str("x\"yA".to_string()),]))
        );
        assert_eq!(v.get("c").unwrap().field_u64("d"), u64::MAX);
        assert!(Json::parse("{\"a\":1} junk").unwrap_err().contains("trailing"));
        assert!(Json::parse("-3").unwrap_err().contains("unsigned"));
        assert!(Json::parse("1.5").unwrap_err().contains("integer"));
        assert!(Json::parse("{\"a\"").is_err());
    }

    fn fixture() -> String {
        let mut s = String::new();
        s.push_str(
            "{\"type\":\"meta\",\"root_seed\":\"0x4d535352\",\"scale\":\"test\",\"cells\":2}\n",
        );
        s.push_str(concat!(
            "{\"type\":\"cell\",\"id\":0,\"workload\":\"w\",\"suite\":\"micro\",",
            "\"engine\":\"BASE\",\"seed\":\"0x1\",\"stats\":{\"cycles\":2000,",
            "\"committed_instructions\":1000,\"mispredictions\":10,",
            "\"squashed_instructions\":100,\"engine\":{\"reuse_tests\":0,\"reuse_grants\":0},",
            "\"account\":{\"base\":1000,\"frontend_empty\":2000,\"squash_branch\":3000,",
            "\"mem_stall\":1000,\"store_forward_pending\":0,\"backend_pressure\":1000,",
            "\"reuse_verify\":0,\"credit_reuse_cycles\":0,\"credit_recon_fetches\":0}}}\n",
        ));
        s.push_str(concat!(
            "{\"type\":\"event\",\"cell\":0,\"ev\":{\"ev\":\"sample\",\"cycle\":1000,",
            "\"insts\":400,\"mispredicts\":4,\"squashed\":40,\"grants\":0,",
            "\"l1_misses\":2,\"squash_slots\":1500}}\n",
        ));
        s.push_str(concat!(
            "{\"type\":\"cell\",\"id\":1,\"workload\":\"w\",\"suite\":\"micro\",",
            "\"engine\":\"RCVG_2_64\",\"seed\":\"0x2\",\"stats\":{\"cycles\":1000,",
            "\"committed_instructions\":1000,\"mispredictions\":10,",
            "\"squashed_instructions\":100,\"engine\":{\"reuse_tests\":80,\"reuse_grants\":60},",
            "\"account\":{\"base\":1000,\"frontend_empty\":1000,\"squash_branch\":1000,",
            "\"mem_stall\":500,\"store_forward_pending\":0,\"backend_pressure\":500,",
            "\"reuse_verify\":0,\"credit_reuse_cycles\":70,\"credit_recon_fetches\":5}}}\n",
        ));
        s.push_str(concat!(
            "{\"type\":\"event\",\"cell\":1,\"ev\":{\"ev\":\"sample\",\"cycle\":1000,",
            "\"insts\":1000,\"mispredicts\":10,\"squashed\":100,\"grants\":60,",
            "\"l1_misses\":1,\"squash_slots\":1000}}\n",
        ));
        s.push_str("{\"type\":\"experiment\",\"name\":\"t\",\"cells\":[0,1]}\n");
        s
    }

    #[test]
    fn trajectory_parses_cells_accounts_and_samples() {
        let t = Trajectory::parse(&fixture()).unwrap();
        assert_eq!(t.scale, "test");
        assert_eq!(t.cells.len(), 2);
        let b = &t.cells[0];
        assert_eq!((b.engine.as_str(), b.cycles, b.insts), ("BASE", 2000, 1000));
        assert_eq!(b.account.len(), 7, "credits split out of the account categories");
        assert_eq!(b.total_slots(), 8000);
        assert_eq!(b.samples.len(), 1);
        assert_eq!(b.samples[0].insts, 400);
        let m = &t.cells[1];
        assert_eq!(m.credit_reuse_cycles, 70);
        assert_eq!(m.ipc_milli(), 1000);
        assert_eq!(m.grant_rate_milli(), 750);
    }

    #[test]
    fn sparklines_survive_all_zero_and_huge_sample_counters() {
        // Two degenerate sampled cells: one whose every interval committed
        // zero instructions (must render a flat baseline, not divide by
        // zero or blank out), and one carrying a near-u64::MAX counter
        // (pre-fix, `insts * 7` wrapped u64 — a debug-build panic and the
        // wrong glyph in release).
        let mut s = String::new();
        s.push_str(
            "{\"type\":\"meta\",\"root_seed\":\"0x4d535352\",\"scale\":\"test\",\"cells\":2}\n",
        );
        s.push_str(concat!(
            "{\"type\":\"cell\",\"id\":0,\"workload\":\"idle\",\"suite\":\"micro\",",
            "\"engine\":\"BASE\",\"seed\":\"0x1\",\"stats\":{\"cycles\":2000,",
            "\"committed_instructions\":0,\"engine\":{},\"account\":{}}}\n",
        ));
        for _ in 0..3 {
            s.push_str(concat!(
                "{\"type\":\"event\",\"cell\":0,\"ev\":{\"ev\":\"sample\",\"cycle\":1000,",
                "\"insts\":0,\"mispredicts\":0,\"squashed\":0,\"grants\":0,",
                "\"l1_misses\":0,\"squash_slots\":0}}\n",
            ));
        }
        s.push_str(concat!(
            "{\"type\":\"cell\",\"id\":1,\"workload\":\"huge\",\"suite\":\"micro\",",
            "\"engine\":\"BASE\",\"seed\":\"0x2\",\"stats\":{\"cycles\":2000,",
            "\"committed_instructions\":1000,\"engine\":{},\"account\":{}}}\n",
        ));
        s.push_str(concat!(
            "{\"type\":\"event\",\"cell\":1,\"ev\":{\"ev\":\"sample\",\"cycle\":1000,",
            "\"insts\":18446744073709551615,\"mispredicts\":0,\"squashed\":0,\"grants\":0,",
            "\"l1_misses\":0,\"squash_slots\":0}}\n",
        ));
        s.push_str(concat!(
            "{\"type\":\"event\",\"cell\":1,\"ev\":{\"ev\":\"sample\",\"cycle\":2000,",
            "\"insts\":0,\"mispredicts\":0,\"squashed\":0,\"grants\":0,",
            "\"l1_misses\":0,\"squash_slots\":0}}\n",
        ));
        let t = Trajectory::parse(&s).unwrap();
        let r = sparklines(&t);
        let flat: String = std::iter::repeat_n(SPARK[0], 3).collect();
        assert!(r.contains(&flat), "all-zero cell renders a flat baseline:\n{r}");
        let peak: String = [SPARK[7], SPARK[0]].iter().collect();
        assert!(r.contains(&peak), "the max interval renders the full-height glyph:\n{r}");
    }

    #[test]
    fn report_renders_stacks_speedups_and_sparklines() {
        let t = Trajectory::parse(&fixture()).unwrap();
        let r = render_report(&t);
        assert!(r.contains("squash_branch"), "category columns present:\n{r}");
        assert!(r.contains("37.5%"), "BASE squash share 3000/8000:\n{r}");
        assert!(r.contains("2.000x"), "RCVG speedup 2000/1000 cycles:\n{r}");
        assert!(r.contains("w/RCVG_2_64"), "sparkline labels:\n{r}");
        assert!(r.contains('\u{2588}'), "sparkline glyphs:\n{r}");
        // IPC column: 1000 insts / 2000 cycles.
        assert!(r.contains("0.500"), "BASE IPC:\n{r}");
    }

    #[test]
    fn mpki_column_and_predictor_lab_table() {
        let t = Trajectory::parse(&fixture()).unwrap();
        assert_eq!(t.cells[0].bpred, "tage", "absent bpred field means the default predictor");
        assert_eq!(t.cells[0].mpki_milli(), 10_000, "10 mispredictions / 1000 insts");
        assert!(speedup_table(&t).contains("10.000"), "MPKI column rendered");
        assert!(!render_report(&t).contains("Predictor lab"), "no lab section for default runs");
        assert!(bpred_table(&t).contains("no predictor-lab cells"));
        // Tag the reuse cell as oracle: the lab section appears, and the
        // speedup lookup refuses to pair it with the tage BASE cell.
        let tagged = fixture()
            .replace("\"engine\":\"RCVG_2_64\",", "\"engine\":\"RCVG_2_64\",\"bpred\":\"oracle\",");
        let t = Trajectory::parse(&tagged).unwrap();
        assert_eq!(t.cells[1].bpred, "oracle");
        let r = render_report(&t);
        assert!(r.contains("Predictor lab"), "lab section present:\n{r}");
        assert!(bpred_table(&t).contains("oracle"), "predictor column rendered");
        assert!(!speedup_table(&t).contains("2.000x"), "cross-predictor BASE pairing refused");
    }

    #[test]
    fn mpki_regressions_flag_upward_drift_including_from_zero() {
        let old = Trajectory::parse(&fixture()).unwrap();
        let mut new = old.clone();
        new.cells[1].mispredictions = 12; // +20% past the 5% threshold
        assert!(regressions(&new, &old, 5).iter().any(|x| x.metric == "MPKI"));
        let mut zero_old = old.clone();
        zero_old.cells[1].mispredictions = 0;
        assert!(
            regressions(&new, &zero_old, 5).iter().any(|x| x.metric == "MPKI"),
            "zero-to-nonzero MPKI drift is a regression"
        );
        // A predictor mismatch breaks the pairing entirely.
        let mut other = new.clone();
        other.cells[1].bpred = "oracle".to_string();
        assert!(regressions(&other, &old, 5).iter().all(|x| x.metric != "MPKI"));
    }

    #[test]
    fn ffwd_columns_appear_only_for_fast_forwarded_trajectories() {
        let plain = Trajectory::parse(&fixture()).unwrap();
        assert!(!speedup_table(&plain).contains("skipped_cycles"));
        let mut warmed = plain.clone();
        warmed.cells[1].ffwd_insts = 5000;
        warmed.cells[1].skipped_cycles = 5000;
        let r = speedup_table(&warmed);
        assert!(r.contains("ffwd_insts"), "ffwd column present:\n{r}");
        assert!(r.contains("skipped_cycles"), "skipped column present:\n{r}");
        assert!(r.contains("5000"), "values rendered:\n{r}");
        // The stats fields parse from a trajectory too.
        let line = fixture()
            .replace("\"cycles\":1000,", "\"cycles\":1000,\"ffwd_insts\":7,\"skipped_cycles\":7,");
        let t = Trajectory::parse(&line).unwrap();
        assert_eq!(t.cells[1].ffwd_insts, 7);
        assert_eq!(t.cells[1].skipped_cycles, 7);
    }

    #[test]
    fn sim_mips_column_appears_only_for_timed_trajectories() {
        let plain = Trajectory::parse(&fixture()).unwrap();
        assert!(!speedup_table(&plain).contains("sim_MIPS"));
        let mut timed = plain.clone();
        timed.cells[1].sim_mips_milli = 2500;
        let r = speedup_table(&timed);
        assert!(r.contains("sim_MIPS"), "throughput column present:\n{r}");
        assert!(r.contains("2.500"), "MIPS rendered in thousandths:\n{r}");
        assert!(r.contains('-'), "unmeasured cells show a dash:\n{r}");
        // The field parses out of a trajectory's engine record.
        let line =
            fixture().replace("\"reuse_tests\":80,", "\"sim_mips_milli\":1750,\"reuse_tests\":80,");
        let t = Trajectory::parse(&line).unwrap();
        assert_eq!(t.cells[1].sim_mips_milli, 1750);
        // And is excluded from the regression comparison: wildly
        // different throughput between baseline and current is never a
        // regression (wall-clock is machine-dependent).
        let mut old = plain.clone();
        old.cells[1].sim_mips_milli = 9_000_000;
        assert!(regressions(&timed, &old, 5).is_empty());
    }

    fn fixture_simpoint() -> String {
        // The RCVG cell sampled with two representatives:
        //   rep 0: weight 600, 300 cycles / 200 insts  -> 900000 milli-cycles
        //   rep 2: weight 400, 100 cycles / 100 insts  -> 400000 milli-cycles
        // Reconstruction: 1300000 milli-cycles over 1000 insts
        //   -> CPI 1.300, IPC 0.769.
        let mut s = fixture();
        s.push_str(concat!(
            "{\"type\":\"simpoint\",\"cell\":1,\"interval\":100,\"total_insts\":1000,",
            "\"intervals\":10,\"k\":2,\"reps\":[",
            "{\"index\":0,\"start_inst\":0,\"planned_insts\":100,\"weight_insts\":600,",
            "\"spread_milli\":100,\"warmup_insts\":50,\"cycles\":300,\"insts\":200,",
            "\"account\":{\"base\":1}},",
            "{\"index\":2,\"start_inst\":200,\"planned_insts\":100,\"weight_insts\":400,",
            "\"spread_milli\":0,\"cycles\":100,\"insts\":100,\"account\":{\"base\":1}}",
            "]}\n",
        ));
        s
    }

    #[test]
    fn simpoint_records_parse_and_reconstruct() {
        let t = Trajectory::parse(&fixture_simpoint()).unwrap();
        assert!(t.cells[0].simpoint.is_none(), "only the sampled cell gets a record");
        let sp = t.cells[1].simpoint.as_ref().expect("simpoint record attached");
        assert_eq!((sp.interval, sp.total_insts, sp.n_intervals, sp.k), (100, 1000, 10, 2));
        assert_eq!(sp.reps.len(), 2);
        assert_eq!(sp.reps[1].start_inst, 200);
        assert_eq!(sp.reps[0].warmup_insts, 50);
        assert_eq!(sp.detailed_insts(), 350, "warmup counts against the budget");
        assert_eq!(sp.recon_cycles_milli(), 1_300_000);
        assert_eq!(sp.recon_cpi_milli(), 1300);
        assert_eq!(sp.recon_ipc_milli(), 769);
        // Weighted spread: (600·100 + 400·0) / (2·1000) = 30 (±3.0%).
        assert_eq!(sp.bound_milli(), 30);
    }

    #[test]
    fn simpoint_table_renders_sampled_cells_only() {
        let plain = Trajectory::parse(&fixture()).unwrap();
        assert!(simpoint_table(&plain).contains("no simpoint records"));
        assert!(!render_report(&plain).contains("SimPoint reconstruction"));
        let t = Trajectory::parse(&fixture_simpoint()).unwrap();
        let r = render_report(&t);
        assert!(r.contains("SimPoint reconstruction"), "{r}");
        assert!(r.contains("0.769"), "reconstructed IPC:\n{r}");
        assert!(r.contains("1.300"), "reconstructed CPI:\n{r}");
        assert!(r.contains("35.0%"), "detailed share 350/1000:\n{r}");
        assert!(r.contains("±3.0%"), "error bound:\n{r}");
    }

    #[test]
    fn simpoint_errors_pair_against_the_golden_run() {
        let sampled = Trajectory::parse(&fixture_simpoint()).unwrap();
        let golden = Trajectory::parse(&fixture()).unwrap();
        let errs = simpoint_errors(&sampled, &golden);
        assert_eq!(errs.len(), 1, "one sampled cell");
        let e = &errs[0];
        assert_eq!((e.workload.as_str(), e.engine.as_str()), ("w", "RCVG_2_64"));
        // Golden IPC 1.000 vs reconstructed 0.769: 23.1% error.
        assert_eq!((e.recon_ipc_milli, e.full_ipc_milli, e.err_milli), (769, 1000, 231));
        assert!(e.to_string().contains("23.1%"), "{e}");
        // No counterpart in the golden trajectory: skipped, not a panic.
        let empty = Trajectory::default();
        assert!(simpoint_errors(&sampled, &empty).is_empty());
        // A trajectory with no sampled cells yields no comparisons.
        assert!(simpoint_errors(&golden, &golden).is_empty());
    }

    fn fixture_profile() -> String {
        // A realistic stderr stream: a warning line, a profile record,
        // and a non-JSON diagnostic interleaved.
        let mut s = String::new();
        s.push_str("warning: cell 0 (w/BASE): skipped 1 invalid checkpoint(s), ran cold: x\n");
        s.push_str(concat!(
            "{\"type\":\"profile\",\"cell\":0,\"workload\":\"w\",\"engine\":\"BASE\",",
            "\"cycles\":640000,\"insts\":320000,\"total_us\":200000,\"stride\":64,",
            "\"sampled_cycles\":10000,\"ns\":{\"fetch\":200000,\"rename\":400000,",
            "\"issue\":600000,\"execute\":800000,\"commit\":500000,\"squash\":100000,",
            "\"ckpt\":0,\"ffwd\":33600000,\"bbv\":0}}\n",
        ));
        s.push_str("some stray diagnostic line\n");
        s
    }

    #[test]
    fn profile_stream_parses_and_skips_foreign_lines() {
        let recs = parse_profile(&fixture_profile());
        assert_eq!(recs.len(), 1, "only the profile record parses");
        let r = &recs[0];
        assert_eq!((r.workload.as_str(), r.engine.as_str()), ("w", "BASE"));
        assert_eq!((r.cycles, r.insts, r.total_us, r.stride), (640000, 320000, 200000, 64));
        assert_eq!(r.bucket_ns("execute"), 800000);
        // Stage buckets scale by the stride; whole-call buckets do not.
        assert_eq!(r.est_ns("execute"), 800000 * 64);
        assert_eq!(r.est_ns("ffwd"), 33600000);
        // 320000 insts / 200000 µs = 1.600 MIPS; 640000 cyc = 3.200 Mcyc/s.
        assert_eq!(r.sim_mips_milli(), 1600);
        assert_eq!(r.mcps_milli(), 3200);
    }

    #[test]
    fn profile_table_shares_sum_to_100_and_hide_empty_buckets() {
        let recs = parse_profile(&fixture_profile());
        let t = profile_table(&recs);
        assert!(t.contains("fetch"), "{t}");
        assert!(t.contains("sim_MIPS"), "{t}");
        assert!(!t.contains("ckpt"), "all-zero buckets are hidden:\n{t}");
        assert!(!t.contains("bbv"), "all-zero buckets are hidden:\n{t}");
        assert!(t.contains("1.600"), "sim MIPS rendered:\n{t}");
        assert!(t.contains("3.200"), "Mcyc/s rendered:\n{t}");
        // The share columns of the data row sum to ~100% (rounding loses
        // at most 0.1% per column).
        let row = t.lines().last().unwrap();
        let sum_tenths: u64 = row
            .split_whitespace()
            .filter(|c| c.ends_with('%'))
            .map(|c| {
                let (int, frac) = c.trim_end_matches('%').split_once('.').unwrap();
                int.parse::<u64>().unwrap() * 10 + frac.parse::<u64>().unwrap()
            })
            .sum();
        assert!((995..=1000).contains(&sum_tenths), "shares sum to ~100%: {sum_tenths} in {row}");
        // Stage scaling puts execute (sampled) near ffwd (whole-call):
        // est execute = 51.2ms, ffwd = 33.6ms of ~2.6+33.6+... total.
        assert!(profile_table(&[]).contains("no profile records"));
    }

    #[test]
    fn regressions_trip_beyond_threshold_only() {
        let old = Trajectory::parse(&fixture()).unwrap();
        let mut new = old.clone();
        assert!(regressions(&new, &old, 5).is_empty(), "identical trajectories pass");
        // Degrade the MSSR cell's IPC by 50% and its grant rate to 0.
        new.cells[1].cycles = 2000;
        new.cells[1].reuse_grants = 0;
        let r = regressions(&new, &old, 5);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].metric, "IPC");
        assert_eq!(r[1].metric, "grant rate");
        assert!(r[0].to_string().starts_with("REGRESSION w/RCVG_2_64: IPC 1.000 -> 0.500"));
        // Within threshold: a 3% IPC dip under a 5% threshold passes.
        let mut mild = old.clone();
        mild.cells[1].insts = 970;
        assert!(regressions(&mild, &old, 5).is_empty());
        // Cells only on one side are ignored.
        let mut fewer = old.clone();
        fewer.cells.pop();
        assert!(regressions(&fewer, &old, 5).is_empty());
        assert!(regressions(&old, &fewer, 5).is_empty());
        // Duplicate (workload, engine) cells — ablation reruns under a
        // different simulator config — pair by ordinal, so identical
        // trajectories with duplicates pass, and degrading only the
        // second duplicate flags exactly one regression.
        let mut dup = old.clone();
        let mut ablated = dup.cells[1].clone();
        ablated.cycles = 1200;
        dup.cells.push(ablated);
        assert!(regressions(&dup, &dup.clone(), 5).is_empty());
        let mut dup_bad = dup.clone();
        dup_bad.cells[2].cycles = 2400;
        assert_eq!(regressions(&dup_bad, &dup, 5).len(), 1);
    }
}
