//! `mssr-serve` — the long-running simulation job server (ROADMAP
//! item 2) and its client-side modes. All protocol, caching, and pool
//! logic lives in `mssr_bench::harness::serve`; this binary only parses
//! arguments and maps failures to the exit code.
//!
//! Server mode (the default) prints a `{"type":"listening",...}` line
//! once bound — scripts parse the address from it (`--addr 127.0.0.1:0`
//! picks a free port) — and runs until a client sends `shutdown`.

use mssr_bench::harness::serve::{
    fetch_all, fetch_metrics, load_gen, Client, LoadOpts, ServeOpts, Server,
};
use mssr_bench::scale_from_env;
use mssr_workloads::Scale;

const USAGE: &str = "usage: mssr-serve [server options]
       mssr-serve --fetch ADDR [--sample N] [--ffwd N]
       mssr-serve --load ADDR [--clients N] [--requests N] [--dup PCT] [--sample N] [--seed S]
       mssr-serve --metrics ADDR
       mssr-serve (--ping | --stats | --shutdown) ADDR

server options:
  --addr HOST:PORT   bind address (default 127.0.0.1:0; prints the bound port)
  --jobs N           worker threads (default: all cores)
  --queue-bound N    queued cells before `busy` rejections (default 64)
  --timeout-ms N     per-request wait budget (default 60000)
  --scale S          cell universe scale: test|medium|large (default: MSSR_SCALE, then medium)
  --seed S           root seed for default per-cell seeds (default 0x4d535352)
  --experiments A,B  experiment list forming the cell universe (default: all)
  --ckpt-dir DIR     on-disk checkpoints for unsampled requests
  --bpred NAME       branch predictor for every cell:
                     tage|tagescl|ittage|alwayswrong|oracle (default: per-cell config)
  --cache-cap N      result-cache entries before FIFO eviction (default 4096)
  --delay-ms N       artificial per-cell delay (load-shaping for tests)

client modes:
  --fetch ADDR       request every cell in id order; stdout carries the
                     batch-identical cell/event trajectory lines
  --load ADDR        drive concurrent load; stdout carries the BENCH_serve.json body
  --metrics ADDR     scrape the server; stdout carries Prometheus text exposition
  --ping/--stats     one request, print the reply
  --shutdown ADDR    drain the server and wait for its `bye`";

fn fail(msg: &str) -> ! {
    eprintln!("mssr-serve: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_u64_arg(name: &str, v: &str) -> u64 {
    let t = v.trim();
    let r = match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(h) => u64::from_str_radix(h, 16),
        None => t.parse(),
    };
    r.unwrap_or_else(|e| fail(&format!("{name}: {e}")))
}

/// One-request client modes (`--ping`, `--stats`, `--shutdown`).
fn one_shot(addr: &str, req: &str) {
    let mut c = Client::connect(addr, 600_000).unwrap_or_else(|e| fail(&format!("connect: {e}")));
    if !c.send(req) {
        fail("send failed");
    }
    match c.recv() {
        Some(line) => println!("{line}"),
        None => fail("no reply"),
    }
}

fn main() {
    let mut mode: Option<(String, String)> = None; // (mode flag, server addr)
    let mut opts = ServeOpts::new(scale_from_env(Scale::Medium));
    let mut load = LoadOpts::new("");
    let mut fetch_sample = 0u64;
    let mut fetch_ffwd = 0u64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")));
        match arg.as_str() {
            "--fetch" | "--load" | "--metrics" | "--ping" | "--stats" | "--shutdown" => {
                if mode.is_some() {
                    fail("one client mode at a time");
                }
                mode = Some((arg.clone(), value(&arg)));
            }
            "--addr" => opts.addr = value("--addr"),
            "--jobs" => opts.jobs = parse_u64_arg("--jobs", &value("--jobs")).max(1) as usize,
            "--queue-bound" => {
                opts.queue_bound = parse_u64_arg("--queue-bound", &value("--queue-bound")) as usize;
            }
            "--timeout-ms" => {
                opts.timeout_ms = parse_u64_arg("--timeout-ms", &value("--timeout-ms"))
            }
            "--scale" => {
                opts.scale = match value("--scale").as_str() {
                    "test" => Scale::Test,
                    "medium" => Scale::Medium,
                    "large" => Scale::Large,
                    s => fail(&format!("--scale: unknown scale `{s}`")),
                };
            }
            "--seed" => {
                opts.root_seed = parse_u64_arg("--seed", &value("--seed"));
                load.seed = opts.root_seed;
            }
            "--experiments" => {
                opts.experiments =
                    value("--experiments").split(',').map(|s| s.trim().to_string()).collect();
            }
            "--ckpt-dir" => opts.ckpt_dir = Some(value("--ckpt-dir").into()),
            "--bpred" => {
                let name = value("--bpred");
                opts.bpred = Some(mssr_sim::BpredKind::parse(&name).unwrap_or_else(|| {
                    fail(&format!(
                        "--bpred: unknown predictor `{name}` (tage|tagescl|ittage|alwayswrong|oracle)"
                    ))
                }));
            }
            "--cache-cap" => {
                opts.cache_cap =
                    parse_u64_arg("--cache-cap", &value("--cache-cap")).max(1) as usize;
            }
            "--delay-ms" => opts.delay_ms = parse_u64_arg("--delay-ms", &value("--delay-ms")),
            "--clients" => {
                load.clients = parse_u64_arg("--clients", &value("--clients")).max(1) as usize;
            }
            "--requests" => {
                load.requests = parse_u64_arg("--requests", &value("--requests")).max(1) as usize;
            }
            "--dup" => load.dup_pct = parse_u64_arg("--dup", &value("--dup")).min(100),
            "--sample" => {
                let n = parse_u64_arg("--sample", &value("--sample"));
                load.sample = n;
                fetch_sample = n;
            }
            "--ffwd" => fetch_ffwd = parse_u64_arg("--ffwd", &value("--ffwd")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            s => fail(&format!("unknown argument `{s}`")),
        }
    }
    match mode {
        None => {
            let server = Server::start(opts).unwrap_or_else(|e| fail(&e));
            println!(
                "{{\"type\":\"listening\",\"addr\":\"{}\",\"cells\":{}}}",
                server.addr(),
                server.cells()
            );
            // Scripts wait on this line before connecting; without the
            // flush it can sit in the pipe buffer past the bind.
            use std::io::Write;
            let _ = std::io::stdout().flush();
            server.wait();
        }
        Some((m, addr)) => match m.as_str() {
            "--fetch" => match fetch_all(&addr, fetch_sample, fetch_ffwd) {
                Ok(out) => print!("{out}"),
                Err(e) => fail(&e),
            },
            "--load" => {
                load.addr = addr;
                match load_gen(&load) {
                    Ok(report) => println!("{report}"),
                    Err(e) => fail(&e),
                }
            }
            "--metrics" => match fetch_metrics(&addr) {
                Ok(body) => print!("{body}"),
                Err(e) => fail(&e),
            },
            "--ping" => one_shot(&addr, "{\"type\":\"ping\"}"),
            "--stats" => one_shot(&addr, "{\"type\":\"stats\"}"),
            "--shutdown" => one_shot(&addr, "{\"type\":\"shutdown\"}"),
            _ => unreachable!(),
        },
    }
}
