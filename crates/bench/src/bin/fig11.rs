//! Figure 11: reconvergence stream-distance breakdown. The paper finds
//! over 50% of reconvergences at distance 1 (neighboring streams) and
//! 90-95% within distance 3 — motivating 4 tracked streams.

use mssr_bench::{render_table, run_spec, scale_from_env, EngineSpec};
use mssr_workloads::{all_workloads, Scale};

fn main() {
    let scale = scale_from_env(Scale::Medium);
    println!("== Figure 11: reconvergence stream distance (8 streams tracked) ==");
    println!("paper: >50% at distance 1; 90-95% within distance 3");
    println!();
    let mut rows = Vec::new();
    let mut totals = [0u64; 8];
    for w in all_workloads(scale) {
        // Track more streams than the default so longer distances are
        // observable (the histogram saturates at the stream count).
        let s = run_spec(&w, EngineSpec::Mssr { streams: 8, log_entries: 64 });
        let h = s.engine.stream_distance;
        let total: u64 = h.iter().sum();
        for (t, v) in totals.iter_mut().zip(h.iter()) {
            *t += v;
        }
        if total == 0 {
            continue;
        }
        let cum = |k: usize| {
            100.0 * h[..k].iter().sum::<u64>() as f64 / total as f64
        };
        rows.push(vec![
            w.name().to_string(),
            format!("{total}"),
            format!("{:.1}%", cum(1)),
            format!("{:.1}%", cum(2)),
            format!("{:.1}%", cum(3)),
            format!("{:.1}%", cum(4)),
        ]);
    }
    let grand: u64 = totals.iter().sum::<u64>().max(1);
    rows.push(vec![
        "ALL".to_string(),
        format!("{grand}"),
        format!("{:.1}%", 100.0 * totals[..1].iter().sum::<u64>() as f64 / grand as f64),
        format!("{:.1}%", 100.0 * totals[..2].iter().sum::<u64>() as f64 / grand as f64),
        format!("{:.1}%", 100.0 * totals[..3].iter().sum::<u64>() as f64 / grand as f64),
        format!("{:.1}%", 100.0 * totals[..4].iter().sum::<u64>() as f64 / grand as f64),
    ]);
    println!(
        "{}",
        render_table(&["benchmark", "reconv", "<=1", "<=2", "<=3", "<=4"], &rows)
    );
}
