//! Figure 11: reconvergence stream-distance breakdown. The paper finds
//! over 50% of reconvergences at distance 1 (neighboring streams) and
//! 90-95% within distance 3 — motivating 4 tracked streams.

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["fig11"], &opts));
}
