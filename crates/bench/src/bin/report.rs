//! `mssr-report` — renders harness JSON-lines trajectories as CPI
//! stacks, speedup tables and IPC sparklines, compares against a
//! baseline trajectory for CI regression gating, and validates
//! `--simpoint` reconstructions against a whole-program golden run. All
//! rendering lives in `mssr_bench::harness::report`; this binary only
//! parses arguments, reads files, and maps failures to the exit code.

use mssr_bench::harness::report::{
    parse_profile, profile_table, regressions, render_report, simpoint_errors, Trajectory,
};

const USAGE: &str = "usage: mssr-report FILE... [--baseline OLD] [--threshold PCT]
                   [--golden FULL] [--max-error PCT] [--profile PROF]
  FILE...          JSON-lines trajectories from a harness --json run
  --baseline OLD   compare the first FILE against trajectory OLD and
                   exit 1 when IPC or reuse-grant rate regresses
  --threshold PCT  regression threshold in percent (default 5)
  --golden FULL    compare the first FILE's --simpoint reconstructions
                   against the whole-program trajectory FULL and exit 1
                   when any cell's IPC error exceeds --max-error
  --max-error PCT  reconstruction error gate in percent (default 3)
  --profile PROF   render the self-profile table from a saved harness
                   --profile stderr stream (PROF may be the only input:
                   trajectory FILEs are optional with --profile)";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn load(path: &str) -> Trajectory {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("mssr-report: {path}: {e}")));
    Trajectory::parse(&text).unwrap_or_else(|e| fail(&format!("mssr-report: {path}: {e}")))
}

fn main() {
    let mut files: Vec<String> = Vec::new();
    let mut baseline: Option<String> = None;
    let mut threshold: u64 = 5;
    let mut golden: Option<String> = None;
    let mut max_error: u64 = 3;
    let mut profile: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")));
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")),
            "--threshold" => {
                threshold = value("--threshold")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--threshold: {e}")));
            }
            "--golden" => golden = Some(value("--golden")),
            "--profile" => profile = Some(value("--profile")),
            "--max-error" => {
                max_error = value("--max-error")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--max-error: {e}")));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            s if s.starts_with('-') => fail(&format!("unknown argument `{s}`")),
            _ => files.push(arg),
        }
    }
    // A profile stream can be rendered on its own, but the comparison
    // modes always need a trajectory to compare.
    if files.is_empty() && (profile.is_none() || baseline.is_some() || golden.is_some()) {
        fail("no trajectory files given");
    }
    let trajectories: Vec<Trajectory> = files.iter().map(|f| load(f)).collect();
    let mut bad = false;
    for (path, t) in files.iter().zip(&trajectories) {
        if trajectories.len() > 1 {
            println!("######## {path} ########\n");
        }
        print!("{}", render_report(t));
    }
    if let Some(prof_path) = profile {
        let text = std::fs::read_to_string(&prof_path)
            .unwrap_or_else(|e| fail(&format!("mssr-report: {prof_path}: {e}")));
        if !files.is_empty() {
            println!();
        }
        println!("== Self-profile ({prof_path}) ==");
        print!("{}", profile_table(&parse_profile(&text)));
    }
    if let Some(old_path) = baseline {
        let old = load(&old_path);
        let regs = regressions(&trajectories[0], &old, threshold);
        println!("\n== Regressions vs {old_path} (threshold {threshold}%) ==");
        if regs.is_empty() {
            println!("none");
        } else {
            for r in &regs {
                println!("{r}");
            }
            bad = true;
        }
    }
    if let Some(full_path) = golden {
        let full = load(&full_path);
        let errs = simpoint_errors(&trajectories[0], &full);
        println!("\n== SimPoint reconstruction vs {full_path} (max error {max_error}%) ==");
        if errs.is_empty() {
            // No sampled cells to validate is a misuse, not a pass: the
            // gate must never succeed vacuously because --simpoint was
            // forgotten on the sampled run.
            println!("no --simpoint cells with a golden counterpart");
            bad = true;
        }
        let max_err_milli = errs.iter().map(|e| e.err_milli).max().unwrap_or(0);
        let detailed: u64 = trajectories[0]
            .cells
            .iter()
            .filter_map(|c| c.simpoint.as_ref())
            .map(|sp| sp.detailed_insts())
            .sum();
        let total: u64 = trajectories[0]
            .cells
            .iter()
            .filter_map(|c| c.simpoint.as_ref())
            .map(|sp| sp.total_insts)
            .sum();
        for e in &errs {
            let over = e.err_milli > max_error * 10;
            println!("{}{e}", if over { "EXCEEDED " } else { "" });
            if over {
                bad = true;
            }
        }
        // Machine-greppable summary (consumed by ci/regen-bench-simpoint.sh):
        // max reconstruction error and detailed-instruction share, both in
        // thousandths.
        let detailed_milli = (detailed * 1000).checked_div(total).unwrap_or(0);
        println!("SIMPOINT max_err_milli={max_err_milli} detailed_milli={detailed_milli}");
    }
    if bad {
        std::process::exit(1);
    }
}
