//! `mssr-report` — renders harness JSON-lines trajectories as CPI
//! stacks, speedup tables and IPC sparklines, and compares against a
//! baseline trajectory for CI regression gating. All rendering lives in
//! `mssr_bench::harness::report`; this binary only parses arguments,
//! reads files, and maps regressions to the exit code.

use mssr_bench::harness::report::{regressions, render_report, Trajectory};

const USAGE: &str = "usage: mssr-report FILE... [--baseline OLD] [--threshold PCT]
  FILE...          JSON-lines trajectories from a harness --json run
  --baseline OLD   compare the first FILE against trajectory OLD and
                   exit 1 when IPC or reuse-grant rate regresses
  --threshold PCT  regression threshold in percent (default 5)";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn load(path: &str) -> Trajectory {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("mssr-report: {path}: {e}")));
    Trajectory::parse(&text).unwrap_or_else(|e| fail(&format!("mssr-report: {path}: {e}")))
}

fn main() {
    let mut files: Vec<String> = Vec::new();
    let mut baseline: Option<String> = None;
    let mut threshold: u64 = 5;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")));
        match arg.as_str() {
            "--baseline" => baseline = Some(value("--baseline")),
            "--threshold" => {
                threshold = value("--threshold")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--threshold: {e}")));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            s if s.starts_with('-') => fail(&format!("unknown argument `{s}`")),
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        fail("no trajectory files given");
    }
    let trajectories: Vec<Trajectory> = files.iter().map(|f| load(f)).collect();
    for (path, t) in files.iter().zip(&trajectories) {
        if trajectories.len() > 1 {
            println!("######## {path} ########\n");
        }
        print!("{}", render_report(t));
    }
    if let Some(old_path) = baseline {
        let old = load(&old_path);
        let regs = regressions(&trajectories[0], &old, threshold);
        println!("\n== Regressions vs {old_path} (threshold {threshold}%) ==");
        if regs.is_empty() {
            println!("none");
        } else {
            for r in &regs {
                println!("{r}");
            }
            std::process::exit(1);
        }
    }
}
