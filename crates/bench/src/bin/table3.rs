//! Table 3: the baseline core configuration used by every experiment.

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["table3"], &opts));
}
