//! Table 3: the baseline core configuration used by every experiment.

use mssr_bench::experiment_sim_config;

fn main() {
    let c = experiment_sim_config();
    println!("== Table 3: baseline configuration ==");
    println!("Frontend");
    println!("  Fetch block size        {} B ({} instructions)", c.fetch_block_insts * 4, c.fetch_block_insts);
    println!("  Nextline predictor      Bimodal ({} entries)", c.bimodal_entries);
    println!("  Main branch predictor   TAGE ({} tables x {} entries)", c.tage_tables, c.tage_entries);
    println!("  Pipeline stages         {}", c.frontend_stages);
    println!("Backend");
    println!("  Decode/Rename width     {}", c.rename_width);
    println!("  Reorder buffer          {} entries", c.rob_size);
    println!("  Reservation stations    {}-entry {}xALU + {}xBRU | {}-entry {}xLSU", c.iq_int_size, c.alu_units, c.bru_units, c.iq_mem_size, c.lsu_units);
    println!("  Load/store queue        {} / {} entries", c.lq_size, c.sq_size);
    println!("  Physical registers      {}", c.phys_regs);
    println!("  RGID width              {} bits (paper: 6; see DESIGN.md calibration note)", c.rgid_bits);
    println!("Memory");
    println!("  DCache                  {} KB, {}-way, {}-cycle", c.l1d.size_bytes / 1024, c.l1d.ways, c.l1d.latency);
    println!("  L2                      {} MB, {}-way, {}-cycle", c.l2.size_bytes / 1024 / 1024, c.l2.ways, c.l2.latency);
    println!("  DRAM                    {}-cycle", c.dram_latency);
}
