//! Table 1: microbenchmark runtime improvement of Multi-Stream Squash
//! Reuse (1/2/4 streams) and Register Integration (1/2/4 ways) over the
//! no-reuse baseline, on the nested-mispred and linear-mispred variants.

use mssr_bench::{render_table, run_spec, scale_from_env, speedup_pct, EngineSpec};
use mssr_workloads::{microbench, Scale};

fn main() {
    let scale = scale_from_env(Scale::Medium);
    let iters = match scale {
        Scale::Test => 500,
        Scale::Medium => 3000,
        Scale::Large => 8000,
    };
    println!("== Table 1: microbenchmark improvements over no-reuse baseline ==");
    println!("paper: nested 2.4/14.3/23.4%  linear 6.5/16.7/19.7% (MSSR 1/2/4 streams)");
    println!("       nested -0.1/1.9/17.9%  linear 1.7/6.2/16.4% (RI 1/2/4 ways)");
    println!();

    let workloads =
        [("nested-mispred", microbench::nested_mispred(iters)), ("linear-mispred", microbench::linear_mispred(iters))];
    let mssr_cfgs = [1usize, 2, 4];
    let ri_cfgs = [1usize, 2, 4];

    let mut rows = Vec::new();
    let mut results = Vec::new(); // (variant, kind, n, pct)
    for (name, w) in &workloads {
        let base = run_spec(w, EngineSpec::Baseline);
        for &n in &mssr_cfgs {
            let s = run_spec(w, EngineSpec::Mssr { streams: n, log_entries: 64 });
            results.push((name.to_string(), "Multi-Stream Squash Reuse", n, speedup_pct(&base, &s)));
        }
        for &ways in &ri_cfgs {
            let s = run_spec(w, EngineSpec::Ri { sets: 64, ways });
            results.push((name.to_string(), "Register Integration", ways, speedup_pct(&base, &s)));
        }
    }
    for (i, label) in ["Single Stream / Way", "Two Streams / Ways", "Four Streams / Ways"]
        .iter()
        .enumerate()
    {
        let cell = |variant: &str, kind: &str| {
            results
                .iter()
                .find(|(v, k, n, _)| v == variant && *k == kind && *n == [1, 2, 4][i])
                .map(|(_, _, _, p)| format!("{p:+.1}%"))
                .unwrap_or_default()
        };
        rows.push(vec![
            label.to_string(),
            cell("nested-mispred", "Multi-Stream Squash Reuse"),
            cell("nested-mispred", "Register Integration"),
            cell("linear-mispred", "Multi-Stream Squash Reuse"),
            cell("linear-mispred", "Register Integration"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["", "Nested MSSR", "Nested RI", "Linear MSSR", "Linear RI"],
            &rows
        )
    );
}
