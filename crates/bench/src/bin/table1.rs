//! Table 1: microbenchmark runtime improvement of Multi-Stream Squash
//! Reuse (1/2/4 streams) and Register Integration (1/2/4 ways) over the
//! no-reuse baseline, on the nested-mispred and linear-mispred variants.

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["table1"], &opts));
}
