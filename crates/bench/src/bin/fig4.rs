//! Figure 4: breakdown of reconvergence types — simple (onto the stream
//! of the branch that redirected fetch), software-induced (onto an elder
//! branch's stream), and hardware-induced (onto a younger branch's
//! stream, from out-of-order resolution).

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["fig4"], &opts));
}
