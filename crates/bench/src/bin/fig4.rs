//! Figure 4: breakdown of reconvergence types — simple (onto the stream
//! of the branch that redirected fetch), software-induced (onto an elder
//! branch's stream), and hardware-induced (onto a younger branch's
//! stream, from out-of-order resolution).

use mssr_bench::{render_table, run_spec, scale_from_env, EngineSpec};
use mssr_workloads::{all_workloads, Scale};

fn main() {
    let scale = scale_from_env(Scale::Medium);
    println!("== Figure 4: breakdown of reconvergence types (4 streams) ==");
    println!("paper: GAP mostly simple; branchy SPECint show 15-43% multi-stream");
    println!();
    let mut rows = Vec::new();
    for w in all_workloads(scale) {
        let s = run_spec(&w, EngineSpec::Mssr { streams: 4, log_entries: 64 });
        let e = &s.engine;
        let total = e.reconvergences.max(1) as f64;
        rows.push(vec![
            w.name().to_string(),
            format!("{}", w.suite()),
            format!("{}", e.reconvergences),
            format!("{:.1}%", 100.0 * e.recon_simple as f64 / total),
            format!("{:.1}%", 100.0 * e.recon_software as f64 / total),
            format!("{:.1}%", 100.0 * e.recon_hardware as f64 / total),
            format!("{:.1}%", 100.0 * (e.recon_software + e.recon_hardware) as f64 / total),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["benchmark", "suite", "reconv", "simple", "sw-induced", "hw-induced", "multi-stream"],
            &rows
        )
    );
}
