//! Table 4: post-synthesis complexity of the two critical logic blocks,
//! from the analytic structural model calibrated to the paper's
//! Design Compiler results (see `mssr_core::complexity`).

use mssr_core::complexity::{reconvergence_detection, reuse_test};

fn main() {
    println!("== Table 4: complexity of critical logic (analytic model) ==");
    println!();
    println!("Reconvergence detection");
    println!("{:<10} {:>12} {:>12} {:>14}", "WPB size", "logic levels", "area / um^2", "power/mW @0.7V");
    for m in [16usize, 32, 64] {
        let c = reconvergence_detection(4, m);
        println!("{:<10} {:>12} {:>12.0} {:>14.3}", format!("4x{m}"), c.logic_levels, c.area_um2, c.power_mw);
    }
    println!();
    println!("Reuse test (64-entry Squash Log)");
    println!("{:<10} {:>12} {:>12} {:>14}", "width", "logic levels", "area / um^2", "power/mW @0.7V");
    for w in [4usize, 6, 8] {
        let c = reuse_test(w);
        println!("{:<10} {:>12} {:>12.0} {:>14.3}", w, c.logic_levels, c.area_um2, c.power_mw);
    }
    println!();
    println!("(Calibrated to the paper's synthesis anchors; values between and");
    println!(" beyond the anchors follow the model's monotone interpolation.)");
}
