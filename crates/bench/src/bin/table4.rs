//! Table 4: post-synthesis complexity of the two critical logic blocks,
//! from the analytic structural model calibrated to the paper's
//! Design Compiler results (see `mssr_core::complexity`).

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["table4"], &opts));
}
