//! Runs every experiment regenerator in sequence (tables first, then
//! figures), producing the full paper-reproduction report on stdout.

use std::process::Command;

fn main() {
    let exes = ["table2", "table3", "table4", "table1", "fig3", "fig4", "fig10", "fig11", "fig12", "rollup", "ablation"];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe dir");
    for exe in exes {
        println!("\n######## {exe} ########\n");
        let status = Command::new(dir.join(exe))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exe}: {e}"));
        assert!(status.success(), "{exe} failed");
    }
}
