//! Runs every experiment regenerator (tables first, then figures) as one
//! parallel grid invocation over a shared, deduplicated cell pool,
//! producing the full paper-reproduction report on stdout — or, with
//! `--json`, the complete JSON-lines trajectory.

use mssr_bench::harness::{all_experiments, run_experiments, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_experiments(&all_experiments(), &opts));
}
