//! `mssr-simspeed` — emits and gates the committed sim-speed
//! trajectory (`BENCH_simspeed.json`). All aggregation and comparison
//! logic lives in `mssr_bench::harness::simspeed`; this binary only
//! parses arguments, reads files, and maps failures to the exit code.

use mssr_bench::harness::simspeed::{check, measure, parse, render};

const USAGE: &str = "usage: mssr-simspeed emit TRAJECTORY PROFILE [--experiment NAME]
       mssr-simspeed check CURRENT BASELINE [--min-ratio PCT]

  emit        aggregate a harness --json --timing trajectory plus its
              --profile stderr stream into the BENCH_simspeed.json body
              (per-engine min/median/max sim MIPS and stage shares) on
              stdout
  check       compare two emitted bodies; prints one greppable
              `SIMSPEED engine=...` line per baseline engine and exits 1
              when any engine's median throughput falls below
              --min-ratio percent of the baseline (default 30 — the
              gate tolerates machine noise, not collapses)";

fn fail(msg: &str) -> ! {
    eprintln!("mssr-simspeed: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut experiment = "table1".to_string();
    let mut min_ratio: u64 = 30;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} requires a value")));
        match arg.as_str() {
            "--experiment" => experiment = value("--experiment"),
            "--min-ratio" => {
                min_ratio = value("--min-ratio")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--min-ratio: {e}")));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            s if s.starts_with('-') => fail(&format!("unknown argument `{s}`")),
            _ => positional.push(arg),
        }
    }
    match positional.first().map(String::as_str) {
        Some("emit") => {
            let [_, traj, prof] = positional.as_slice() else {
                fail("emit needs TRAJECTORY and PROFILE files");
            };
            let s = measure(&read(traj), &read(prof), &experiment)
                .unwrap_or_else(|e| fail(&format!("{traj}: {e}")));
            print!("{}", render(&s));
        }
        Some("check") => {
            let [_, cur, base] = positional.as_slice() else {
                fail("check needs CURRENT and BASELINE files");
            };
            let current = parse(&read(cur)).unwrap_or_else(|e| fail(&format!("{cur}: {e}")));
            let baseline = parse(&read(base)).unwrap_or_else(|e| fail(&format!("{base}: {e}")));
            let checks = check(&current, &baseline, min_ratio);
            let mut bad = false;
            for c in &checks {
                println!("{}", c.line);
                bad |= !c.ok;
            }
            if checks.is_empty() {
                println!("SIMSPEED status=EMPTY_BASELINE");
                bad = true;
            }
            if bad {
                std::process::exit(1);
            }
        }
        _ => fail("first argument must be `emit` or `check`"),
    }
}
