//! Table 2: additional storage required by the multi-stream squash reuse
//! scheme (constant + variable parts).

use mssr_core::storage::{storage, StorageParams};

fn main() {
    println!("== Table 2: additional storage for the squash-reuse scheme ==");
    println!("paper: constant 2.30 KB, variable 1.23 KB, total 3.53 KB at N=4, M=16, P=64");
    println!();
    for (n, m, p) in [(4usize, 16usize, 64usize), (1, 16, 64), (2, 32, 64), (4, 64, 128)] {
        let b = storage(&StorageParams {
            streams: n,
            wpb_entries: m,
            log_entries: p,
            ..StorageParams::default()
        });
        println!(
            "N={n:<2} M={m:<3} P={p:<4}: constant {:>6} bits ({:.2} KiB)  variable {:>6} bits ({:.2} KiB)  total {:.2} KiB",
            b.constant_bits,
            b.constant_kib(),
            b.variable_bits,
            b.variable_kib(),
            b.total_kib()
        );
    }
}
