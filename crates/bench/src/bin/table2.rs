//! Table 2: additional storage required by the multi-stream squash reuse
//! scheme (constant + variable parts).

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["table2"], &opts));
}
