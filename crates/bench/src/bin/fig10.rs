//! Figure 10: IPC improvement over the no-reuse baseline for different
//! stream × WPB-entry configurations, across all three suites.
//!
//! Configurations follow the paper: 1×16, 1×64, 2×64, 4×64, and the
//! 4×1024 upper-bound study. Labels give streams × WPB entries; the
//! Squash Log holds 4× the WPB entries (§4.1.2's ratio).

use mssr_bench::{render_table, run_spec, scale_from_env, speedup_pct, EngineSpec};
use mssr_workloads::{suite_workloads, Scale, Suite};

fn main() {
    let scale = scale_from_env(Scale::Medium);
    // (streams, wpb entries) per the paper's figure legend.
    let configs = [(1usize, 16usize), (1, 64), (2, 64), (4, 64), (4, 1024)];
    println!("== Figure 10: IPC improvement per stream x WPB configuration ==");
    println!("paper: avg +2.2% (SPECint2006) +0.8% (SPECint2017) +2.4% (GAP) at 4x64;");
    println!("       max astar +8.9%, bc +6.1%, cc +4.0%");
    println!();
    let mut rows = Vec::new();
    for suite in [Suite::Spec2006, Suite::Spec2017, Suite::Gap] {
        let mut sums = vec![0.0f64; configs.len()];
        let mut count = 0usize;
        for w in suite_workloads(suite, scale) {
            let base = run_spec(&w, EngineSpec::Baseline);
            let mut row = vec![w.name().to_string(), format!("{suite}"), format!("{:.3}", base.ipc())];
            for (i, &(streams, wpb)) in configs.iter().enumerate() {
                let s = run_spec(&w, EngineSpec::Mssr { streams, log_entries: wpb * 4 });
                let pct = speedup_pct(&base, &s);
                sums[i] += pct;
                row.push(format!("{pct:+.2}%"));
            }
            count += 1;
            rows.push(row);
        }
        let mut avg = vec![format!("average"), format!("{suite}"), String::new()];
        for s in &sums {
            avg.push(format!("{:+.2}%", s / count as f64));
        }
        rows.push(avg);
        rows.push(vec![String::new()]);
    }
    let headers: Vec<String> = ["benchmark", "suite", "base IPC"]
        .iter()
        .map(|s| s.to_string())
        .chain(configs.iter().map(|(n, m)| format!("{n}x{m}")))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", render_table(&hdr_refs, &rows));
}
