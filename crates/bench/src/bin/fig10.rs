//! Figure 10: IPC improvement over the no-reuse baseline for different
//! stream × WPB-entry configurations, across all three suites.
//!
//! Configurations follow the paper: 1×16, 1×64, 2×64, 4×64, and the
//! 4×1024 upper-bound study. Labels give streams × WPB entries; the
//! Squash Log holds 4× the WPB entries (§4.1.2's ratio).

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["fig10"], &opts));
}
