//! The branch-predictor lab: every `--bpred` kind (TAGE, TAGE-SC-L,
//! ITTAGE, always-wrong, oracle) against the no-reuse baseline and the
//! four-stream MSSR engine on both misprediction microbenchmarks,
//! relating conditional MPKI to squash-reuse benefit. The oracle
//! predictor anchors the zero-misprediction end, the adversarial
//! predictor the saturated end.

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["bpred"], &opts));
}
