//! Ablations of the design choices DESIGN.md calls out:
//!
//! * RGID width — the paper's 6-bit counters (with overflow/reset) vs
//!   the harness's calibrated 10-bit default vs effectively unbounded;
//! * memory-check policy — load re-execution verification (paper's
//!   evaluated choice) vs the Bloom filter;
//! * reconvergence timeout sweep;
//! * in-flight writeback draining at squash on/off;
//! * single-page (VPN-restricted) Wrong-Path Buffers on/off.

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["ablation"], &opts));
}
