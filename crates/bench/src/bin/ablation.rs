//! Ablations of the design choices DESIGN.md calls out:
//!
//! * RGID width — the paper's 6-bit counters (with overflow/reset) vs
//!   the harness's calibrated 10-bit default vs effectively unbounded;
//! * memory-check policy — load re-execution verification (paper's
//!   evaluated choice) vs the Bloom filter;
//! * reconvergence timeout sweep;
//! * single-page (VPN-restricted) Wrong-Path Buffers on/off.

use mssr_bench::{experiment_sim_config, render_table, speedup_pct};
use mssr_core::{MemCheckPolicy, MssrConfig, MultiStreamReuse};
use mssr_sim::SimConfig;
use mssr_workloads::{microbench, Scale};

fn main() {
    let scale = mssr_bench::scale_from_env(Scale::Medium);
    let iters = match scale {
        Scale::Test => 500,
        Scale::Medium => 3000,
        Scale::Large => 8000,
    };
    let w = microbench::nested_mispred(iters);

    println!("== Ablation: RGID width (6-bit paper / 10-bit calibrated / 14-bit) ==");
    let mut rows = Vec::new();
    for bits in [6u32, 8, 10, 14] {
        let cfg = SimConfig { rgid_bits: bits, ..experiment_sim_config() };
        let base = w.run(cfg.clone(), None);
        let s = w.run(cfg, Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
        rows.push(vec![
            format!("{bits}-bit"),
            format!("{:+.2}%", speedup_pct(&base, &s)),
            format!("{}", s.engine.reuse_grants),
            format!("{}", s.engine.rgid_overflows),
            format!("{}", s.engine.rgid_resets),
        ]);
    }
    println!("{}", render_table(&["RGID", "speedup", "grants", "overflows", "resets"], &rows));

    println!("== Ablation: reused-load memory check policy ==");
    let mut rows = Vec::new();
    let base = w.run(experiment_sim_config(), None);
    for (name, policy) in [
        ("load re-execution", MemCheckPolicy::LoadVerification),
        ("bloom filter", MemCheckPolicy::BloomFilter),
    ] {
        let e = MultiStreamReuse::new(MssrConfig::default().with_mem_policy(policy));
        let s = w.run(experiment_sim_config(), Some(Box::new(e)));
        rows.push(vec![
            name.to_string(),
            format!("{:+.2}%", speedup_pct(&base, &s)),
            format!("{}", s.engine.reused_loads),
            format!("{}", s.flushes_reuse_verify),
            format!("{}", s.engine.reuse_fail_mem),
        ]);
    }
    println!(
        "{}",
        render_table(&["policy", "speedup", "reused loads", "verify flushes", "bloom rejects"], &rows)
    );

    println!("== Ablation: reconvergence timeout ==");
    let mut rows = Vec::new();
    for timeout in [64u64, 256, 1024, 4096] {
        let e = MultiStreamReuse::new(MssrConfig::default().with_timeout(timeout));
        let s = w.run(experiment_sim_config(), Some(Box::new(e)));
        rows.push(vec![
            format!("{timeout}"),
            format!("{:+.2}%", speedup_pct(&base, &s)),
            format!("{}", s.engine.timeouts),
            format!("{}", s.engine.reuse_grants),
        ]);
    }
    println!("{}", render_table(&["timeout (insts)", "speedup", "stream timeouts", "grants"], &rows));

    println!("== Ablation: in-flight writeback draining at squash ==");
    let mut rows = Vec::new();
    for (name, drain) in [("drain (hardware)", true), ("no drain", false)] {
        let cfg = SimConfig { drain_inflight_on_squash: drain, ..experiment_sim_config() };
        let b2 = w.run(cfg.clone(), None);
        let e = MultiStreamReuse::new(MssrConfig::default());
        let s = w.run(cfg, Some(Box::new(e)));
        rows.push(vec![
            name.to_string(),
            format!("{:+.2}%", speedup_pct(&b2, &s)),
            format!("{}", s.engine.reuse_grants),
            format!("{}", s.engine.reuse_fail_not_executed),
        ]);
    }
    println!("{}", render_table(&["squash drain", "speedup", "grants", "not-executed fails"], &rows));

    println!("== Ablation: single-page (VPN-restricted) WPB ==");
    let mut rows = Vec::new();
    for (name, vpn) in [("full PC", false), ("single page", true)] {
        let e = MultiStreamReuse::new(MssrConfig::default().with_vpn_restrict(vpn));
        let s = w.run(experiment_sim_config(), Some(Box::new(e)));
        rows.push(vec![
            name.to_string(),
            format!("{:+.2}%", speedup_pct(&base, &s)),
            format!("{}", s.engine.reconvergences),
        ]);
    }
    println!("{}", render_table(&["WPB addressing", "speedup", "reconvergences"], &rows));
}
