//! The artifact's rollup output (§A.6): a CSV with configuration,
//! benchmark, simulated cycles, and improvement over the baseline, for
//! the GAP suite.

use mssr_bench::{render_csv, run_spec, scale_from_env, EngineSpec};
use mssr_workloads::{suite_workloads, Scale, Suite};

fn main() {
    let scale = scale_from_env(Scale::Medium);
    let specs = [
        EngineSpec::Mssr { streams: 1, log_entries: 64 },
        EngineSpec::Mssr { streams: 2, log_entries: 256 },
        EngineSpec::Mssr { streams: 4, log_entries: 256 },
    ];
    let mut rows = Vec::new();
    for w in suite_workloads(Suite::Gap, scale) {
        let base = run_spec(&w, EngineSpec::Baseline);
        let bm = w.name().split('/').next().unwrap_or(w.name()).to_string();
        for spec in specs {
            let s = run_spec(&w, spec);
            let diff = base.cycles as f64 / s.cycles as f64 - 1.0;
            rows.push(vec![
                spec.label(),
                bm.clone(),
                format!("{:.1}", s.cycles as f64),
                format!("{diff:.6}"),
            ]);
        }
    }
    print!("{}", render_csv(&["CFG", "BM", "CYCLES", "diff"], &rows));
}
