//! The artifact's rollup output (§A.6): a CSV with configuration,
//! benchmark, simulated cycles, and improvement over the baseline, for
//! the GAP suite.

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["rollup"], &opts));
}
