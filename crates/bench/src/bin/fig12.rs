//! Figure 12: Register Integration vs Multi-Stream Squash Reuse (RGID)
//! on the GAP suite, with matched total squashed-entry capacity:
//! RI ways {1,2,4} × sets {64,128} against RGID streams {1,2,4} ×
//! Squash Log entries {64,128}.

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["fig12"], &opts));
}
