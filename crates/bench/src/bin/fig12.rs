//! Figure 12: Register Integration vs Multi-Stream Squash Reuse (RGID)
//! on the GAP suite, with matched total squashed-entry capacity:
//! RI ways {1,2,4} × sets {64,128} against RGID streams {1,2,4} ×
//! Squash Log entries {64,128}.

use mssr_bench::{render_table, run_spec, scale_from_env, speedup_pct, EngineSpec};
use mssr_workloads::{suite_workloads, Scale, Suite};

fn main() {
    let scale = scale_from_env(Scale::Medium);
    println!("== Figure 12: RI vs RGID on GAP (matched capacities) ==");
    println!("paper: RGID wins on bc/bfs/cc, comparable on pr/sssp/tc; two streams");
    println!("       give the best overall results");
    println!();
    let specs: Vec<EngineSpec> = vec![
        EngineSpec::Mssr { streams: 1, log_entries: 64 },
        EngineSpec::Mssr { streams: 2, log_entries: 64 },
        EngineSpec::Mssr { streams: 4, log_entries: 64 },
        EngineSpec::Mssr { streams: 1, log_entries: 128 },
        EngineSpec::Mssr { streams: 2, log_entries: 128 },
        EngineSpec::Mssr { streams: 4, log_entries: 128 },
        EngineSpec::Ri { sets: 64, ways: 1 },
        EngineSpec::Ri { sets: 64, ways: 2 },
        EngineSpec::Ri { sets: 64, ways: 4 },
        EngineSpec::Ri { sets: 128, ways: 1 },
        EngineSpec::Ri { sets: 128, ways: 2 },
        EngineSpec::Ri { sets: 128, ways: 4 },
    ];
    let mut rows = Vec::new();
    for w in suite_workloads(Suite::Gap, scale) {
        let base = run_spec(&w, EngineSpec::Baseline);
        for spec in &specs {
            let s = run_spec(&w, *spec);
            rows.push(vec![
                w.name().to_string(),
                spec.label(),
                format!("{}", s.cycles),
                format!("{:+.2}%", speedup_pct(&base, &s)),
            ]);
        }
    }
    println!("{}", render_table(&["BM", "CFG", "CYCLES", "diff"], &rows));
}
