//! Figure 3: replacement frequency in the Register Integration reuse
//! table. Low associativity causes frequent replacements (dark cells in
//! the paper's heatmap); four ways nearly eliminate them.

use mssr_bench::{experiment_sim_config, scale_from_env};
use mssr_core::{RegisterIntegration, RiConfig};
use mssr_workloads::{microbench, Scale};

fn main() {
    let scale = scale_from_env(Scale::Medium);
    let iters = match scale {
        Scale::Test => 500,
        Scale::Medium => 3000,
        Scale::Large => 8000,
    };
    println!("== Figure 3: RI reuse-table replacement frequency (64 sets) ==");
    println!("paper: dark (high-replacement) sets at 1 way, mostly light at 4 ways");
    println!();
    let w = microbench::nested_mispred(iters);
    for ways in [1usize, 2, 4] {
        let ri = RegisterIntegration::new(RiConfig::default().with_sets(64).with_ways(ways));
        let counters = ri.replacement_counters();
        let stats = w.run(experiment_sim_config(), Some(Box::new(ri)));
        let counts = counters.borrow();
        let max = counts.iter().copied().max().unwrap_or(1).max(1);
        let total: u64 = counts.iter().sum();
        println!(
            "{ways}-way: {total} replacements total ({:.1} per squash)",
            total as f64 / stats.mispredictions.max(1) as f64
        );
        // ASCII heatmap: one character per set, shade by replacement count.
        let shades = [' ', '.', ':', '+', '#', '@'];
        let mut line = String::from("  [");
        for &c in counts.iter() {
            let idx = (c * (shades.len() as u64 - 1)).div_ceil(max) as usize;
            line.push(shades[idx.min(shades.len() - 1)]);
        }
        line.push(']');
        println!("{line}");
    }
}
