//! Figure 3: replacement frequency in the Register Integration reuse
//! table. Low associativity causes frequent replacements (dark cells in
//! the paper's heatmap); four ways nearly eliminate them.

use mssr_bench::harness::{run_named, HarnessOpts};
use mssr_workloads::Scale;

fn main() {
    let opts = HarnessOpts::parse_args(Scale::Medium);
    print!("{}", run_named(&["fig3"], &opts));
}
