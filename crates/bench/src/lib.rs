//! # mssr-bench
//!
//! The experiment harness: one regenerator per table and figure of the
//! paper. Each experiment declares its cells into the shared grid in
//! [`harness`] (so the `cargo bench` targets and the CLI binaries share
//! code); the binaries print the same rows/series the paper reports.
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — microbenchmark runtime improvements, MSSR streams vs RI ways |
//! | `fig3` | Figure 3 — RI reuse-table replacement frequency by set |
//! | `fig4` | Figure 4 — reconvergence-type breakdown per benchmark |
//! | `table2` | Table 2 — storage model |
//! | `table3` | Table 3 — baseline configuration |
//! | `fig10` | Figure 10 — IPC improvement per stream×WPB configuration |
//! | `fig11` | Figure 11 — reconvergence stream-distance breakdown |
//! | `fig12` | Figure 12 — RI vs RGID on GAP across matched-capacity configurations |
//! | `table4` | Table 4 — synthesis-complexity model |
//! | `rollup` | the artifact's CSV rollup (CFG, BM, CYCLES, diff) |
//! | `ablation` | design-choice ablations called out in DESIGN.md |
//! | `run_all` | everything above as one parallel grid invocation |
//!
//! Every binary accepts the shared harness flags (`--jobs`, `--seed`,
//! `--scale`, `--json`); scale can also come from `MSSR_SCALE` (`test` /
//! `medium` / `large`, default `medium` for binaries; the bench targets
//! always use `test`).

pub mod harness;

use mssr_core::{MssrConfig, MultiStreamReuse, RegisterIntegration, RiConfig};
use mssr_sim::{ReuseEngine, SimConfig, SimStats};
use mssr_workloads::{Scale, Workload};

/// The simulator configuration used by all experiments: the paper's
/// Table 3 baseline, with one documented calibration — 10-bit RGIDs
/// instead of 6.
///
/// The hand-written kernels in `mssr-workloads` concentrate renames on
/// far fewer architectural registers than compiled SPEC code does, so
/// 6-bit generation counters wrap several times faster than they would
/// in the paper's setup, and the global-reset protocol erases reuse
/// state at an unrepresentative rate. Widening the counters restores the
/// paper's effective reset frequency; the `ablation` experiment
/// quantifies the difference, and Table 2's storage model still uses the
/// paper's 6-bit figure.
pub fn experiment_sim_config() -> SimConfig {
    SimConfig { rgid_bits: 10, ..SimConfig::default() }
        .with_max_cycles(400_000_000)
        .with_max_insts(30_000_000)
}

/// Reads the experiment scale from `MSSR_SCALE`.
pub fn scale_from_env(default: Scale) -> Scale {
    match std::env::var("MSSR_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        Ok("medium") => Scale::Medium,
        Ok("large") => Scale::Large,
        _ => default,
    }
}

/// An engine configuration under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineSpec {
    /// No squash reuse.
    Baseline,
    /// Multi-Stream Squash Reuse with `streams` × `log_entries`
    /// Squash Logs (WPB entries = log/4, the paper's §4.1.2 ratio).
    Mssr {
        /// Tracked streams (N).
        streams: usize,
        /// Squash Log entries per stream (P); WPB entries = P/4.
        log_entries: usize,
    },
    /// Register Integration with a `sets` × `ways` reuse table.
    Ri {
        /// Table sets.
        sets: usize,
        /// Table ways.
        ways: usize,
    },
}

impl EngineSpec {
    /// A short label (used in report rows; the artifact's `RCVG_N_M`
    /// naming for MSSR configurations).
    pub fn label(&self) -> String {
        match self {
            EngineSpec::Baseline => "BASE".to_string(),
            EngineSpec::Mssr { streams, log_entries } => {
                format!("RCVG_{streams}_{log_entries}")
            }
            EngineSpec::Ri { sets, ways } => format!("RI_{sets}x{ways}"),
        }
    }

    /// Builds the engine, or `None` for the baseline.
    pub fn build(&self) -> Option<Box<dyn ReuseEngine>> {
        match *self {
            EngineSpec::Baseline => None,
            EngineSpec::Mssr { streams, log_entries } => Some(Box::new(MultiStreamReuse::new(
                MssrConfig::default()
                    .with_streams(streams)
                    .with_log_entries(log_entries)
                    .with_wpb_entries((log_entries / 4).max(4)),
            ))),
            EngineSpec::Ri { sets, ways } => Some(Box::new(RegisterIntegration::new(
                RiConfig::default().with_sets(sets).with_ways(ways),
            ))),
        }
    }
}

/// Runs one workload under one engine spec with the experiment config.
pub fn run_spec(w: &Workload, spec: EngineSpec) -> SimStats {
    w.run(experiment_sim_config(), spec.build())
}

/// Runs one workload with an explicit engine (for ablations).
pub fn run_with(w: &Workload, cfg: SimConfig, engine: Option<Box<dyn ReuseEngine>>) -> SimStats {
    w.run(cfg, engine)
}

/// Percentage improvement of `opt` over `base` in cycle count
/// (positive = faster).
pub fn speedup_pct(base: &SimStats, opt: &SimStats) -> f64 {
    100.0 * (base.cycles as f64 / opt.cycles as f64 - 1.0)
}

/// Renders rows as an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<w$}", c, w = widths[i]));
        }
        s.trim_end().to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&line(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV.
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(EngineSpec::Baseline.label(), "BASE");
        assert_eq!(EngineSpec::Mssr { streams: 4, log_entries: 64 }.label(), "RCVG_4_64");
        assert_eq!(EngineSpec::Ri { sets: 64, ways: 2 }.label(), "RI_64x2");
    }

    #[test]
    fn spec_builds_engines() {
        assert!(EngineSpec::Baseline.build().is_none());
        assert_eq!(
            EngineSpec::Mssr { streams: 2, log_entries: 64 }.build().unwrap().name(),
            "mssr"
        );
        assert_eq!(EngineSpec::Mssr { streams: 1, log_entries: 64 }.build().unwrap().name(), "dci");
        assert_eq!(EngineSpec::Ri { sets: 64, ways: 1 }.build().unwrap().name(), "ri");
    }

    #[test]
    fn speedup_math() {
        let mut a = SimStats::default();
        let mut b = SimStats::default();
        a.cycles = 110;
        b.cycles = 100;
        assert!((speedup_pct(&a, &b) - 10.0).abs() < 1e-9);
        assert!(speedup_pct(&b, &a) < 0.0);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["BM", "CYCLES"],
            &[vec!["bfs".into(), "123".into()], vec!["cc".into(), "45678".into()]],
        );
        assert!(t.contains("BM"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn csv_rendering() {
        let c = render_csv(&["A", "B"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "A,B\n1,2\n");
    }

    #[test]
    fn scale_env_parsing() {
        // No env manipulation (tests run in parallel); just default path.
        assert_eq!(scale_from_env(Scale::Test), Scale::Test);
    }
}
