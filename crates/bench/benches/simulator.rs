//! Simulator-throughput benchmarks: how many simulated instructions per
//! wall-clock second the substrate achieves, with and without a reuse
//! engine — the cost of the mechanism itself, not of what it simulates.
//!
//! Built on the harness's measurement core; pass `--json` for JSON-lines
//! `"bench"` records.

use mssr_bench::harness::{measure, MeasureConfig};
use mssr_core::{MssrConfig, MultiStreamReuse};
use mssr_isa::{regs::*, Assembler, Program};
use mssr_sim::{SimConfig, Simulator};

fn loop_program(iters: i64) -> Program {
    let mut a = Assembler::new();
    a.li(S0, 0);
    a.li(S1, iters);
    a.li(S3, 0x1234_5678);
    a.li(S4, 0x9e3779b97f4a7c15u64 as i64);
    a.label("loop");
    a.mul(S3, S3, S4);
    a.srli(T0, S3, 29);
    a.xor(S3, S3, T0);
    a.andi(T1, S3, 1);
    a.beq(T1, ZERO, "skip");
    a.addi(S2, S2, 1);
    a.label("skip");
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "loop");
    a.halt();
    a.assemble().expect("assembles")
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let iters = 5_000i64;
    let program = loop_program(iters);
    // Committed instructions per run (approximate: ~9 per iteration).
    let insts = 9 * iters as u64;
    let cfg = MeasureConfig { warmup: 3, samples: 20 };
    let baseline = measure("simulator_throughput/baseline", cfg, || {
        let mut sim = Simulator::new(SimConfig::default(), program.clone());
        sim.run()
    });
    let engine = measure("simulator_throughput/mssr_engine", cfg, || {
        let mut sim = Simulator::with_engine(
            SimConfig::default(),
            program.clone(),
            Box::new(MultiStreamReuse::new(MssrConfig::default())),
        );
        sim.run()
    });
    for m in [&baseline, &engine] {
        if json {
            println!("{}", m.json_line());
        } else {
            let minsts_s = insts as f64 / m.median_ns() as f64 * 1e3;
            println!("{}  ({minsts_s:.2} Minsts/s)", m.human());
        }
    }
}
