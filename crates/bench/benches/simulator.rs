//! Simulator-throughput benchmarks: how many simulated instructions per
//! wall-clock second the substrate achieves, with and without a reuse
//! engine — the cost of the mechanism itself, not of what it simulates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mssr_core::{MssrConfig, MultiStreamReuse};
use mssr_isa::{regs::*, Assembler, Program};
use mssr_sim::{SimConfig, Simulator};

fn loop_program(iters: i64) -> Program {
    let mut a = Assembler::new();
    a.li(S0, 0);
    a.li(S1, iters);
    a.li(S3, 0x1234_5678);
    a.li(S4, 0x9e3779b97f4a7c15u64 as i64);
    a.label("loop");
    a.mul(S3, S3, S4);
    a.srli(T0, S3, 29);
    a.xor(S3, S3, T0);
    a.andi(T1, S3, 1);
    a.beq(T1, ZERO, "skip");
    a.addi(S2, S2, 1);
    a.label("skip");
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "loop");
    a.halt();
    a.assemble().expect("assembles")
}

fn bench_throughput(c: &mut Criterion) {
    let iters = 5_000i64;
    let program = loop_program(iters);
    // Committed instructions per run (approximate: ~9 per iteration).
    let insts = 9 * iters as u64;
    let mut g = c.benchmark_group("simulator_throughput");
    g.sample_size(20);
    g.throughput(Throughput::Elements(insts));
    g.bench_function("baseline", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(SimConfig::default(), program.clone());
            sim.run()
        })
    });
    g.bench_function("mssr_engine", |b| {
        b.iter(|| {
            let mut sim = Simulator::with_engine(
                SimConfig::default(),
                program.clone(),
                Box::new(MultiStreamReuse::new(MssrConfig::default())),
            );
            sim.run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
