//! Criterion benches mirroring the paper's experiments, one group per
//! table/figure, at test scale (the `table1`/`fig10`/…` binaries run the
//! full medium-scale sweeps; these benches keep `cargo bench` fast while
//! still exercising every experiment's code path and reporting simulated
//! runtimes as wall-clock measurements).

use criterion::{criterion_group, criterion_main, Criterion};
use mssr_bench::{run_spec, EngineSpec};
use mssr_workloads::{gap, graph::Graph, microbench, spec2006, spec2017};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_microbench");
    g.sample_size(10);
    let nested = microbench::nested_mispred(300);
    let linear = microbench::linear_mispred(300);
    g.bench_function("nested/baseline", |b| {
        b.iter(|| run_spec(&nested, EngineSpec::Baseline))
    });
    g.bench_function("nested/mssr4x64", |b| {
        b.iter(|| run_spec(&nested, EngineSpec::Mssr { streams: 4, log_entries: 64 }))
    });
    g.bench_function("nested/ri64x4", |b| {
        b.iter(|| run_spec(&nested, EngineSpec::Ri { sets: 64, ways: 4 }))
    });
    g.bench_function("linear/mssr4x64", |b| {
        b.iter(|| run_spec(&linear, EngineSpec::Mssr { streams: 4, log_entries: 64 }))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_ri_replacements");
    g.sample_size(10);
    let w = microbench::nested_mispred(300);
    for ways in [1usize, 4] {
        g.bench_function(format!("ri_{ways}way"), |b| {
            b.iter(|| run_spec(&w, EngineSpec::Ri { sets: 64, ways }))
        });
    }
    g.finish();
}

fn bench_fig4_fig11(c: &mut Criterion) {
    // Both figures come from the same profiling run.
    let mut g = c.benchmark_group("fig4_fig11_reconvergence_profile");
    g.sample_size(10);
    let graph = Graph::uniform(128, 6, 12);
    let w = gap::bfs(&graph);
    g.bench_function("bfs/mssr4", |b| {
        b.iter(|| run_spec(&w, EngineSpec::Mssr { streams: 4, log_entries: 64 }))
    });
    let s = spec2006::sjeng(60);
    g.bench_function("sjeng/mssr8", |b| {
        b.iter(|| run_spec(&s, EngineSpec::Mssr { streams: 8, log_entries: 64 }))
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_ipc_sweep");
    g.sample_size(10);
    let graph = Graph::uniform(128, 6, 12);
    let workloads = vec![
        ("astar", spec2006::astar(10)),
        ("leela", spec2017::leela(200)),
        ("bc", gap::bc(&graph)),
    ];
    for (name, w) in &workloads {
        for (streams, wpb) in [(1usize, 16usize), (4, 64)] {
            g.bench_function(format!("{name}/{streams}x{wpb}"), |b| {
                b.iter(|| run_spec(w, EngineSpec::Mssr { streams, log_entries: wpb * 4 }))
            });
        }
    }
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_ri_vs_rgid_gap");
    g.sample_size(10);
    let graph = Graph::uniform(128, 6, 12);
    let w = gap::cc(&graph);
    g.bench_function("cc/rgid2x64", |b| {
        b.iter(|| run_spec(&w, EngineSpec::Mssr { streams: 2, log_entries: 64 }))
    });
    g.bench_function("cc/ri64x2", |b| {
        b.iter(|| run_spec(&w, EngineSpec::Ri { sets: 64, ways: 2 }))
    });
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    // Tables 2 and 4 are analytic; benching them documents their cost is nil.
    let mut g = c.benchmark_group("table2_table4_models");
    g.bench_function("storage_model", |b| {
        b.iter(|| mssr_core::storage::storage(&mssr_core::storage::StorageParams::default()))
    });
    g.bench_function("complexity_model", |b| {
        b.iter(|| mssr_core::complexity::reconvergence_detection(4, 64))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig3,
    bench_fig4_fig11,
    bench_fig10,
    bench_fig12,
    bench_models
);
criterion_main!(benches);
