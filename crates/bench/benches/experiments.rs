//! Harness benches mirroring the paper's experiments, one group per
//! table/figure, at test scale (the `table1`/`fig10`/… binaries run the
//! full medium-scale sweeps; these benches keep `cargo bench` fast while
//! still exercising every experiment's code path and reporting simulated
//! runtimes as wall-clock measurements).
//!
//! Built on the harness's measurement core ([`measure`]): warmup
//! iterations, N samples, median/MAD/min. Pass `--json` for JSON-lines
//! `"bench"` records instead of the human-readable report.

use mssr_bench::harness::{measure, MeasureConfig, Measurement};
use mssr_bench::{run_spec, EngineSpec};
use mssr_workloads::{gap, graph::Graph, microbench, spec2006, spec2017};

fn bench_table1(out: &mut Vec<Measurement>, cfg: MeasureConfig) {
    let nested = microbench::nested_mispred(300);
    let linear = microbench::linear_mispred(300);
    out.push(measure("table1/nested/baseline", cfg, || run_spec(&nested, EngineSpec::Baseline)));
    out.push(measure("table1/nested/mssr4x64", cfg, || {
        run_spec(&nested, EngineSpec::Mssr { streams: 4, log_entries: 64 })
    }));
    out.push(measure("table1/nested/ri64x4", cfg, || {
        run_spec(&nested, EngineSpec::Ri { sets: 64, ways: 4 })
    }));
    out.push(measure("table1/linear/mssr4x64", cfg, || {
        run_spec(&linear, EngineSpec::Mssr { streams: 4, log_entries: 64 })
    }));
}

fn bench_fig3(out: &mut Vec<Measurement>, cfg: MeasureConfig) {
    let w = microbench::nested_mispred(300);
    for ways in [1usize, 4] {
        out.push(measure(format!("fig3/ri_{ways}way"), cfg, || {
            run_spec(&w, EngineSpec::Ri { sets: 64, ways })
        }));
    }
}

fn bench_fig4_fig11(out: &mut Vec<Measurement>, cfg: MeasureConfig) {
    // Both figures come from the same profiling run.
    let graph = Graph::uniform(128, 6, 12);
    let w = gap::bfs(&graph);
    out.push(measure("fig4_fig11/bfs/mssr4", cfg, || {
        run_spec(&w, EngineSpec::Mssr { streams: 4, log_entries: 64 })
    }));
    let s = spec2006::sjeng(60);
    out.push(measure("fig4_fig11/sjeng/mssr8", cfg, || {
        run_spec(&s, EngineSpec::Mssr { streams: 8, log_entries: 64 })
    }));
}

fn bench_fig10(out: &mut Vec<Measurement>, cfg: MeasureConfig) {
    let graph = Graph::uniform(128, 6, 12);
    let workloads = vec![
        ("astar", spec2006::astar(10)),
        ("leela", spec2017::leela(200)),
        ("bc", gap::bc(&graph)),
    ];
    for (name, w) in &workloads {
        for (streams, wpb) in [(1usize, 16usize), (4, 64)] {
            out.push(measure(format!("fig10/{name}/{streams}x{wpb}"), cfg, || {
                run_spec(w, EngineSpec::Mssr { streams, log_entries: wpb * 4 })
            }));
        }
    }
}

fn bench_fig12(out: &mut Vec<Measurement>, cfg: MeasureConfig) {
    let graph = Graph::uniform(128, 6, 12);
    let w = gap::cc(&graph);
    out.push(measure("fig12/cc/rgid2x64", cfg, || {
        run_spec(&w, EngineSpec::Mssr { streams: 2, log_entries: 64 })
    }));
    out.push(measure("fig12/cc/ri64x2", cfg, || {
        run_spec(&w, EngineSpec::Ri { sets: 64, ways: 2 })
    }));
}

fn bench_models(out: &mut Vec<Measurement>, cfg: MeasureConfig) {
    // Tables 2 and 4 are analytic; benching them documents their cost is nil.
    out.push(measure("table2_table4/storage_model", cfg, || {
        mssr_core::storage::storage(&mssr_core::storage::StorageParams::default())
    }));
    out.push(measure("table2_table4/complexity_model", cfg, || {
        mssr_core::complexity::reconvergence_detection(4, 64)
    }));
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cfg = MeasureConfig::default();
    let mut out = Vec::new();
    bench_table1(&mut out, cfg);
    bench_fig3(&mut out, cfg);
    bench_fig4_fig11(&mut out, cfg);
    bench_fig10(&mut out, cfg);
    bench_fig12(&mut out, cfg);
    bench_models(&mut out, cfg);
    for m in &out {
        println!("{}", if json { m.json_line() } else { m.human() });
    }
}
