//! SPECint2017-like synthetic kernels (see the `spec2006` module and
//! `DESIGN.md` for the substitution rationale).
//!
//! | kernel | character it reproduces |
//! |---|---|
//! | `leela` | MCTS playouts: data-dependent descent comparisons — the paper's biggest SPEC2017 winner |
//! | `deepsjeng` | deeper game-tree search with transposition-table traffic |
//! | `xz` | LZ match finding: hash-chain loads adjacent to chain-update stores. Reused loads alias recent stores, provoking verification flushes — the paper observes a slight *slowdown* here |
//! | `mcf_r` / `omnetpp_r` | larger-input variants of the 2006 kernels |
//! | `x264` | block SAD with early-termination branches |

use mssr_isa::{regs::*, Assembler};

use crate::graph::SplitMix64;
use crate::workload::{Check, Suite, Workload};

const RESULT: u64 = 0x8000;
const DATA: u64 = 0x10_0000;

const MIX: u64 = 0x9e3779b97f4a7c15;

fn emit_mix(
    a: &mut Assembler,
    dst: mssr_isa::ArchReg,
    src: mssr_isa::ArchReg,
    kreg: mssr_isa::ArchReg,
    t: mssr_isa::ArchReg,
) {
    a.mul(dst, src, kreg);
    a.srli(t, dst, 29);
    a.xor(dst, dst, t);
}

fn mix_ref(x: u64) -> u64 {
    let t = x.wrapping_mul(MIX);
    t ^ (t >> 29)
}

// ---------------------------------------------------------------------
// leela
// ---------------------------------------------------------------------

/// Monte-Carlo tree search surrogate: repeated descents through a node
/// array choosing children by comparing visit-scaled scores (the UCT
/// comparison — inherently data-dependent), followed by a playout score
/// accumulated back into the tree.
pub fn leela(playouts: u64) -> Workload {
    // A realistically large search tree: the score/visit arrays exceed
    // the caches, so UCT-comparison loads stall and the descent branches
    // resolve late with idle execution slots — giving the wrong path
    // both the time and the bandwidth to execute the next levels'
    // bookkeeping, which is what squash reuse recovers.
    const TREE: u64 = (1 << 18) - 1; // heap-shaped tree, 18 levels
    let score_base = DATA;
    let visit_base = DATA + TREE * 8;
    // Random priors (real MCTS seeds nodes with policy priors): they make
    // the UCT comparison data-dependent from the first playout.
    let mut prior = SplitMix64::new(0x1ee1a);
    let scores: Vec<u64> = (0..TREE).map(|_| prior.next_u64() % 1024).collect();
    let visits: Vec<u64> = (0..TREE).map(|_| prior.next_u64() % 7).collect();
    let mut a = Assembler::new();
    // S0=&score S1=&visits S2=acc S3=hash S4=MIX S5=playouts S6=TREE
    a.li(S0, score_base as i64);
    a.li(S1, visit_base as i64);
    a.li(S2, 0);
    a.li(S3, 0x1ee1a);
    a.li(S4, MIX as i64);
    a.li(S5, playouts as i64);
    a.li(S6, TREE as i64);
    a.li(S7, 0);
    a.li(S8, 0x5ca1ab1e); // per-playout bookkeeping state (CIDI)
    a.li(S9, 0); // depth
    a.label("playout");
    a.bge(S7, S5, "done");
    a.li(T0, 0); // node
    a.li(S9, 0);
    a.label("descend");
    // Tree statistics bookkeeping, common to both children — this is the
    // control-independent work of a descent step (real MCTS updates path
    // statistics regardless of which child the UCT rule picks).
    a.addi(S9, S9, 1);
    a.mul(S8, S8, S4);
    a.add(S8, S8, S9);
    a.srli(S10, S8, 33);
    a.xor(S8, S8, S10);
    // Children of node i: 2i+1, 2i+2; stop at leaves.
    a.slli(T1, T0, 1);
    a.addi(T1, T1, 1); // l
    a.addi(T2, T1, 1); // r
    a.bge(T2, S6, "rollout");
    // UCT-ish: compare score[l]*(visits[r]+1) vs score[r]*(visits[l]+1).
    a.slli(A2, T1, 3);
    a.add(A3, A2, S0);
    a.ld(T3, A3, 0); // score[l]
    a.add(A4, A2, S1);
    a.ld(T4, A4, 0); // visits[l]
    a.slli(A5, T2, 3);
    a.add(A6, A5, S0);
    a.ld(T5, A6, 0); // score[r]
    a.add(A7, A5, S1);
    a.ld(T6, A7, 0); // visits[r]
    a.addi(T6, T6, 1);
    a.mul(T3, T3, T6); // score[l] * (visits[r]+1)
    a.addi(T4, T4, 1);
    a.mul(T5, T5, T4); // score[r] * (visits[l]+1)
                       // Exploration noise (the UCT exploration term): derived from the
                       // control-independent bookkeeping hash, it varies per playout and
                       // keeps the choice hard to predict.
    a.andi(S11, S8, 4095);
    a.add(T3, T3, S11);
    a.bge(T3, T5, "go_left"); // UCT choice: hard to predict
    a.mv(T0, T2);
    a.j("descend");
    a.label("go_left");
    a.mv(T0, T1);
    a.j("descend");
    a.label("rollout");
    // Playout score from the hash; update the leaf's stats.
    emit_mix(&mut a, S3, S3, S4, A2);
    a.andi(T3, S3, 1023);
    a.slli(A3, T0, 3);
    a.add(A4, A3, S0);
    a.ld(A5, A4, 0);
    a.add(A5, A5, T3);
    a.st(A4, A5, 0); // score[leaf] += playout
    a.add(A6, A3, S1);
    a.ld(A7, A6, 0);
    a.addi(A7, A7, 1);
    a.st(A6, A7, 0); // visits[leaf] += 1
    a.add(S2, S2, T3);
    a.add(S2, S2, S8); // fold the bookkeeping state into the result
    a.addi(S7, S7, 1);
    a.j("playout");
    a.label("done");
    a.st(ZERO, S2, RESULT as i64);
    a.halt();

    // Reference.
    let mut score = scores.clone();
    let mut visits = visits.clone();
    let mut state = 0x1ee1au64;
    let mut book = 0x5ca1ab1eu64;
    let mut acc = 0u64;
    for _ in 0..playouts {
        let mut node = 0usize;
        let mut depth = 0u64;
        loop {
            depth += 1;
            book = book.wrapping_mul(MIX).wrapping_add(depth);
            book ^= book >> 33;
            let l = 2 * node + 1;
            let r = 2 * node + 2;
            if r >= TREE as usize {
                break;
            }
            let lv = score[l].wrapping_mul(visits[r] + 1).wrapping_add(book & 4095);
            let rv = score[r].wrapping_mul(visits[l] + 1);
            node = if lv >= rv { l } else { r };
        }
        state = mix_ref(state);
        let playout = state & 1023;
        score[node] = score[node].wrapping_add(playout);
        visits[node] += 1;
        acc = acc.wrapping_add(playout).wrapping_add(book);
    }

    let mut mem = Vec::with_capacity(2 * TREE as usize);
    for i in 0..TREE as usize {
        mem.push((score_base + 8 * i as u64, scores[i]));
        mem.push((visit_base + 8 * i as u64, visits[i]));
    }
    Workload::new(
        format!("leela/{playouts}"),
        Suite::Spec2017,
        a.assemble().expect("leela assembles"),
        mem,
        vec![Check { addr: RESULT, expect: acc, what: "playout accumulator" }],
    )
}

// ---------------------------------------------------------------------
// deepsjeng
// ---------------------------------------------------------------------

/// Deeper game-tree surrogate with a transposition table: each node
/// probes a hash-indexed table (load), prunes on a hit (data-dependent),
/// and stores its result back (store traffic near the probing loads).
pub fn deepsjeng(positions: u64) -> Workload {
    const TT: u64 = 1 << 10;
    let tt_base = DATA;
    let mut a = Assembler::new();
    // S0=&tt S1=TT-1 S2=acc S3=hash S4=MIX S5=positions S6=4 (branching)
    a.li(S0, tt_base as i64);
    a.li(S1, (TT - 1) as i64);
    a.li(S2, 0);
    a.li(S3, 0xdee9);
    a.li(S4, MIX as i64);
    a.li(S5, positions as i64);
    a.li(S6, 4);
    a.li(S7, 0);
    a.label("pos");
    a.bge(S7, S5, "done");
    a.li(S8, 0); // position best
    a.li(T0, 0); // move1
    a.label("l1");
    a.bge(T0, S6, "pnext");
    emit_mix(&mut a, S3, S3, S4, A2);
    // Transposition-table probe.
    a.and(T1, S3, S1);
    a.slli(A3, T1, 3);
    a.add(A3, A3, S0);
    a.ld(T2, A3, 0); // tt entry
    a.srli(T3, S3, 20);
    a.andi(T3, T3, 4095); // expected tag+value
    a.beq(T2, T3, "tt_hit"); // data-dependent hit check
                             // Miss: "search" — an inner loop of hash evals.
    a.li(T4, 0);
    a.li(T5, 0);
    a.label("l2");
    a.bge(T4, S6, "l2done");
    emit_mix(&mut a, S3, S3, S4, A4);
    a.srli(A5, S3, 50);
    a.add(T5, T5, A5);
    // Futility-style cut on the running value.
    a.li(A6, 24000);
    a.blt(T5, A6, "l2go"); // hard to predict
    a.j("l2done");
    a.label("l2go");
    a.addi(T4, T4, 1);
    a.j("l2");
    a.label("l2done");
    a.st(A3, T3, 0); // tt store (aliases future probes)
    a.add(S8, S8, T5);
    a.j("l1next");
    a.label("tt_hit");
    a.add(S8, S8, T2);
    a.label("l1next");
    a.addi(T0, T0, 1);
    a.j("l1");
    a.label("pnext");
    a.add(S2, S2, S8);
    a.addi(S7, S7, 1);
    a.j("pos");
    a.label("done");
    a.st(ZERO, S2, RESULT as i64);
    a.halt();

    // Reference.
    let mut tt = vec![0u64; TT as usize];
    let mut state = 0xdee9u64;
    let mut acc = 0u64;
    for _ in 0..positions {
        let mut best = 0u64;
        for _ in 0..4 {
            state = mix_ref(state);
            let idx = (state & (TT - 1)) as usize;
            let tag = (state >> 20) & 4095;
            if tt[idx] == tag {
                best = best.wrapping_add(tt[idx]);
            } else {
                let mut v = 0u64;
                let mut t4 = 0;
                while t4 < 4 {
                    state = mix_ref(state);
                    v = v.wrapping_add(state >> 50);
                    if v >= 24000 {
                        break;
                    }
                    t4 += 1;
                }
                tt[idx] = tag;
                best = best.wrapping_add(v);
            }
        }
        acc = acc.wrapping_add(best);
    }

    let mem = (0..TT).map(|i| (tt_base + 8 * i, 0)).collect();
    Workload::new(
        format!("deepsjeng/{positions}"),
        Suite::Spec2017,
        a.assemble().expect("deepsjeng assembles"),
        mem,
        vec![Check { addr: RESULT, expect: acc, what: "search accumulator" }],
    )
}

// ---------------------------------------------------------------------
// xz
// ---------------------------------------------------------------------

/// LZ match-finder surrogate: for each input position, probe a hash-chain
/// head (load), compare candidate match words (loads), then update the
/// chain head (store). The chain-head stores frequently alias loads that
/// squash reuse wants to recycle, so reused loads fail verification and
/// flush — reproducing the paper's observed `xz` slowdown.
pub fn xz(positions: u64) -> Workload {
    const HASH_SLOTS: u64 = 32;
    let input_base = DATA;
    let head_base = DATA + 0x8_0000;
    // Compressible pseudo-random input: small alphabet with repeats.
    let mut rng = SplitMix64::new(0x5a5a);
    let n = positions + 8;
    let input: Vec<u64> = (0..n).map(|_| rng.next_u64() % 7).collect();

    let mut a = Assembler::new();
    // S0=&input S1=&head S2=matches S3=pos S4=positions S5=HASH-1 S6=acc
    a.li(S0, input_base as i64);
    a.li(S1, head_base as i64);
    a.li(S2, 0);
    a.li(S3, 0);
    a.li(S4, positions as i64);
    a.li(S5, (HASH_SLOTS - 1) as i64);
    a.li(S6, 0);
    a.li(S7, MIX as i64);
    a.li(S9, MIX as i64);
    a.li(S10, 0xf1de83e19937733du64 as i64); // multiplicative inverse of MIX mod 2^64
    a.label("pos");
    a.bge(S3, S4, "done");
    // h = mix(input[pos] * 8 + input[pos+1]) & mask
    a.slli(A2, S3, 3);
    a.add(A2, A2, S0);
    a.ld(T0, A2, 0);
    a.ld(T1, A2, 8);
    a.slli(T0, T0, 3);
    a.add(T0, T0, T1);
    // A deliberately deep hash chain: the chain-head slot (and thus the
    // chain-update store's address) resolves late, exactly the situation
    // where squashed loads are reused before an older aliasing store has
    // executed (paper §3.8.1).
    a.mul(T0, T0, S7);
    a.srli(T1, T0, 23);
    a.xor(T0, T0, T1);
    a.mul(T0, T0, S7);
    a.srli(T1, T0, 17);
    a.xor(T0, T0, T1);
    a.mul(T0, T0, S7);
    a.srli(T0, T0, 40);
    a.and(T0, T0, S5);
    // Probe chain head.
    a.slli(A3, T0, 3);
    a.add(A3, A3, S1);
    a.ld(T2, A3, 0); // candidate position + 1 (0 = empty)
    a.beq(T2, ZERO, "update"); // empty slot: data-dependent
    a.addi(T2, T2, -1);
    // Match-length loop: compare words at cand and pos.
    a.li(T3, 0); // len
    a.label("mlen");
    a.li(A4, 4);
    a.bge(T3, A4, "mdone");
    a.add(A5, T2, T3);
    a.slli(A5, A5, 3);
    a.add(A5, A5, S0);
    a.ld(A6, A5, 0);
    a.add(A7, S3, T3);
    a.slli(A7, A7, 3);
    a.add(A7, A7, S0);
    a.ld(T4, A7, 0);
    a.bne(A6, T4, "mdone"); // data-dependent match test
    a.addi(T3, T3, 1);
    a.j("mlen");
    a.label("mdone");
    a.add(S6, S6, T3);
    a.beq(T3, ZERO, "update");
    a.addi(S2, S2, 1);
    // Mark the matched position (LZ output rewrites the window) — this
    // read-modify-write aliases the match-loop loads of later positions,
    // which is what trips reused-load verification.
    a.ld(A4, A2, 0);
    a.ori(A4, A4, 0x100);
    a.st(A2, A4, 0);
    a.label("update");
    // head[h] = pos + 1 — the store that aliases future probes. Its
    // address goes through a slow multiplicative-inverse identity
    // (h * MIX * MIX⁻¹ * MIX * MIX⁻¹ == h), so the store's address
    // resolves ~12 cycles after the probes — younger probe loads run
    // ahead of it, and their squashed results go stale.
    a.mul(A5, T0, S9);
    a.mul(A5, A5, S10);
    a.mul(A5, A5, S9);
    a.mul(A5, A5, S10);
    a.slli(A5, A5, 3);
    a.add(A5, A5, S1);
    a.addi(T5, S3, 1);
    a.st(A5, T5, 0);
    a.addi(S3, S3, 1);
    a.j("pos");
    a.label("done");
    a.st(ZERO, S2, RESULT as i64);
    a.st(ZERO, S6, (RESULT + 8) as i64);
    a.halt();

    // Reference (mutating a copy of the input, like the kernel does).
    let mut buf = input.clone();
    let mut head = vec![0u64; HASH_SLOTS as usize];
    let mut matches = 0u64;
    let mut total_len = 0u64;
    for pos in 0..positions {
        let mut h =
            buf[pos as usize].wrapping_mul(8).wrapping_add(buf[pos as usize + 1]).wrapping_mul(MIX);
        h ^= h >> 23;
        h = h.wrapping_mul(MIX);
        h ^= h >> 17;
        h = h.wrapping_mul(MIX);
        h = (h >> 40) & (HASH_SLOTS - 1);
        let cand = head[h as usize];
        if cand != 0 {
            let cand = cand - 1;
            let mut len = 0u64;
            while len < 4 && buf[(cand + len) as usize] == buf[(pos + len) as usize] {
                len += 1;
            }
            total_len += len;
            if len > 0 {
                matches += 1;
                buf[pos as usize] |= 0x100;
            }
        }
        head[h as usize] = pos + 1;
    }

    let mut mem: Vec<(u64, u64)> =
        input.iter().enumerate().map(|(i, &v)| (input_base + 8 * i as u64, v)).collect();
    for i in 0..HASH_SLOTS {
        mem.push((head_base + 8 * i, 0));
    }
    Workload::new(
        format!("xz/{positions}"),
        Suite::Spec2017,
        a.assemble().expect("xz assembles"),
        mem,
        vec![
            Check { addr: RESULT, expect: matches, what: "match count" },
            Check { addr: RESULT + 8, expect: total_len, what: "total match length" },
        ],
    )
}

// ---------------------------------------------------------------------
// mcf_r / omnetpp_r
// ---------------------------------------------------------------------

/// The 2017 `mcf_r`: the same pointer-chasing surrogate with a larger
/// working set.
pub fn mcf_r(nodes: usize, steps: u64) -> Workload {
    crate::spec2006::mcf(nodes, steps).renamed(format!("mcf_r/{nodes}"), Suite::Spec2017)
}

/// The 2017 `omnetpp_r`: the event-queue surrogate with a larger queue.
pub fn omnetpp_r(slots: usize, events: u64) -> Workload {
    crate::spec2006::omnetpp(slots, events).renamed(format!("omnetpp_r/{events}"), Suite::Spec2017)
}

// ---------------------------------------------------------------------
// x264
// ---------------------------------------------------------------------

/// Motion-estimation surrogate: sum-of-absolute-differences over
/// candidate blocks with an early-termination branch once the partial
/// SAD exceeds the current best.
pub fn x264(blocks: u64) -> Workload {
    const FRAME: u64 = 4096;
    const BLOCK: u64 = 16;
    const CANDS: u64 = 8;
    let frame_base = DATA;
    let mut rng = SplitMix64::new(0x264);
    // A frame with local similarity: values drift slowly.
    let mut cur = 128i64;
    let frame: Vec<u64> = (0..FRAME)
        .map(|_| {
            cur += (rng.next_u64() % 9) as i64 - 4;
            cur = cur.clamp(0, 255);
            cur as u64
        })
        .collect();

    let mut a = Assembler::new();
    // S0=&frame S1=acc S2=hash S3=MIX S4=blocks S5=BLOCK S6=CANDS
    a.li(S0, frame_base as i64);
    a.li(S1, 0);
    a.li(S2, 0x8264);
    a.li(S3, MIX as i64);
    a.li(S4, blocks as i64);
    a.li(S5, BLOCK as i64);
    a.li(S6, CANDS as i64);
    a.li(S7, 0);
    a.label("block");
    a.bge(S7, S4, "done");
    emit_mix(&mut a, S2, S2, S3, A2);
    a.li(T6, (FRAME - 2 * BLOCK - 256) as i64);
    a.srli(S8, S2, 8); // positive dividend for the signed rem
    a.rem(S8, S8, T6); // block start
    a.li(S9, i64::MAX); // best SAD
    a.li(T0, 0); // candidate index
    a.label("cand");
    a.bge(T0, S6, "bnext");
    // Candidate offset: start + 16 + cand*29 (within bounds).
    a.li(A3, 29);
    a.mul(A3, T0, A3);
    a.add(A3, A3, S8);
    a.addi(A3, A3, 16); // candidate start
    a.li(T1, 0); // i
    a.li(T2, 0); // sad
    a.label("sad");
    a.bge(T1, S5, "sdone");
    a.add(A4, S8, T1);
    a.slli(A4, A4, 3);
    a.add(A4, A4, S0);
    a.ld(A5, A4, 0); // frame[start+i]
    a.add(A6, A3, T1);
    a.slli(A6, A6, 3);
    a.add(A6, A6, S0);
    a.ld(A7, A6, 0); // frame[cand+i]
    a.sub(A5, A5, A7);
    a.srai(A6, A5, 63);
    a.xor(A5, A5, A6);
    a.sub(A5, A5, A6); // |diff|
    a.add(T2, T2, A5);
    a.bge(T2, S9, "sdone"); // early termination: data-dependent
    a.addi(T1, T1, 1);
    a.j("sad");
    a.label("sdone");
    a.bge(T2, S9, "cnext");
    a.mv(S9, T2); // new best
    a.label("cnext");
    a.addi(T0, T0, 1);
    a.j("cand");
    a.label("bnext");
    a.add(S1, S1, S9);
    a.addi(S7, S7, 1);
    a.j("block");
    a.label("done");
    a.st(ZERO, S1, RESULT as i64);
    a.halt();

    // Reference.
    let mut state = 0x8264u64;
    let mut acc = 0u64;
    for _ in 0..blocks {
        state = mix_ref(state);
        let start = ((state >> 8) % (FRAME - 2 * BLOCK - 256)) as usize;
        let mut best = u64::MAX >> 1; // i64::MAX
        for c in 0..CANDS {
            let cand = start + 16 + (c * 29) as usize;
            let mut sad = 0u64;
            let mut i = 0usize;
            while i < BLOCK as usize {
                let d = frame[start + i] as i64 - frame[cand + i] as i64;
                sad += d.unsigned_abs();
                if sad >= best {
                    break;
                }
                i += 1;
            }
            if sad < best {
                best = sad;
            }
        }
        acc = acc.wrapping_add(best);
    }

    let mem = frame.iter().enumerate().map(|(i, &v)| (frame_base + 8 * i as u64, v)).collect();
    Workload::new(
        format!("x264/{blocks}"),
        Suite::Spec2017,
        a.assemble().expect("x264 assembles"),
        mem,
        vec![Check { addr: RESULT, expect: acc, what: "SAD accumulator" }],
    )
}

// ---------------------------------------------------------------------
// exchange2
// ---------------------------------------------------------------------

/// Backtracking-search surrogate for `exchange2` (a Sudoku solver):
/// iterative N-queens with one board cell banned per round. Backtracking
/// search is dominated by deeply data-dependent conflict-test branches —
/// among the hardest control flow for any predictor.
pub fn exchange2(n: usize, rounds: u64) -> Workload {
    let pos_base = DATA; // pos[row]: current column per row (-1 = unplaced)
    let mut a = Assembler::new();
    // S0=&pos S1=n S2=solutions S3=banned_row S4=banned_col S5=round
    // S6=rounds S7=-1
    a.li(S0, pos_base as i64);
    a.li(S1, n as i64);
    a.li(S2, 0);
    a.li(S5, 0);
    a.li(S6, rounds as i64);
    a.li(S7, -1);
    a.label("round");
    a.bge(S5, S6, "done");
    // Ban cell (round % n, (round / n) % n).
    a.rem(S3, S5, S1);
    a.div(S4, S5, S1);
    a.rem(S4, S4, S1);
    // pos[] = -1.
    a.li(T0, 0);
    a.label("clear");
    a.bge(T0, S1, "search");
    a.slli(A2, T0, 3);
    a.add(A2, A2, S0);
    a.st(A2, S7, 0);
    a.addi(T0, T0, 1);
    a.j("clear");
    a.label("search");
    a.li(T0, 0); // row
    a.label("advance");
    a.blt(T0, ZERO, "rnext"); // backtracked past row 0: done
    a.bge(T0, S1, "solution");
    // pos[row] += 1.
    a.slli(A3, T0, 3);
    a.add(A3, A3, S0);
    a.ld(T1, A3, 0);
    a.addi(T1, T1, 1);
    a.st(A3, T1, 0);
    a.bge(T1, S1, "exhausted"); // no columns left in this row
                                // The banned cell is unusable.
    a.bne(T0, S3, "conflicts");
    a.beq(T1, S4, "advance");
    a.label("conflicts");
    // Check against rows 0..row.
    a.li(T2, 0); // r
    a.label("chk");
    a.bge(T2, T0, "place"); // all prior rows checked: placeable
    a.slli(A4, T2, 3);
    a.add(A4, A4, S0);
    a.ld(T3, A4, 0); // pos[r]
    a.beq(T3, T1, "advance"); // same column: conflict (hard to predict)
    a.sub(A5, T0, T2); // row distance
    a.sub(A6, T1, T3); // column distance
    a.beq(A6, A5, "advance"); // same diagonal
    a.sub(A7, T3, T1);
    a.beq(A7, A5, "advance"); // other diagonal
    a.addi(T2, T2, 1);
    a.j("chk");
    a.label("place");
    a.addi(T0, T0, 1);
    a.j("advance");
    a.label("exhausted");
    a.st(A3, S7, 0); // reset this row
    a.addi(T0, T0, -1); // backtrack
    a.j("advance");
    a.label("solution");
    a.addi(S2, S2, 1);
    a.addi(T0, T0, -1); // keep searching for more solutions
    a.j("advance");
    a.label("rnext");
    a.addi(S5, S5, 1);
    a.j("round");
    a.label("done");
    a.st(ZERO, S2, RESULT as i64);
    a.halt();

    // Reference: identical iterative search.
    let mut solutions = 0u64;
    for round in 0..rounds {
        let banned_row = (round % n as u64) as i64;
        let banned_col = ((round / n as u64) % n as u64) as i64;
        let mut pos = vec![-1i64; n];
        let mut row = 0i64;
        loop {
            if row < 0 {
                break;
            }
            if row >= n as i64 {
                solutions += 1;
                row -= 1;
                continue;
            }
            pos[row as usize] += 1;
            let col = pos[row as usize];
            if col >= n as i64 {
                pos[row as usize] = -1;
                row -= 1;
                continue;
            }
            if row == banned_row && col == banned_col {
                continue;
            }
            let mut ok = true;
            for r in 0..row {
                let c = pos[r as usize];
                if c == col || col - c == row - r || c - col == row - r {
                    ok = false;
                    break;
                }
            }
            if ok {
                row += 1;
            }
        }
    }

    let mem = (0..n).map(|i| (pos_base + 8 * i as u64, 0)).collect();
    Workload::new(
        format!("exchange2/{n}x{rounds}"),
        Suite::Spec2017,
        a.assemble().expect("exchange2 assembles"),
        mem,
        vec![Check { addr: RESULT, expect: solutions, what: "solution count" }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_core::{MssrConfig, MultiStreamReuse};
    use mssr_sim::SimConfig;

    fn cfg() -> SimConfig {
        SimConfig::default().with_max_cycles(30_000_000)
    }

    #[test]
    fn exchange2_is_correct() {
        // 6-queens with banned cells across 6 rounds.
        exchange2(6, 6).run(cfg(), None);
        exchange2(6, 3).run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
    }

    #[test]
    fn exchange2_counts_classic_queens() {
        // With the banned cell outside reachable play... instead check a
        // known value: 6-queens has 4 solutions on a free board; banning
        // one cell per round only removes solutions using that cell.
        // Verified directly against the Rust reference by Workload::run;
        // here we additionally pin the free-board count via a 1-round run
        // whose banned cell is never used by any solution.
        let w = exchange2(6, 1); // bans (0,0); no 6-queens solution uses it
        let mut sim = w.instantiate(cfg());
        sim.run();
        w.verify(&sim).unwrap();
        assert_eq!(sim.read_mem_u64(0x8000), 4, "6-queens has 4 solutions");
    }

    #[test]
    fn leela_is_correct() {
        leela(300).run(cfg(), None);
    }

    #[test]
    fn deepsjeng_is_correct() {
        deepsjeng(200).run(cfg(), None);
    }

    #[test]
    fn xz_is_correct() {
        xz(1500).run(cfg(), None);
    }

    #[test]
    fn mcf_r_is_correct() {
        mcf_r(4096, 3000).run(cfg(), None);
    }

    #[test]
    fn omnetpp_r_is_correct() {
        omnetpp_r(32, 300).run(cfg(), None);
    }

    #[test]
    fn x264_is_correct() {
        x264(60).run(cfg(), None);
    }

    #[test]
    fn xz_provokes_memory_hazards_under_reuse() {
        let stats =
            xz(3000).run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
        // The chain-head stores aliasing reused loads must surface as
        // verification flushes or memory-order replays (or suppress load
        // reuse entirely); the kernel exists to exercise that path.
        assert!(
            stats.flushes_reuse_verify + stats.flushes_mem_order > 0
                || stats.engine.reused_loads == 0,
            "expected memory-hazard activity under reuse"
        );
    }

    #[test]
    fn kernels_survive_reuse_engine() {
        for w in [leela(150), deepsjeng(100), x264(30)] {
            w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
        }
    }
}
