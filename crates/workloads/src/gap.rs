//! GAP-style graph kernels, hand-written in the toy ISA.
//!
//! Unlike the SPEC-like kernels (which are synthetic stand-ins), these are
//! the *real* algorithms of the GAP suite — breadth-first search,
//! betweenness centrality, connected components, PageRank, single-source
//! shortest paths and triangle counting — running over a seeded random
//! graph in simulated memory. Their data-dependent branches (frontier
//! membership tests, relaxation comparisons, merge-intersection ordering)
//! are exactly what makes the GAP suite hard to predict.
//!
//! Every kernel's architectural results are checked against a Rust
//! reference that mirrors the assembly's traversal order instruction for
//! instruction.

use mssr_isa::{regs::*, Assembler};

use crate::graph::Graph;
use crate::workload::{Check, Suite, Workload};

/// CSR row offsets.
const ROW: u64 = 0x10_0000;
/// CSR column indices.
const COL: u64 = 0x20_0000;
/// Edge weights.
const WT: u64 = 0x30_0000;
/// First per-vertex array (parent / comp / dist / rank / level).
const A1: u64 = 0x40_0000;
/// Second per-vertex array (next ranks / sigma).
const A2ARR: u64 = 0x48_0000;
/// Third per-vertex array (delta).
const A3ARR: u64 = 0x50_0000;
/// Work queue.
const Q: u64 = 0x60_0000;
/// Results.
const RESULT: u64 = 0x8000;

/// Picks a deterministic source vertex with non-zero degree.
fn pick_source(g: &Graph) -> usize {
    (0..g.n()).find(|&u| g.degree(u) > 0).expect("graph has at least one edge")
}

fn graph_mem(g: &Graph) -> Vec<(u64, u64)> {
    g.mem_image(ROW, COL, WT)
}

// ---------------------------------------------------------------------
// bfs
// ---------------------------------------------------------------------

/// Breadth-first search from a fixed source: parent assignment over an
/// explicit frontier queue. The `parent[v] == -1` visited test is the
/// hard-to-predict branch.
pub fn bfs(g: &Graph) -> Workload {
    let src = pick_source(g);
    let mut a = Assembler::new();
    // S0=&row S1=&col S2=&parent S3=&queue S4=head S5=tail S6=checksum S7=-1
    a.li(S0, ROW as i64);
    a.li(S1, COL as i64);
    a.li(S2, A1 as i64);
    a.li(S3, Q as i64);
    a.li(S4, 0);
    a.li(S5, 1);
    a.li(S6, 0);
    a.li(S7, -1);
    a.label("outer");
    a.beq(S4, S5, "done");
    a.slli(A2, S4, 3);
    a.add(A2, A2, S3);
    a.ld(T0, A2, 0); // u = q[head]
    a.addi(S4, S4, 1);
    a.slli(A3, T0, 3);
    a.add(A3, A3, S0);
    a.ld(T1, A3, 0); // e = row[u]
    a.ld(T2, A3, 8); // end = row[u+1]
    a.label("eloop");
    a.bge(T1, T2, "outer");
    a.slli(A4, T1, 3);
    a.add(A4, A4, S1);
    a.ld(T3, A4, 0); // v = col[e]
    a.slli(T4, T3, 3);
    a.add(T4, T4, S2); // &parent[v]
    a.ld(A5, T4, 0);
    a.bne(A5, S7, "skip"); // visited? (hard to predict)
    a.st(T4, T0, 0); // parent[v] = u
    a.slli(A6, S5, 3);
    a.add(A6, A6, S3);
    a.st(A6, T3, 0); // q[tail] = v
    a.addi(S5, S5, 1);
    a.add(S6, S6, T3);
    a.add(S6, S6, T0); // checksum += v + u
    a.label("skip");
    a.addi(T1, T1, 1);
    a.j("eloop");
    a.label("done");
    a.st(ZERO, S5, RESULT as i64);
    a.st(ZERO, S6, (RESULT + 8) as i64);
    a.halt();

    // Reference (mirrors traversal order exactly).
    let mut parent = vec![-1i64; g.n()];
    parent[src] = src as i64;
    let mut q = vec![src as u64];
    let mut checksum = 0u64;
    let mut head = 0;
    while head < q.len() {
        let u = q[head] as usize;
        head += 1;
        for (v, _) in g.neighbors(u) {
            if parent[v as usize] == -1 {
                parent[v as usize] = u as i64;
                q.push(v);
                checksum = checksum.wrapping_add(v).wrapping_add(u as u64);
            }
        }
    }

    let mut mem = graph_mem(g);
    for v in 0..g.n() {
        mem.push((A1 + 8 * v as u64, -1i64 as u64));
    }
    mem.push((A1 + 8 * src as u64, src as u64));
    mem.push((Q, src as u64));
    Workload::new(
        format!("bfs/{}", g.n()),
        Suite::Gap,
        a.assemble().expect("bfs assembles"),
        mem,
        vec![
            Check { addr: RESULT, expect: q.len() as u64, what: "visited count" },
            Check { addr: RESULT + 8, expect: checksum, what: "parent checksum" },
        ],
    )
}

// ---------------------------------------------------------------------
// cc
// ---------------------------------------------------------------------

/// Connected components by label propagation to a fixpoint. The
/// `comp[v] < comp[u]` comparison is data-dependent and hard to predict
/// in early rounds.
pub fn cc(g: &Graph) -> Workload {
    let mut a = Assembler::new();
    // S0=&row S1=&col S2=&comp S3=n S4=changed S5=checksum
    a.li(S0, ROW as i64);
    a.li(S1, COL as i64);
    a.li(S2, A1 as i64);
    a.li(S3, g.n() as i64);
    a.label("outer");
    a.li(S4, 0);
    a.li(T0, 0); // u
    a.label("uloop");
    a.bge(T0, S3, "check");
    a.slli(A2, T0, 3);
    a.add(A2, A2, S0);
    a.ld(T1, A2, 0); // e
    a.ld(T2, A2, 8); // end
    a.slli(A3, T0, 3);
    a.add(A3, A3, S2); // &comp[u]
    a.ld(T3, A3, 0); // cu
    a.label("eloop");
    a.bge(T1, T2, "unext");
    a.slli(A4, T1, 3);
    a.add(A4, A4, S1);
    a.ld(T4, A4, 0); // v
    a.slli(A5, T4, 3);
    a.add(A5, A5, S2);
    a.ld(T5, A5, 0); // cv
    a.bge(T5, T3, "noupd"); // cv < cu ? (hard to predict early)
    a.mv(T3, T5);
    a.st(A3, T3, 0); // comp[u] = cv
    a.li(S4, 1);
    a.label("noupd");
    a.addi(T1, T1, 1);
    a.j("eloop");
    a.label("unext");
    a.addi(T0, T0, 1);
    a.j("uloop");
    a.label("check");
    a.bne(S4, ZERO, "outer");
    // Checksum pass.
    a.li(T0, 0);
    a.li(S5, 0);
    a.label("sloop");
    a.bge(T0, S3, "done");
    a.slli(A6, T0, 3);
    a.add(A6, A6, S2);
    a.ld(A7, A6, 0);
    a.add(S5, S5, A7);
    a.addi(T0, T0, 1);
    a.j("sloop");
    a.label("done");
    a.st(ZERO, S5, RESULT as i64);
    a.halt();

    // Reference: identical in-place propagation order.
    let mut comp: Vec<u64> = (0..g.n() as u64).collect();
    loop {
        let mut changed = false;
        for u in 0..g.n() {
            let mut cu = comp[u];
            for (v, _) in g.neighbors(u) {
                let cv = comp[v as usize];
                if cv < cu {
                    cu = cv;
                    comp[u] = cv;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let checksum: u64 = comp.iter().fold(0u64, |s, &c| s.wrapping_add(c));

    let mut mem = graph_mem(g);
    for v in 0..g.n() {
        mem.push((A1 + 8 * v as u64, v as u64));
    }
    Workload::new(
        format!("cc/{}", g.n()),
        Suite::Gap,
        a.assemble().expect("cc assembles"),
        mem,
        vec![Check { addr: RESULT, expect: checksum, what: "component checksum" }],
    )
}

// ---------------------------------------------------------------------
// sssp
// ---------------------------------------------------------------------

const INF: u64 = 1 << 40;

/// Single-source shortest paths by Bellman-Ford rounds to a fixpoint.
/// The relaxation comparison `dist[u] + w < dist[v]` is the
/// hard-to-predict branch.
pub fn sssp(g: &Graph) -> Workload {
    let src = pick_source(g);
    let mut a = Assembler::new();
    // S0=&row S1=&col S2=&dist S3=n S4=changed S5=&wt S7=INF
    a.li(S0, ROW as i64);
    a.li(S1, COL as i64);
    a.li(S2, A1 as i64);
    a.li(S3, g.n() as i64);
    a.li(S5, WT as i64);
    a.li(S7, INF as i64);
    a.label("outer");
    a.li(S4, 0);
    a.li(T0, 0);
    a.label("uloop");
    a.bge(T0, S3, "check");
    a.slli(A2, T0, 3);
    a.add(A2, A2, S0);
    a.ld(T1, A2, 0);
    a.ld(T2, A2, 8);
    a.slli(A3, T0, 3);
    a.add(A3, A3, S2);
    a.ld(T3, A3, 0); // du
    a.beq(T3, S7, "unext"); // unreached vertices have nothing to relax
    a.label("eloop");
    a.bge(T1, T2, "unext");
    a.slli(A4, T1, 3);
    a.add(A4, A4, S1);
    a.ld(T4, A4, 0); // v
    a.slli(A5, T1, 3);
    a.add(A5, A5, S5);
    a.ld(T5, A5, 0); // w
    a.add(T5, T3, T5); // nd = du + w
    a.slli(A6, T4, 3);
    a.add(A6, A6, S2);
    a.ld(A7, A6, 0); // dv
    a.bge(T5, A7, "norelax"); // nd < dv ? (hard to predict)
    a.st(A6, T5, 0);
    a.li(S4, 1);
    a.label("norelax");
    a.addi(T1, T1, 1);
    a.j("eloop");
    a.label("unext");
    a.addi(T0, T0, 1);
    a.j("uloop");
    a.label("check");
    a.bne(S4, ZERO, "outer");
    // Checksum pass.
    a.li(T0, 0);
    a.li(S6, 0);
    a.label("sloop");
    a.bge(T0, S3, "done");
    a.slli(A2, T0, 3);
    a.add(A2, A2, S2);
    a.ld(A3, A2, 0);
    a.add(S6, S6, A3);
    a.addi(T0, T0, 1);
    a.j("sloop");
    a.label("done");
    a.st(ZERO, S6, RESULT as i64);
    a.halt();

    // Reference: identical sequential relaxation order.
    let mut dist = vec![INF; g.n()];
    dist[src] = 0;
    loop {
        let mut changed = false;
        for u in 0..g.n() {
            let du = dist[u];
            if du == INF {
                continue;
            }
            for (v, w) in g.neighbors(u) {
                let nd = du + w;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let checksum: u64 = dist.iter().fold(0u64, |s, &d| s.wrapping_add(d));

    let mut mem = graph_mem(g);
    for v in 0..g.n() {
        mem.push((A1 + 8 * v as u64, INF));
    }
    mem.push((A1 + 8 * src as u64, 0));
    Workload::new(
        format!("sssp/{}", g.n()),
        Suite::Gap,
        a.assemble().expect("sssp assembles"),
        mem,
        vec![Check { addr: RESULT, expect: checksum, what: "distance checksum" }],
    )
}

// ---------------------------------------------------------------------
// pr
// ---------------------------------------------------------------------

/// Fixed-point scale for PageRank ranks.
const PR_SCALE: u64 = 1 << 20;
/// Push-style PageRank iterations.
const PR_ROUNDS: i64 = 3;

/// PageRank, push style, in fixed-point arithmetic. Memory-bound with
/// predictable loop branches — the paper's `pr` shows essentially no
/// squash-reuse benefit, and this kernel reproduces that character.
pub fn pr(g: &Graph) -> Workload {
    let n = g.n() as u64;
    let base = (PR_SCALE * 15 / 100) / n;
    let mut a = Assembler::new();
    // S0=&row S1=&col S2=&rank S3=n S5=&next S6=base S8=85 S9=100 S10=rounds
    a.li(S0, ROW as i64);
    a.li(S1, COL as i64);
    a.li(S2, A1 as i64);
    a.li(S3, g.n() as i64);
    a.li(S5, A2ARR as i64);
    a.li(S6, base as i64);
    a.li(S8, 85);
    a.li(S9, 100);
    a.li(S10, PR_ROUNDS);
    a.label("kloop");
    // next[] = base
    a.li(T0, 0);
    a.label("iloop");
    a.bge(T0, S3, "push");
    a.slli(A2, T0, 3);
    a.add(A2, A2, S5);
    a.st(A2, S6, 0);
    a.addi(T0, T0, 1);
    a.j("iloop");
    a.label("push");
    a.li(T0, 0);
    a.label("uloop");
    a.bge(T0, S3, "swap");
    a.slli(A3, T0, 3);
    a.add(A3, A3, S0);
    a.ld(T1, A3, 0);
    a.ld(T2, A3, 8);
    a.sub(T3, T2, T1); // deg
    a.beq(T3, ZERO, "unext");
    a.slli(A4, T0, 3);
    a.add(A4, A4, S2);
    a.ld(T4, A4, 0); // rank[u]
    a.mul(T4, T4, S8);
    a.div(T4, T4, S9);
    a.div(T4, T4, T3); // contrib
    a.label("eloop");
    a.bge(T1, T2, "unext");
    a.slli(A5, T1, 3);
    a.add(A5, A5, S1);
    a.ld(T5, A5, 0); // v
    a.slli(A6, T5, 3);
    a.add(A6, A6, S5);
    a.ld(A7, A6, 0);
    a.add(A7, A7, T4);
    a.st(A6, A7, 0); // next[v] += contrib
    a.addi(T1, T1, 1);
    a.j("eloop");
    a.label("unext");
    a.addi(T0, T0, 1);
    a.j("uloop");
    a.label("swap");
    a.mv(T6, S2);
    a.mv(S2, S5);
    a.mv(S5, T6);
    a.addi(S10, S10, -1);
    a.bne(S10, ZERO, "kloop");
    // Checksum over the final rank array (in S2 after the swaps).
    a.li(T0, 0);
    a.li(S11, 0);
    a.label("sloop");
    a.bge(T0, S3, "done");
    a.slli(A2, T0, 3);
    a.add(A2, A2, S2);
    a.ld(A3, A2, 0);
    a.add(S11, S11, A3);
    a.addi(T0, T0, 1);
    a.j("sloop");
    a.label("done");
    a.st(ZERO, S11, RESULT as i64);
    a.halt();

    // Reference.
    let mut rank = vec![PR_SCALE / n; g.n()];
    let mut next = vec![0u64; g.n()];
    for _ in 0..PR_ROUNDS {
        next.iter_mut().for_each(|x| *x = base);
        #[allow(clippy::needless_range_loop)] // u is a vertex id, not just an index
        for u in 0..g.n() {
            let deg = g.degree(u) as u64;
            if deg == 0 {
                continue;
            }
            let contrib = rank[u] * 85 / 100 / deg;
            for (v, _) in g.neighbors(u) {
                next[v as usize] += contrib;
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    let checksum: u64 = rank.iter().fold(0u64, |s, &r| s.wrapping_add(r));

    let mut mem = graph_mem(g);
    for v in 0..g.n() {
        mem.push((A1 + 8 * v as u64, PR_SCALE / n));
    }
    Workload::new(
        format!("pr/{}", g.n()),
        Suite::Gap,
        a.assemble().expect("pr assembles"),
        mem,
        vec![Check { addr: RESULT, expect: checksum, what: "rank checksum" }],
    )
}

// ---------------------------------------------------------------------
// tc
// ---------------------------------------------------------------------

/// Triangle counting by sorted-adjacency merge intersection. The
/// three-way merge comparisons are inherently data-dependent.
pub fn tc(g: &Graph) -> Workload {
    let mut a = Assembler::new();
    // S0=&row S1=&col S2=count S3=n
    // per-u: A2=&row[u], S4=edge cursor, S5=row[u+1]
    a.li(S0, ROW as i64);
    a.li(S1, COL as i64);
    a.li(S2, 0);
    a.li(S3, g.n() as i64);
    a.li(T0, 0); // u
    a.label("uloop");
    a.bge(T0, S3, "done");
    a.slli(S8, T0, 3);
    a.add(S8, S8, S0); // &row[u] (stable across the v loop)
    a.ld(S4, S8, 0); // ue cursor
    a.ld(S5, S8, 8); // uend
    a.label("vloop");
    a.bge(S4, S5, "unext");
    a.slli(A3, S4, 3);
    a.add(A3, A3, S1);
    a.ld(T1, A3, 0); // v
    a.bge(T0, T1, "vskip"); // only v > u
                            // Merge-intersect adj[u] with adj[v].
    a.ld(T2, S8, 0); // i = row[u]
    a.slli(A4, T1, 3);
    a.add(A4, A4, S0);
    a.ld(T3, A4, 0); // j = row[v]
    a.ld(S6, A4, 8); // jend
    a.label("merge");
    a.bge(T2, S5, "vskip");
    a.bge(T3, S6, "vskip");
    a.slli(A5, T2, 3);
    a.add(A5, A5, S1);
    a.ld(T4, A5, 0); // w1 = col[i]
    a.slli(A6, T3, 3);
    a.add(A6, A6, S1);
    a.ld(T5, A6, 0); // w2 = col[j]
    a.beq(T4, T5, "eq");
    a.blt(T4, T5, "ilt"); // merge order: hard to predict
    a.addi(T3, T3, 1);
    a.j("merge");
    a.label("ilt");
    a.addi(T2, T2, 1);
    a.j("merge");
    a.label("eq");
    // Common neighbor w1; count triangles (u < v < w) once.
    a.bge(T1, T4, "nocount");
    a.addi(S2, S2, 1);
    a.label("nocount");
    a.addi(T2, T2, 1);
    a.addi(T3, T3, 1);
    a.j("merge");
    a.label("vskip");
    a.addi(S4, S4, 1);
    a.j("vloop");
    a.label("unext");
    a.addi(T0, T0, 1);
    a.j("uloop");
    a.label("done");
    a.st(ZERO, S2, RESULT as i64);
    a.halt();

    // Reference.
    let mut count = 0u64;
    for u in 0..g.n() {
        for (v, _) in g.neighbors(u) {
            if v <= u as u64 {
                continue;
            }
            let au: Vec<u64> = g.neighbors(u).map(|(x, _)| x).collect();
            let av: Vec<u64> = g.neighbors(v as usize).map(|(x, _)| x).collect();
            let (mut i, mut j) = (0, 0);
            while i < au.len() && j < av.len() {
                match au[i].cmp(&av[j]) {
                    std::cmp::Ordering::Equal => {
                        if au[i] > v {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                }
            }
        }
    }

    Workload::new(
        format!("tc/{}", g.n()),
        Suite::Gap,
        a.assemble().expect("tc assembles"),
        graph_mem(g),
        vec![Check { addr: RESULT, expect: count, what: "triangle count" }],
    )
}

// ---------------------------------------------------------------------
// bc
// ---------------------------------------------------------------------

/// Fixed-point scale for betweenness dependency accumulation.
const BC_SCALE: u64 = 1 << 16;

/// Betweenness centrality (Brandes, one source): forward BFS
/// accumulating shortest-path counts, then backward dependency
/// accumulation with fixed-point division.
pub fn bc(g: &Graph) -> Workload {
    let src = pick_source(g);
    let mut a = Assembler::new();
    // S0=&row S1=&col S2=&level S3=&sigma S4=&queue S5=head S6=tail S7=-1
    // S9=&delta S10=BC_SCALE S11=n
    a.li(S0, ROW as i64);
    a.li(S1, COL as i64);
    a.li(S2, A1 as i64);
    a.li(S3, A2ARR as i64);
    a.li(S4, Q as i64);
    a.li(S5, 0);
    a.li(S6, 1);
    a.li(S7, -1);
    a.li(S9, A3ARR as i64);
    a.li(S10, BC_SCALE as i64);
    a.li(S11, g.n() as i64);
    // ---- forward phase ----
    a.label("fwd");
    a.beq(S5, S6, "back");
    a.slli(A2, S5, 3);
    a.add(A2, A2, S4);
    a.ld(T0, A2, 0); // u
    a.addi(S5, S5, 1);
    a.slli(A3, T0, 3);
    a.add(A3, A3, S0);
    a.ld(T1, A3, 0); // e
    a.ld(T2, A3, 8); // end
    a.slli(A4, T0, 3);
    a.add(A4, A4, S2);
    a.ld(T3, A4, 0); // lu
    a.addi(T4, T3, 1); // lu + 1
    a.slli(A5, T0, 3);
    a.add(A5, A5, S3);
    a.ld(T6, A5, 0); // sigma[u] (final: level order guarantees it)
    a.label("feloop");
    a.bge(T1, T2, "fwd");
    a.slli(A6, T1, 3);
    a.add(A6, A6, S1);
    a.ld(T5, A6, 0); // v
    a.slli(A7, T5, 3);
    a.add(A7, A7, S2); // &level[v]
    a.ld(A2, A7, 0); // lv
    a.bne(A2, S7, "notnew"); // unvisited? (hard to predict)
    a.st(A7, T4, 0); // level[v] = lu+1
    a.mv(A2, T4);
    a.slli(A3, S6, 3);
    a.add(A3, A3, S4);
    a.st(A3, T5, 0); // q[tail] = v
    a.addi(S6, S6, 1);
    a.label("notnew");
    a.bne(A2, T4, "nosig"); // on a shortest path?
    a.slli(A4, T5, 3);
    a.add(A4, A4, S3); // &sigma[v]
    a.ld(A5, A4, 0);
    a.add(A5, A5, T6);
    a.st(A4, A5, 0); // sigma[v] += sigma[u]
    a.label("nosig");
    a.addi(T1, T1, 1);
    a.j("feloop");
    // ---- backward phase ----
    a.label("back");
    a.addi(S5, S6, -1); // idx = tail-1
    a.label("bloop");
    a.blt(S5, ZERO, "sum");
    a.slli(A2, S5, 3);
    a.add(A2, A2, S4);
    a.ld(T0, A2, 0); // u
    a.slli(A3, T0, 3);
    a.add(A3, A3, S0);
    a.ld(T1, A3, 0);
    a.ld(T2, A3, 8);
    a.slli(A4, T0, 3);
    a.add(A4, A4, S2);
    a.ld(T3, A4, 0);
    a.addi(T4, T3, 1); // lu + 1
    a.slli(A5, T0, 3);
    a.add(A5, A5, S3);
    a.ld(T6, A5, 0); // sigma[u]
    a.li(T5, 0); // delta accumulator
    a.label("beloop");
    a.bge(T1, T2, "bstore");
    a.slli(A6, T1, 3);
    a.add(A6, A6, S1);
    a.ld(A7, A6, 0); // v
    a.slli(A2, A7, 3);
    a.add(A2, A2, S2);
    a.ld(A3, A2, 0); // lv
    a.bne(A3, T4, "bskip"); // successor on a shortest path?
    a.slli(A4, A7, 3);
    a.add(A4, A4, S3);
    a.ld(A5, A4, 0); // sigma[v]
    a.slli(A6, A7, 3);
    a.add(A6, A6, S9);
    a.ld(A7, A6, 0); // delta[v]
    a.add(A7, A7, S10); // SCALE + delta[v]
    a.mul(A7, A7, T6); // * sigma[u]
    a.div(A7, A7, A5); // / sigma[v]
    a.add(T5, T5, A7);
    a.label("bskip");
    a.addi(T1, T1, 1);
    a.j("beloop");
    a.label("bstore");
    a.slli(A2, T0, 3);
    a.add(A2, A2, S9);
    a.st(A2, T5, 0); // delta[u] = acc
    a.addi(S5, S5, -1);
    a.j("bloop");
    // ---- checksum ----
    a.label("sum");
    a.li(T0, 0);
    a.li(S8, 0);
    a.label("sloop");
    a.bge(T0, S11, "done");
    a.slli(A2, T0, 3);
    a.add(A2, A2, S9);
    a.ld(A3, A2, 0);
    a.add(S8, S8, A3);
    a.addi(T0, T0, 1);
    a.j("sloop");
    a.label("done");
    a.st(ZERO, S8, RESULT as i64);
    a.st(ZERO, S6, (RESULT + 8) as i64);
    a.halt();

    // Reference (mirrors the exact traversal and arithmetic).
    let n = g.n();
    let mut level = vec![-1i64; n];
    let mut sigma = vec![0u64; n];
    let mut q = vec![src as u64];
    level[src] = 0;
    sigma[src] = 1;
    let mut head = 0;
    while head < q.len() {
        let u = q[head] as usize;
        head += 1;
        let su = sigma[u];
        for (v, _) in g.neighbors(u) {
            let v = v as usize;
            if level[v] == -1 {
                level[v] = level[u] + 1;
                q.push(v as u64);
            }
            if level[v] == level[u] + 1 {
                sigma[v] += su;
            }
        }
    }
    let mut delta = vec![0u64; n];
    for &u in q.iter().rev() {
        let u = u as usize;
        let mut acc = 0u64;
        for (v, _) in g.neighbors(u) {
            let v = v as usize;
            if level[v] == level[u] + 1 {
                acc += sigma[u] * (BC_SCALE + delta[v]) / sigma[v];
            }
        }
        delta[u] = acc;
    }
    let checksum: u64 = delta.iter().fold(0u64, |s, &d| s.wrapping_add(d));

    let mut mem = graph_mem(g);
    for v in 0..n {
        mem.push((A1 + 8 * v as u64, -1i64 as u64));
        mem.push((A2ARR + 8 * v as u64, 0));
        mem.push((A3ARR + 8 * v as u64, 0));
    }
    mem.push((A1 + 8 * src as u64, 0));
    mem.push((A2ARR + 8 * src as u64, 1));
    mem.push((Q, src as u64));
    Workload::new(
        format!("bc/{}", g.n()),
        Suite::Gap,
        a.assemble().expect("bc assembles"),
        mem,
        vec![
            Check { addr: RESULT, expect: checksum, what: "delta checksum" },
            Check { addr: RESULT + 8, expect: q.len() as u64, what: "reached count" },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_core::{MssrConfig, MultiStreamReuse};
    use mssr_sim::SimConfig;

    fn small() -> Graph {
        Graph::uniform(96, 6, 11)
    }

    fn cfg() -> SimConfig {
        SimConfig::default().with_max_cycles(20_000_000)
    }

    #[test]
    fn bfs_is_correct() {
        bfs(&small()).run(cfg(), None);
    }

    #[test]
    fn cc_is_correct() {
        cc(&small()).run(cfg(), None);
    }

    #[test]
    fn sssp_is_correct() {
        sssp(&small()).run(cfg(), None);
    }

    #[test]
    fn pr_is_correct() {
        pr(&small()).run(cfg(), None);
    }

    #[test]
    fn tc_is_correct() {
        tc(&Graph::uniform(48, 6, 11)).run(cfg(), None);
    }

    #[test]
    fn bc_is_correct() {
        bc(&small()).run(cfg(), None);
    }

    #[test]
    fn kernels_are_correct_under_reuse() {
        let g = small();
        for w in [bfs(&g), cc(&g), sssp(&g), bc(&g)] {
            let stats = w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
            assert!(stats.committed_instructions > 1000, "{} ran", w.name());
        }
    }

    #[test]
    fn branchy_kernels_mispredict() {
        let g = small();
        for w in [bfs(&g), cc(&g), sssp(&g)] {
            let stats = w.run(cfg(), None);
            assert!(
                stats.mispredict_rate() > 0.01,
                "{}: expected data-dependent mispredictions, rate {}",
                w.name(),
                stats.mispredict_rate()
            );
        }
    }
}
