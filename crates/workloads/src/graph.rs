//! Deterministic random graph generation for the GAP-style kernels.
//!
//! The GAP benchmark suite runs its kernels over synthetic Kronecker or
//! uniform-random graphs (`-g`/`-u` scale flags). This module provides a
//! seeded uniform-random generator producing CSR (compressed sparse row)
//! images that the assembly kernels traverse in simulated memory.

use std::fmt;

/// A deterministic SplitMix64 generator (stable across toolchains, unlike
/// `StdRng`, so memory images and reference results never drift).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// An undirected graph in CSR form: out-neighbors per vertex, sorted and
/// deduplicated, with positive symmetric edge weights.
#[derive(Clone)]
pub struct Graph {
    n: usize,
    row: Vec<u64>,
    col: Vec<u64>,
    wt: Vec<u64>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph").field("n", &self.n).field("edges", &self.edges()).finish()
    }
}

impl Graph {
    /// Generates a uniform random graph with `n` vertices and roughly
    /// `avg_deg` out-edges per vertex. Edges are symmetrized (each random
    /// pair is added in both directions), then sorted and deduplicated;
    /// self-loops are dropped. Weights are in `1..=15`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn uniform(n: usize, avg_deg: usize, seed: u64) -> Graph {
        assert!(n >= 2, "graph needs at least two vertices");
        let mut rng = SplitMix64::new(seed);
        let mut adj: Vec<Vec<u64>> = vec![Vec::new(); n];
        let target_pairs = n * avg_deg / 2;
        for _ in 0..target_pairs {
            let a = rng.below(n as u64) as usize;
            let b = rng.below(n as u64) as usize;
            if a == b {
                continue;
            }
            adj[a].push(b as u64);
            adj[b].push(a as u64);
        }
        let mut row = Vec::with_capacity(n + 1);
        let mut col = Vec::new();
        row.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            col.extend_from_slice(list);
            row.push(col.len() as u64);
        }
        // Weights must be deterministic and symmetric: derive each from
        // the unordered endpoint pair.
        let mut wt = Vec::with_capacity(col.len());
        #[allow(clippy::needless_range_loop)]
        for u in 0..n {
            for e in row[u] as usize..row[u + 1] as usize {
                let v = col[e];
                let (lo, hi) = if (u as u64) < v { (u as u64, v) } else { (v, u as u64) };
                let mut h = SplitMix64::new(seed ^ (lo << 32) ^ hi);
                wt.push(1 + h.next_u64() % 15);
            }
        }
        Graph { n, row, col, wt }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of directed edges in the CSR.
    pub fn edges(&self) -> usize {
        self.col.len()
    }

    /// CSR row offsets (`n + 1` entries).
    pub fn row(&self) -> &[u64] {
        &self.row
    }

    /// CSR column indices.
    pub fn col(&self) -> &[u64] {
        &self.col
    }

    /// Edge weights, parallel to [`Graph::col`].
    pub fn wt(&self) -> &[u64] {
        &self.wt
    }

    /// Out-degree of a vertex.
    pub fn degree(&self, u: usize) -> usize {
        (self.row[u + 1] - self.row[u]) as usize
    }

    /// Iterates `(neighbor, weight)` pairs of `u`.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (u64, u64)> + '_ {
        (self.row[u] as usize..self.row[u + 1] as usize).map(move |e| (self.col[e], self.wt[e]))
    }

    /// Builds the memory image: row offsets at `row_base`, columns at
    /// `col_base`, weights at `wt_base`, all as 64-bit words.
    pub fn mem_image(&self, row_base: u64, col_base: u64, wt_base: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.row.len() + 2 * self.col.len());
        for (i, r) in self.row.iter().enumerate() {
            out.push((row_base + 8 * i as u64, *r));
        }
        for (i, c) in self.col.iter().enumerate() {
            out.push((col_base + 8 * i as u64, *c));
        }
        for (i, w) in self.wt.iter().enumerate() {
            out.push((wt_base + 8 * i as u64, *w));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let unique: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(unique.len(), 16);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn graph_is_deterministic() {
        let a = Graph::uniform(128, 8, 1);
        let b = Graph::uniform(128, 8, 1);
        assert_eq!(a.row(), b.row());
        assert_eq!(a.col(), b.col());
        assert_eq!(a.wt(), b.wt());
        let c = Graph::uniform(128, 8, 2);
        assert_ne!(a.col(), c.col(), "different seeds differ");
    }

    #[test]
    fn csr_invariants() {
        let g = Graph::uniform(256, 8, 3);
        assert_eq!(g.row().len(), 257);
        assert_eq!(g.row()[0], 0);
        assert_eq!(*g.row().last().unwrap() as usize, g.edges());
        for u in 0..g.n() {
            let s = g.row()[u] as usize;
            let e = g.row()[u + 1] as usize;
            assert!(s <= e);
            let neigh = &g.col()[s..e];
            for w in neigh.windows(2) {
                assert!(w[0] < w[1], "sorted and deduplicated");
            }
            for &v in neigh {
                assert_ne!(v as usize, u, "no self loops");
                assert!((v as usize) < g.n());
            }
        }
        assert_eq!(g.wt().len(), g.edges());
        for &w in g.wt() {
            assert!((1..=15).contains(&w));
        }
    }

    #[test]
    fn weights_are_symmetric() {
        let g = Graph::uniform(64, 6, 9);
        for u in 0..g.n() {
            for (v, w) in g.neighbors(u) {
                let back = g.neighbors(v as usize).find(|&(x, _)| x == u as u64).map(|(_, w)| w);
                assert_eq!(back, Some(w), "edge ({u},{v}) weight symmetric");
            }
        }
    }

    #[test]
    fn average_degree_roughly_matches() {
        let g = Graph::uniform(1024, 8, 5);
        let avg = g.edges() as f64 / g.n() as f64;
        assert!(avg > 5.0 && avg < 9.0, "avg degree {avg}");
    }

    #[test]
    fn mem_image_layout() {
        let g = Graph::uniform(16, 4, 1);
        let img = g.mem_image(0x1000, 0x2000, 0x3000);
        assert_eq!(img.len(), 17 + 2 * g.edges());
        assert_eq!(img[0], (0x1000, 0));
        let (addr, val) = img[17];
        assert_eq!(addr, 0x2000);
        assert_eq!(val, g.col()[0]);
    }
}
