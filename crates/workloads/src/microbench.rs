//! The Listing-1 microbenchmark (paper §2.2) and its two variants.
//!
//! The kernel runs a loop whose body contains a nested branch structure:
//! an outer hard-to-predict branch `Br1` and an inner one `Br2`, both
//! driven by pseudo-random hash values, followed by a reconvergence
//! region computing three values `t0`, `t1`, `t2` through calls to a
//! compute-intensive function `calc2` (as in the paper, `calc1` and
//! `calc2` are real function calls — which is exactly what creates the
//! *temporal reference* problem for table-based reuse: three dynamic
//! instances of the same `calc2` PCs with different operands compete for
//! the same reuse-table sets):
//!
//! * `t0 = calc2(i)` is always control- and data-independent (CIDI);
//! * `t1 = calc2(data1)` is data-dependent on `Br1`'s body;
//! * `t2 = calc2(data2)` is *statically* data-dependent but
//!   *dynamically* CIDI whenever `Br2`'s body did not execute.
//!
//! The two variants differ only in which datum each branch tests
//! (§2.2.4, created by swapping the branch conditions):
//!
//! * **nested-mispred** — `Br1` tests `data1`, `Br2` tests `data2`.
//!   Since `data1 = hash(data2)`, `data2` resolves first, so the
//!   *younger* `Br2` mispredicts before the *elder* `Br1`:
//!   out-of-order branch resolution, the source of hardware-induced
//!   multi-stream reconvergence.
//! * **linear-mispred** — the conditions are swapped, so mispredictions
//!   resolve in program order (software-induced multi-stream
//!   reconvergence only).

use mssr_isa::{regs::*, Assembler};

use crate::util::ScratchPool;
use crate::workload::{Check, Suite, Workload};

/// Result area: loop checksum, final data1, final data2.
const RESULT_BASE: u64 = 0x8000;
/// The `arr` output array of Listing 1.
const ARR_BASE: u64 = 0x20000;

const HASH_MUL1: u64 = 0x9e3779b97f4a7c15;
const HASH_MUL2: u64 = 0xbf58476d1ce4e5b9;
const CALC1_MUL1: u64 = 0xc2b2ae3d27d4eb4f;
const CALC1_MUL2: u64 = 0x94d049bb133111eb;
const CALC2_MUL1: u64 = 0xd6e8feb86659fd93;
const CALC2_MUL2: u64 = 0xa0761d6478bd642f;
const CALC2_MUL3: u64 = 0xe7037ed1a0b428db;

/// Which branch tests which datum.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// `Br1` on `data1` (late), `Br2` on `data2` (early): nested,
    /// out-of-order mispredictions.
    Nested,
    /// `Br1` on `data2` (early), `Br2` on `data1` (late): in-order
    /// mispredictions.
    Linear,
}

/// Number of multiply rounds in the deep hash producing `data2`. Deep
/// enough that the branches testing the hash outputs resolve long after
/// fetch — giving the wrong path time to execute the reconvergence
/// region, which is what squash reuse recycles.
const HASH_ROUNDS: usize = 6;
/// Rounds in the shallow hash producing `data1 = hash(data2)`. Shallow,
/// so the two branches resolve close together in time: after the first
/// redirect, the overriding misprediction arrives before the new stream
/// has fetched past the reconvergence point — which is exactly when a
/// *multi-stream* processor must fall back to an older squashed stream
/// (paper Figure 1(b)).
const HASH2_ROUNDS: usize = 1;

fn hash_rounds_ref(x: u64, rounds: usize) -> u64 {
    let mut t = x.wrapping_add(0x1234_5678);
    for r in 0..rounds {
        let k = if r % 2 == 0 { HASH_MUL1 } else { HASH_MUL2 };
        t = t.wrapping_mul(k);
        t ^= t >> 29;
    }
    t
}

fn hash_ref(x: u64) -> u64 {
    hash_rounds_ref(x, HASH_ROUNDS)
}

fn hash2_ref(x: u64) -> u64 {
    hash_rounds_ref(x, HASH2_ROUNDS)
}

fn calc1_ref(x: u64) -> u64 {
    let mut t = x.wrapping_mul(CALC1_MUL1).wrapping_add(7);
    t ^= t >> 13;
    t = t.wrapping_mul(CALC1_MUL2);
    t ^ (t >> 7)
}

fn calc2_ref(x: u64) -> u64 {
    let mut t = x.wrapping_mul(CALC2_MUL1).wrapping_add(3);
    t ^= t >> 31;
    t = t.wrapping_mul(CALC2_MUL2);
    t ^= t >> 11;
    t.wrapping_mul(CALC2_MUL3)
}

/// Rust reference implementation of the Listing-1 loop.
fn reference(iters: u64, variant: Variant) -> (u64, u64, u64) {
    let mut checksum = 0u64;
    let mut data1 = 0u64;
    let mut data2 = 0u64;
    for i in 0..iters {
        data2 = hash_ref(i);
        data1 = hash2_ref(data2);
        let (c1, c2) = match variant {
            Variant::Nested => (data1 & 1, data2 & 2),
            Variant::Linear => (data2 & 1, data1 & 2),
        };
        if c1 != 0 {
            if c2 != 0 {
                data2 = calc1_ref(data2);
            }
            data1 = calc1_ref(data1);
        }
        let t0 = calc2_ref(i);
        let t1 = calc2_ref(data1);
        let t2 = calc2_ref(data2);
        checksum = checksum.wrapping_add(t0.wrapping_add(t1).wrapping_add(t2));
    }
    (checksum, data1, data2)
}

/// Emits `dst = hash(src)` inline. The multiply constants live in `s6`
/// and `s7` (hoisted out of the loop, as a compiler would); scratch for
/// the shift temporaries rotates through the pool. The dependent
/// multiplies keep the branch operands late, widening the squash window.
fn emit_hash(
    a: &mut Assembler,
    pool: &mut ScratchPool,
    dst: mssr_isa::ArchReg,
    src: mssr_isa::ArchReg,
    rounds: usize,
) {
    a.addi(dst, src, 0x1234_5678);
    for r in 0..rounds {
        let k = if r % 2 == 0 { S6 } else { S7 };
        a.mul(dst, dst, k);
        let t = pool.next();
        a.srli(t, dst, 29);
        a.xor(dst, dst, t);
    }
}

/// Emits the `calc1` function: `a0 = calc1(a0)`. Constants are hoisted
/// into `s8`/`s9`; clobbers `a1` and `t0`.
fn emit_calc1_fn(a: &mut Assembler) {
    a.label("calc1");
    a.mul(A0, A0, S8);
    a.addi(A0, A0, 7);
    a.srli(A1, A0, 13);
    a.xor(A0, A0, A1);
    a.mul(A0, A0, S9);
    a.srli(T0, A0, 7);
    a.xor(A0, A0, T0);
    a.ret();
}

/// Emits the `calc2` function: `a0 = calc2(a0)`. Constants are hoisted
/// into `s10`/`s11`/`tp`; clobbers `a1` and `t1`.
fn emit_calc2_fn(a: &mut Assembler) {
    a.label("calc2");
    a.mul(A0, A0, S10);
    a.addi(A0, A0, 3);
    a.srli(A1, A0, 31);
    a.xor(A0, A0, A1);
    a.mul(A0, A0, S11);
    a.srli(T1, A0, 11);
    a.xor(A0, A0, T1);
    a.mul(A0, A0, TP);
    a.ret();
}

fn build(iters: u64, variant: Variant) -> Workload {
    // Register plan:
    //   S0 = i, S1 = iters, S2 = data1, S3 = data2,
    //   S4 = checksum, S5 = &arr, T2..T5 = t0/t1/t2/sum, T6 = scratch.
    let mut a = Assembler::new();
    let mut pool = ScratchPool::new();
    a.li(S0, 0);
    a.li(S1, iters as i64);
    a.li(S4, 0);
    a.li(S5, ARR_BASE as i64);
    // Loop-invariant multiply constants, hoisted as a compiler would.
    a.li(S6, HASH_MUL1 as i64);
    a.li(S7, HASH_MUL2 as i64);
    a.li(S8, CALC1_MUL1 as i64);
    a.li(S9, CALC1_MUL2 as i64);
    a.li(S10, CALC2_MUL1 as i64);
    a.li(S11, CALC2_MUL2 as i64);
    a.li(TP, CALC2_MUL3 as i64);
    a.label("loop");
    emit_hash(&mut a, &mut pool, S3, S0, HASH_ROUNDS); // data2 = hash(i)
    emit_hash(&mut a, &mut pool, S2, S3, HASH2_ROUNDS); // data1 = hash(data2): slightly later
    match variant {
        Variant::Nested => {
            a.andi(T0, S2, 1); // Br1 condition: data1 (late)
            a.andi(T1, S3, 2); // Br2 condition: data2 (early)
        }
        Variant::Linear => {
            a.andi(T0, S3, 1); // Br1 condition: data2 (early)
            a.andi(T1, S2, 2); // Br2 condition: data1 (late)
        }
    }
    a.beq(T0, ZERO, "m2"); // Br1 — hard to predict
    a.beq(T1, ZERO, "m1"); // Br2 — hard to predict
    a.mv(A0, S3);
    a.call("calc1"); // data2 = calc1(data2)
    a.mv(S3, A0);
    a.label("m1");
    a.mv(A0, S2);
    a.call("calc1"); // data1 = calc1(data1)
    a.mv(S2, A0);
    a.label("m2");
    // Reconvergence region: potential CIDI operations (Listing 1 M2).
    a.mv(A0, S0);
    a.call("calc2"); // t0 = calc2(i) — always CIDI
    a.mv(T2, A0);
    a.mv(A0, S2);
    a.call("calc2"); // t1 = calc2(data1) — DD on Br1
    a.mv(T3, A0);
    a.mv(A0, S3);
    a.call("calc2"); // t2 = calc2(data2) — dynamically CIDI
    a.mv(T4, A0);
    a.add(T5, T2, T3);
    a.add(T5, T5, T4);
    // arr[i] = t0 + t1 + t2
    a.slli(T6, S0, 3);
    a.add(T6, T6, S5);
    a.st(T6, T5, 0);
    a.add(S4, S4, T5); // checksum
    a.addi(S0, S0, 1);
    a.blt(S0, S1, "loop");
    a.st(ZERO, S4, RESULT_BASE as i64);
    a.st(ZERO, S2, (RESULT_BASE + 8) as i64);
    a.st(ZERO, S3, (RESULT_BASE + 16) as i64);
    a.halt();
    emit_calc1_fn(&mut a);
    emit_calc2_fn(&mut a);

    let (checksum, data1, data2) = reference(iters, variant);
    let name = match variant {
        Variant::Nested => format!("nested-mispred/{iters}"),
        Variant::Linear => format!("linear-mispred/{iters}"),
    };
    Workload::new(
        name,
        Suite::Micro,
        a.assemble().expect("microbenchmark assembles"),
        vec![],
        vec![
            Check { addr: RESULT_BASE, expect: checksum, what: "arr checksum" },
            Check { addr: RESULT_BASE + 8, expect: data1, what: "final data1" },
            Check { addr: RESULT_BASE + 16, expect: data2, what: "final data2" },
        ],
    )
}

/// The *nested-mispred* variant: `Br2` (younger) resolves before `Br1`
/// (elder), producing out-of-order mispredictions.
pub fn nested_mispred(iters: u64) -> Workload {
    build(iters, Variant::Nested)
}

/// The *linear-mispred* variant: mispredictions resolve in program order.
pub fn linear_mispred(iters: u64) -> Workload {
    build(iters, Variant::Linear)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_core::{MssrConfig, MultiStreamReuse};
    use mssr_sim::SimConfig;

    fn cfg() -> SimConfig {
        SimConfig::default().with_max_cycles(5_000_000)
    }

    #[test]
    fn nested_variant_is_architecturally_correct() {
        nested_mispred(200).run(cfg(), None);
    }

    #[test]
    fn linear_variant_is_architecturally_correct() {
        linear_mispred(200).run(cfg(), None);
    }

    #[test]
    fn both_variants_mispredict_heavily() {
        for w in [nested_mispred(300), linear_mispred(300)] {
            let stats = w.run(cfg(), None);
            assert!(
                stats.mispredictions > 80,
                "{}: H2P branches must mispredict often, got {}",
                w.name(),
                stats.mispredictions
            );
        }
    }

    #[test]
    fn correct_under_reuse_engine() {
        for w in [nested_mispred(300), linear_mispred(300)] {
            let stats = w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
            assert!(stats.engine.reuse_grants > 0, "{} should see reuse", w.name());
        }
    }

    #[test]
    fn nested_resolves_out_of_order() {
        // The nested variant must produce hardware-induced (younger-
        // branch) reconvergence; the linear variant mostly not.
        let n = nested_mispred(500)
            .run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
        assert!(
            n.engine.recon_hardware > 0,
            "nested-mispred should show hardware-induced reconvergence"
        );
    }

    #[test]
    fn multi_stream_beats_single_stream_here() {
        // This is the workload Table 1 is built on: tracking more streams
        // must recover more squashed work than a single stream.
        let w = nested_mispred(1500);
        let one = w.run(
            cfg(),
            Some(Box::new(MultiStreamReuse::new(
                MssrConfig::default().with_streams(1).with_log_entries(64),
            ))),
        );
        let four = w.run(
            cfg(),
            Some(Box::new(MultiStreamReuse::new(
                MssrConfig::default().with_streams(4).with_log_entries(64),
            ))),
        );
        assert!(
            four.cycles < one.cycles,
            "4 streams ({} cycles) should beat 1 stream ({} cycles)",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn reference_is_deterministic() {
        assert_eq!(reference(100, Variant::Nested), reference(100, Variant::Nested));
        assert_ne!(reference(100, Variant::Nested).0, reference(100, Variant::Linear).0);
    }
}
