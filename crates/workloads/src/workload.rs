//! The [`Workload`] type: an assembled program plus its initial memory
//! image and architectural result checks.

use mssr_isa::Program;
use mssr_sim::{ReuseEngine, SimConfig, SimStats, Simulator, TraceKind, TraceSink};

/// Which benchmark suite a workload belongs to (mirrors the paper's
/// evaluation: SPECint2006, SPECint2017 and GAP, plus the §2.2
/// microbenchmarks).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// The Listing-1 microbenchmark variants (§2.2.4).
    Micro,
    /// SPECint2006-like synthetic kernels.
    Spec2006,
    /// SPECint2017-like synthetic kernels.
    Spec2017,
    /// GAP graph kernels.
    Gap,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Suite::Micro => "micro",
            Suite::Spec2006 => "SPECint2006",
            Suite::Spec2017 => "SPECint2017",
            Suite::Gap => "GAP",
        })
    }
}

/// One architectural result check: after the program halts, the 64-bit
/// word at `addr` must equal `expect`.
#[derive(Clone, Copy, Debug)]
pub struct Check {
    /// Memory address of the result word.
    pub addr: u64,
    /// Expected value (computed by a Rust reference implementation of
    /// the same algorithm).
    pub expect: u64,
    /// What the value represents (for diagnostics).
    pub what: &'static str,
}

/// A runnable benchmark: program, initial memory, and result checks.
///
/// Workloads are deterministic: the same name and scale always produce
/// the same program, memory image, and expected results, so runs under
/// different reuse engines are directly comparable.
///
/// # Example
///
/// ```
/// use mssr_workloads::{microbench, Workload};
/// use mssr_sim::SimConfig;
///
/// let w = microbench::nested_mispred(100);
/// let mut sim = w.instantiate(SimConfig::default());
/// sim.run();
/// w.verify(&sim).expect("architectural results must match the reference");
/// ```
#[derive(Clone, Debug)]
pub struct Workload {
    name: String,
    suite: Suite,
    program: Program,
    mem: Vec<(u64, u64)>,
    checks: Vec<Check>,
}

impl Workload {
    /// Builds a workload from its parts.
    pub fn new(
        name: impl Into<String>,
        suite: Suite,
        program: Program,
        mem: Vec<(u64, u64)>,
        checks: Vec<Check>,
    ) -> Workload {
        Workload { name: name.into(), suite, program, mem, checks }
    }

    /// The workload's name (e.g. `"bfs"`, `"nested-mispred"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The suite it belongs to.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// The assembled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of static instructions.
    pub fn static_insts(&self) -> usize {
        self.program.len()
    }

    /// Creates a baseline (no-reuse) simulator with memory initialized.
    pub fn instantiate(&self, cfg: SimConfig) -> Simulator {
        let mut sim = Simulator::new(cfg, self.program.clone());
        for &(a, v) in &self.mem {
            sim.write_mem_u64(a, v);
        }
        sim
    }

    /// Creates a simulator with a reuse engine and memory initialized.
    pub fn instantiate_with(&self, cfg: SimConfig, engine: Box<dyn ReuseEngine>) -> Simulator {
        let mut sim = Simulator::with_engine(cfg, self.program.clone(), engine);
        for &(a, v) in &self.mem {
            sim.write_mem_u64(a, v);
        }
        sim
    }

    /// Runs the workload to completion under `cfg` with an optional
    /// engine, verifying the architectural results.
    ///
    /// # Panics
    ///
    /// Panics if the program does not halt within the configured bounds
    /// or a result check fails — a failed check means a reuse engine
    /// corrupted architectural state, which is always a bug.
    pub fn run(&self, cfg: SimConfig, engine: Option<Box<dyn ReuseEngine>>) -> SimStats {
        self.run_inner(cfg, engine, None, 0, true)
    }

    /// Like [`Workload::run`], but with a trace sink attached for the
    /// whole run (see `mssr_sim::TraceEvent` for the event schema). Use
    /// a `BufferSink` and keep its handle to collect the trace after the
    /// run.
    ///
    /// # Panics
    ///
    /// As [`Workload::run`].
    pub fn run_traced(
        &self,
        cfg: SimConfig,
        engine: Option<Box<dyn ReuseEngine>>,
        sink: Box<dyn TraceSink>,
    ) -> SimStats {
        self.run_inner(cfg, engine, Some(sink), 0, true)
    }

    /// The general instrumented entry point behind [`Workload::run`] and
    /// [`Workload::run_traced`]: an optional sink, an interval-sampling
    /// period (`0` = off), and whether per-instruction pipeline events
    /// flow into the sink. With `sample > 0` and `pipeline_events` false,
    /// the sink receives the sample time series only — the harness's
    /// `--sample N` mode.
    ///
    /// # Panics
    ///
    /// As [`Workload::run`].
    pub fn run_instrumented(
        &self,
        cfg: SimConfig,
        engine: Option<Box<dyn ReuseEngine>>,
        sink: Option<Box<dyn TraceSink>>,
        sample: u64,
        pipeline_events: bool,
    ) -> SimStats {
        self.run_inner(cfg, engine, sink, sample, pipeline_events)
    }

    fn run_inner(
        &self,
        cfg: SimConfig,
        engine: Option<Box<dyn ReuseEngine>>,
        sink: Option<Box<dyn TraceSink>>,
        sample: u64,
        pipeline_events: bool,
    ) -> SimStats {
        let mut sim = match engine {
            Some(e) => self.instantiate_with(cfg, e),
            None => self.instantiate(cfg),
        };
        if sample > 0 {
            sim.set_sample_interval(sample);
        }
        if let Some(s) = sink {
            sim.set_trace_sink(s);
            if !pipeline_events {
                sim.set_trace_mask(TraceKind::Sample.bit());
            }
        }
        self.finish(&mut sim)
    }

    /// Runs an already-instantiated simulator to completion and verifies
    /// the architectural results — the tail of [`Workload::run`], exposed
    /// for callers that first drive the simulator themselves (checkpoint
    /// restore, functional fast-forward, mid-run snapshots).
    ///
    /// # Panics
    ///
    /// As [`Workload::run`]. The simulator must have been created by
    /// [`Workload::instantiate`]/[`Workload::instantiate_with`] (or
    /// restored from a checkpoint of one) so the result checks apply.
    pub fn finish(&self, sim: &mut Simulator) -> SimStats {
        let mut stats = sim.run();
        // The stats snapshot must include the trace_* counters, which are
        // final only once the sink has flushed.
        if sim.take_trace_sink().is_some() {
            stats = sim.stats();
        }
        assert!(sim.is_halted(), "workload `{}` did not halt", self.name);
        self.verify(sim).unwrap_or_else(|e| panic!("workload `{}`: {e}", self.name));
        stats
    }

    /// Verifies the architectural result checks against a finished run.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatching check.
    pub fn verify(&self, sim: &Simulator) -> Result<(), String> {
        for c in &self.checks {
            let got = sim.read_mem_u64(c.addr);
            if got != c.expect {
                return Err(format!(
                    "check `{}` at {:#x}: expected {}, got {}",
                    c.what, c.addr, c.expect, got
                ));
            }
        }
        Ok(())
    }

    /// The result checks (for inspection).
    pub fn checks(&self) -> &[Check] {
        &self.checks
    }

    /// The initial memory image.
    pub fn mem(&self) -> &[(u64, u64)] {
        &self.mem
    }

    /// Rebrands this workload under a different name and suite (used for
    /// the SPEC2017 `_r` variants that share a 2006 kernel).
    pub fn renamed(mut self, name: impl Into<String>, suite: Suite) -> Workload {
        self.name = name.into();
        self.suite = suite;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_isa::{regs::*, Assembler};

    fn trivial() -> Workload {
        let mut a = Assembler::new();
        a.li(T0, 0x9000);
        a.ld(T1, T0, 0);
        a.addi(T1, T1, 5);
        a.st(T0, T1, 8);
        a.halt();
        Workload::new(
            "trivial",
            Suite::Micro,
            a.assemble().unwrap(),
            vec![(0x9000, 37)],
            vec![Check { addr: 0x9008, expect: 42, what: "sum" }],
        )
    }

    #[test]
    fn memory_is_initialized_and_checks_pass() {
        let w = trivial();
        let stats = w.run(SimConfig::default().with_max_cycles(10_000), None);
        assert_eq!(stats.committed_instructions, 5);
    }

    #[test]
    fn verify_reports_mismatches() {
        let w = trivial();
        let mut sim = w.instantiate(SimConfig::default().with_max_cycles(10_000));
        // Don't run: the check must fail against the zeroed result.
        let err = w.verify(&sim).unwrap_err();
        assert!(err.contains("sum"));
        assert!(err.contains("expected 42"));
        sim.run();
        assert!(w.verify(&sim).is_ok());
    }

    #[test]
    fn accessors() {
        let w = trivial();
        assert_eq!(w.name(), "trivial");
        assert_eq!(w.suite(), Suite::Micro);
        assert_eq!(w.static_insts(), 5);
        assert_eq!(w.checks().len(), 1);
        assert_eq!(Suite::Gap.to_string(), "GAP");
    }
}
