//! Shared helpers for hand-written kernels.

use mssr_isa::{regs::*, ArchReg, Assembler};

/// A rotating pool of scratch registers.
///
/// Hand-written assembly tends to reuse one temporary for every
/// intermediate value, which renames that register at an unrealistic
/// rate — wrapping its 6-bit RGID generation counter every few loop
/// iterations and triggering constant global RGID resets. Compilers
/// spread temporaries across the register file; this pool does the same
/// for generated kernels.
///
/// # Example
///
/// ```
/// use mssr_workloads::util::ScratchPool;
///
/// let mut pool = ScratchPool::new();
/// let a = pool.next();
/// let b = pool.next();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct ScratchPool {
    regs: Vec<ArchReg>,
    next: usize,
}

impl ScratchPool {
    /// A pool over the caller-saved scratch registers `t6, a2..a7`.
    pub fn new() -> ScratchPool {
        ScratchPool { regs: vec![T6, A2, A3, A4, A5, A6, A7], next: 0 }
    }

    /// A pool over an explicit register set.
    ///
    /// # Panics
    ///
    /// Panics if `regs` is empty.
    pub fn with_regs(regs: Vec<ArchReg>) -> ScratchPool {
        assert!(!regs.is_empty(), "scratch pool needs at least one register");
        ScratchPool { regs, next: 0 }
    }

    /// The next scratch register, round-robin.
    #[allow(clippy::should_implement_trait)] // not an iterator: infinite round-robin supply
    pub fn next(&mut self) -> ArchReg {
        let r = self.regs[self.next % self.regs.len()];
        self.next += 1;
        r
    }
}

impl Default for ScratchPool {
    fn default() -> ScratchPool {
        ScratchPool::new()
    }
}

/// Emits `dst = src * constant` using a rotating scratch register for
/// the constant.
pub fn emit_mul_const(
    a: &mut Assembler,
    pool: &mut ScratchPool,
    dst: ArchReg,
    src: ArchReg,
    k: u64,
) {
    let t = pool.next();
    a.li(t, k as i64);
    a.mul(dst, src, t);
}

/// Emits one xorshift-multiply mixing round in place:
/// `reg = (reg * k) ^ ((reg * k) >> shift)`.
pub fn emit_mix_round(a: &mut Assembler, pool: &mut ScratchPool, reg: ArchReg, k: u64, shift: i64) {
    emit_mul_const(a, pool, reg, reg, k);
    let t = pool.next();
    a.srli(t, reg, shift);
    a.xor(reg, reg, t);
}

/// The reference semantics of [`emit_mix_round`].
pub fn mix_round_ref(x: u64, k: u64, shift: u32) -> u64 {
    let t = x.wrapping_mul(k);
    t ^ (t >> shift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_sim::{SimConfig, Simulator};

    #[test]
    fn pool_rotates_through_all_registers() {
        let mut p = ScratchPool::new();
        let first: Vec<ArchReg> = (0..7).map(|_| p.next()).collect();
        let second: Vec<ArchReg> = (0..7).map(|_| p.next()).collect();
        assert_eq!(first, second, "round-robin wraps");
        assert_eq!(first.len(), 7);
        let unique: std::collections::HashSet<_> = first.iter().collect();
        assert_eq!(unique.len(), 7, "all registers distinct");
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn empty_pool_panics() {
        let _ = ScratchPool::with_regs(vec![]);
    }

    #[test]
    fn mix_round_matches_reference() {
        let mut a = Assembler::new();
        let mut pool = ScratchPool::new();
        a.li(S0, 0x1234_5678_9abc_def0u64 as i64);
        emit_mix_round(&mut a, &mut pool, S0, 0x9e3779b97f4a7c15, 29);
        a.st(ZERO, S0, 0x100);
        a.halt();
        let mut sim =
            Simulator::new(SimConfig::default().with_max_cycles(10_000), a.assemble().unwrap());
        sim.run();
        assert_eq!(
            sim.read_mem_u64(0x100),
            mix_round_ref(0x1234_5678_9abc_def0, 0x9e3779b97f4a7c15, 29)
        );
    }
}
