//! Suite enumeration: every workload of the evaluation at a given scale.

use crate::graph::Graph;
use crate::workload::{Suite, Workload};
use crate::{gap, microbench, spec2006, spec2017};

/// Workload input scale.
///
/// `Test` keeps unit/integration tests fast; `Medium` is the default
/// evaluation size used by the experiment harness; `Large` approaches the
/// paper's input sizes (GAP `-g 12` = 4096 vertices) for longer runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Small inputs for tests (seconds per run).
    Test,
    /// Default evaluation size for the experiment harness.
    Medium,
    /// Larger runs approaching the paper's input sizes.
    Large,
}

fn gap_graph(scale: Scale) -> Graph {
    match scale {
        Scale::Test => Graph::uniform(128, 6, 12),
        Scale::Medium => Graph::uniform(1024, 8, 12),
        Scale::Large => Graph::uniform(4096, 10, 12),
    }
}

/// A smaller graph for the quadratic-cost tc kernel.
fn tc_graph(scale: Scale) -> Graph {
    match scale {
        Scale::Test => Graph::uniform(64, 6, 12),
        Scale::Medium => Graph::uniform(256, 8, 12),
        Scale::Large => Graph::uniform(512, 10, 12),
    }
}

/// All workloads of one suite at a scale.
pub fn suite_workloads(suite: Suite, scale: Scale) -> Vec<Workload> {
    let (micro, spec_small, spec_big) = match scale {
        Scale::Test => (300u64, 60u64, 400u64),
        Scale::Medium => (2000, 400, 3000),
        Scale::Large => (6000, 1200, 10000),
    };
    match suite {
        Suite::Micro => vec![microbench::nested_mispred(micro), microbench::linear_mispred(micro)],
        Suite::Spec2006 => {
            let grid = match scale {
                Scale::Test => 10,
                Scale::Medium => 20,
                Scale::Large => 32,
            };
            let (mcf_nodes, mcf_steps) = match scale {
                Scale::Test => (1 << 12, 3_000),
                Scale::Medium => (1 << 17, 20_000),
                Scale::Large => (1 << 18, 60_000),
            };
            vec![
                spec2006::gcc(spec_big / 3),
                spec2006::perlbench(spec_big),
                spec2006::astar(grid),
                spec2006::gobmk(spec_small),
                spec2006::mcf(mcf_nodes, mcf_steps),
                spec2006::omnetpp(24, spec_small * 4),
                spec2006::sjeng(spec_small * 2),
                spec2006::bzip2(spec_small),
                spec2006::hmmer(spec_big / 2),
                spec2006::xalancbmk(255, spec_small * 6),
            ]
        }
        Suite::Spec2017 => {
            let (mcf_nodes, mcf_steps) = match scale {
                Scale::Test => (1 << 13, 3_000),
                Scale::Medium => (1 << 18, 25_000),
                Scale::Large => (1 << 19, 80_000),
            };
            let (ex_n, ex_rounds) = match scale {
                Scale::Test => (6, 4),
                Scale::Medium => (7, 10),
                Scale::Large => (8, 12),
            };
            vec![
                spec2017::exchange2(ex_n, ex_rounds),
                spec2017::leela(spec_small * 4),
                spec2017::deepsjeng(spec_small * 2),
                spec2017::xz(spec_big),
                spec2017::mcf_r(mcf_nodes, mcf_steps),
                spec2017::omnetpp_r(32, spec_small * 4),
                spec2017::x264(spec_small),
            ]
        }
        Suite::Gap => {
            let g = gap_graph(scale);
            let t = tc_graph(scale);
            vec![gap::bfs(&g), gap::bc(&g), gap::cc(&g), gap::pr(&g), gap::sssp(&g), gap::tc(&t)]
        }
    }
}

/// Every workload at a scale, suite order: micro, SPEC2006, SPEC2017, GAP.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    [Suite::Micro, Suite::Spec2006, Suite::Spec2017, Suite::Gap]
        .into_iter()
        .flat_map(|s| suite_workloads(s, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_members() {
        assert_eq!(suite_workloads(Suite::Micro, Scale::Test).len(), 2);
        assert_eq!(suite_workloads(Suite::Spec2006, Scale::Test).len(), 10);
        assert_eq!(suite_workloads(Suite::Spec2017, Scale::Test).len(), 7);
        assert_eq!(suite_workloads(Suite::Gap, Scale::Test).len(), 6);
        assert_eq!(all_workloads(Scale::Test).len(), 25);
    }

    #[test]
    fn names_are_unique() {
        let ws = all_workloads(Scale::Test);
        let names: std::collections::HashSet<&str> = ws.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), ws.len());
    }

    #[test]
    fn every_workload_declares_its_suite() {
        for s in [Suite::Micro, Suite::Spec2006, Suite::Spec2017, Suite::Gap] {
            for w in suite_workloads(s, Scale::Test) {
                assert_eq!(w.suite(), s, "{}", w.name());
            }
        }
    }
}
