//! # mssr-workloads
//!
//! Benchmarks for the MSSR reproduction, written in the `mssr-isa` toy
//! instruction set and verified against Rust reference implementations:
//!
//! * [`microbench`] — the paper's Listing-1 kernel in its
//!   *nested-mispred* and *linear-mispred* variants (§2.2.4, Table 1);
//! * [`gap`] — real graph kernels (bfs, bc, cc, pr, sssp, tc) over a
//!   seeded random graph, standing in for the GAP suite;
//! * [`spec2006`] / [`spec2017`] — synthetic kernels named for the
//!   SPECint benchmarks the paper reports, each engineered to match that
//!   benchmark's branch-misprediction and memory character (see
//!   `DESIGN.md` for the substitution rationale).
//!
//! Every workload carries architectural result [`Check`]s so that a run
//! under any reuse engine is verified end-to-end — a squash-reuse bug
//! can never silently pass as a speedup.

pub mod gap;
pub mod graph;
pub mod microbench;
pub mod spec2006;
pub mod spec2017;
mod suite;
pub mod util;
mod workload;

pub use suite::{all_workloads, suite_workloads, Scale};
pub use workload::{Check, Suite, Workload};
