//! SPECint2006-like synthetic kernels.
//!
//! Real SPEC binaries and SimPoint checkpoints are unavailable in this
//! environment, so each benchmark the paper reports is represented by a
//! small kernel engineered to match that benchmark's *branch and memory
//! character* (see `DESIGN.md`):
//!
//! | kernel | character it reproduces |
//! |---|---|
//! | `astar` | grid search with data-dependent open-list scans and relaxations — the paper's biggest SPEC2006 winner |
//! | `gobmk` | board evaluation with deeply nested data-dependent pattern branches |
//! | `mcf` | pointer chasing over a working set far beyond L2 — memory-bound, little reuse benefit |
//! | `omnetpp` | event-queue scanning with type-dispatch branches, memory-bound |
//! | `sjeng` | game-tree walk with alpha-beta-style pruning branches |
//! | `bzip2` | block sorting: insertion-sort comparison branches on incompressible data |
//! | `hmmer` | dynamic-programming max-recurrence, mostly predictable |
//! | `xalancbmk` | tree traversal with node-type dispatch |
//!
//! Every kernel checks its architectural results against a Rust mirror.

use mssr_isa::{regs::*, Assembler};

use crate::graph::SplitMix64;
use crate::workload::{Check, Suite, Workload};

const RESULT: u64 = 0x8000;
const DATA: u64 = 0x10_0000;
const DATA2: u64 = 0x80_0000;
const DATA3: u64 = 0xc0_0000;

const MIX: u64 = 0x9e3779b97f4a7c15;

/// Emits `dst = mix(src)`: one multiply-xorshift round with the constant
/// held in `kreg`.
fn emit_mix(
    a: &mut Assembler,
    dst: mssr_isa::ArchReg,
    src: mssr_isa::ArchReg,
    kreg: mssr_isa::ArchReg,
    t: mssr_isa::ArchReg,
) {
    a.mul(dst, src, kreg);
    a.srli(t, dst, 29);
    a.xor(dst, dst, t);
}

fn mix_ref(x: u64) -> u64 {
    let t = x.wrapping_mul(MIX);
    t ^ (t >> 29)
}

// ---------------------------------------------------------------------
// astar
// ---------------------------------------------------------------------

/// Grid shortest-path search (Dijkstra with a linear-scan open list, the
/// shape of `astar`'s region search). The min-scan comparison and the
/// relaxation test are both data-dependent.
pub fn astar(side: usize) -> Workload {
    let n = side * side;
    let inf: u64 = 1 << 40;
    // Deterministic cell weights.
    let mut rng = SplitMix64::new(0xa57a);
    let wt: Vec<u64> = (0..n).map(|_| 1 + rng.next_u64() % 31).collect();

    let dist_base = DATA;
    let seen_base = DATA + (n as u64) * 8;
    let wt_base = DATA + 2 * (n as u64) * 8;

    let mut a = Assembler::new();
    // S0=&dist S1=&seen S2=&wt S3=n S4=INF S5=side S6=checksum
    a.li(S0, dist_base as i64);
    a.li(S1, seen_base as i64);
    a.li(S2, wt_base as i64);
    a.li(S3, n as i64);
    a.li(S4, inf as i64);
    a.li(S5, side as i64);
    a.li(S7, 0); // iterations of the outer visit loop
    a.label("visit");
    a.bge(S7, S3, "sum");
    // Scan for the unvisited cell with minimum distance.
    a.li(T0, 0); // index
    a.mv(T1, S4); // best dist
    a.li(T2, -1); // best index
    a.label("scan");
    a.bge(T0, S3, "scandone");
    a.slli(A2, T0, 3);
    a.add(A3, A2, S1);
    a.ld(A4, A3, 0); // seen[i]
    a.bne(A4, ZERO, "snext");
    a.add(A5, A2, S0);
    a.ld(A6, A5, 0); // dist[i]
    a.bge(A6, T1, "snext"); // min-scan: hard to predict
    a.mv(T1, A6);
    a.mv(T2, T0);
    a.label("snext");
    a.addi(T0, T0, 1);
    a.j("scan");
    a.label("scandone");
    a.li(A7, -1);
    a.beq(T2, A7, "sum"); // nothing reachable left
                          // Mark visited.
    a.slli(A2, T2, 3);
    a.add(A3, A2, S1);
    a.li(A4, 1);
    a.st(A3, A4, 0);
    // Relax the four grid neighbors of T2 (row T3, col T4).
    a.div(T3, T2, S5);
    a.rem(T4, T2, S5);
    // Neighbor deltas encoded as (cond, index expr) sequences.
    // left: col > 0 -> idx-1
    a.beq(T4, ZERO, "no_left");
    a.addi(T5, T2, -1);
    a.call("relax");
    a.label("no_left");
    // right: col < side-1 -> idx+1
    a.addi(A5, S5, -1);
    a.bge(T4, A5, "no_right");
    a.addi(T5, T2, 1);
    a.call("relax");
    a.label("no_right");
    // up: row > 0 -> idx-side
    a.beq(T3, ZERO, "no_up");
    a.sub(T5, T2, S5);
    a.call("relax");
    a.label("no_up");
    // down: row < side-1 -> idx+side
    a.addi(A5, S5, -1);
    a.bge(T3, A5, "no_down");
    a.add(T5, T2, S5);
    a.call("relax");
    a.label("no_down");
    a.addi(S7, S7, 1);
    a.j("visit");
    // relax(T5 = neighbor index; T1 = dist of visited cell)
    a.label("relax");
    a.slli(A2, T5, 3);
    a.add(A3, A2, S2);
    a.ld(A4, A3, 0); // wt[v]
    a.add(A4, A4, T1); // nd = dist[u] + wt[v]
    a.add(A5, A2, S0); // &dist[v]
    a.ld(A6, A5, 0);
    a.bge(A4, A6, "norelax"); // hard to predict
    a.st(A5, A4, 0);
    a.label("norelax");
    a.ret();
    // Checksum.
    a.label("sum");
    a.li(T0, 0);
    a.li(S6, 0);
    a.label("sloop");
    a.bge(T0, S3, "done");
    a.slli(A2, T0, 3);
    a.add(A2, A2, S0);
    a.ld(A3, A2, 0);
    a.add(S6, S6, A3);
    a.addi(T0, T0, 1);
    a.j("sloop");
    a.label("done");
    a.st(ZERO, S6, RESULT as i64);
    a.halt();

    // Reference.
    let mut dist = vec![inf; n];
    let mut seen = vec![false; n];
    dist[0] = 0;
    for _ in 0..n {
        let mut best = inf;
        let mut bi = usize::MAX;
        for i in 0..n {
            if !seen[i] && dist[i] < best {
                best = dist[i];
                bi = i;
            }
        }
        if bi == usize::MAX {
            break;
        }
        seen[bi] = true;
        let (r, c) = (bi / side, bi % side);
        let mut relax = |v: usize| {
            let nd = best + wt[v];
            if nd < dist[v] {
                dist[v] = nd;
            }
        };
        if c > 0 {
            relax(bi - 1);
        }
        if c < side - 1 {
            relax(bi + 1);
        }
        if r > 0 {
            relax(bi - side);
        }
        if r < side - 1 {
            relax(bi + side);
        }
    }
    let checksum: u64 = dist.iter().fold(0u64, |s, &d| s.wrapping_add(d));

    let mut mem = Vec::new();
    #[allow(clippy::needless_range_loop)] // i is used for three parallel arrays
    for i in 0..n {
        mem.push((dist_base + 8 * i as u64, if i == 0 { 0 } else { inf }));
        mem.push((seen_base + 8 * i as u64, 0));
        mem.push((wt_base + 8 * i as u64, wt[i]));
    }
    Workload::new(
        format!("astar/{side}"),
        Suite::Spec2006,
        a.assemble().expect("astar assembles"),
        mem,
        vec![Check { addr: RESULT, expect: checksum, what: "distance checksum" }],
    )
}

// ---------------------------------------------------------------------
// gobmk
// ---------------------------------------------------------------------

/// Board-evaluation surrogate: repeatedly mutate a small board with
/// hash-driven moves and re-score it with nested data-dependent pattern
/// branches.
pub fn gobmk(rounds: u64) -> Workload {
    let size = 81u64; // 9x9 board
    let board_base = DATA;
    let mut a = Assembler::new();
    // S0=&board S1=size S2=score S3=hash-state S4=MIX S5=rounds S6=3
    a.li(S0, board_base as i64);
    a.li(S1, size as i64);
    a.li(S2, 0);
    a.li(S3, 0x60b0);
    a.li(S4, MIX as i64);
    a.li(S5, rounds as i64);
    a.li(S6, 3);
    a.li(S7, 0); // round counter
    a.label("round");
    a.bge(S7, S5, "done");
    // Mutate: board[hash % size] = hash % 3.
    emit_mix(&mut a, S3, S3, S4, A2);
    a.srli(A6, S3, 8); // positive dividend for the signed rem
    a.rem(T0, A6, S1);
    a.rem(T1, A6, S6);
    a.slli(A3, T0, 3);
    a.add(A3, A3, S0);
    a.st(A3, T1, 0);
    // Score: walk interior points, branching on this point and its
    // left/right neighbors (deeply nested data-dependent control).
    a.li(T2, 1);
    a.addi(T3, S1, -1);
    a.label("scan");
    a.bge(T2, T3, "rnext");
    a.slli(A4, T2, 3);
    a.add(A4, A4, S0);
    a.ld(T4, A4, 0); // p = board[i]
    a.ld(T5, A4, -8); // l = board[i-1]
    a.ld(T6, A4, 8); // r = board[i+1]
    a.beq(T4, ZERO, "snext"); // empty point
    a.bne(T4, T5, "try_r"); // pattern: same colour left?
    a.addi(S2, S2, 3);
    a.label("try_r");
    a.bne(T4, T6, "try_both");
    a.addi(S2, S2, 5);
    a.label("try_both");
    a.bne(T5, T6, "snext");
    a.beq(T5, ZERO, "snext");
    a.addi(S2, S2, 7);
    a.label("snext");
    a.addi(T2, T2, 1);
    a.j("scan");
    a.label("rnext");
    a.addi(S7, S7, 1);
    a.j("round");
    a.label("done");
    a.st(ZERO, S2, RESULT as i64);
    a.halt();

    // Reference.
    let mut board = vec![0u64; size as usize];
    let mut state = 0x60b0u64;
    let mut score = 0u64;
    for _ in 0..rounds {
        state = mix_ref(state);
        let pos = state >> 8;
        board[(pos % size) as usize] = pos % 3;
        for i in 1..(size as usize - 1) {
            let (p, l, r) = (board[i], board[i - 1], board[i + 1]);
            if p == 0 {
                continue;
            }
            if p == l {
                score += 3;
            }
            if p == r {
                score += 5;
            }
            if l == r && l != 0 {
                score += 7;
            }
        }
    }

    let mem = (0..size).map(|i| (board_base + 8 * i, 0)).collect();
    Workload::new(
        format!("gobmk/{rounds}"),
        Suite::Spec2006,
        a.assemble().expect("gobmk assembles"),
        mem,
        vec![Check { addr: RESULT, expect: score, what: "board score" }],
    )
}

// ---------------------------------------------------------------------
// mcf
// ---------------------------------------------------------------------

/// Pointer-chasing surrogate for `mcf`: walk a randomly permuted linked
/// list whose working set exceeds the L2 cache, conditionally adjusting
/// node costs. Memory-bound — squash reuse buys little here because the
/// latency is dominated by cache misses (paper §4.1.1).
pub fn mcf(nodes: usize, steps: u64) -> Workload {
    // Random cyclic permutation for the next[] links.
    let mut rng = SplitMix64::new(0x3cf);
    let mut perm: Vec<u64> = (0..nodes as u64).collect();
    for i in (1..nodes).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    let mut next = vec![0u64; nodes];
    for i in 0..nodes {
        next[perm[i] as usize] = perm[(i + 1) % nodes];
    }
    let cost: Vec<u64> = (0..nodes).map(|_| rng.next_u64() % 1000).collect();

    let next_base = DATA2;
    let cost_base = DATA3;
    let mut a = Assembler::new();
    // S0=&next S1=&cost S2=node S3=acc S4=steps S5=500 (threshold)
    a.li(S0, next_base as i64);
    a.li(S1, cost_base as i64);
    a.li(S2, 0);
    a.li(S3, 0);
    a.li(S4, steps as i64);
    a.li(S5, 500);
    a.li(S6, 0);
    a.label("walk");
    a.bge(S6, S4, "done");
    a.slli(A2, S2, 3);
    a.add(A3, A2, S1);
    a.ld(T0, A3, 0); // cost[node]
    a.bge(T0, S5, "expensive"); // data-dependent on loaded cost
    a.add(S3, S3, T0);
    a.addi(T0, T0, 7);
    a.st(A3, T0, 0); // cost[node] += 7
    a.j("step");
    a.label("expensive");
    a.sub(S3, S3, T0);
    a.label("step");
    a.add(A4, A2, S0);
    a.ld(S2, A4, 0); // node = next[node] (serial pointer chase)
    a.addi(S6, S6, 1);
    a.j("walk");
    a.label("done");
    a.st(ZERO, S3, RESULT as i64);
    a.st(ZERO, S2, (RESULT + 8) as i64);
    a.halt();

    // Reference.
    let mut c = cost.clone();
    let mut node = 0usize;
    let mut acc = 0u64;
    for _ in 0..steps {
        let c0 = c[node];
        if c0 < 500 {
            acc = acc.wrapping_add(c0);
            c[node] = c0 + 7;
        } else {
            acc = acc.wrapping_sub(c0);
        }
        node = next[node] as usize;
    }

    let mut mem = Vec::with_capacity(2 * nodes);
    for i in 0..nodes {
        mem.push((next_base + 8 * i as u64, next[i]));
        mem.push((cost_base + 8 * i as u64, cost[i]));
    }
    Workload::new(
        format!("mcf/{nodes}"),
        Suite::Spec2006,
        a.assemble().expect("mcf assembles"),
        mem,
        vec![
            Check { addr: RESULT, expect: acc, what: "cost accumulator" },
            Check { addr: RESULT + 8, expect: node as u64, what: "final node" },
        ],
    )
}

// ---------------------------------------------------------------------
// omnetpp
// ---------------------------------------------------------------------

/// Discrete-event simulation surrogate: scan a small event list for the
/// earliest timestamp, dispatch on the event type, and reschedule.
pub fn omnetpp(slots: usize, events: u64) -> Workload {
    let mut rng = SplitMix64::new(0x0e7);
    let times: Vec<u64> = (0..slots).map(|_| rng.next_u64() % 1000).collect();
    let types: Vec<u64> = (0..slots).map(|_| rng.next_u64() % 3).collect();

    let time_base = DATA;
    let type_base = DATA + (slots as u64) * 8;
    let mut a = Assembler::new();
    // S0=&time S1=&type S2=slots S3=state(acc) S4=events S5=hash S6=MIX
    a.li(S0, time_base as i64);
    a.li(S1, type_base as i64);
    a.li(S2, slots as i64);
    a.li(S3, 0);
    a.li(S4, events as i64);
    a.li(S5, 0x0e7e);
    a.li(S6, MIX as i64);
    a.li(S7, 0);
    a.label("event");
    a.bge(S7, S4, "done");
    // Min-time scan.
    a.li(T0, 0);
    a.li(T1, -1); // best idx
    a.li(T2, i64::MAX); // best time
    a.label("scan");
    a.bge(T0, S2, "fire");
    a.slli(A2, T0, 3);
    a.add(A3, A2, S0);
    a.ld(A4, A3, 0);
    a.bge(A4, T2, "snext"); // hard to predict
    a.mv(T2, A4);
    a.mv(T1, T0);
    a.label("snext");
    a.addi(T0, T0, 1);
    a.j("scan");
    a.label("fire");
    // Dispatch on the event type.
    a.slli(A2, T1, 3);
    a.add(A5, A2, S1);
    a.ld(T3, A5, 0); // type
    a.li(A6, 1);
    a.beq(T3, ZERO, "t0");
    a.beq(T3, A6, "t1");
    // type 2: state += time * 3
    a.li(A7, 3);
    a.mul(A7, T2, A7);
    a.add(S3, S3, A7);
    a.j("resched");
    a.label("t0"); // state += time
    a.add(S3, S3, T2);
    a.j("resched");
    a.label("t1"); // state ^= time
    a.xor(S3, S3, T2);
    a.label("resched");
    // New time = time + 1 + hash % 256; new type = hash % 3.
    emit_mix(&mut a, S5, S5, S6, A7);
    a.andi(T4, S5, 255);
    a.add(T4, T4, T2);
    a.addi(T4, T4, 1);
    a.add(A3, A2, S0);
    a.st(A3, T4, 0);
    a.li(A6, 3);
    a.srli(T6, S5, 8); // positive dividend for the signed rem
    a.rem(T5, T6, A6);
    a.st(A5, T5, 0);
    a.addi(S7, S7, 1);
    a.j("event");
    a.label("done");
    a.st(ZERO, S3, RESULT as i64);
    a.halt();

    // Reference.
    let mut t = times.clone();
    let mut ty = types.clone();
    let mut state = 0x0e7eu64;
    let mut acc = 0u64;
    for _ in 0..events {
        let mut bi = usize::MAX;
        let mut bt = u64::MAX >> 1; // i64::MAX as u64
        for (i, &x) in t.iter().enumerate() {
            if x < bt {
                bt = x;
                bi = i;
            }
        }
        match ty[bi] {
            0 => acc = acc.wrapping_add(bt),
            1 => acc ^= bt,
            _ => acc = acc.wrapping_add(bt.wrapping_mul(3)),
        }
        state = mix_ref(state);
        t[bi] = bt + 1 + (state & 255);
        ty[bi] = (state >> 8) % 3;
    }

    let mut mem = Vec::new();
    for i in 0..slots {
        mem.push((time_base + 8 * i as u64, times[i]));
        mem.push((type_base + 8 * i as u64, types[i]));
    }
    Workload::new(
        format!("omnetpp/{events}"),
        Suite::Spec2006,
        a.assemble().expect("omnetpp assembles"),
        mem,
        vec![Check { addr: RESULT, expect: acc, what: "event accumulator" }],
    )
}

// ---------------------------------------------------------------------
// sjeng
// ---------------------------------------------------------------------

/// Game-tree surrogate: a three-level search with hash-driven move
/// values and alpha-beta-style pruning branches.
pub fn sjeng(positions: u64) -> Workload {
    let mut a = Assembler::new();
    // S0=hash S1=MIX S2=best-acc S3=positions S5=branching(4)
    a.li(S0, 0x57e9);
    a.li(S1, MIX as i64);
    a.li(S2, 0);
    a.li(S3, positions as i64);
    a.li(S5, 4);
    a.li(S4, 0);
    a.label("pos");
    a.bge(S4, S3, "done");
    a.li(S6, i64::MIN); // alpha for this position
    a.li(T0, 0); // move1
    a.label("l1");
    a.bge(T0, S5, "pnext");
    emit_mix(&mut a, S0, S0, S1, A2);
    a.srai(S7, S0, 32); // value seed for subtree
    a.li(S8, i64::MAX); // beta (min at level 2)
    a.li(T1, 0);
    a.label("l2");
    a.bge(T1, S5, "l1next");
    emit_mix(&mut a, S0, S0, S1, A3);
    a.li(T2, 0);
    a.li(S9, i64::MIN); // max at level 3
    a.label("l3");
    a.bge(T2, S5, "l2next");
    emit_mix(&mut a, S0, S0, S1, A4);
    a.srai(A5, S0, 40);
    a.add(A5, A5, S7); // leaf eval
    a.bge(S9, A5, "no3"); // max update: hard to predict
    a.mv(S9, A5);
    a.label("no3");
    // Alpha-beta-style cut: if leaf already exceeds beta, prune.
    a.blt(A5, S8, "no_cut");
    a.j("l2cut");
    a.label("no_cut");
    a.addi(T2, T2, 1);
    a.j("l3");
    a.label("l2cut");
    a.label("l2next");
    a.bge(S9, S8, "nomin");
    a.mv(S8, S9);
    a.label("nomin");
    a.addi(T1, T1, 1);
    a.j("l2");
    a.label("l1next");
    a.bge(S6, S8, "nomax");
    a.mv(S6, S8);
    a.label("nomax");
    a.addi(T0, T0, 1);
    a.j("l1");
    a.label("pnext");
    a.add(S2, S2, S6);
    a.addi(S4, S4, 1);
    a.j("pos");
    a.label("done");
    a.st(ZERO, S2, RESULT as i64);
    a.halt();

    // Reference.
    let mut state = 0x57e9u64;
    let mut acc = 0i64;
    for _ in 0..positions {
        let mut alpha = i64::MIN;
        for _ in 0..4 {
            state = mix_ref(state);
            let seed = (state as i64) >> 32;
            let mut beta = i64::MAX;
            for _ in 0..4 {
                state = mix_ref(state);
                let mut m3 = i64::MIN;
                let mut t2 = 0;
                while t2 < 4 {
                    state = mix_ref(state);
                    let leaf = ((state as i64) >> 40).wrapping_add(seed);
                    if m3 < leaf {
                        m3 = leaf;
                    }
                    if leaf >= beta {
                        break; // prune
                    }
                    t2 += 1;
                }
                if m3 < beta {
                    beta = m3;
                }
            }
            if alpha < beta {
                alpha = beta;
            }
        }
        acc = acc.wrapping_add(alpha);
    }

    Workload::new(
        format!("sjeng/{positions}"),
        Suite::Spec2006,
        a.assemble().expect("sjeng assembles"),
        vec![],
        vec![Check { addr: RESULT, expect: acc as u64, what: "search accumulator" }],
    )
}

// ---------------------------------------------------------------------
// bzip2
// ---------------------------------------------------------------------

/// Block-sorting surrogate: insertion-sort small blocks of
/// pseudo-random words (inner comparison loop is data-dependent), then
/// run-length scan the sorted block.
pub fn bzip2(blocks: u64) -> Workload {
    const BLOCK: u64 = 24;
    let buf_base = DATA;
    let mut a = Assembler::new();
    // S0=&buf S1=BLOCK S2=acc S3=blocks S4=hash S5=MIX S6=mask
    a.li(S0, buf_base as i64);
    a.li(S1, BLOCK as i64);
    a.li(S2, 0);
    a.li(S3, blocks as i64);
    a.li(S4, 0xb21b);
    a.li(S5, MIX as i64);
    a.li(S6, 0xff);
    a.li(S7, 0);
    a.label("block");
    a.bge(S7, S3, "done");
    // Fill the block with pseudo-random bytes.
    a.li(T0, 0);
    a.label("fill");
    a.bge(T0, S1, "sort");
    emit_mix(&mut a, S4, S4, S5, A2);
    a.and(A3, S4, S6);
    a.slli(A4, T0, 3);
    a.add(A4, A4, S0);
    a.st(A4, A3, 0);
    a.addi(T0, T0, 1);
    a.j("fill");
    // Insertion sort.
    a.label("sort");
    a.li(T0, 1);
    a.label("iloop");
    a.bge(T0, S1, "rle");
    a.slli(A2, T0, 3);
    a.add(A2, A2, S0);
    a.ld(T1, A2, 0); // key
    a.mv(T2, T0); // j
    a.label("shift");
    a.beq(T2, ZERO, "place");
    a.slli(A3, T2, 3);
    a.add(A3, A3, S0);
    a.ld(T3, A3, -8); // buf[j-1]
    a.bge(T1, T3, "place"); // comparison on random data
    a.st(A3, T3, 0); // buf[j] = buf[j-1]
    a.addi(T2, T2, -1);
    a.j("shift");
    a.label("place");
    a.slli(A4, T2, 3);
    a.add(A4, A4, S0);
    a.st(A4, T1, 0);
    a.addi(T0, T0, 1);
    a.j("iloop");
    // Run-length scan.
    a.label("rle");
    a.li(T0, 1);
    a.label("rloop");
    a.bge(T0, S1, "bnext");
    a.slli(A2, T0, 3);
    a.add(A2, A2, S0);
    a.ld(T1, A2, 0);
    a.ld(T2, A2, -8);
    a.bne(T1, T2, "norun");
    a.addi(S2, S2, 1);
    a.label("norun");
    a.add(S2, S2, T1);
    a.addi(T0, T0, 1);
    a.j("rloop");
    a.label("bnext");
    a.addi(S7, S7, 1);
    a.j("block");
    a.label("done");
    a.st(ZERO, S2, RESULT as i64);
    a.halt();

    // Reference.
    let mut state = 0xb21bu64;
    let mut acc = 0u64;
    for _ in 0..blocks {
        let mut buf: Vec<u64> = (0..BLOCK)
            .map(|_| {
                state = mix_ref(state);
                state & 0xff
            })
            .collect();
        for i in 1..buf.len() {
            let key = buf[i];
            let mut j = i;
            while j > 0 && key < buf[j - 1] {
                buf[j] = buf[j - 1];
                j -= 1;
            }
            buf[j] = key;
        }
        for i in 1..buf.len() {
            if buf[i] == buf[i - 1] {
                acc += 1;
            }
            acc = acc.wrapping_add(buf[i]);
        }
    }

    Workload::new(
        format!("bzip2/{blocks}"),
        Suite::Spec2006,
        a.assemble().expect("bzip2 assembles"),
        vec![],
        vec![Check { addr: RESULT, expect: acc, what: "sort/RLE accumulator" }],
    )
}

// ---------------------------------------------------------------------
// hmmer
// ---------------------------------------------------------------------

/// Profile-HMM dynamic-programming surrogate: a max-recurrence over a
/// sequence, with comparison branches that correlate with the data and
/// are therefore only moderately hard to predict.
pub fn hmmer(length: u64) -> Workload {
    const STATES: u64 = 8;
    let dp_base = DATA;
    let dp2_base = DATA + STATES * 8;
    let mut a = Assembler::new();
    // S0=&dp S1=&dp2 S2=STATES S3=len S4=hash S5=MIX S6=acc
    a.li(S0, dp_base as i64);
    a.li(S1, dp2_base as i64);
    a.li(S2, STATES as i64);
    a.li(S3, length as i64);
    a.li(S4, 0x4a3e);
    a.li(S5, MIX as i64);
    a.li(S6, 0);
    a.li(S7, 0); // position
    a.label("pos");
    a.bge(S7, S3, "done");
    emit_mix(&mut a, S4, S4, S5, A2);
    a.andi(T4, S4, 63); // emission score for this position
    a.li(T0, 0); // state
    a.label("state");
    a.bge(T0, S2, "swap");
    a.slli(A3, T0, 3);
    a.add(A4, A3, S0);
    a.ld(T1, A4, 0); // dp[s] + trans_stay(2)
    a.addi(T1, T1, 2);
    // dp[s-1] + trans_step(3), with dp[-1] treated as 0.
    a.li(T2, 3);
    a.beq(T0, ZERO, "nomatch");
    a.ld(T3, A4, -8);
    a.add(T2, T3, T2);
    a.label("nomatch");
    a.bge(T1, T2, "keep"); // max(): data-correlated
    a.mv(T1, T2);
    a.label("keep");
    a.add(T1, T1, T4);
    a.add(A5, A3, S1);
    a.st(A5, T1, 0); // dp2[s] = max + emit
    a.addi(T0, T0, 1);
    a.j("state");
    a.label("swap");
    a.mv(A6, S0);
    a.mv(S0, S1);
    a.mv(S1, A6);
    // Accumulate the last state's score.
    a.slli(A7, S2, 3);
    a.add(A7, A7, S0);
    a.ld(A2, A7, -8);
    a.add(S6, S6, A2);
    a.addi(S7, S7, 1);
    a.j("pos");
    a.label("done");
    a.st(ZERO, S6, RESULT as i64);
    a.halt();

    // Reference.
    let mut dp = vec![0u64; STATES as usize];
    let mut state = 0x4a3eu64;
    let mut acc = 0u64;
    for _ in 0..length {
        state = mix_ref(state);
        let emit = state & 63;
        let mut dp2 = vec![0u64; STATES as usize];
        for s in 0..STATES as usize {
            let stay = dp[s] + 2;
            let step = if s == 0 { 3 } else { dp[s - 1] + 3 };
            dp2[s] = stay.max(step) + emit;
        }
        dp = dp2;
        acc = acc.wrapping_add(dp[STATES as usize - 1]);
    }

    let mut mem = Vec::new();
    for s in 0..STATES {
        mem.push((dp_base + 8 * s, 0));
        mem.push((dp2_base + 8 * s, 0));
    }
    Workload::new(
        format!("hmmer/{length}"),
        Suite::Spec2006,
        a.assemble().expect("hmmer assembles"),
        mem,
        vec![Check { addr: RESULT, expect: acc, what: "dp accumulator" }],
    )
}

// ---------------------------------------------------------------------
// xalancbmk
// ---------------------------------------------------------------------

/// Tree-walk surrogate: iterative traversal of a random binary tree with
/// a data-dependent dispatch on each node's type.
pub fn xalancbmk(nodes: usize, walks: u64) -> Workload {
    // Node layout: [type, left, right, value] — 4 words per node.
    let mut rng = SplitMix64::new(0xa1a);
    let mut ty = vec![0u64; nodes];
    let mut left = vec![0u64; nodes];
    let mut right = vec![0u64; nodes];
    let mut val = vec![0u64; nodes];
    for i in 0..nodes {
        ty[i] = rng.next_u64() % 3;
        // Children point forward (acyclic); leaves point to 0 (sentinel).
        left[i] = if 2 * i + 1 < nodes { (2 * i + 1) as u64 } else { 0 };
        right[i] = if 2 * i + 2 < nodes { (2 * i + 2) as u64 } else { 0 };
        val[i] = rng.next_u64() % 100;
    }
    let node_base = DATA;

    let mut a = Assembler::new();
    // S0=&nodes S1=acc S2=walks S3=hash S4=MIX S5=node-count
    a.li(S0, node_base as i64);
    a.li(S1, 0);
    a.li(S2, walks as i64);
    a.li(S3, 0x7a1a);
    a.li(S4, MIX as i64);
    a.li(S5, nodes as i64);
    a.li(S6, 0);
    a.label("walk");
    a.bge(S6, S2, "done");
    emit_mix(&mut a, S3, S3, S4, A2);
    a.srli(T0, S3, 8); // positive dividend for the signed rem
    a.rem(T0, T0, S5); // start node
    a.label("descend");
    a.beq(T0, ZERO, "wnext"); // sentinel reached
    a.slli(A3, T0, 5); // node * 32 bytes
    a.add(A3, A3, S0);
    a.ld(T1, A3, 0); // type
    a.ld(T2, A3, 24); // value
    a.li(A4, 1);
    a.beq(T1, ZERO, "ty0"); // dispatch: hard to predict
    a.beq(T1, A4, "ty1");
    // type 2: acc += value*2; go right
    a.slli(A5, T2, 1);
    a.add(S1, S1, A5);
    a.ld(T0, A3, 16);
    a.j("descend");
    a.label("ty0"); // acc += value; go left
    a.add(S1, S1, T2);
    a.ld(T0, A3, 8);
    a.j("descend");
    a.label("ty1"); // acc ^= value; go left
    a.xor(S1, S1, T2);
    a.ld(T0, A3, 8);
    a.j("descend");
    a.label("wnext");
    a.addi(S6, S6, 1);
    a.j("walk");
    a.label("done");
    a.st(ZERO, S1, RESULT as i64);
    a.halt();

    // Reference.
    let mut state = 0x7a1au64;
    let mut acc = 0u64;
    for _ in 0..walks {
        state = mix_ref(state);
        let mut node = ((state >> 8) % nodes as u64) as usize;
        while node != 0 {
            match ty[node] {
                0 => {
                    acc = acc.wrapping_add(val[node]);
                    node = left[node] as usize;
                }
                1 => {
                    acc ^= val[node];
                    node = left[node] as usize;
                }
                _ => {
                    acc = acc.wrapping_add(val[node] * 2);
                    node = right[node] as usize;
                }
            }
        }
    }

    let mut mem = Vec::with_capacity(4 * nodes);
    for i in 0..nodes {
        let b = node_base + 32 * i as u64;
        mem.push((b, ty[i]));
        mem.push((b + 8, left[i]));
        mem.push((b + 16, right[i]));
        mem.push((b + 24, val[i]));
    }
    Workload::new(
        format!("xalancbmk/{walks}"),
        Suite::Spec2006,
        a.assemble().expect("xalancbmk assembles"),
        mem,
        vec![Check { addr: RESULT, expect: acc, what: "walk accumulator" }],
    )
}

// ---------------------------------------------------------------------
// perlbench
// ---------------------------------------------------------------------

/// Interpreter surrogate for `perlbench`: a bytecode VM whose dispatch is
/// an **indirect jump** through a handler table in memory. Random opcodes
/// make the jump target hard to predict — the classic interpreter
/// dispatch misprediction — and each handler's work is short, so the
/// squashed wrong-handler work rarely helps (interpreters are a known
/// hard case for reuse).
pub fn perlbench(ops: u64) -> Workload {
    const N_OPS: u64 = 5;
    let code_base = DATA;
    let arg_base = DATA + 0x4_0000;
    let table_base = DATA + 0x8_0000;
    let mut rng = SplitMix64::new(0x9e91);
    let code: Vec<u64> = (0..ops).map(|_| rng.next_u64() % N_OPS).collect();
    let args: Vec<u64> = (0..ops).map(|_| rng.next_u64() % 1000).collect();

    let mut a = Assembler::new();
    // S0=&code S1=n S2=acc S3=&table S4=&args S5=ip
    a.li(S0, code_base as i64);
    a.li(S1, ops as i64);
    a.li(S2, 1);
    a.li(S3, table_base as i64);
    a.li(S4, arg_base as i64);
    a.li(S5, 0);
    a.label("dispatch");
    a.bge(S5, S1, "done");
    a.slli(T0, S5, 3);
    a.add(A2, T0, S0);
    a.ld(T1, A2, 0); // op
    a.add(A3, T0, S4);
    a.ld(T2, A3, 0); // arg
    a.slli(A4, T1, 3);
    a.add(A4, A4, S3);
    a.ld(T3, A4, 0); // handler address
    a.jalr(ZERO, T3, 0); // indirect dispatch: hard-to-predict target
    let h_add = a.here();
    a.add(S2, S2, T2);
    a.j("next");
    let h_xor = a.here();
    a.xor(S2, S2, T2);
    a.j("next");
    let h_shl = a.here();
    a.andi(A5, T2, 7);
    a.sll(S2, S2, A5);
    a.j("next");
    let h_mul = a.here();
    a.ori(A6, T2, 1);
    a.mul(S2, S2, A6);
    a.j("next");
    let h_sub = a.here();
    a.sub(S2, S2, T2);
    a.label("next");
    a.addi(S5, S5, 1);
    a.j("dispatch");
    a.label("done");
    a.st(ZERO, S2, RESULT as i64);
    a.halt();

    // Reference.
    let mut acc = 1u64;
    for i in 0..ops as usize {
        let arg = args[i];
        match code[i] {
            0 => acc = acc.wrapping_add(arg),
            1 => acc ^= arg,
            2 => acc = acc.wrapping_shl((arg & 7) as u32),
            3 => acc = acc.wrapping_mul(arg | 1),
            _ => acc = acc.wrapping_sub(arg),
        }
    }

    let mut mem: Vec<(u64, u64)> = Vec::new();
    for (i, &c) in code.iter().enumerate() {
        mem.push((code_base + 8 * i as u64, c));
    }
    for (i, &v) in args.iter().enumerate() {
        mem.push((arg_base + 8 * i as u64, v));
    }
    for (i, h) in [h_add, h_xor, h_shl, h_mul, h_sub].iter().enumerate() {
        mem.push((table_base + 8 * i as u64, h.addr()));
    }
    Workload::new(
        format!("perlbench/{ops}"),
        Suite::Spec2006,
        a.assemble().expect("perlbench assembles"),
        mem,
        vec![Check { addr: RESULT, expect: acc, what: "vm accumulator" }],
    )
}

// ---------------------------------------------------------------------
// gcc
// ---------------------------------------------------------------------

/// Compiler surrogate for `gcc`: constant-folding over random expression
/// trees. An explicit value stack in memory is pushed and popped while an
/// operator walk dispatches on node kinds — branchy control with
/// store-to-load traffic on the stack slots.
pub fn gcc(trees: u64) -> Workload {
    const NODES: u64 = 63; // complete binary tree, depth 6
    let op_base = DATA;
    let val_base = DATA + 0x2_0000;
    let stack_base = DATA + 0x4_0000;
    let mut rng = SplitMix64::new(0x6cc);

    let mut a = Assembler::new();
    // S0=&op S1=&val S2=&stack S3=acc S4=hash S5=MIX S6=trees S7=NODES
    a.li(S0, op_base as i64);
    a.li(S1, val_base as i64);
    a.li(S2, stack_base as i64);
    a.li(S3, 0);
    a.li(S4, 0x6cc6);
    a.li(S5, MIX as i64);
    a.li(S6, trees as i64);
    a.li(S7, NODES as i64);
    a.li(S8, 0); // tree counter
    a.label("tree");
    a.bge(S8, S6, "done");
    // Mutate one node per tree: op[h % NODES] = h % 4, val[..] = h & 0xff.
    emit_mix(&mut a, S4, S4, S5, A2);
    a.srli(A3, S4, 8);
    a.rem(T0, A3, S7);
    a.slli(T0, T0, 3);
    a.add(A4, T0, S0);
    a.li(A5, 4);
    a.srli(A6, S4, 16);
    a.rem(A6, A6, A5);
    a.st(A4, A6, 0);
    a.add(A7, T0, S1);
    a.andi(A2, S4, 0xff);
    a.st(A7, A2, 0);
    // Fold bottom-up: leaves are nodes 31..62; internal node i combines
    // children 2i+1, 2i+2 according to op[i]. Results go to the stack
    // array (stack[i] = folded value of node i).
    a.li(T0, NODES as i64 - 1); // i
    a.label("fold");
    a.blt(T0, ZERO, "sum");
    a.slli(T1, T0, 3);
    a.li(A3, 31);
    a.bge(T0, A3, "leaf");
    // Internal: load children results.
    a.slli(A4, T0, 4); // 2i * 8
    a.add(A4, A4, S2);
    a.ld(T2, A4, 8); // stack[2i+1]
    a.ld(T3, A4, 16); // stack[2i+2]
    a.add(A5, T1, S0);
    a.ld(T4, A5, 0); // op
    a.li(A6, 1);
    a.beq(T4, ZERO, "op_add"); // dispatch: hard to predict
    a.beq(T4, A6, "op_xor");
    a.li(A6, 2);
    a.beq(T4, A6, "op_max");
    a.sub(T5, T2, T3); // op 3: sub
    a.j("store");
    a.label("op_add");
    a.add(T5, T2, T3);
    a.j("store");
    a.label("op_xor");
    a.xor(T5, T2, T3);
    a.j("store");
    a.label("op_max");
    a.mv(T5, T2);
    a.bgeu(T2, T3, "store"); // data-dependent (unsigned) max
    a.mv(T5, T3);
    a.j("store");
    a.label("leaf");
    a.add(A7, T1, S1);
    a.ld(T5, A7, 0); // leaf value
    a.label("store");
    a.add(A2, T1, S2);
    a.st(A2, T5, 0); // stack[i] = folded
    a.addi(T0, T0, -1);
    a.j("fold");
    a.label("sum");
    a.ld(A3, S2, 0); // root result
    a.add(S3, S3, A3);
    a.addi(S8, S8, 1);
    a.j("tree");
    a.label("done");
    a.st(ZERO, S3, RESULT as i64);
    a.halt();

    // Reference.
    let ops0: Vec<u64> = (0..NODES).map(|_| rng.next_u64() % 4).collect();
    let vals0: Vec<u64> = (0..NODES).map(|_| rng.next_u64() % 256).collect();
    let mut ops = ops0.clone();
    let mut vals = vals0.clone();
    let mut state = 0x6cc6u64;
    let mut acc = 0u64;
    for _ in 0..trees {
        state = mix_ref(state);
        let idx = ((state >> 8) % NODES) as usize;
        ops[idx] = (state >> 16) % 4;
        vals[idx] = state & 0xff;
        let mut stack = vec![0u64; NODES as usize];
        for i in (0..NODES as usize).rev() {
            stack[i] = if i >= 31 {
                vals[i]
            } else {
                let (l, r) = (stack[2 * i + 1], stack[2 * i + 2]);
                match ops[i] {
                    0 => l.wrapping_add(r),
                    1 => l ^ r,
                    2 => l.max(r),
                    _ => l.wrapping_sub(r),
                }
            };
        }
        acc = acc.wrapping_add(stack[0]);
    }

    let mut mem: Vec<(u64, u64)> = Vec::new();
    for i in 0..NODES as usize {
        mem.push((op_base + 8 * i as u64, ops0[i]));
        mem.push((val_base + 8 * i as u64, vals0[i]));
        mem.push((stack_base + 8 * i as u64, 0));
    }
    Workload::new(
        format!("gcc/{trees}"),
        Suite::Spec2006,
        a.assemble().expect("gcc assembles"),
        mem,
        vec![Check { addr: RESULT, expect: acc, what: "fold accumulator" }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_core::{MssrConfig, MultiStreamReuse};
    use mssr_sim::SimConfig;

    fn cfg() -> SimConfig {
        SimConfig::default().with_max_cycles(30_000_000)
    }

    #[test]
    fn astar_is_correct() {
        astar(12).run(cfg(), None);
    }

    #[test]
    fn gobmk_is_correct() {
        gobmk(60).run(cfg(), None);
    }

    #[test]
    fn mcf_is_correct() {
        mcf(4096, 3000).run(cfg(), None);
    }

    #[test]
    fn omnetpp_is_correct() {
        omnetpp(24, 300).run(cfg(), None);
    }

    #[test]
    fn sjeng_is_correct() {
        sjeng(150).run(cfg(), None);
    }

    #[test]
    fn bzip2_is_correct() {
        bzip2(40).run(cfg(), None);
    }

    #[test]
    fn hmmer_is_correct() {
        hmmer(600).run(cfg(), None);
    }

    #[test]
    fn xalancbmk_is_correct() {
        xalancbmk(255, 400).run(cfg(), None);
    }

    #[test]
    fn gcc_is_correct() {
        gcc(300).run(cfg(), None);
        gcc(150).run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
    }

    #[test]
    fn perlbench_is_correct_and_mispredicts_dispatch() {
        let stats = perlbench(1500).run(cfg(), None);
        assert!(
            stats.mispredictions > 300,
            "indirect dispatch should mispredict often, got {}",
            stats.mispredictions
        );
        perlbench(500).run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
    }

    #[test]
    fn kernels_survive_reuse_engine() {
        for w in [astar(10), gobmk(40), sjeng(80), bzip2(25)] {
            w.run(cfg(), Some(Box::new(MultiStreamReuse::new(MssrConfig::default()))));
        }
    }

    #[test]
    fn mcf_is_memory_bound() {
        let stats = mcf(1 << 15, 20_000).run(cfg(), None);
        assert!(stats.l2_misses > 1000, "pointer chase should miss in L2, got {}", stats.l2_misses);
        assert!(stats.ipc() < 1.0, "memory-bound kernel, got IPC {}", stats.ipc());
    }
}
