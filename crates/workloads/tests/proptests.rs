//! Property-based tests for the graph generator and scratch pools.

use mssr_workloads::graph::{Graph, SplitMix64};
use mssr_workloads::util::ScratchPool;
use proptest::prelude::*;

proptest! {
    #[test]
    fn graphs_always_satisfy_csr_invariants(
        n in 2usize..300,
        deg in 1usize..12,
        seed in any::<u64>(),
    ) {
        let g = Graph::uniform(n, deg, seed);
        prop_assert_eq!(g.row().len(), n + 1);
        prop_assert_eq!(g.row()[0], 0);
        prop_assert_eq!(*g.row().last().unwrap() as usize, g.edges());
        for u in 0..n {
            let s = g.row()[u] as usize;
            let e = g.row()[u + 1] as usize;
            prop_assert!(s <= e);
            let neigh = &g.col()[s..e];
            for w in neigh.windows(2) {
                prop_assert!(w[0] < w[1], "sorted, deduplicated");
            }
            for &v in neigh {
                prop_assert!((v as usize) < n);
                prop_assert!(v as usize != u, "no self loops");
            }
        }
    }

    #[test]
    fn graph_edges_are_symmetric(
        n in 2usize..120,
        deg in 1usize..8,
        seed in any::<u64>(),
    ) {
        let g = Graph::uniform(n, deg, seed);
        for u in 0..n {
            for (v, w) in g.neighbors(u) {
                let back = g
                    .neighbors(v as usize)
                    .find(|&(x, _)| x == u as u64)
                    .map(|(_, bw)| bw);
                prop_assert_eq!(back, Some(w), "({}, {})", u, v);
            }
        }
    }

    #[test]
    fn splitmix_below_is_always_in_bounds(seed in any::<u64>(), bound in 1u64..1 << 48) {
        let mut r = SplitMix64::new(seed);
        for _ in 0..64 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    #[test]
    fn scratch_pool_cycles_all_registers(extra in 0usize..40) {
        let mut p = ScratchPool::new();
        let first: Vec<_> = (0..7).map(|_| p.next()).collect();
        for _ in 0..extra {
            let r = p.next();
            prop_assert!(first.contains(&r));
        }
    }
}
