//! Property-based tests for the graph generator and scratch pools,
//! running on the workspace's std-only property harness
//! (`tests/common/prop.rs` at the repository root, shared via `#[path]`).

#[path = "../../../tests/common/prop.rs"]
mod prop;

use mssr_workloads::graph::{Graph, SplitMix64};
use mssr_workloads::util::ScratchPool;
use prop::for_each_case;

#[test]
fn graphs_always_satisfy_csr_invariants() {
    for_each_case("graphs_always_satisfy_csr_invariants", 48, 0x776c_6400_0001, |rng| {
        let n = rng.range(2, 300);
        let deg = rng.range(1, 12);
        let seed = rng.next_u64();
        let g = Graph::uniform(n, deg, seed);
        assert_eq!(g.row().len(), n + 1);
        assert_eq!(g.row()[0], 0);
        assert_eq!(*g.row().last().unwrap() as usize, g.edges());
        for u in 0..n {
            let s = g.row()[u] as usize;
            let e = g.row()[u + 1] as usize;
            assert!(s <= e);
            let neigh = &g.col()[s..e];
            for w in neigh.windows(2) {
                assert!(w[0] < w[1], "sorted, deduplicated");
            }
            for &v in neigh {
                assert!((v as usize) < n);
                assert!(v as usize != u, "no self loops");
            }
        }
    });
}

#[test]
fn graph_edges_are_symmetric() {
    for_each_case("graph_edges_are_symmetric", 32, 0x776c_6400_0002, |rng| {
        let n = rng.range(2, 120);
        let deg = rng.range(1, 8);
        let seed = rng.next_u64();
        let g = Graph::uniform(n, deg, seed);
        for u in 0..n {
            for (v, w) in g.neighbors(u) {
                let back = g.neighbors(v as usize).find(|&(x, _)| x == u as u64).map(|(_, bw)| bw);
                assert_eq!(back, Some(w), "({u}, {v})");
            }
        }
    });
}

#[test]
fn splitmix_below_is_always_in_bounds() {
    for_each_case("splitmix_below_is_always_in_bounds", 256, 0x776c_6400_0003, |rng| {
        let seed = rng.next_u64();
        let bound = 1 + rng.below((1 << 48) - 1);
        let mut r = SplitMix64::new(seed);
        for _ in 0..64 {
            assert!(r.below(bound) < bound);
        }
    });
}

#[test]
fn scratch_pool_cycles_all_registers() {
    for_each_case("scratch_pool_cycles_all_registers", 64, 0x776c_6400_0004, |rng| {
        let extra = rng.range(0, 40);
        let mut p = ScratchPool::new();
        let first: Vec<_> = (0..7).map(|_| p.next()).collect();
        for _ in 0..extra {
            let r = p.next();
            assert!(first.contains(&r));
        }
    });
}
