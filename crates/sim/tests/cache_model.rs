//! Differential property test: the set-associative LRU cache must agree
//! with a naive reference implementation on arbitrary access streams.

#[path = "../../../tests/common/prop.rs"]
mod prop;

use mssr_sim::{Cache, CacheConfig};
use prop::for_each_case;

/// Naive per-set LRU: a vector of (tag, last-use) pairs per set.
struct RefCache {
    sets: usize,
    ways: usize,
    line: u64,
    state: Vec<Vec<(u64, u64)>>,
    tick: u64,
}

impl RefCache {
    fn new(sets: usize, ways: usize, line: u64) -> RefCache {
        RefCache { sets, ways, line, state: vec![Vec::new(); sets], tick: 0 }
    }

    fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let lineno = addr / self.line;
        let set = (lineno as usize) % self.sets;
        let tag = lineno / self.sets as u64;
        let entries = &mut self.state[set];
        if let Some(e) = entries.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.tick;
            return true;
        }
        if entries.len() == self.ways {
            let lru = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(i, _)| i)
                .expect("non-empty");
            entries.remove(lru);
        }
        entries.push((tag, self.tick));
        false
    }
}

#[test]
fn cache_matches_reference_lru() {
    for_each_case("cache_matches_reference_lru", 64, 0x7369_6d00_0001, |rng| {
        let addrs: Vec<u64> = (0..rng.range(1, 400)).map(|_| rng.below(4096)).collect();
        // 8 sets x 2 ways x 64 B lines = 1 KiB.
        let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, latency: 1 };
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(cfg.sets(), cfg.ways, cfg.line_bytes as u64);
        let mut hits = 0u64;
        for &a in &addrs {
            let got = cache.access(a);
            let want = reference.access(a);
            assert_eq!(got, want, "divergence at address {a:#x}");
            if want {
                hits += 1;
            }
        }
        assert_eq!(cache.hits(), hits);
        assert_eq!(cache.misses(), addrs.len() as u64 - hits);
    });
}

#[test]
fn direct_mapped_cache_matches_reference() {
    for_each_case("direct_mapped_cache_matches_reference", 64, 0x7369_6d00_0002, |rng| {
        let addrs: Vec<u64> = (0..rng.range(1, 300)).map(|_| rng.below(2048)).collect();
        let cfg = CacheConfig { size_bytes: 256, ways: 1, line_bytes: 64, latency: 1 };
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(cfg.sets(), 1, 64);
        for &a in &addrs {
            assert_eq!(cache.access(a), reference.access(a));
        }
    });
}
