//! Differential property test for the load/store queue: forwarding and
//! violation detection must agree with a simple reference model on random
//! in-order dispatch / out-of-order execution schedules.

#[path = "../../../tests/common/prop.rs"]
mod prop;

use mssr_sim::{Forward, LqEntry, Lsq, SeqNum, SqEntry};
use prop::{for_each_case, Rng};

/// A generated memory operation: dispatched in order, executed in a
/// shuffled order.
#[derive(Clone, Debug)]
struct MemOp {
    is_store: bool,
    /// 8-byte-aligned slot (small space to force aliasing).
    slot: u64,
    data: u64,
}

fn memop(rng: &mut Rng) -> MemOp {
    MemOp { is_store: rng.chance(1, 2), slot: rng.below(6), data: rng.next_u64() }
}

fn memops(rng: &mut Rng) -> Vec<MemOp> {
    (0..rng.range(1, 24)).map(|_| memop(rng)).collect()
}

/// Forwarding returns the youngest older store's data to the same slot,
/// exactly as a scan over the dispatched-but-uncommitted store set
/// would.
#[test]
fn forwarding_matches_reference() {
    for_each_case("forwarding_matches_reference", 128, 0x6c73_7100_0001, |rng| {
        let ops = memops(rng);
        let probe_slot = rng.below(6);
        let mut lsq = Lsq::new(64, 64);
        // Dispatch everything in order; execute stores immediately (their
        // addresses become known).
        for (i, op) in ops.iter().enumerate() {
            let seq = SeqNum::new(i as u64 + 1);
            if op.is_store {
                lsq.push_store(SqEntry { seq, addr: None, data: None });
                let s = lsq.store_mut(seq).expect("store exists");
                s.addr = Some(op.slot * 8);
                s.data = Some(op.data);
            } else {
                lsq.push_load(LqEntry {
                    seq,
                    addr: None,
                    issued: false,
                    value: None,
                    reused: false,
                });
            }
        }
        // Probe a hypothetical load younger than everything.
        let probe_seq = SeqNum::new(ops.len() as u64 + 1);
        let got = lsq.forward(probe_seq, probe_slot * 8);
        // Every model store has both address and data known, so the
        // reference never predicts `Forward::Pending`.
        let expected = ops
            .iter()
            .rev()
            .find(|o| o.is_store && o.slot == probe_slot)
            .map_or(Forward::Miss, |o| Forward::Data(o.data));
        assert_eq!(got, expected);
    });
}

/// A store's violation check reports the oldest younger load that has
/// obtained data from the same slot, and nothing else.
#[test]
fn store_check_matches_reference() {
    for_each_case("store_check_matches_reference", 128, 0x6c73_7100_0002, |rng| {
        let ops = memops(rng);
        let issued_mask = rng.next_u64() as u32;
        let store_pos = rng.below(24) as usize;
        let store_slot = rng.below(6);
        let mut lsq = Lsq::new(64, 64);
        let mut loads = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let seq = SeqNum::new(i as u64 + 1);
            if op.is_store {
                lsq.push_store(SqEntry { seq, addr: None, data: None });
            } else {
                let issued = issued_mask >> (i % 32) & 1 == 1;
                lsq.push_load(LqEntry {
                    seq,
                    addr: issued.then_some(op.slot * 8),
                    issued,
                    value: None,
                    reused: false,
                });
                loads.push((seq, op.slot, issued));
            }
        }
        let store_seq = SeqNum::new((store_pos % ops.len()) as u64 + 1);
        let got = lsq.store_check(store_seq, store_slot * 8);
        let expected = loads
            .iter()
            .filter(|(seq, slot, issued)| *issued && *seq > store_seq && *slot == store_slot)
            .map(|(seq, _, _)| *seq)
            .min();
        assert_eq!(got, expected);
    });
}

/// Squash truncation preserves exactly the older entries.
#[test]
fn squash_keeps_only_older_entries() {
    for_each_case("squash_keeps_only_older_entries", 128, 0x6c73_7100_0003, |rng| {
        let ops = memops(rng);
        let cut = rng.range(1, 26) as u64;
        let mut lsq = Lsq::new(64, 64);
        let mut expect_loads = 0;
        let mut expect_stores = 0;
        for (i, op) in ops.iter().enumerate() {
            let seq = SeqNum::new(i as u64 + 1);
            if op.is_store {
                lsq.push_store(SqEntry { seq, addr: None, data: None });
                if seq < SeqNum::new(cut) {
                    expect_stores += 1;
                }
            } else {
                lsq.push_load(LqEntry {
                    seq,
                    addr: None,
                    issued: false,
                    value: None,
                    reused: false,
                });
                if seq < SeqNum::new(cut) {
                    expect_loads += 1;
                }
            }
        }
        lsq.squash_from(SeqNum::new(cut));
        assert_eq!(lsq.lq_len(), expect_loads);
        assert_eq!(lsq.sq_len(), expect_stores);
    });
}
