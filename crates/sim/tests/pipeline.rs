//! End-to-end pipeline tests: architectural correctness under
//! misprediction, memory-order replay, snoops, tracing, and the
//! invariant sweep. These exercise the `Simulator` orchestrator and the
//! stage passes together through the public API.

use mssr_isa::{regs::*, Assembler};
use mssr_sim::{BufferSink, SimConfig, SimStats, Simulator, TraceKind};

fn run_program(build: impl FnOnce(&mut Assembler)) -> (Simulator, SimStats) {
    let mut a = Assembler::new();
    build(&mut a);
    let program = a.assemble().expect("assembles");
    let cfg = SimConfig::default().with_max_cycles(2_000_000);
    let mut sim = Simulator::new(cfg, program);
    let stats = sim.run();
    (sim, stats)
}

#[test]
fn straightline_arithmetic_commits() {
    let (sim, stats) = run_program(|a| {
        a.li(T0, 6);
        a.li(T1, 7);
        a.mul(T2, T0, T1);
        a.st(ZERO, T2, 0x200);
        a.halt();
    });
    assert!(sim.is_halted());
    assert_eq!(stats.committed_instructions, 5);
    assert_eq!(sim.read_mem_u64(0x200), 42);
    assert_eq!(stats.mispredictions, 0);
}

#[test]
fn loop_counts_correctly() {
    let (sim, stats) = run_program(|a| {
        a.li(T0, 0);
        a.li(T1, 100);
        a.label("loop");
        a.addi(T0, T0, 1);
        a.blt(T0, T1, "loop");
        a.st(ZERO, T0, 0x100);
        a.halt();
    });
    assert_eq!(sim.read_mem_u64(0x100), 100);
    // 2 setup + 100*2 loop + store + halt
    assert_eq!(stats.committed_instructions, 2 + 200 + 2);
    assert!(stats.ipc() > 1.0, "a tight predictable loop should exceed IPC 1, got {}", stats.ipc());
}

#[test]
fn load_store_through_memory() {
    let (sim, _) = run_program(|a| {
        a.li(T0, 0x300);
        a.li(T1, 1234);
        a.st(T0, T1, 0);
        a.ld(T2, T0, 0); // must forward or read the committed store
        a.addi(T2, T2, 1);
        a.st(T0, T2, 8);
        a.halt();
    });
    assert_eq!(sim.read_mem_u64(0x300), 1234);
    assert_eq!(sim.read_mem_u64(0x308), 1235);
}

#[test]
fn store_to_load_forwarding_counts() {
    let (_, stats) = run_program(|a| {
        a.li(T0, 0x400);
        a.li(T1, 5);
        a.st(T0, T1, 0);
        a.ld(T2, T0, 0);
        a.halt();
    });
    assert!(stats.store_forwards >= 1, "load should forward from in-flight store");
}

#[test]
fn data_dependent_branch_mispredicts_and_recovers() {
    // Branch direction depends on a loaded pseudo-random value; the
    // final accumulated sum must match the architectural result.
    let (sim, stats) = run_program(|a| {
        a.li(S0, 0); // i
        a.li(S1, 200); // bound
        a.li(S2, 0); // acc
        a.li(S3, 0x123456789); // lcg state
        a.label("loop");
        // state = state * 6364136223846793005 + 1442695040888963407
        a.li(T0, 6364136223846793005);
        a.mul(S3, S3, T0);
        a.li(T0, 1442695040888963407);
        a.add(S3, S3, T0);
        a.srli(T1, S3, 33);
        a.andi(T1, T1, 1);
        a.beq(T1, ZERO, "skip");
        a.addi(S2, S2, 3);
        a.j("join");
        a.label("skip");
        a.addi(S2, S2, 5);
        a.label("join");
        a.addi(S0, S0, 1);
        a.blt(S0, S1, "loop");
        a.st(ZERO, S2, 0x500);
        a.halt();
    });
    // Reference model.
    let mut state = 0x123456789u64;
    let mut acc = 0u64;
    for _ in 0..200 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let bit = (state >> 33) & 1;
        acc += if bit != 0 { 3 } else { 5 };
    }
    assert_eq!(sim.read_mem_u64(0x500), acc, "wrong-path execution must not corrupt state");
    assert!(
        stats.mispredictions > 20,
        "random branches should mispredict, got {}",
        stats.mispredictions
    );
}

#[test]
fn memory_order_violation_detected_and_replayed() {
    // A store whose address arrives late (behind a divide) followed by
    // a load to the same address that issues first.
    let (sim, stats) = run_program(|a| {
        a.li(T0, 1024);
        a.li(T1, 4);
        a.li(S0, 0x600);
        a.li(S1, 77);
        a.st(S0, S1, 0); // establish old value 77
        a.div(T2, T0, T1); // slow: 1024/4 = 256
        a.add(T3, T2, ZERO);
        a.st(T3, S1, 0x600 - 256); // addr = 0x600, late
        a.li(S1, 99);
        a.st(S0, S1, 0); // younger store overwrites with 99
        a.ld(T4, S0, 0); // younger load, issues early, may read stale
        a.st(ZERO, T4, 0x608);
        a.halt();
    });
    // Architecturally the load must see 99.
    assert_eq!(sim.read_mem_u64(0x608), 99);
    // At least one ordering violation should have been detected on the
    // way (the load issues before the slow store chain resolves).
    assert!(
        stats.flushes_mem_order >= 1,
        "expected a store-to-load replay, got {}",
        stats.flushes_mem_order
    );
}

#[test]
fn call_and_return_via_btb() {
    let (sim, _) = run_program(|a| {
        a.li(S0, 0);
        a.li(S1, 50);
        a.label("loop");
        a.call("f");
        a.addi(S0, S0, 1);
        a.blt(S0, S1, "loop");
        a.st(ZERO, S2, 0x700);
        a.halt();
        a.label("f");
        a.addi(S2, S2, 2);
        a.ret();
    });
    assert_eq!(sim.read_mem_u64(0x700), 100);
}

#[test]
fn snoop_replays_speculative_loads() {
    // A load executes speculatively; a snoop to its address arrives
    // before it commits; it must be replayed (flush counted), and the
    // program still produces the right value.
    let mut a = Assembler::new();
    a.li(T0, 0x900);
    a.li(T1, 1000);
    a.li(T2, 4);
    a.div(T3, T1, T2); // slow op keeps commit away
    a.ld(T4, T0, 0); // speculative load, executes early
    a.add(T5, T4, T3);
    a.st(ZERO, T5, 0x100);
    a.halt();
    let program = a.assemble().unwrap();
    let mut sim = Simulator::new(SimConfig::default().with_max_cycles(100_000), program);
    sim.write_mem_u64(0x900, 7);
    // Step until the load has issued but the divide holds up commit,
    // then snoop its address.
    sim.run_cycles(12);
    sim.inject_snoop(0x900);
    let stats = sim.run();
    assert_eq!(sim.read_mem_u64(0x100), 257);
    assert_eq!(stats.snoops, 1);
    assert!(
        stats.flushes_mem_order >= 1,
        "the snooped speculative load must replay, got {} flushes",
        stats.flushes_mem_order
    );
}

#[test]
fn snoop_to_unrelated_address_is_harmless() {
    let mut a = Assembler::new();
    a.li(T0, 0x900);
    a.ld(T4, T0, 0);
    a.st(ZERO, T4, 0x100);
    a.halt();
    let mut sim =
        Simulator::new(SimConfig::default().with_max_cycles(100_000), a.assemble().unwrap());
    sim.write_mem_u64(0x900, 5);
    sim.run_cycles(8);
    sim.inject_snoop(0x5000);
    let stats = sim.run();
    assert_eq!(sim.read_mem_u64(0x100), 5);
    assert_eq!(stats.flushes_mem_order, 0);
}

#[test]
fn max_cycles_bound_stops_infinite_loop() {
    let mut a = Assembler::new();
    a.label("spin");
    a.j("spin");
    let program = a.assemble().unwrap();
    let mut sim = Simulator::new(SimConfig::default().with_max_cycles(1000), program);
    let stats = sim.run();
    assert_eq!(stats.cycles, 1000);
    assert!(!sim.is_halted());
}

#[test]
fn max_insts_bound() {
    let mut a = Assembler::new();
    a.li(T1, 1_000_000);
    a.label("loop");
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "loop");
    a.halt();
    let program = a.assemble().unwrap();
    let mut sim = Simulator::new(SimConfig::default().with_max_insts(5000), program);
    let stats = sim.run();
    assert!(sim.is_halted());
    assert!(stats.committed_instructions >= 5000);
    assert!(stats.committed_instructions < 5000 + 16, "stops promptly at the bound");
}
#[test]
fn nested_hard_branches_still_architecturally_correct() {
    // The Listing-1 shape: two nested data-dependent branches.
    let (sim, stats) = run_program(|a| {
        a.li(S0, 0); // i
        a.li(S1, 300);
        a.li(S2, 0); // acc
        a.li(S3, 0xdeadbeef);
        a.label("loop");
        a.li(T0, 0x9e3779b97f4a7c15u64 as i64);
        a.mul(S3, S3, T0);
        a.srli(T1, S3, 31);
        a.andi(T2, T1, 1);
        a.andi(T3, T1, 2);
        a.beq(T2, ZERO, "merge"); // Br1
        a.beq(T3, ZERO, "inner_done"); // Br2
        a.addi(S2, S2, 7);
        a.label("inner_done");
        a.addi(S2, S2, 11);
        a.label("merge");
        a.addi(S2, S2, 1);
        a.addi(S0, S0, 1);
        a.blt(S0, S1, "loop");
        a.st(ZERO, S2, 0x800);
        a.halt();
    });
    let mut state = 0xdeadbeefu64;
    let mut acc = 0u64;
    for _ in 0..300 {
        state = state.wrapping_mul(0x9e3779b97f4a7c15);
        let t1 = state >> 31;
        if t1 & 1 != 0 {
            if t1 & 2 != 0 {
                acc += 7;
            }
            acc += 11;
        }
        acc += 1;
    }
    assert_eq!(sim.read_mem_u64(0x800), acc);
    assert!(stats.mispredictions > 50);
}

#[test]
fn jalr_negative_displacement_across_32bit_boundary() {
    // The jalr target is `base.wrapping_add(imm as u64)`; `imm()` is
    // already sign-extended to i64, so `as u64` must be a
    // sign-preserving bit-cast. Force a subtraction that crosses a
    // 32-bit boundary: base = RA + 2^32, displacement = -2^32. If the
    // displacement were zero-extended (or truncated to 32 bits) the
    // jump would land ~4 GiB away from the return point and the
    // program would never halt.
    let (sim, _) = run_program(|a| {
        a.li(S0, 0xa00);
        a.call("sub");
        a.li(S1, 1); // return lands here
        a.st(S0, S1, 0);
        a.halt();
        a.label("sub");
        a.li(T1, 1i64 << 32);
        a.add(T0, RA, T1); // T0 = return address + 2^32
        a.jalr(ZERO, T0, -(1i64 << 32)); // back down across the boundary
    });
    assert!(sim.is_halted(), "jalr with a negative displacement must return");
    assert_eq!(sim.read_mem_u64(0xa00), 1);
}

#[test]
fn trace_events_are_recorded_and_counted() {
    let mut a = Assembler::new();
    a.li(T0, 0x300);
    a.li(T1, 7);
    a.st(T0, T1, 0);
    a.ld(T2, T0, 0);
    a.halt();
    let program = a.assemble().expect("assembles");
    let mut sim = Simulator::new(SimConfig::default().with_max_cycles(100_000), program);
    let sink = BufferSink::new();
    let buf = sink.handle();
    sim.set_trace_sink(Box::new(sink));
    sim.run();
    assert!(sim.take_trace_sink().is_some());
    let stats = sim.stats();
    let trace = buf.lock().unwrap().clone();
    // Five instructions commit; each also fetches and renames, and
    // all but the halt (which never enters an issue queue) issue.
    for (key, at_least) in
        [("trace_fetch", 1), ("trace_rename", 5), ("trace_issue", 4), ("trace_commit", 5)]
    {
        let n = stats
            .engine
            .extra
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("missing counter {key}"));
        assert!(n >= at_least, "{key} = {n}, expected >= {at_least}");
    }
    // The JSON-lines buffer carries one object per line matching the
    // counters' total.
    let lines: Vec<&str> = trace.lines().collect();
    let total: u64 = TraceKind::ALL.iter().map(|&k| sim_trace_count(&stats, k)).sum();
    assert_eq!(lines.len() as u64, total);
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    assert!(lines.iter().any(|l| l.contains("\"ev\":\"commit\"")));
}

fn sim_trace_count(stats: &SimStats, k: TraceKind) -> u64 {
    let key = format!("trace_{}", k.name());
    stats.engine.extra.iter().find(|(n, _)| *n == key).map_or(0, |&(_, v)| v)
}

#[test]
fn clean_run_has_no_invariant_violations() {
    let (sim, _) = run_program(|a| {
        a.li(S0, 0);
        a.li(S1, 40);
        a.label("loop");
        a.call("f");
        a.addi(S0, S0, 1);
        a.blt(S0, S1, "loop");
        a.st(ZERO, S2, 0xb00);
        a.halt();
        a.label("f");
        a.addi(S2, S2, 3);
        a.ret();
    });
    assert_eq!(sim.read_mem_u64(0xb00), 120);
    let violations = sim.invariant_violations();
    assert!(violations.is_empty(), "unexpected violations: {violations:?}");
}

#[test]
fn rearm_tracing_reasserts_the_recipient_mask_at_a_boundary() {
    let build = |a: &mut Assembler| {
        a.li(T0, 0);
        a.li(T1, 32);
        a.label("loop");
        a.addi(T0, T0, 1);
        a.blt(T0, T1, "loop");
        a.halt();
    };
    let mut a = Assembler::new();
    build(&mut a);
    let program = a.assemble().expect("assembles");
    let cfg = SimConfig::default().with_max_cycles(100_000);
    let mut sim = Simulator::new(cfg, program);
    let sink = BufferSink::new();
    let buf = sink.handle();
    sim.set_trace_sink(Box::new(sink));
    let executed = sim.fast_forward(10);
    assert_eq!(executed, 10);
    let lines = || buf.lock().unwrap().lines().count();
    assert_eq!(lines(), 1, "the fast-forward emits one ckpt event under the donor's full mask");
    assert_eq!(sim_trace_count(&sim.stats(), TraceKind::Ckpt), 1);

    // Narrowed recipient (samples only, the serve sampling mask): every
    // counter pins to zero and the ffwd event is NOT re-emitted — its
    // kind is filtered, exactly as a cold sample-masked run would have
    // filtered it.
    sim.rearm_tracing(TraceKind::Sample.bit());
    let narrowed = sim.stats();
    for k in TraceKind::ALL {
        assert_eq!(sim_trace_count(&narrowed, k), 0, "narrowed mask pins trace_{}", k.name());
    }
    assert_eq!(lines(), 1, "a masked-off ckpt event must not reach the sink");

    // Widened recipient (full firehose): counters restart from zero and
    // the ffwd ckpt event is re-emitted once under the new mask, so the
    // event stream matches a cold unmasked run's boundary prefix.
    sim.rearm_tracing(!0);
    let widened = sim.stats();
    assert_eq!(sim_trace_count(&widened, TraceKind::Ckpt), 1, "ffwd event re-emitted exactly once");
    for k in TraceKind::ALL {
        if k != TraceKind::Ckpt {
            assert_eq!(sim_trace_count(&widened, k), 0, "only the boundary event exists");
        }
    }
    assert_eq!(lines(), 2, "the re-emitted event reaches the sink");
    let last = buf.lock().unwrap().lines().last().unwrap().to_string();
    assert!(
        last.contains("\"ev\":\"ckpt\"") && last.contains("\"ffwd\""),
        "boundary event: {last}"
    );
}
