//! The squash-reuse engine interface.
//!
//! The pipeline owns a [`ReuseEngine`] trait object and calls its hooks at
//! the architectural points the paper extends: prediction-block creation
//! in the fetch stage (reconvergence detection), branch-misprediction
//! squashes (Wrong-Path Buffer / Squash Log population), and register
//! renaming (the reuse test). The baseline processor uses [`NoReuse`];
//! the `mssr-core` crate provides the paper's Multi-Stream Squash Reuse
//! engine and the Register Integration baseline.
//!
//! Physical-register reservation is expressed through the free list's
//! hold counts (see [`FreeList`]): an engine that wants to keep a
//! squashed value alive calls [`FreeList::retain`] on its destination
//! register during [`ReuseEngine::on_mispredict_squash`], and
//! [`FreeList::release`]s the hold when the entry dies. Granting a reuse
//! transfers the hold to the new live mapping: the engine simply stops
//! tracking the register and must *not* release it.

use mssr_isa::{ArchReg, Inst, Opcode, Pc};

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::rename::FreeList;
use crate::stats::EngineStats;
use crate::types::{FlushKind, PhysReg, Rgid, SeqNum};

/// An inclusive PC range of contiguous straight-line instructions — the
/// granularity of Wrong-Path Buffer entries (paper §3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRange {
    /// PC of the first instruction in the block.
    pub start: Pc,
    /// PC of the last instruction in the block (inclusive).
    pub end: Pc,
}

impl BlockRange {
    /// Whether two ranges overlap — the aligner condition of §3.4:
    /// `start_a <= end_b && end_a >= start_b`.
    pub fn overlaps(&self, other: &BlockRange) -> bool {
        self.start <= other.end && self.end >= other.start
    }

    /// Number of instructions covered.
    pub fn len(&self) -> u64 {
        (self.end - self.start) / mssr_isa::INST_BYTES + 1
    }

    /// Whether the range is degenerate (never true for constructed ranges).
    pub fn is_empty(&self) -> bool {
        self.end < self.start
    }
}

/// A prediction block emitted by the frontend this cycle.
#[derive(Clone, Copy, Debug)]
pub struct PredBlock {
    /// The block's PC range.
    pub range: BlockRange,
    /// Cycle of creation.
    pub cycle: u64,
}

/// A destination register binding as the engines see it: the
/// architectural register, the physical register mapped to it, and the
/// RGID of the mapping. Replaces the ad-hoc `(ArchReg, PhysReg, Rgid)`
/// tuples that used to flow through the engine hooks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DstBinding {
    /// The architectural destination register.
    pub arch: ArchReg,
    /// The physical register holding (or about to hold) the result.
    pub preg: PhysReg,
    /// The RGID of the mapping.
    pub rgid: Rgid,
}

/// A squashed instruction, as dumped from the ROB into a Squash Log.
#[derive(Clone, Debug)]
pub struct SquashedInst {
    /// Sequence number (age) of the squashed instruction.
    pub seq: SeqNum,
    /// Its PC.
    pub pc: Pc,
    /// Its opcode.
    pub op: Opcode,
    /// Destination bookkeeping: the squashed mapping whose physical
    /// register holds the (possibly already computed) result.
    pub dst: Option<DstBinding>,
    /// Source RGIDs at the squashed instruction's rename. `None` means
    /// the operand slot is absent or reads `x0` (always valid).
    pub src_rgids: [Option<Rgid>; 2],
    /// Source physical registers at the squashed instruction's rename
    /// (used by baselines that key reuse on physical names).
    pub src_pregs: [Option<PhysReg>; 2],
    /// Whether the result had been produced before the squash — only
    /// executed instructions are reusable.
    pub executed: bool,
    /// Whether this is a load.
    pub is_load: bool,
    /// Whether this is a store (never reused; needed for hazard logic).
    pub is_store: bool,
    /// The wrong-path effective address, for executed loads.
    pub load_addr: Option<u64>,
}

/// A branch-misprediction squash event.
#[derive(Clone, Debug)]
pub struct SquashEvent {
    /// Monotonic squash-event id (the paper's stream ordering; used to
    /// compute reconvergence *stream distance*).
    pub squash_id: u64,
    /// Sequence number of the mispredicted branch (stream ages are
    /// compared to classify software- vs hardware-induced reconvergence).
    pub cause_seq: SeqNum,
    /// PC of the mispredicted branch.
    pub cause_pc: Pc,
    /// Where the corrected stream resumes.
    pub redirect: Pc,
    /// Squashed instructions, **oldest first**, starting one after the
    /// mispredicted branch.
    pub insts: Vec<SquashedInst>,
    /// PC ranges of instructions that were still in the frontend
    /// (fetched or predicted but not yet renamed), oldest first. These
    /// extend the Wrong-Path Buffer's view of the squashed stream beyond
    /// what reached the backend.
    pub frontend_blocks: Vec<BlockRange>,
}

/// The reuse test query issued for each instruction at rename.
#[derive(Clone, Debug)]
pub struct ReuseQuery<'a> {
    /// Sequence number the instruction will occupy.
    pub seq: SeqNum,
    /// Its PC.
    pub pc: Pc,
    /// The decoded instruction.
    pub inst: &'a Inst,
    /// Current RGIDs of the source operands (after renaming any older
    /// instructions in the same bundle). `None` = absent or `x0`.
    pub src_rgids: [Option<Rgid>; 2],
    /// Current physical mappings of the source operands (used by the
    /// Register Integration baseline, which compares physical names).
    pub src_pregs: [Option<PhysReg>; 2],
}

/// A successful reuse grant.
#[derive(Clone, Copy, Debug)]
pub struct ReuseGrant {
    /// The physical register holding the preserved wrong-path result.
    /// Its reservation hold transfers to the new live mapping.
    pub preg: PhysReg,
    /// The RGID to forward onto the new mapping (paper §3.1: the squashed
    /// instruction's RGID is forwarded so younger reuse tests still
    /// match). `None` lets the pipeline allocate a fresh RGID (used by
    /// Register Integration, which has no RGID concept).
    pub rgid: Option<Rgid>,
    /// For loads: the wrong-path effective address, recorded in the load
    /// queue so older stores can still detect ordering violations.
    pub load_addr: Option<u64>,
    /// For loads: whether the pipeline must re-execute the load and
    /// compare values before the instruction may commit (the paper's
    /// evaluated memory-hazard mechanism, §3.8.3).
    pub needs_load_verify: bool,
}

/// Post-rename notification (sent for every renamed instruction, reused
/// or not) — this is how queue-based engines advance their Squash Log
/// read pointers in lockstep and detect divergence.
#[derive(Clone, Debug)]
pub struct RenamedInst {
    /// Sequence number.
    pub seq: SeqNum,
    /// PC.
    pub pc: Pc,
    /// Opcode.
    pub op: Opcode,
    /// New destination mapping, if any.
    pub dst: Option<DstBinding>,
    /// Whether this instruction was granted reuse.
    pub reused: bool,
}

/// Read-only view of the stage clock and machine geometry, passed to
/// every engine hook through [`EngineCtx`].
#[derive(Clone, Copy, Debug)]
pub struct StageCtx {
    /// Current cycle.
    pub cycle: u64,
    /// ROB capacity (the paper's RGID-reset drain window).
    pub rob_size: usize,
}

/// Mutable pipeline state exposed to engine hooks.
#[derive(Debug)]
pub struct EngineCtx<'a> {
    /// The physical-register free list (for `retain`/`release` holds).
    pub free_list: &'a mut FreeList,
    /// The calling stage's clock/geometry view.
    pub stage: StageCtx,
    /// Set to request a global RGID reset at the end of this cycle; the
    /// pipeline zeroes the generation counters and nulls every RGID held
    /// in live state (RAT and ROB) so pre-reset mappings can never alias
    /// post-reset ones.
    pub rgid_reset_requested: &'a mut bool,
}

/// A squash-reuse engine plugged into the pipeline.
///
/// All hooks have no-op defaults, so an engine implements only the events
/// it cares about. See the crate-level documentation of `mssr-core` for
/// the paper's engine.
#[allow(unused_variables)]
pub trait ReuseEngine {
    /// A short identifier used in reports (e.g. `"no-reuse"`, `"mssr"`).
    fn name(&self) -> &'static str;

    /// The frontend produced a new prediction block (reconvergence
    /// detection point, paper §3.4).
    fn on_block(&mut self, block: &PredBlock, ctx: &mut EngineCtx<'_>) {}

    /// A branch misprediction squashed the pipeline. Called **before**
    /// the pipeline releases the squashed destination registers, so the
    /// engine can `retain` the ones it logs.
    fn on_mispredict_squash(&mut self, ev: &SquashEvent, ctx: &mut EngineCtx<'_>) {}

    /// A non-misprediction flush (memory-order violation or reuse
    /// verification failure). The paper invalidates the Squash Logs on a
    /// reuse-verification flush.
    fn on_flush(&mut self, kind: FlushKind, ctx: &mut EngineCtx<'_>) {}

    /// The reuse test: called at rename for each reuse-eligible
    /// instruction (writes a register, is not a control instruction or
    /// store). Returning a grant makes the pipeline map the destination
    /// to the preserved register and mark the instruction completed.
    fn try_reuse(&mut self, q: &ReuseQuery<'_>, ctx: &mut EngineCtx<'_>) -> Option<ReuseGrant> {
        None
    }

    /// Every renamed instruction, in program order, after the reuse
    /// decision.
    fn on_renamed(&mut self, r: &RenamedInst, ctx: &mut EngineCtx<'_>) {}

    /// Rename found the free list empty. The engine should release
    /// reserved registers (paper §3.3.2, freeing condition 5) if it can.
    fn on_register_pressure(&mut self, ctx: &mut EngineCtx<'_>) {}

    /// The pipeline returned a physical register to the free list (its
    /// hold count reached zero through a pipeline-side release). Engines
    /// that key on physical names (Register Integration) invalidate
    /// entries referencing it.
    fn on_preg_freed(&mut self, p: PhysReg, ctx: &mut EngineCtx<'_>) {}

    /// A store's address became known (memory-hazard tracking, §3.8.1).
    fn on_store_executed(&mut self, addr: u64, ctx: &mut EngineCtx<'_>) {}

    /// An external snoop request hit `addr` (load-to-load hazard
    /// tracking, §3.8.2).
    fn on_snoop(&mut self, addr: u64, ctx: &mut EngineCtx<'_>) {}

    /// `n` instructions committed this cycle (drives the RGID-reset drain
    /// window and reconvergence timeouts).
    fn on_commit(&mut self, n: u64, ctx: &mut EngineCtx<'_>) {}

    /// An RGID allocation overflowed into the null encoding (§3.3.2:
    /// more than eight accumulated overflows trigger a global reset).
    fn on_rgid_overflow(&mut self, ctx: &mut EngineCtx<'_>) {}

    /// The pipeline applied a global RGID reset at the end of this cycle:
    /// generation counters restarted and every live RGID was nulled. Any
    /// reuse state captured earlier — **including state captured after
    /// the engine requested the reset but within the same cycle** — now
    /// holds old-window generations that would alias new-window ones,
    /// and must be dropped.
    fn on_rgid_reset(&mut self, ctx: &mut EngineCtx<'_>) {}

    /// How many execution-latency cycles a reuse grant for `op` saves,
    /// credited to the CPI-stack account
    /// ([`CycleAccount::credit_reuse`](crate::account::CycleAccount)).
    /// The pipeline passes its own latency estimate (functional-unit
    /// latency, L1 latency for loads); the default accepts it. Engines
    /// override this to discount grants that recover less — e.g. a
    /// reused load under the load-verification policy re-executes the
    /// load anyway, so it saves nothing.
    fn reuse_credit_latency(&self, op: Opcode, pipeline_estimate: u64) -> u64 {
        pipeline_estimate
    }

    /// Engine-side statistics snapshot.
    fn stats(&self) -> EngineStats {
        EngineStats::default()
    }

    /// How many free-list holds the engine currently owns (squash-log or
    /// integration-table reservations placed with `retain` and not yet
    /// released or transferred by a grant).
    ///
    /// The invariant checker balances the free list against this every
    /// cycle: `total holds == live pipeline mappings + reserved_hold_count`
    /// ([`Rule::FreeListConservation`](crate::check::Rule)). An engine
    /// that retains registers **must** override this, or debug builds
    /// will report its reservations as leaks.
    fn reserved_hold_count(&self) -> u64 {
        0
    }

    /// Serializes the engine's internal state into a checkpoint section.
    /// Engines with no state (the default) write nothing; stateful
    /// engines must save everything a restored run needs to continue
    /// bit-identically (logs, streams, filters, counters).
    fn ckpt_save(&self, w: &mut CkptWriter) {}

    /// Restores the engine's internal state from a checkpoint section
    /// written by [`ReuseEngine::ckpt_save`] on an identically
    /// configured engine.
    fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        Ok(())
    }
}

/// The baseline engine: no squash reuse at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoReuse;

impl ReuseEngine for NoReuse {
    fn name(&self) -> &'static str {
        "no-reuse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> BlockRange {
        BlockRange { start: Pc::new(s), end: Pc::new(e) }
    }

    #[test]
    fn block_overlap_matches_aligner_condition() {
        let a = r(0x100, 0x11c);
        assert!(a.overlaps(&r(0x11c, 0x140)), "touching at one instruction");
        assert!(a.overlaps(&r(0x0, 0x100)), "touching at start");
        assert!(a.overlaps(&r(0x104, 0x108)), "contained");
        assert!(a.overlaps(&r(0x0, 0x200)), "containing");
        assert!(!a.overlaps(&r(0x120, 0x140)), "disjoint above");
        assert!(!a.overlaps(&r(0x0, 0xfc)), "disjoint below");
    }

    #[test]
    fn block_len_counts_instructions() {
        assert_eq!(r(0x100, 0x100).len(), 1);
        assert_eq!(r(0x100, 0x11c).len(), 8);
        assert!(!r(0x100, 0x100).is_empty());
    }

    #[test]
    fn no_reuse_never_grants() {
        let e = NoReuse;
        assert_eq!(e.name(), "no-reuse");
        // Default stats are all zero.
        assert_eq!(e.stats().reuse_grants, 0);
    }
}
