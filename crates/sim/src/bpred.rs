//! Branch prediction: a bimodal base predictor, a TAGE main predictor
//! (overriding scheme, as in the paper's XiangShan-style frontend), and a
//! last-target BTB for indirect jumps.
//!
//! The global history register (GHR) is updated *speculatively* at
//! prediction time. Every prediction returns a [`PredMeta`] snapshot of
//! the pre-prediction GHR; the pipeline stores it per in-flight branch so
//! that squashes can restore the history exactly, and so that training at
//! commit replays the same table indices the prediction used.

use mssr_isa::Pc;

use crate::ckpt::{fnv1a64, CkptError, CkptReader, CkptWriter};
use crate::config::SimConfig;

/// Snapshot of predictor state at prediction time.
///
/// Carried through the pipeline with each branch; passed back to
/// [`BranchPredictor::train_cond`] at commit and used to restore history
/// on a squash.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PredMeta {
    /// GHR value *before* this prediction shifted its outcome in.
    pub ghr_before: u64,
}

#[derive(Clone, Debug)]
struct TageEntry {
    tag: u16,
    /// 3-bit signed counter; taken when >= 0.
    ctr: i8,
    /// 2-bit useful counter.
    useful: u8,
}

#[derive(Clone, Debug)]
struct TageTable {
    entries: Vec<Option<TageEntry>>,
    hist_len: u32,
}

impl TageTable {
    fn fold(&self, ghr: u64) -> u64 {
        // Fold `hist_len` bits of history into chunks the size of the
        // index space, XOR-combining chunks.
        let h = if self.hist_len >= 64 { ghr } else { ghr & ((1u64 << self.hist_len) - 1) };
        let bits = (usize::BITS - (self.entries.len() - 1).leading_zeros()).max(1);
        let mut folded = 0u64;
        let mut rest = h;
        let mut taken = 0;
        while taken < self.hist_len {
            folded ^= rest & ((1u64 << bits) - 1);
            rest >>= bits;
            taken += bits;
        }
        folded
    }

    fn index(&self, pc: u64, ghr: u64) -> usize {
        let f = self.fold(ghr);
        ((pc >> 2) ^ f ^ (f << 3) ^ self.hist_len as u64) as usize & (self.entries.len() - 1)
    }

    fn tag(&self, pc: u64, ghr: u64) -> u16 {
        let f = self.fold(ghr);
        (((pc >> 2) ^ (f >> 2) ^ (f << 1)) & 0xff) as u16
    }
}

/// The frontend branch predictor: TAGE over a bimodal base, plus an
/// indirect-target BTB.
///
/// # Example
///
/// ```
/// use mssr_sim::{BranchPredictor, SimConfig};
/// use mssr_isa::Pc;
///
/// let mut bp = BranchPredictor::new(&SimConfig::default());
/// let pc = Pc::new(0x1000);
/// // Train a strongly-taken branch and observe the prediction follow.
/// for _ in 0..16 {
///     let (_, meta) = bp.predict_cond(pc);
///     bp.train_cond(pc, true, meta);
/// }
/// let (pred, meta) = bp.predict_cond(pc);
/// assert!(pred);
/// // Undo the speculative history update from the probe prediction.
/// bp.restore_ghr(meta.ghr_before);
/// ```
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    bimodal: Vec<u8>,
    tables: Vec<TageTable>,
    ghr: u64,
    btb: Vec<Option<(u64, Pc)>>,
    /// Return-address stack: a circular buffer indexed by an unbounded
    /// top-of-stack counter, so squash recovery only restores the counter.
    ras: Vec<Pc>,
    ras_sp: u64,
    /// Deterministic tie-break counter for TAGE allocation.
    alloc_seed: u64,
}

impl BranchPredictor {
    /// Builds the predictor sized by `cfg`.
    pub fn new(cfg: &SimConfig) -> BranchPredictor {
        let hist_lens = geometric_histories(cfg.tage_tables);
        BranchPredictor {
            bimodal: vec![2; cfg.bimodal_entries], // weakly taken
            tables: hist_lens
                .into_iter()
                .map(|hist_len| TageTable { entries: vec![None; cfg.tage_entries], hist_len })
                .collect(),
            ghr: 0,
            btb: vec![None; cfg.btb_entries],
            ras: vec![Pc::new(0); 16],
            ras_sp: 0,
            alloc_seed: 0x9e3779b97f4a7c15,
        }
    }

    /// Pushes a return address (speculatively, at call prediction).
    pub fn ras_push(&mut self, ret: Pc) {
        let idx = (self.ras_sp % self.ras.len() as u64) as usize;
        self.ras[idx] = ret;
        self.ras_sp += 1;
    }

    /// Pops the predicted return address, or `None` when the stack is
    /// empty. The stack is a predictor: stale entries after deep
    /// recursion or imprecise recovery simply mispredict.
    pub fn ras_pop(&mut self) -> Option<Pc> {
        if self.ras_sp == 0 {
            return None;
        }
        self.ras_sp -= 1;
        let idx = (self.ras_sp % self.ras.len() as u64) as usize;
        Some(self.ras[idx])
    }

    /// Current top-of-stack counter (snapshotted per instruction for
    /// squash recovery).
    pub fn ras_sp(&self) -> u64 {
        self.ras_sp
    }

    /// Restores the top-of-stack counter after a squash. Entry contents
    /// are not restored — occasional stale-entry mispredictions are the
    /// standard cost of counter-only RAS recovery.
    pub fn restore_ras_sp(&mut self, sp: u64) {
        self.ras_sp = sp;
    }

    /// Current speculative global history.
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Restores the speculative history (on squash or probe undo).
    pub fn restore_ghr(&mut self, ghr: u64) {
        self.ghr = ghr;
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.bimodal.len() - 1)
    }

    /// Finds the longest-history hitting table, if any; returns
    /// `(table_index, prediction)`.
    fn tage_lookup(&self, pc: u64, ghr: u64) -> Option<(usize, bool)> {
        for (i, t) in self.tables.iter().enumerate().rev() {
            let idx = t.index(pc, ghr);
            if let Some(e) = &t.entries[idx] {
                if e.tag == t.tag(pc, ghr) {
                    return Some((i, e.ctr >= 0));
                }
            }
        }
        None
    }

    /// Predicts a conditional branch at `pc` and speculatively shifts the
    /// predicted outcome into the history. Returns the prediction and the
    /// metadata needed to train or undo it.
    pub fn predict_cond(&mut self, pc: Pc) -> (bool, PredMeta) {
        let meta = PredMeta { ghr_before: self.ghr };
        let a = pc.addr();
        let pred = match self.tage_lookup(a, self.ghr) {
            Some((_, p)) => p,
            None => self.bimodal[self.bimodal_index(a)] >= 2,
        };
        self.ghr = (self.ghr << 1) | pred as u64;
        (pred, meta)
    }

    /// Records the *actual* outcome into the speculative history after a
    /// misprediction recovery: call with the GHR snapshot of the
    /// mispredicted branch.
    pub fn recover_cond(&mut self, meta: PredMeta, actual_taken: bool) {
        self.ghr = (meta.ghr_before << 1) | actual_taken as u64;
    }

    /// Trains the predictor with a retired branch outcome.
    ///
    /// `meta` must be the snapshot returned by the prediction for this
    /// dynamic branch so the same table indices are updated.
    pub fn train_cond(&mut self, pc: Pc, taken: bool, meta: PredMeta) {
        let a = pc.addr();
        let ghr = meta.ghr_before;
        // Bimodal update (always).
        let bi = self.bimodal_index(a);
        let c = &mut self.bimodal[bi];
        *c = if taken { (*c + 1).min(3) } else { c.saturating_sub(1) };

        let provider = self.tage_lookup(a, ghr);
        let correct = match provider {
            Some((_, p)) => p == taken,
            None => (self.bimodal[bi] >= 2) == taken,
        };
        if let Some((ti, _)) = provider {
            let idx = self.tables[ti].index(a, ghr);
            if let Some(e) = self.tables[ti].entries[idx].as_mut() {
                e.ctr = if taken { (e.ctr + 1).min(3) } else { (e.ctr - 1).max(-4) };
                if correct {
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
        // Allocate a longer-history entry on a misprediction.
        if !correct {
            let start = provider.map_or(0, |(ti, _)| ti + 1);
            self.alloc_seed = self.alloc_seed.wrapping_mul(0xd1342543de82ef95).wrapping_add(1);
            let mut allocated = false;
            for ti in start..self.tables.len() {
                let idx = self.tables[ti].index(a, ghr);
                let tag = self.tables[ti].tag(a, ghr);
                let slot = &mut self.tables[ti].entries[idx];
                match slot {
                    None => {
                        *slot = Some(TageEntry { tag, ctr: if taken { 0 } else { -1 }, useful: 0 });
                        allocated = true;
                        break;
                    }
                    Some(e) if e.useful == 0 => {
                        *e = TageEntry { tag, ctr: if taken { 0 } else { -1 }, useful: 0 };
                        allocated = true;
                        break;
                    }
                    Some(_) => {}
                }
            }
            if !allocated {
                // Decay usefulness so future allocations can succeed.
                for ti in start..self.tables.len() {
                    let idx = self.tables[ti].index(a, ghr);
                    if let Some(e) = self.tables[ti].entries[idx].as_mut() {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// Predicts the target of an indirect jump, if the BTB has seen it.
    pub fn predict_indirect(&self, pc: Pc) -> Option<Pc> {
        let idx = (pc.addr() >> 2) as usize & (self.btb.len() - 1);
        match self.btb[idx] {
            Some((tag, target)) if tag == pc.addr() => Some(target),
            _ => None,
        }
    }

    /// Records the resolved target of an indirect jump.
    pub fn update_indirect(&mut self, pc: Pc, target: Pc) {
        let idx = (pc.addr() >> 2) as usize & (self.btb.len() - 1);
        self.btb[idx] = Some((pc.addr(), target));
    }

    fn save_cond_state(&self, w: &mut CkptWriter) {
        w.u64(self.bimodal.len() as u64);
        for &c in &self.bimodal {
            w.u8(c);
        }
        w.u64(self.tables.len() as u64);
        for t in &self.tables {
            w.u32(t.hist_len);
            w.u64(t.entries.len() as u64);
            for e in &t.entries {
                match e {
                    None => w.bool(false),
                    Some(e) => {
                        w.bool(true);
                        w.u16(e.tag);
                        w.i8(e.ctr);
                        w.u8(e.useful);
                    }
                }
            }
        }
        w.u64(self.ghr);
        w.u64(self.alloc_seed);
    }

    /// Digest of the conditional-prediction state — bimodal counters,
    /// TAGE tables, global history, and the allocation seed. Functional
    /// fast-forward warming is exactly commit-equivalent for this state,
    /// so the warmup-fidelity tests assert digest *equality* between a
    /// functional and a cycle-accurate run of the same instructions.
    /// (The RAS contents and the BTB are intentionally excluded: both are
    /// perturbed by wrong-path execution in the detailed pipeline.)
    pub fn cond_digest(&self) -> u64 {
        let mut w = CkptWriter::new();
        self.save_cond_state(&mut w);
        fnv1a64(&w.finish())
    }

    /// Occupancy of the conditional tables: `(filled TAGE entries, bimodal
    /// counters moved off their reset value)`.
    pub fn cond_occupancy(&self) -> (usize, usize) {
        let tage = self.tables.iter().map(|t| t.entries.iter().flatten().count()).sum();
        let bimodal = self.bimodal.iter().filter(|&&c| c != 2).count();
        (tage, bimodal)
    }

    /// Digest of the BTB contents (a pinned *divergence* in the
    /// warmup-fidelity tests: the detailed pipeline updates the BTB at
    /// writeback, wrong paths included).
    pub fn btb_digest(&self) -> u64 {
        let mut w = CkptWriter::new();
        for e in &self.btb {
            match e {
                None => w.bool(false),
                Some((tag, target)) => {
                    w.bool(true);
                    w.u64(*tag);
                    w.pc(*target);
                }
            }
        }
        fnv1a64(&w.finish())
    }

    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        self.save_cond_state(w);
        w.u64(self.btb.len() as u64);
        for e in &self.btb {
            match e {
                None => w.bool(false),
                Some((tag, target)) => {
                    w.bool(true);
                    w.u64(*tag);
                    w.pc(*target);
                }
            }
        }
        for &p in &self.ras {
            w.pc(p);
        }
        w.u64(self.ras_sp);
    }

    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let nb = r.seq_len(1)?;
        if nb != self.bimodal.len() {
            return Err(CkptError::Corrupt(format!(
                "{nb} bimodal counters in checkpoint, {} configured",
                self.bimodal.len()
            )));
        }
        for c in &mut self.bimodal {
            *c = r.u8()?;
        }
        let nt = r.seq_len(13)?;
        if nt != self.tables.len() {
            return Err(CkptError::Corrupt(format!(
                "{nt} TAGE tables in checkpoint, {} configured",
                self.tables.len()
            )));
        }
        for t in &mut self.tables {
            let hist_len = r.u32()?;
            if hist_len != t.hist_len {
                return Err(CkptError::Corrupt(format!(
                    "TAGE history length {hist_len} in checkpoint, {} configured",
                    t.hist_len
                )));
            }
            let ne = r.seq_len(1)?;
            if ne != t.entries.len() {
                return Err(CkptError::Corrupt(format!(
                    "{ne} TAGE entries in checkpoint, {} configured",
                    t.entries.len()
                )));
            }
            for e in &mut t.entries {
                *e = if r.bool()? {
                    Some(TageEntry { tag: r.u16()?, ctr: r.i8()?, useful: r.u8()? })
                } else {
                    None
                };
            }
        }
        self.ghr = r.u64()?;
        self.alloc_seed = r.u64()?;
        let nbtb = r.seq_len(1)?;
        if nbtb != self.btb.len() {
            return Err(CkptError::Corrupt(format!(
                "{nbtb} BTB entries in checkpoint, {} configured",
                self.btb.len()
            )));
        }
        for e in &mut self.btb {
            *e = if r.bool()? { Some((r.u64()?, r.pc()?)) } else { None };
        }
        for p in &mut self.ras {
            *p = r.pc()?;
        }
        self.ras_sp = r.u64()?;
        Ok(())
    }
}

/// Geometric history lengths for `n` tagged tables (4, 8, 16, … capped at 64).
fn geometric_histories(n: usize) -> Vec<u32> {
    (0..n).map(|i| (4u32 << i).min(64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> BranchPredictor {
        BranchPredictor::new(&SimConfig::default())
    }

    #[test]
    fn learns_strongly_biased_branch() {
        let mut p = bp();
        let pc = Pc::new(0x1000);
        for _ in 0..32 {
            let (_, m) = p.predict_cond(pc);
            p.train_cond(pc, true, m);
        }
        let (pred, m) = p.predict_cond(pc);
        p.restore_ghr(m.ghr_before);
        assert!(pred);
    }

    #[test]
    fn learns_not_taken() {
        let mut p = bp();
        let pc = Pc::new(0x2000);
        for _ in 0..32 {
            let (_, m) = p.predict_cond(pc);
            p.train_cond(pc, false, m);
        }
        let (pred, m) = p.predict_cond(pc);
        p.restore_ghr(m.ghr_before);
        assert!(!pred);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        // A strict alternation is unpredictable to bimodal but trivial for
        // any history-based table.
        let mut p = bp();
        let pc = Pc::new(0x3000);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..2000u64 {
            let taken = i % 2 == 0;
            let (pred, m) = p.predict_cond(pc);
            if i >= 1000 {
                total += 1;
                if pred == taken {
                    correct += 1;
                }
            }
            // Simulate perfect in-order resolution.
            if pred != taken {
                p.recover_cond(m, taken);
            }
            p.train_cond(pc, taken, m);
        }
        assert!(
            correct as f64 / total as f64 > 0.9,
            "TAGE should learn alternation, got {correct}/{total}"
        );
    }

    #[test]
    fn speculative_history_shifts_and_restores() {
        let mut p = bp();
        let g0 = p.ghr();
        let (pred, m) = p.predict_cond(Pc::new(0x10));
        assert_eq!(p.ghr(), (g0 << 1) | pred as u64);
        assert_eq!(m.ghr_before, g0);
        p.restore_ghr(m.ghr_before);
        assert_eq!(p.ghr(), g0);
        p.recover_cond(m, !pred);
        assert_eq!(p.ghr(), (g0 << 1) | (!pred) as u64);
    }

    #[test]
    fn indirect_btb_remembers_last_target() {
        let mut p = bp();
        let pc = Pc::new(0x4000);
        assert_eq!(p.predict_indirect(pc), None);
        p.update_indirect(pc, Pc::new(0x8000));
        assert_eq!(p.predict_indirect(pc), Some(Pc::new(0x8000)));
        p.update_indirect(pc, Pc::new(0x9000));
        assert_eq!(p.predict_indirect(pc), Some(Pc::new(0x9000)));
        // A different PC indexing the same set but different tag misses.
        assert_eq!(p.predict_indirect(Pc::new(0x4000 + (1 << 14))), None);
    }

    #[test]
    fn ras_predicts_matched_calls() {
        let mut p = bp();
        p.ras_push(Pc::new(0x104));
        p.ras_push(Pc::new(0x204));
        assert_eq!(p.ras_pop(), Some(Pc::new(0x204)), "LIFO");
        assert_eq!(p.ras_pop(), Some(Pc::new(0x104)));
        assert_eq!(p.ras_pop(), None, "empty stack");
    }

    #[test]
    fn ras_counter_recovery() {
        let mut p = bp();
        p.ras_push(Pc::new(0x104));
        let sp = p.ras_sp();
        p.ras_push(Pc::new(0x204)); // wrong-path call
        let _ = p.ras_pop(); // wrong-path return
        p.restore_ras_sp(sp); // squash recovery
        assert_eq!(p.ras_pop(), Some(Pc::new(0x104)), "original entry survives");
    }

    #[test]
    fn ras_wraps_at_capacity_with_stale_predictions() {
        let mut p = bp();
        for i in 0..20u64 {
            p.ras_push(Pc::new(0x1000 + 4 * i));
        }
        // Deeper than 16 entries: the oldest were overwritten; the newest
        // 16 predict correctly, older pops return stale (wrapped) values.
        for i in (4..20u64).rev() {
            assert_eq!(p.ras_pop(), Some(Pc::new(0x1000 + 4 * i)));
        }
        // These four were overwritten by the wrap; values are stale but
        // pops still succeed (a predictor may be wrong, never stuck).
        for _ in 0..4 {
            assert!(p.ras_pop().is_some());
        }
        assert_eq!(p.ras_pop(), None);
    }

    #[test]
    fn geometric_history_lengths() {
        assert_eq!(geometric_histories(5), vec![4, 8, 16, 32, 64]);
        assert_eq!(geometric_histories(7), vec![4, 8, 16, 32, 64, 64, 64]);
    }
}
