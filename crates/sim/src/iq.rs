//! Issue queues (reservation stations) with wakeup/select.

use crate::ckpt::{CkptError, CkptReader, CkptWriter};
use crate::types::{FuClass, PhysReg, SeqNum};

/// One reservation-station entry: an instruction waiting for its source
/// operands to become ready.
#[derive(Clone, Debug)]
pub struct IqEntry {
    /// The instruction's sequence number (its ROB key).
    pub seq: SeqNum,
    /// Which functional-unit class executes it.
    pub fu: FuClass,
    /// Per-source-slot pending registers (woken by writeback broadcast).
    /// `None` slots are ready; the entry issues when all slots are.
    waiting: [Option<PhysReg>; 2],
}

/// A unified issue-queue structure holding one FU class partition.
///
/// Wakeup is a broadcast of produced physical registers
/// ([`IssueQueue::wake`]); select pulls the oldest ready entries per
/// class up to the per-class issue bandwidth
/// ([`IssueQueue::select_into`]).
#[derive(Debug)]
pub struct IssueQueue {
    entries: Vec<IqEntry>,
    capacity: usize,
}

impl IssueQueue {
    /// Creates an empty queue with the given capacity.
    pub fn new(capacity: usize) -> IssueQueue {
        IssueQueue { entries: Vec::new(), capacity }
    }

    /// Whether another entry can be dispatched.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Occupancy.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by unit tests; kept for symmetry
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dispatches an instruction. `waiting` holds, per source slot, the
    /// physical register whose value is not yet ready (`None`: ready).
    ///
    /// # Panics
    ///
    /// Panics if the queue is full.
    pub fn insert(&mut self, seq: SeqNum, fu: FuClass, waiting: [Option<PhysReg>; 2]) {
        assert!(self.has_space(), "issue queue overflow");
        self.entries.push(IqEntry { seq, fu, waiting });
    }

    /// Broadcasts that `p` has been produced, waking dependents.
    pub fn wake(&mut self, p: PhysReg) {
        for e in &mut self.entries {
            for w in &mut e.waiting {
                if *w == Some(p) {
                    *w = None;
                }
            }
        }
    }

    /// Selects up to `max` oldest ready entries of class `fu` into `out`
    /// (cleared first), removing them from the queue.
    pub fn select_into(&mut self, fu: FuClass, max: usize, out: &mut Vec<SeqNum>) {
        out.clear();
        out.extend(
            self.entries
                .iter()
                .filter(|e| e.fu == fu && e.waiting.iter().all(Option::is_none))
                .map(|e| e.seq),
        );
        out.sort_unstable();
        out.truncate(max);
        // `out` is tiny (issue bandwidth), so the contains scan is cheap.
        self.entries.retain(|e| !out.contains(&e.seq));
    }

    /// Allocating convenience wrapper over [`IssueQueue::select_into`]
    /// (tests and cold paths only).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn select(&mut self, fu: FuClass, max: usize) -> Vec<SeqNum> {
        let mut out = Vec::new();
        self.select_into(fu, max, &mut out);
        out
    }

    /// Removes every entry with `seq >= first` (pipeline squash).
    pub fn squash_from(&mut self, first: SeqNum) {
        self.entries.retain(|e| e.seq < first);
    }

    pub(crate) fn ckpt_save(&self, w: &mut CkptWriter) {
        w.u64(self.entries.len() as u64);
        for e in &self.entries {
            w.seq(e.seq);
            w.u8(match e.fu {
                FuClass::Alu => 0,
                FuClass::Bru => 1,
                FuClass::Lsu => 2,
            });
            // Wire format: count of pending registers, then each in slot
            // order — identical to the historical Vec encoding (which was
            // built in slot order too).
            w.u64(e.waiting.iter().flatten().count() as u64);
            for &p in e.waiting.iter().flatten() {
                w.preg(p);
            }
        }
    }

    pub(crate) fn ckpt_load(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let n = r.seq_len(10)?;
        if n > self.capacity {
            return Err(CkptError::Corrupt(format!(
                "{n} issue-queue entries in checkpoint, capacity {}",
                self.capacity
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            let seq = r.seq()?;
            let fu = match r.u8()? {
                0 => FuClass::Alu,
                1 => FuClass::Bru,
                2 => FuClass::Lsu,
                b => return Err(CkptError::Corrupt(format!("unknown FU class byte {b}"))),
            };
            let m = r.seq_len(2)?;
            let mut waiting = [None, None];
            for w in waiting.iter_mut().take(m) {
                *w = Some(r.preg()?);
            }
            self.entries.push(IqEntry { seq, fu, waiting });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> PhysReg {
        PhysReg::new(i)
    }

    #[test]
    fn ready_entry_is_selected_oldest_first() {
        let mut iq = IssueQueue::new(8);
        iq.insert(SeqNum::new(3), FuClass::Alu, [None, None]);
        iq.insert(SeqNum::new(1), FuClass::Alu, [None, None]);
        iq.insert(SeqNum::new(2), FuClass::Alu, [None, None]);
        let sel = iq.select(FuClass::Alu, 2);
        assert_eq!(sel, vec![SeqNum::new(1), SeqNum::new(2)]);
        assert_eq!(iq.len(), 1, "unselected entry remains");
    }

    #[test]
    fn waiting_entry_not_selected_until_woken() {
        let mut iq = IssueQueue::new(8);
        iq.insert(SeqNum::new(1), FuClass::Alu, [Some(p(10)), Some(p(11))]);
        assert!(iq.select(FuClass::Alu, 4).is_empty());
        iq.wake(p(10));
        assert!(iq.select(FuClass::Alu, 4).is_empty(), "still waiting on p11");
        iq.wake(p(11));
        assert_eq!(iq.select(FuClass::Alu, 4), vec![SeqNum::new(1)]);
    }

    #[test]
    fn duplicate_source_slots_wake_together() {
        let mut iq = IssueQueue::new(8);
        // e.g. `add r1, r1, r1`: both slots wait on the same register.
        iq.insert(SeqNum::new(1), FuClass::Alu, [Some(p(7)), Some(p(7))]);
        assert!(iq.select(FuClass::Alu, 4).is_empty());
        iq.wake(p(7));
        assert_eq!(iq.select(FuClass::Alu, 4), vec![SeqNum::new(1)]);
    }

    #[test]
    fn classes_are_independent() {
        let mut iq = IssueQueue::new(8);
        iq.insert(SeqNum::new(1), FuClass::Alu, [None, None]);
        iq.insert(SeqNum::new(2), FuClass::Lsu, [None, None]);
        iq.insert(SeqNum::new(3), FuClass::Bru, [None, None]);
        assert_eq!(iq.select(FuClass::Bru, 4), vec![SeqNum::new(3)]);
        assert_eq!(iq.select(FuClass::Lsu, 4), vec![SeqNum::new(2)]);
        assert_eq!(iq.select(FuClass::Alu, 4), vec![SeqNum::new(1)]);
    }

    #[test]
    fn squash_drops_young_entries() {
        let mut iq = IssueQueue::new(8);
        for s in 1..=5 {
            iq.insert(SeqNum::new(s), FuClass::Alu, [None, None]);
        }
        iq.squash_from(SeqNum::new(3));
        let sel = iq.select(FuClass::Alu, 8);
        assert_eq!(sel, vec![SeqNum::new(1), SeqNum::new(2)]);
    }

    #[test]
    fn select_into_reuses_buffer_without_stale_entries() {
        let mut iq = IssueQueue::new(8);
        iq.insert(SeqNum::new(1), FuClass::Alu, [None, None]);
        let mut out = vec![SeqNum::new(99)];
        iq.select_into(FuClass::Alu, 4, &mut out);
        assert_eq!(out, vec![SeqNum::new(1)]);
        iq.select_into(FuClass::Alu, 4, &mut out);
        assert!(out.is_empty(), "cleared on every call");
    }

    #[test]
    fn capacity_tracking() {
        let mut iq = IssueQueue::new(2);
        assert!(iq.has_space());
        iq.insert(SeqNum::new(1), FuClass::Alu, [None, None]);
        iq.insert(SeqNum::new(2), FuClass::Alu, [None, None]);
        assert!(!iq.has_space());
        assert!(!iq.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut iq = IssueQueue::new(1);
        iq.insert(SeqNum::new(1), FuClass::Alu, [None, None]);
        iq.insert(SeqNum::new(2), FuClass::Alu, [None, None]);
    }
}
