//! Self-profiling: where does *host* wall-clock go?
//!
//! The simulator can account every simulated cycle (CPI stacks, traces,
//! invariant sweeps) but is otherwise blind to its own cost. This module
//! attributes host time to the pipeline stages — fetch, rename, issue,
//! execute, commit, squash — plus the three out-of-pipeline paths
//! (checkpoint save/restore, functional fast-forward, and the
//! BBV-collecting fast-forward) so `mssr-report --profile` can answer
//! "which stage is the hot loop spending its time in?".
//!
//! # Sampling, not tracing
//!
//! Stamping [`Instant::now`] between every stage of every cycle would
//! roughly double the cost of short stages. Instead the profiler stamps
//! one cycle in every `stride` ([`DEFAULT_STRIDE`] unless overridden):
//! a profiled cycle takes seven monotonic-clock reads, every other cycle
//! pays a single predictable branch. Stage *shares* converge quickly
//! because the sampled cycles are an unbiased-enough systematic sample
//! of the run; absolute per-stage times are extrapolations and are
//! reported as shares, not totals. The out-of-pipeline buckets (ckpt /
//! ffwd / bbv) are whole-call measurements, not samples — they are rare
//! and long, so stamping them is free.
//!
//! # Why it cannot perturb determinism
//!
//! The profiler is strictly out-of-band: it owns its own counters, never
//! reads or writes [`MachineState`](crate::stage::MachineState), the
//! tracer, the sampler, or the statistics, and nothing in the simulation
//! branches on it. Checkpoints don't serialize it (the envelope captures
//! machine state, engine, sampler, and tracer only), trajectories don't
//! embed it (the harness emits profile records on stderr), and the
//! stage functions themselves are unchanged — the orchestrator merely
//! reads the clock between calls. Trajectories, traces, and checkpoints
//! are therefore byte-identical with profiling on or off; the
//! determinism suite pins this.
//!
//! Host-time measurements are machine-dependent by nature, like the
//! opt-in `--timing` field; both live outside every determinism
//! contract.

use std::cell::Cell;
use std::time::Instant;

/// Default sampling stride: one cycle in 64 is stamped.
pub const DEFAULT_STRIDE: u64 = 64;

/// One wall-clock attribution bucket.
///
/// The first six are pipeline stages sampled per-`stride` cycles; the
/// last three are whole-call timings of the out-of-pipeline paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfBucket {
    /// Frontend prediction + fetch.
    Fetch,
    /// Rename/dispatch (including reuse-engine queries).
    Rename,
    /// Issue/select from the reservation stations.
    Issue,
    /// Execute + writeback.
    Execute,
    /// In-order retire.
    Commit,
    /// Flush arbitration, ROB-walk recovery, RGID reset.
    Squash,
    /// Checkpoint snapshot/restore (whole call).
    Ckpt,
    /// Functional fast-forward (whole call).
    Ffwd,
    /// BBV-collecting fast-forward (whole call).
    Bbv,
}

impl ProfBucket {
    /// Number of buckets (array sizes below).
    pub const COUNT: usize = 9;

    /// Every bucket, in report order: pipeline stages first, then the
    /// out-of-pipeline paths.
    pub const ALL: [ProfBucket; ProfBucket::COUNT] = [
        ProfBucket::Fetch,
        ProfBucket::Rename,
        ProfBucket::Issue,
        ProfBucket::Execute,
        ProfBucket::Commit,
        ProfBucket::Squash,
        ProfBucket::Ckpt,
        ProfBucket::Ffwd,
        ProfBucket::Bbv,
    ];

    /// The bucket's stable name, used in the harness profile record and
    /// the report table.
    pub fn name(self) -> &'static str {
        match self {
            ProfBucket::Fetch => "fetch",
            ProfBucket::Rename => "rename",
            ProfBucket::Issue => "issue",
            ProfBucket::Execute => "execute",
            ProfBucket::Commit => "commit",
            ProfBucket::Squash => "squash",
            ProfBucket::Ckpt => "ckpt",
            ProfBucket::Ffwd => "ffwd",
            ProfBucket::Bbv => "bbv",
        }
    }

    /// Index into [`ProfBucket::COUNT`]-sized arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The profiler state owned by a `Simulator`.
///
/// Interior-mutable (`Cell`) so the read-only paths — notably
/// `Simulator::snapshot(&self)` — can record without widening their
/// receivers. A `Simulator` is single-threaded, so `Cell` costs nothing.
#[derive(Debug, Default)]
pub struct Prof {
    stride: u64,
    sampled_cycles: Cell<u64>,
    ns: [Cell<u64>; ProfBucket::COUNT],
}

impl Prof {
    /// A disabled profiler (stride 0): `cycle_due` is one branch,
    /// `begin` returns `None`, nothing accumulates.
    pub fn off() -> Prof {
        Prof::default()
    }

    /// Enables stamping of one cycle in every `stride` (0 disables) and
    /// resets all accumulators.
    pub fn set_stride(&mut self, stride: u64) {
        *self = Prof { stride, ..Prof::default() };
    }

    /// Whether profiling is enabled at all.
    pub fn enabled(&self) -> bool {
        self.stride != 0
    }

    /// Whether this cycle is one of the stamped samples.
    #[inline]
    pub fn cycle_due(&self, cycle: u64) -> bool {
        self.stride != 0 && cycle.is_multiple_of(self.stride)
    }

    /// Starts a whole-call measurement (`None` when profiling is off).
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        self.enabled().then(Instant::now)
    }

    /// Closes a [`Prof::begin`] measurement into `bucket`.
    pub fn finish(&self, bucket: ProfBucket, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let cell = &self.ns[bucket.index()];
            cell.set(cell.get() + t0.elapsed().as_nanos() as u64);
        }
    }

    /// Folds one stamped cycle's stage deltas into the accumulators.
    pub fn absorb(&self, stamp: &StageStamp) {
        self.sampled_cycles.set(self.sampled_cycles.get() + 1);
        for (cell, ns) in self.ns.iter().zip(stamp.ns) {
            cell.set(cell.get() + ns);
        }
    }

    /// A plain-data snapshot of everything accumulated so far.
    pub fn report(&self) -> ProfReport {
        let mut ns = [0u64; ProfBucket::COUNT];
        for (out, cell) in ns.iter_mut().zip(&self.ns) {
            *out = cell.get();
        }
        ProfReport { stride: self.stride, sampled_cycles: self.sampled_cycles.get(), ns }
    }
}

/// Per-stage wall-clock deltas of one stamped cycle, accumulated on the
/// stack (no allocation in the hot loop) and folded into [`Prof`] by
/// [`Prof::absorb`] once the cycle completes.
#[derive(Debug)]
pub struct StageStamp {
    last: Instant,
    ns: [u64; ProfBucket::COUNT],
}

impl StageStamp {
    /// Starts stamping: the next [`StageStamp::mark`] measures from now.
    pub fn start() -> StageStamp {
        StageStamp { last: Instant::now(), ns: [0; ProfBucket::COUNT] }
    }

    /// Attributes the time since the previous mark (or start) to
    /// `bucket` and restarts the clock.
    #[inline]
    pub fn mark(&mut self, bucket: ProfBucket) {
        let now = Instant::now();
        self.ns[bucket.index()] += (now - self.last).as_nanos() as u64;
        self.last = now;
    }
}

/// Accumulated profile as plain data: what the harness serializes into a
/// `{"type":"profile",...}` stderr record and `mssr-report --profile`
/// renders as stage shares.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfReport {
    /// Sampling stride the pipeline stages were stamped at (0 = off).
    pub stride: u64,
    /// How many cycles were stamped.
    pub sampled_cycles: u64,
    /// Accumulated nanoseconds per bucket, indexed by
    /// [`ProfBucket::index`]. Stage buckets hold sampled time; the
    /// ckpt/ffwd/bbv buckets hold whole-call time.
    pub ns: [u64; ProfBucket::COUNT],
}

impl ProfReport {
    /// Nanoseconds attributed to `bucket`.
    pub fn get(&self, bucket: ProfBucket) -> u64 {
        self.ns[bucket.index()]
    }

    /// Total attributed nanoseconds across every bucket — the
    /// denominator of the share table.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Folds another report into this one (SimPoint runs profile each
    /// representative separately and merge).
    pub fn merge(&mut self, other: &ProfReport) {
        if self.stride == 0 {
            self.stride = other.stride;
        }
        self.sampled_cycles += other.sampled_cycles;
        for (a, b) in self.ns.iter_mut().zip(other.ns) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_profiler_never_fires_and_reports_zero() {
        let p = Prof::off();
        assert!(!p.enabled());
        assert!(!p.cycle_due(0));
        assert!(!p.cycle_due(64));
        assert!(p.begin().is_none());
        p.finish(ProfBucket::Ckpt, None);
        assert_eq!(p.report(), ProfReport::default());
    }

    #[test]
    fn stride_selects_every_nth_cycle() {
        let mut p = Prof::off();
        p.set_stride(4);
        let due: Vec<u64> = (0..10).filter(|&c| p.cycle_due(c)).collect();
        assert_eq!(due, vec![0, 4, 8]);
    }

    #[test]
    fn stamps_and_whole_calls_accumulate_into_the_report() {
        let mut p = Prof::off();
        p.set_stride(1);
        let mut s = StageStamp::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        s.mark(ProfBucket::Commit);
        p.absorb(&s);
        let t0 = p.begin();
        assert!(t0.is_some());
        std::thread::sleep(std::time::Duration::from_millis(1));
        p.finish(ProfBucket::Ffwd, t0);
        let r = p.report();
        assert_eq!(r.sampled_cycles, 1);
        assert!(r.get(ProfBucket::Commit) > 0);
        assert!(r.get(ProfBucket::Ffwd) > 0);
        assert_eq!(r.get(ProfBucket::Fetch), 0);
        assert_eq!(r.total_ns(), r.get(ProfBucket::Commit) + r.get(ProfBucket::Ffwd));
    }

    #[test]
    fn merge_sums_buckets_and_adopts_the_stride() {
        let mut a = ProfReport::default();
        let b = ProfReport { stride: 64, sampled_cycles: 3, ns: [10; ProfBucket::COUNT] };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.stride, 64);
        assert_eq!(a.sampled_cycles, 6);
        assert_eq!(a.get(ProfBucket::Squash), 20);
    }

    #[test]
    fn set_stride_resets_accumulated_state() {
        let mut p = Prof::off();
        p.set_stride(1);
        let t0 = p.begin();
        p.finish(ProfBucket::Ckpt, t0);
        p.set_stride(2);
        assert_eq!(p.report(), ProfReport { stride: 2, ..ProfReport::default() });
    }
}
