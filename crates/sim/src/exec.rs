//! Functional execution of instructions (value semantics).
//!
//! The simulator is execution-driven: instructions — including those on
//! mispredicted wrong paths — compute real values. This module holds the
//! pure value semantics; timing lives in the pipeline.

use mssr_isa::{Inst, Opcode};

/// Computes the result of a non-memory, non-control instruction.
///
/// `a` and `b` are the values of `src1`/`src2` (0 when the operand is
/// absent). Returns `None` for opcodes that produce no ALU result.
///
/// Division follows RISC-V semantics: division by zero yields `-1`
/// (`Div`) or the dividend (`Rem`) rather than trapping, and
/// `i64::MIN / -1` wraps.
pub fn alu(op: Opcode, a: u64, b: u64, imm: i64) -> Option<u64> {
    let sa = a as i64;
    let v = match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Sll => a.wrapping_shl((b & 63) as u32),
        Opcode::Srl => a.wrapping_shr((b & 63) as u32),
        Opcode::Sra => (sa.wrapping_shr((b & 63) as u32)) as u64,
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::Div => {
            let d = b as i64;
            if d == 0 {
                -1i64 as u64
            } else {
                sa.wrapping_div(d) as u64
            }
        }
        Opcode::Rem => {
            let d = b as i64;
            if d == 0 {
                a
            } else {
                sa.wrapping_rem(d) as u64
            }
        }
        Opcode::Slt => ((sa) < (b as i64)) as u64,
        Opcode::Sltu => (a < b) as u64,
        Opcode::Addi => a.wrapping_add(imm as u64),
        Opcode::Andi => a & imm as u64,
        Opcode::Ori => a | imm as u64,
        Opcode::Xori => a ^ imm as u64,
        Opcode::Slli => a.wrapping_shl((imm & 63) as u32),
        Opcode::Srli => a.wrapping_shr((imm & 63) as u32),
        Opcode::Srai => (sa.wrapping_shr((imm & 63) as u32)) as u64,
        Opcode::Slti => ((sa) < imm) as u64,
        Opcode::Li => imm as u64,
        _ => return None,
    };
    Some(v)
}

/// Evaluates a conditional-branch condition on its operand values.
///
/// # Panics
///
/// Panics if `op` is not a conditional branch.
pub fn branch_taken(op: Opcode, a: u64, b: u64) -> bool {
    match op {
        Opcode::Beq => a == b,
        Opcode::Bne => a != b,
        Opcode::Blt => (a as i64) < (b as i64),
        Opcode::Bge => (a as i64) >= (b as i64),
        Opcode::Bltu => a < b,
        Opcode::Bgeu => a >= b,
        _ => panic!("branch_taken called on non-branch {op}"),
    }
}

/// Computes the effective address of a load or store: `src1 + imm`.
pub fn mem_addr(inst: &Inst, base: u64) -> u64 {
    base.wrapping_add(inst.imm() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssr_isa::ArchReg;

    #[test]
    fn basic_arithmetic() {
        assert_eq!(alu(Opcode::Add, 2, 3, 0), Some(5));
        assert_eq!(alu(Opcode::Sub, 2, 3, 0), Some(-1i64 as u64));
        assert_eq!(alu(Opcode::Mul, 7, 6, 0), Some(42));
        assert_eq!(alu(Opcode::Addi, 10, 0, -4), Some(6));
        assert_eq!(alu(Opcode::Li, 0, 0, -1), Some(u64::MAX));
    }

    #[test]
    fn logic_and_shifts() {
        assert_eq!(alu(Opcode::And, 0b1100, 0b1010, 0), Some(0b1000));
        assert_eq!(alu(Opcode::Or, 0b1100, 0b1010, 0), Some(0b1110));
        assert_eq!(alu(Opcode::Xor, 0b1100, 0b1010, 0), Some(0b0110));
        assert_eq!(alu(Opcode::Sll, 1, 4, 0), Some(16));
        assert_eq!(alu(Opcode::Srl, u64::MAX, 63, 0), Some(1));
        assert_eq!(alu(Opcode::Sra, (-8i64) as u64, 2, 0), Some((-2i64) as u64));
        assert_eq!(alu(Opcode::Slli, 3, 0, 2), Some(12));
        assert_eq!(alu(Opcode::Srai, (-8i64) as u64, 0, 3), Some((-1i64) as u64));
    }

    #[test]
    fn division_riscv_semantics() {
        assert_eq!(alu(Opcode::Div, 7, 2, 0), Some(3));
        assert_eq!(alu(Opcode::Div, (-7i64) as u64, 2, 0), Some((-3i64) as u64));
        assert_eq!(alu(Opcode::Div, 5, 0, 0), Some(u64::MAX), "div by zero = -1");
        assert_eq!(alu(Opcode::Rem, 7, 0, 0), Some(7), "rem by zero = dividend");
        assert_eq!(
            alu(Opcode::Div, i64::MIN as u64, (-1i64) as u64, 0),
            Some(i64::MIN as u64),
            "overflow wraps"
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(alu(Opcode::Slt, (-1i64) as u64, 0, 0), Some(1));
        assert_eq!(alu(Opcode::Sltu, (-1i64) as u64, 0, 0), Some(0));
        assert_eq!(alu(Opcode::Slti, 3, 0, 5), Some(1));
    }

    #[test]
    fn non_alu_ops_return_none() {
        assert_eq!(alu(Opcode::Ld, 0, 0, 0), None);
        assert_eq!(alu(Opcode::Beq, 0, 0, 0), None);
        assert_eq!(alu(Opcode::Nop, 0, 0, 0), None);
    }

    #[test]
    fn branch_conditions() {
        assert!(branch_taken(Opcode::Beq, 4, 4));
        assert!(!branch_taken(Opcode::Beq, 4, 5));
        assert!(branch_taken(Opcode::Bne, 4, 5));
        assert!(branch_taken(Opcode::Blt, (-1i64) as u64, 0));
        assert!(!branch_taken(Opcode::Bltu, (-1i64) as u64, 0));
        assert!(branch_taken(Opcode::Bge, 0, 0));
        assert!(branch_taken(Opcode::Bgeu, (-1i64) as u64, 0));
    }

    #[test]
    fn effective_address() {
        let ld = Inst::ld(ArchReg::A0, ArchReg::A1, -8);
        assert_eq!(mem_addr(&ld, 0x100), 0xf8);
        let st = Inst::st(ArchReg::A1, ArchReg::A2, 16);
        assert_eq!(mem_addr(&st, 0x100), 0x110);
    }
}
