//! Load and store queues: store-to-load forwarding and memory-order
//! violation detection.
//!
//! Loads issue aggressively (they do not wait for older stores with
//! unknown addresses). When a store later computes its address, it checks
//! the load queue for younger loads that already obtained data from an
//! overlapping address — a store-to-load memory-order violation that
//! forces a flush-and-replay from the offending load. This is the
//! XiangShan-style mechanism the paper assumes (§3.8.1), and it is the
//! interaction that makes reused loads need extra checking.
//!
//! Addresses are compared at 8-byte granularity (the ISA's only access
//! size); workloads keep memory accesses 8-byte aligned.

use crate::types::SeqNum;

/// The outcome of a store-to-load forwarding lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Forward {
    /// An older same-block store supplies this value.
    Data(u64),
    /// The youngest older same-block store knows its address but not yet
    /// its data. The load must wait and retry — reading the memory
    /// hierarchy now would return the pre-store value.
    Pending,
    /// No older store with a *known* address overlaps; the load reads the
    /// memory hierarchy. Older stores with unknown addresses are
    /// deliberately ignored (aggressive issue — see [`Lsq::forward`]).
    Miss,
}

/// One load-queue entry.
#[derive(Clone, Debug)]
pub struct LqEntry {
    /// The load's sequence number.
    pub seq: SeqNum,
    /// Effective address, known once the load issues (or, for a reused
    /// load, the address recorded in the Squash Log).
    pub addr: Option<u64>,
    /// Whether the load has obtained data (issued its access or been
    /// granted by a reuse engine) — the predicate stores check against.
    pub issued: bool,
    /// The value obtained (for reuse verification comparison).
    pub value: Option<u64>,
    /// Whether this entry is a reused load.
    pub reused: bool,
}

/// One store-queue entry.
#[derive(Clone, Debug)]
pub struct SqEntry {
    /// The store's sequence number.
    pub seq: SeqNum,
    /// Effective address, known once the store executes.
    pub addr: Option<u64>,
    /// Data to write, known with the address.
    pub data: Option<u64>,
}

fn same_block(a: u64, b: u64) -> bool {
    a >> 3 == b >> 3
}

/// The load/store queue pair.
#[derive(Debug, Default)]
pub struct Lsq {
    loads: Vec<LqEntry>,
    stores: Vec<SqEntry>,
    lq_cap: usize,
    sq_cap: usize,
}

impl Lsq {
    /// Creates empty queues with the given capacities.
    pub fn new(lq_cap: usize, sq_cap: usize) -> Lsq {
        Lsq { loads: Vec::new(), stores: Vec::new(), lq_cap, sq_cap }
    }

    /// Whether a load can be dispatched.
    pub fn lq_has_space(&self) -> bool {
        self.loads.len() < self.lq_cap
    }

    /// Whether a store can be dispatched.
    pub fn sq_has_space(&self) -> bool {
        self.stores.len() < self.sq_cap
    }

    /// Load-queue occupancy.
    pub fn lq_len(&self) -> usize {
        self.loads.len()
    }

    /// Store-queue occupancy.
    pub fn sq_len(&self) -> usize {
        self.stores.len()
    }

    /// Allocates a load-queue entry at dispatch (program order).
    pub fn push_load(&mut self, e: LqEntry) {
        assert!(self.lq_has_space(), "load queue overflow");
        if let Some(t) = self.loads.last() {
            assert!(e.seq > t.seq, "loads must be dispatched in age order");
        }
        self.loads.push(e);
    }

    /// Allocates a store-queue entry at dispatch (program order).
    pub fn push_store(&mut self, e: SqEntry) {
        assert!(self.sq_has_space(), "store queue overflow");
        if let Some(t) = self.stores.last() {
            assert!(e.seq > t.seq, "stores must be dispatched in age order");
        }
        self.stores.push(e);
    }

    /// Mutable access to a load entry by sequence number.
    pub fn load_mut(&mut self, seq: SeqNum) -> Option<&mut LqEntry> {
        self.loads.iter_mut().find(|e| e.seq == seq)
    }

    /// Access to a load entry by sequence number.
    pub fn load(&self, seq: SeqNum) -> Option<&LqEntry> {
        self.loads.iter().find(|e| e.seq == seq)
    }

    /// Mutable access to a store entry by sequence number.
    pub fn store_mut(&mut self, seq: SeqNum) -> Option<&mut SqEntry> {
        self.stores.iter_mut().find(|e| e.seq == seq)
    }

    /// Store-to-load forwarding: the youngest store older than `load_seq`
    /// with a known address in the same 8-byte block supplies its data —
    /// or, if that store's data is not yet available, the load must wait
    /// ([`Forward::Pending`]). An earlier version returned `None` in the
    /// pending case, letting the load read the pre-store value from
    /// memory; [`Rule::ForwardPending`](crate::check::Rule) now guards
    /// against that class of bug.
    ///
    /// **Aggressive-issue contract.** Older stores whose address is still
    /// *unknown* are skipped entirely: loads issue without waiting for
    /// them (the XiangShan-style policy of the module docs). The safety
    /// net is [`Lsq::store_check`] — when such a store later resolves its
    /// address, it scans for younger loads that already obtained data
    /// (`issued`, whether forwarded *or* memory-sourced; both paths
    /// record `addr` and set `issued`) and triggers a memory-order
    /// flush-and-replay from the oldest offender.
    pub fn forward(&self, load_seq: SeqNum, addr: u64) -> Forward {
        match self
            .stores
            .iter()
            .rev()
            .filter(|s| s.seq < load_seq)
            .find(|s| matches!(s.addr, Some(a) if same_block(a, addr)))
        {
            Some(s) => match s.data {
                Some(v) => Forward::Data(v),
                None => Forward::Pending,
            },
            None => Forward::Miss,
        }
    }

    /// Store-to-load violation check, run when a store's address becomes
    /// known: returns the **oldest** younger load that already obtained
    /// data from an overlapping address, if any. The pipeline flushes
    /// from that load.
    pub fn store_check(&self, store_seq: SeqNum, addr: u64) -> Option<SeqNum> {
        self.loads
            .iter()
            .filter(|l| l.seq > store_seq && l.issued)
            .find(|l| matches!(l.addr, Some(a) if same_block(a, addr)))
            .map(|l| l.seq)
    }

    /// Pops the oldest load (commit). Asserts it matches `seq`.
    pub fn commit_load(&mut self, seq: SeqNum) {
        let head = self.loads.remove(0);
        assert_eq!(head.seq, seq, "load commit order mismatch");
    }

    /// Pops the oldest store (commit), returning its address and data.
    ///
    /// # Panics
    ///
    /// Panics if the head store does not match `seq` or has not executed.
    pub fn commit_store(&mut self, seq: SeqNum) -> (u64, u64) {
        let head = self.stores.remove(0);
        assert_eq!(head.seq, seq, "store commit order mismatch");
        (
            head.addr.expect("committed store has an address"),
            head.data.expect("committed store has data"),
        )
    }

    /// Removes all entries with `seq >= first` (pipeline squash).
    pub fn squash_from(&mut self, first: SeqNum) {
        self.loads.retain(|e| e.seq < first);
        self.stores.retain(|e| e.seq < first);
    }

    /// Iterates load entries, oldest first.
    pub fn loads(&self) -> std::slice::Iter<'_, LqEntry> {
        self.loads.iter()
    }

    /// Iterates store entries, oldest first.
    pub fn stores(&self) -> std::slice::Iter<'_, SqEntry> {
        self.stores.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(seq: u64) -> LqEntry {
        LqEntry { seq: SeqNum::new(seq), addr: None, issued: false, value: None, reused: false }
    }

    fn store(seq: u64) -> SqEntry {
        SqEntry { seq: SeqNum::new(seq), addr: None, data: None }
    }

    #[test]
    fn forwarding_from_youngest_older_store() {
        let mut lsq = Lsq::new(8, 8);
        lsq.push_store(store(1));
        lsq.push_store(store(3));
        lsq.push_load(load(5));
        lsq.store_mut(SeqNum::new(1)).unwrap().addr = Some(0x100);
        lsq.store_mut(SeqNum::new(1)).unwrap().data = Some(11);
        lsq.store_mut(SeqNum::new(3)).unwrap().addr = Some(0x100);
        lsq.store_mut(SeqNum::new(3)).unwrap().data = Some(33);
        assert_eq!(
            lsq.forward(SeqNum::new(5), 0x100),
            Forward::Data(33),
            "youngest older store wins"
        );
        assert_eq!(lsq.forward(SeqNum::new(2), 0x100), Forward::Data(11), "age filter applies");
        assert_eq!(lsq.forward(SeqNum::new(5), 0x200), Forward::Miss, "different block");
    }

    #[test]
    fn forwarding_matches_within_8b_block() {
        let mut lsq = Lsq::new(4, 4);
        lsq.push_store(store(1));
        lsq.store_mut(SeqNum::new(1)).unwrap().addr = Some(0x100);
        lsq.store_mut(SeqNum::new(1)).unwrap().data = Some(7);
        assert_eq!(lsq.forward(SeqNum::new(2), 0x104), Forward::Data(7), "same 8B block");
        assert_eq!(lsq.forward(SeqNum::new(2), 0x108), Forward::Miss);
    }

    #[test]
    fn forwarding_stalls_on_address_ready_data_pending_store() {
        // Regression: the store resolves its address before its data (the
        // ordering a split address/data pipeline produces). The old code
        // collapsed this to "no forwarding source" and the load read
        // stale memory; it must report Pending instead.
        let mut lsq = Lsq::new(4, 4);
        lsq.push_store(store(1));
        lsq.push_load(load(3));
        lsq.store_mut(SeqNum::new(1)).unwrap().addr = Some(0x100);
        assert_eq!(lsq.forward(SeqNum::new(3), 0x100), Forward::Pending, "data still pending");
        lsq.store_mut(SeqNum::new(1)).unwrap().data = Some(42);
        assert_eq!(lsq.forward(SeqNum::new(3), 0x100), Forward::Data(42), "retry succeeds");
    }

    #[test]
    fn pending_youngest_store_shadows_older_data() {
        // The *youngest* older same-block store is the forwarding source;
        // if it is pending, an older complete store to the same block
        // must not be forwarded over it.
        let mut lsq = Lsq::new(4, 4);
        lsq.push_store(store(1));
        lsq.push_store(store(3));
        lsq.push_load(load(5));
        let s1 = lsq.store_mut(SeqNum::new(1)).unwrap();
        s1.addr = Some(0x100);
        s1.data = Some(11);
        lsq.store_mut(SeqNum::new(3)).unwrap().addr = Some(0x100);
        assert_eq!(lsq.forward(SeqNum::new(5), 0x100), Forward::Pending);
    }

    #[test]
    fn unknown_address_store_is_skipped_then_caught_by_store_check() {
        // The aggressive-issue contract end to end: a load forwards past
        // an older store whose address is unknown (Miss here — store 3
        // hasn't resolved), obtains data from an even older store, and is
        // then flagged by store_check when store 3 resolves to the same
        // block. Forwarded loads record addr/issued exactly like
        // memory-sourced ones, so the check sees them.
        let mut lsq = Lsq::new(4, 4);
        lsq.push_store(store(1));
        lsq.push_store(store(3));
        lsq.push_load(load(5));
        let s1 = lsq.store_mut(SeqNum::new(1)).unwrap();
        s1.addr = Some(0x100);
        s1.data = Some(11);
        assert_eq!(
            lsq.forward(SeqNum::new(5), 0x100),
            Forward::Data(11),
            "unknown-address store 3 skipped"
        );
        let l = lsq.load_mut(SeqNum::new(5)).unwrap();
        l.addr = Some(0x100);
        l.issued = true;
        l.value = Some(11);
        // Store 3 resolves to the same block: the forwarded load is a
        // memory-order violation and replays from seq 5.
        assert_eq!(lsq.store_check(SeqNum::new(3), 0x100), Some(SeqNum::new(5)));
        // Had it resolved elsewhere, the speculation was correct.
        assert_eq!(lsq.store_check(SeqNum::new(3), 0x200), None);
    }

    #[test]
    fn store_check_finds_oldest_violating_load() {
        let mut lsq = Lsq::new(8, 8);
        lsq.push_store(store(1));
        lsq.push_load(load(2));
        lsq.push_load(load(4));
        for s in [2u64, 4] {
            let l = lsq.load_mut(SeqNum::new(s)).unwrap();
            l.addr = Some(0x40);
            l.issued = true;
        }
        assert_eq!(lsq.store_check(SeqNum::new(1), 0x40), Some(SeqNum::new(2)));
        // Loads older than the store are not violations.
        assert_eq!(lsq.store_check(SeqNum::new(5), 0x40), None);
        // Unissued loads are not violations.
        lsq.load_mut(SeqNum::new(2)).unwrap().issued = false;
        assert_eq!(lsq.store_check(SeqNum::new(1), 0x40), Some(SeqNum::new(4)));
    }

    #[test]
    fn store_check_ignores_other_addresses() {
        let mut lsq = Lsq::new(8, 8);
        lsq.push_load(load(2));
        let l = lsq.load_mut(SeqNum::new(2)).unwrap();
        l.addr = Some(0x40);
        l.issued = true;
        assert_eq!(lsq.store_check(SeqNum::new(1), 0x80), None);
    }

    #[test]
    fn commit_pops_in_order() {
        let mut lsq = Lsq::new(8, 8);
        lsq.push_load(load(1));
        lsq.push_store(store(2));
        let s = lsq.store_mut(SeqNum::new(2)).unwrap();
        s.addr = Some(0x8);
        s.data = Some(99);
        lsq.commit_load(SeqNum::new(1));
        assert_eq!(lsq.commit_store(SeqNum::new(2)), (0x8, 99));
        assert_eq!(lsq.lq_len(), 0);
        assert_eq!(lsq.sq_len(), 0);
    }

    #[test]
    fn squash_truncates_young_entries() {
        let mut lsq = Lsq::new(8, 8);
        lsq.push_load(load(1));
        lsq.push_load(load(5));
        lsq.push_store(store(3));
        lsq.push_store(store(6));
        lsq.squash_from(SeqNum::new(4));
        assert_eq!(lsq.lq_len(), 1);
        assert_eq!(lsq.sq_len(), 1);
        assert!(lsq.load(SeqNum::new(1)).is_some());
        assert!(lsq.load(SeqNum::new(5)).is_none());
    }

    #[test]
    fn capacity_limits() {
        let mut lsq = Lsq::new(1, 1);
        lsq.push_load(load(1));
        assert!(!lsq.lq_has_space());
        lsq.push_store(store(2));
        assert!(!lsq.sq_has_space());
    }
}
