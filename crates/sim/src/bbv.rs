//! Basic-block vector (BBV) collection for SimPoint-style sampling.
//!
//! A [`BbvCollector`] rides the functional fast-forward
//! ([`Simulator::fast_forward_collect`](crate::Simulator::fast_forward_collect)):
//! for every architecturally executed instruction it is told the PC and
//! whether the instruction ends a basic block (any control transfer, or
//! `halt`). It slices the execution into fixed-length instruction
//! intervals and records, per interval, how many instructions ran in
//! each basic block — the block identified by the address of its first
//! instruction, the count weighted by dynamic block length, exactly the
//! SimPoint frequency-vector construction.
//!
//! The vectors are sparse and canonically ordered (sorted by block
//! address), so downstream clustering is deterministic by construction.
//! Collection is exact, not sampled: the per-interval counts sum to the
//! pass's total executed instructions, enforced by the
//! `bbv-conservation` invariant rule ([`crate::check::check_bbv`]) when
//! the trace is finalized.

use crate::check::{self, Violation};

/// Marker for "no basic block open" in [`BbvCollector`].
const NO_BLOCK: u64 = u64::MAX;

/// One fixed-length interval's basic-block vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BbvInterval {
    /// Index of the interval's first instruction in the functional pass
    /// (i.e. `index × interval_len` for full intervals).
    pub start_inst: u64,
    /// Instructions executed in this interval (equals the configured
    /// interval length except for the final partial interval).
    pub insts: u64,
    /// Sparse frequency vector: `(block start address, instructions
    /// executed in that block)`, sorted by address.
    pub blocks: Vec<(u64, u64)>,
}

impl BbvInterval {
    /// Sum of the per-block instruction counts (must equal
    /// [`BbvInterval::insts`] — the conservation rule).
    pub fn block_insts(&self) -> u64 {
        self.blocks.iter().map(|&(_, n)| n).sum()
    }
}

/// A finalized BBV trace: every interval of one functional pass.
#[derive(Clone, Debug, Default)]
pub struct BbvTrace {
    /// The configured interval length in instructions.
    pub interval: u64,
    /// Total instructions executed by the pass.
    pub total_insts: u64,
    /// The per-interval vectors, in execution order.
    pub intervals: Vec<BbvInterval>,
}

/// Accumulates per-interval basic-block vectors during a functional
/// pass.
///
/// # Example
///
/// ```
/// use mssr_sim::{BbvCollector, SimConfig, Simulator};
/// use mssr_isa::{regs::*, Assembler};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Assembler::new();
/// a.li(T0, 0);
/// a.li(T1, 40);
/// a.label("loop");
/// a.addi(T0, T0, 1);
/// a.blt(T0, T1, "loop");
/// a.halt();
/// let mut sim = Simulator::new(SimConfig::default(), a.assemble()?);
/// let mut bbv = BbvCollector::new(16);
/// let executed = sim.fast_forward_collect(u64::MAX, &mut bbv);
/// let trace = bbv.finish(executed);
/// assert_eq!(trace.total_insts, executed);
/// assert_eq!(trace.intervals.iter().map(|i| i.insts).sum::<u64>(), executed);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct BbvCollector {
    interval: u64,
    block_start: u64,
    block_len: u64,
    in_interval: u64,
    total: u64,
    cur: std::collections::BTreeMap<u64, u64>,
    intervals: Vec<BbvInterval>,
}

impl BbvCollector {
    /// A collector slicing execution into `interval`-instruction
    /// intervals.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: u64) -> BbvCollector {
        assert!(interval > 0, "BBV interval length must be positive");
        BbvCollector {
            interval,
            block_start: NO_BLOCK,
            block_len: 0,
            in_interval: 0,
            total: 0,
            cur: std::collections::BTreeMap::new(),
            intervals: Vec::new(),
        }
    }

    /// The configured interval length.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Records one executed instruction at `pc_addr`; `ends_block` marks
    /// control transfers (taken or not) and `halt`.
    pub(crate) fn step(&mut self, pc_addr: u64, ends_block: bool) {
        if self.block_start == NO_BLOCK {
            self.block_start = pc_addr;
        }
        self.block_len += 1;
        self.in_interval += 1;
        self.total += 1;
        if ends_block {
            self.credit_block();
        }
        if self.in_interval == self.interval {
            // A block straddling the boundary is credited partially to
            // each side (same start address), keeping interval sums exact.
            self.close_interval();
        }
    }

    fn credit_block(&mut self) {
        if self.block_len > 0 {
            *self.cur.entry(self.block_start).or_insert(0) += self.block_len;
            self.block_len = 0;
        }
        self.block_start = NO_BLOCK;
    }

    fn close_interval(&mut self) {
        if self.block_len > 0 {
            // Credit the open block's prefix without closing the block:
            // the remainder belongs to the next interval under the same
            // block start.
            *self.cur.entry(self.block_start).or_insert(0) += self.block_len;
            self.block_len = 0;
        }
        let blocks: Vec<(u64, u64)> = std::mem::take(&mut self.cur).into_iter().collect();
        self.intervals.push(BbvInterval {
            start_inst: self.total - self.in_interval,
            insts: self.in_interval,
            blocks,
        });
        self.in_interval = 0;
    }

    /// Finalizes the trace: flushes the partial tail interval and checks
    /// the `bbv-conservation` rule against `expected_insts` — the
    /// instruction count the functional pass reported (the return value
    /// of [`Simulator::fast_forward_collect`](crate::Simulator::fast_forward_collect)).
    ///
    /// # Panics
    ///
    /// Panics with a `bbv-conservation: …` message when the per-interval
    /// counts do not sum to `expected_insts` (a lost or invented
    /// instruction in the collector is a bug, exactly like a miscounted
    /// CPI slot).
    pub fn finish(mut self, expected_insts: u64) -> BbvTrace {
        if self.in_interval > 0 || !self.cur.is_empty() {
            self.close_interval();
        }
        if let Some(v) = check::check_bbv(&self.intervals, expected_insts) {
            panic!("{v}");
        }
        BbvTrace { interval: self.interval, total_insts: self.total, intervals: self.intervals }
    }

    /// Like [`BbvCollector::finish`] but returning the violation instead
    /// of panicking (for tools that prefer an error path).
    ///
    /// # Errors
    ///
    /// Returns the conservation violation, if any.
    pub fn try_finish(mut self, expected_insts: u64) -> Result<BbvTrace, Violation> {
        if self.in_interval > 0 || !self.cur.is_empty() {
            self.close_interval();
        }
        match check::check_bbv(&self.intervals, expected_insts) {
            Some(v) => Err(v),
            None => Ok(BbvTrace {
                interval: self.interval,
                total_insts: self.total,
                intervals: self.intervals,
            }),
        }
    }

    /// Corrupts the collected counts by one instruction. Test-only hook
    /// used by the invariant suite to prove the conservation rule trips;
    /// never call it anywhere else.
    #[doc(hidden)]
    pub fn corrupt_for_test(&mut self) {
        let key = if self.block_start == NO_BLOCK { 0 } else { self.block_start };
        *self.cur.entry(key).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(steps: &[(u64, bool)], interval: u64) -> BbvTrace {
        let mut c = BbvCollector::new(interval);
        for &(pc, ends) in steps {
            c.step(pc, ends);
        }
        c.finish(steps.len() as u64)
    }

    #[test]
    fn blocks_are_keyed_by_start_and_weighted_by_length() {
        // Two executions of a 3-instruction block at 0x100, one of a
        // 2-instruction block at 0x200.
        let steps = [
            (0x100, false),
            (0x108, false),
            (0x110, true),
            (0x200, false),
            (0x208, true),
            (0x100, false),
            (0x108, false),
            (0x110, true),
        ];
        let t = collect(&steps, 100);
        assert_eq!(t.intervals.len(), 1);
        assert_eq!(t.intervals[0].blocks, vec![(0x100, 6), (0x200, 2)]);
        assert_eq!(t.intervals[0].block_insts(), 8);
    }

    #[test]
    fn intervals_split_at_exact_instruction_boundaries() {
        // 10 instructions, interval 4: intervals of 4, 4, 2; a block
        // straddling a boundary is credited partially to each side.
        let steps: Vec<(u64, bool)> = (0..10).map(|i| (0x100 + 8 * (i % 6), i % 6 == 5)).collect();
        let t = collect(&steps, 4);
        assert_eq!(t.intervals.iter().map(|i| i.insts).collect::<Vec<_>>(), vec![4, 4, 2]);
        assert_eq!(t.intervals.iter().map(|i| i.start_inst).collect::<Vec<_>>(), vec![0, 4, 8]);
        for i in &t.intervals {
            assert_eq!(i.block_insts(), i.insts, "per-interval conservation");
        }
        // Blocks straddling a boundary keep their start address on both
        // sides: the first 6-instruction block at 0x100 contributes 4 to
        // interval 0 and 2 to interval 1; the next iteration's block
        // (also starting at 0x100) contributes its prefix there too.
        assert_eq!(t.intervals[0].blocks, vec![(0x100, 4)]);
        assert_eq!(t.intervals[1].blocks, vec![(0x100, 4)]);
        assert_eq!(t.intervals[2].blocks, vec![(0x100, 2)]);
    }

    #[test]
    fn vectors_are_sorted_by_block_address() {
        let steps = [(0x300, true), (0x100, true), (0x200, true)];
        let t = collect(&steps, 100);
        assert_eq!(t.intervals[0].blocks, vec![(0x100, 1), (0x200, 1), (0x300, 1)]);
    }

    #[test]
    #[should_panic(expected = "bbv-conservation")]
    fn finish_rejects_a_wrong_total() {
        let mut c = BbvCollector::new(4);
        c.step(0x100, true);
        c.finish(2); // one instruction executed, two claimed
    }

    #[test]
    #[should_panic(expected = "bbv-conservation")]
    fn corrupt_helper_trips_the_rule() {
        let mut c = BbvCollector::new(4);
        c.step(0x100, true);
        c.corrupt_for_test();
        c.finish(1);
    }

    #[test]
    fn try_finish_reports_instead_of_panicking() {
        let mut c = BbvCollector::new(4);
        c.step(0x100, true);
        c.corrupt_for_test();
        let v = c.try_finish(1).unwrap_err();
        assert!(v.to_string().starts_with("bbv-conservation"), "got: {v}");
    }

    #[test]
    #[should_panic(expected = "interval length")]
    fn zero_interval_is_rejected() {
        BbvCollector::new(0);
    }
}
